"""Unit tests for the extension experiments (small configurations)."""

from __future__ import annotations

import pytest

from repro.experiments.convergence import transport_convergence
from repro.experiments.future_scaling import future_scaling_study, scaled_p690
from repro.experiments.sensitivity import network_sensitivity
from repro.machine.spec import P690_CLUSTER


class TestScaledMachine:
    def test_raises_job_limit_only(self):
        m = scaled_p690(2048)
        assert m.max_procs == 2048
        assert m.procs_per_node == P690_CLUSTER.procs_per_node
        assert m.sustained_flops == P690_CLUSTER.sustained_flops

    def test_name_marks_hypothetical(self):
        assert "hypothetical" in scaled_p690(1024).name


class TestFutureScaling:
    def test_small_sweep(self):
        points = future_scaling_study(ne=8, max_procs=384)
        assert points
        for p in points:
            assert p.k == 384
            assert p.nproc * p.elems_per_proc == p.k
            assert 0 < p.parallel_efficiency <= 1.0

    def test_nproc_filter(self):
        points = future_scaling_study(ne=8, max_procs=384, min_elems_per_proc=4)
        assert all(p.elems_per_proc >= 4 for p in points)
        assert all(p.nproc > 128 for p in points)


class TestSensitivity:
    def test_grid_shape(self):
        points = network_sensitivity(
            ne=4,
            nproc=48,
            latency_scales=(0.5, 2.0),
            bandwidth_scales=(1.0,),
        )
        assert len(points) == 2
        scales = {(p.latency_scale, p.bandwidth_scale) for p in points}
        assert scales == {(0.5, 1.0), (2.0, 1.0)}

    def test_advantage_definition(self):
        points = network_sensitivity(
            ne=4, nproc=48, latency_scales=(1.0,), bandwidth_scales=(1.0,)
        )
        p = points[0]
        assert p.advantage == pytest.approx(
            p.sfc_speedup / p.best_metis_speedup - 1.0
        )

    def test_slower_network_slower_everything(self):
        fast, slow = network_sensitivity(
            ne=4, nproc=48, latency_scales=(0.5, 5.0), bandwidth_scales=(1.0,)
        )
        assert slow.sfc_speedup < fast.sfc_speedup


class TestConvergenceStudy:
    def test_points_and_dof(self):
        points = transport_convergence(nes=(2,), npts_list=(4, 6), angle=0.2)
        assert len(points) == 2
        assert points[0].dof == 6 * (2 * 3) ** 2 + 2
        assert points[1].dof > points[0].dof

    def test_error_decreases_with_order(self):
        points = transport_convergence(nes=(2,), npts_list=(4, 8), angle=0.3)
        by_np = {p.npts: p.norms.l2 for p in points}
        assert by_np[8] < by_np[4]
