"""Unit tests for text-table rendering."""

from __future__ import annotations

from repro.experiments.report import format_series, format_table


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bbb"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_title(self):
        out = format_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        out = format_table(["v"], [[0.123456], [12345.6], [0.0]])
        assert "0.123" in out
        assert "0" in out

    def test_empty_rows(self):
        out = format_table(["h1", "h2"], [])
        assert "h1" in out


class TestFormatSeries:
    def test_columns(self):
        out = format_series(
            "Nproc", [1, 2], {"sfc": [1.0, 2.0], "rb": [1.0, 1.9]}
        )
        header = out.splitlines()[0].split()
        assert header == ["Nproc", "sfc", "rb"]
        assert out.splitlines()[2].split()[0] == "1"
