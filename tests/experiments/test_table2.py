"""Unit tests for the Table 2 experiment (shape assertions vs paper)."""

from __future__ import annotations

import pytest

from repro.experiments.table2 import render_table2, table2


@pytest.fixture(scope="module")
def rows():
    # Scaled-down Table 2 (same 2-elements-per-processor regime as the
    # paper's K=1536 / 768 procs, but fast enough for unit testing).
    return table2(ne=8, nproc=192)


class TestTable2Shape:
    def test_method_order(self, rows):
        assert [r.method for r in rows] == ["SFC", "KWAY", "TV", "RB"]

    def test_sfc_perfectly_balanced(self, rows):
        sfc = rows[0]
        assert sfc.lb_nelemd == 0.0
        assert sfc.lb_spcv < 0.05

    def test_metis_imbalanced_at_two_elements_per_proc(self, rows):
        """The paper's central observation."""
        by = {r.method: r for r in rows}
        assert by["KWAY"].lb_nelemd > 0.2
        assert by["TV"].lb_nelemd > 0.2

    def test_kway_minimizes_edgecut(self, rows):
        by = {r.method: r for r in rows}
        assert by["KWAY"].edgecut <= min(r.edgecut for r in rows)

    def test_sfc_fastest(self, rows):
        sfc_time = rows[0].time_us
        assert all(sfc_time <= r.time_us for r in rows[1:])

    def test_load_balance_correlates_with_time(self, rows):
        """'Note how reductions in LB(nelemd) correlate to reduction in
        the execution time per time-step.'"""
        by_lb = sorted(rows, key=lambda r: r.lb_nelemd)
        assert by_lb[0].time_us == min(r.time_us for r in rows)

    def test_tcv_positive(self, rows):
        assert all(r.tcv_mbytes > 0 for r in rows)


class TestRender:
    def test_render_contains_all_metrics(self, rows):
        text = render_table2(rows, k=384, nproc=192)
        for token in ("LB(nelemd)", "LB(spcv)", "TCV", "edgecut", "Time"):
            assert token in text
        assert "K=384" in text
