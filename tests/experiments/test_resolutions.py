"""Unit tests for Table 1 (SEAM test resolutions)."""

from __future__ import annotations

import pytest

from repro.experiments.resolutions import (
    PAPER_RESOLUTIONS,
    Resolution,
    admissible_nprocs,
    resolution_by_k,
)


class TestTable1:
    def test_the_four_paper_rows(self):
        rows = {r.k: r for r in PAPER_RESOLUTIONS}
        assert set(rows) == {384, 486, 1536, 1944}
        assert rows[384].ne == 8
        assert rows[486].ne == 9
        assert rows[1536].ne == 16
        assert rows[1944].ne == 18

    def test_curve_levels_match_table1(self):
        """Hilbert / m-Peano levels of each resolution (Table 1)."""
        expect = {
            384: (3, 0),
            486: (0, 2),
            1536: (4, 0),
            1944: (1, 2),
        }
        for r in PAPER_RESOLUTIONS:
            assert (r.hilbert_level, r.peano_level) == expect[r.k]

    def test_curve_families(self):
        fams = {r.k: r.curve_family for r in PAPER_RESOLUTIONS}
        assert fams == {
            384: "hilbert",
            486: "m-peano",
            1536: "hilbert",
            1944: "hilbert-peano",
        }

    def test_schedules(self):
        assert resolution_by_k(1944).schedule == "PPH"
        assert resolution_by_k(384).schedule == "HHH"

    def test_lookup_error(self):
        with pytest.raises(KeyError):
            resolution_by_k(100)


class TestNprocs:
    def test_divisors_only(self):
        for n in admissible_nprocs(384):
            assert 384 % n == 0

    def test_cap_applied(self):
        assert max(admissible_nprocs(1536, 768)) == 768
        assert 1536 not in admissible_nprocs(1536, 768)

    def test_paper_endpoints(self):
        assert admissible_nprocs(384)[-1] == 384
        assert admissible_nprocs(486)[-1] == 486
        # K=1944: the largest divisor within the 768-proc job limit.
        assert admissible_nprocs(1944)[-1] == 648

    def test_resolution_nprocs_method(self):
        r = Resolution(ne=8)
        assert r.nprocs() == admissible_nprocs(384)
        assert r.nprocs()[0] == 1
