"""Unit tests for the ablation studies (small, fast configurations)."""

from __future__ import annotations

import pytest

from repro.experiments.ablations import (
    hilbert_peano_gap_study,
    network_ablation,
    refinement_order_study,
)


class TestRefinementOrder:
    def test_all_schedules_covered(self):
        results = refinement_order_study(ne=6, nproc=24)
        assert sorted(r.schedule for r in results) == ["HP", "PH"]

    def test_all_schedules_perfectly_balanced(self):
        for r in refinement_order_study(ne=6, nproc=24):
            assert r.sfc_result.quality.lb_nelemd == 0.0

    def test_locality_attached(self):
        results = refinement_order_study(ne=6, nproc=24)
        for r in results:
            assert r.locality.schedule == r.schedule
            assert r.locality.mean_neighbor_stretch > 0


class TestNetworkAblation:
    def test_structure(self):
        out = network_ablation(ne=4, nproc=24, methods=("sfc", "rb"))
        assert set(out) == {"sfc", "rb"}
        assert set(out["sfc"]) == {"p690", "flat"}

    def test_flat_network_shrinks_sfc_advantage(self):
        """SFC's rank locality pays on the hierarchical network; on a
        flat network the SFC-vs-RB gap must narrow (or reverse)."""
        out = network_ablation(ne=4, nproc=48, methods=("sfc", "rb"))
        gap_p690 = (
            out["sfc"]["p690"].speedup / out["rb"]["p690"].speedup
        )
        gap_flat = (
            out["sfc"]["flat"].speedup / out["rb"]["flat"].speedup
        )
        assert gap_flat <= gap_p690 + 0.02


class TestGapStudy:
    @pytest.mark.slow
    def test_paper_comparison_points(self):
        points = hilbert_peano_gap_study(elems_per_proc=4)
        ks = {p.k: p for p in points}
        assert 384 in ks and 1944 in ks
        # Paper: both show an SFC advantage at 4 elements/processor.
        assert ks[384].advantage > 0
        assert ks[1944].advantage > 0
