"""Unit tests for the figure sweep machinery."""

from __future__ import annotations

import pytest

from repro.experiments.figures import (
    ALL_METHODS,
    best_metis,
    make_partition,
    run_method,
    speedup_sweep,
)


class TestMakePartition:
    """The deprecated alias still dispatches through the registry."""

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_all_methods(self, method):
        with pytest.deprecated_call():
            p = make_partition(4, 8, method)
        assert p.nparts == 8
        assert p.nvertices == 96

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="unknown method"):
            make_partition(4, 8, "quantum")

    def test_sfc_schedule_passthrough(self):
        import numpy as np

        with pytest.deprecated_call():
            a = make_partition(6, 12, "sfc", schedule="PH")
            b = make_partition(6, 12, "sfc", schedule="HP")
        assert not np.array_equal(a.assignment, b.assignment)


class TestRunMethod:
    def test_result_fields(self):
        r = run_method(4, 12, "sfc")
        assert r.method == "sfc"
        assert r.nproc == 12
        assert r.speedup > 1
        assert r.gflops > 0
        assert r.step_us > 0
        assert r.quality.lb_nelemd == 0.0

    def test_single_processor_speedup_is_one(self):
        r = run_method(4, 1, "sfc")
        assert r.speedup == pytest.approx(1.0)


class TestSweep:
    def test_sweep_shape(self):
        res = speedup_sweep(4, methods=("sfc", "rb"), nprocs=[2, 8, 24])
        assert set(res) == {"sfc", "rb"}
        assert [r.nproc for r in res["sfc"]] == [2, 8, 24]

    def test_default_nprocs_are_divisors(self):
        res = speedup_sweep(2, methods=("sfc",))
        nprocs = [r.nproc for r in res["sfc"]]
        assert nprocs == [1, 2, 3, 4, 6, 8, 12, 24]

    def test_best_metis_selection(self):
        res = speedup_sweep(4, methods=("sfc", "rb", "kway"), nprocs=[24])
        bm = best_metis(res, 0)
        assert bm.method in ("rb", "kway")
        assert bm.speedup == max(res["rb"][0].speedup, res["kway"][0].speedup)

    def test_best_metis_requires_metis(self):
        res = speedup_sweep(4, methods=("sfc",), nprocs=[4])
        with pytest.raises(ValueError, match="no METIS"):
            best_metis(res, 0)
