"""Golden equivalence tests for the batched SEAM engine.

The batched engine (stacked geometry, fused bincount DSS, BLAS
derivative chains) must reproduce the preserved pre-batching reference
implementations in ``repro.seam._reference`` — exactly where the op
order is unchanged, and to <= 1e-12 where reassociation is allowed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.seam import (
    ShallowWaterSolver,
    build_geometry,
    clear_dss_memo,
    dss_memo_stats,
    geometry_cache_stats,
    shared_dss_operator,
    williamson_tc2,
)
from repro.seam._reference import ReferenceDSS, ReferenceShallowWaterSolver
from repro.seam.dss import DSSOperator
from repro.seam.element import _element_geometry


@pytest.fixture(scope="module")
def geom():
    return build_geometry(3, 8)


@pytest.fixture(scope="module")
def dss(geom):
    return DSSOperator(geom)


class TestGeometryStacks:
    """The vectorized per-face build equals the per-element loop."""

    def test_stacks_match_element_loop(self, geom):
        for gid in [0, 1, geom.nelem // 2, geom.nelem - 1]:
            ref = _element_geometry(geom.mesh, geom.basis, gid)
            np.testing.assert_array_equal(geom.xyz[gid], ref.xyz)
            np.testing.assert_allclose(
                geom.basis_a[gid], ref.basis_a, rtol=0, atol=1e-15
            )
            np.testing.assert_allclose(
                geom.basis_b[gid], ref.basis_b, rtol=0, atol=1e-15
            )
            np.testing.assert_allclose(geom.jac[gid], ref.jac, rtol=1e-14)
            np.testing.assert_allclose(
                geom.ginv[gid], ref.ginv, rtol=0, atol=1e-12
            )

    def test_elements_view_stacks(self, geom):
        """Lazy per-element views alias the stacks, not copies."""
        e = geom.elements[5]
        assert e.xyz.base is not None
        np.testing.assert_array_equal(e.xyz, geom.xyz[5])


class TestDSSGolden:
    """Fused bincount/C-kernel DSS vs the historical np.add.at scatter."""

    def test_scalar_matches_reference(self, geom, dss):
        ref = ReferenceDSS(geom, dss.point_map)
        q = np.random.default_rng(1).standard_normal(geom.xyz.shape[:3])
        got = dss.apply(q)
        np.testing.assert_allclose(got, ref.apply(q), rtol=0, atol=1e-13)
        assert dss.is_continuous(got)

    def test_component_axes_match_per_component_loop(self, geom, dss):
        """One (nelem, np, np, 3) apply == three scalar applies."""
        ref = ReferenceDSS(geom, dss.point_map)
        v = np.random.default_rng(2).standard_normal((*geom.xyz.shape[:3], 3))
        got = dss.apply(v)
        np.testing.assert_allclose(
            got, ref.apply_vector(v), rtol=0, atol=1e-13
        )

    def test_out_parameter_and_inplace(self, geom, dss):
        v = np.random.default_rng(3).standard_normal((*geom.xyz.shape[:3], 3))
        expect = dss.apply(v)
        out = np.empty_like(v)
        assert dss.apply(v, out=out) is out
        np.testing.assert_array_equal(out, expect)
        work = v.copy()
        dss.apply(work, out=work)  # aliased in-place apply
        np.testing.assert_array_equal(work, expect)

    def test_out_validation(self, geom, dss):
        v = np.random.default_rng(4).standard_normal(geom.xyz.shape[:3])
        with pytest.raises(ValueError, match="C-contiguous float64"):
            dss.apply(v, out=np.empty(v.shape, dtype=np.float32))
        with pytest.raises(ValueError, match="C-contiguous float64"):
            dss.apply(v, out=np.empty((*v.shape, 2))[..., 0])

    def test_c_kernel_bitwise_matches_numpy_fallback(self, geom, dss):
        """The C path and the pure-numpy path agree to the last bit."""
        from repro._native import LIB

        if LIB is None:
            pytest.skip("C kernels disabled; only the numpy path runs")
        for shape in [geom.xyz.shape[:3], (*geom.xyz.shape[:3], 3)]:
            q = np.random.default_rng(5).standard_normal(shape)
            via_c = dss.apply(q)
            via_np = np.empty_like(q)
            ncomp, num, _ = dss._shapes[q.shape]
            dss._apply_numpy(q, via_np, ncomp, num)
            np.testing.assert_array_equal(via_c, via_np)

    def test_interior_points_pass_through_unchanged(self, geom, dss):
        """Multiplicity-1 points are untouched copies, bit for bit."""
        q = np.random.default_rng(6).standard_normal(geom.xyz.shape[:3])
        got = dss.apply(q)
        interior = dss.point_map.multiplicity[dss.point_map.point_ids] == 1
        np.testing.assert_array_equal(got[interior], q[interior])


class TestShallowWaterGolden:
    """Batched BLAS solver vs the preserved einsum reference."""

    def test_rhs_matches_reference(self, geom):
        new = ShallowWaterSolver(geom)
        old = ReferenceShallowWaterSolver(geom)
        state = williamson_tc2(geom)
        r_new = new.rhs(state)
        r_old = old.rhs(state)
        assert np.abs(r_new.v - r_old.v).max() < 1e-12
        assert np.abs(r_new.h - r_old.h).max() < 1e-12

    def test_one_rk3_step_matches_reference(self, geom):
        new = ShallowWaterSolver(geom)
        old = ReferenceShallowWaterSolver(geom)
        state = williamson_tc2(geom)
        dt = 0.5 * new.stable_dt(state, 0.4)
        s_new = new.step(state, dt)
        s_old = old.step(state.copy(), dt)
        assert np.abs(s_new.v - s_old.v).max() < 1e-12
        assert np.abs(s_new.h - s_old.h).max() < 1e-12

    def test_operator_helpers_match_reference(self, geom):
        new = ShallowWaterSolver(geom)
        old = ReferenceShallowWaterSolver(geom)
        rng = np.random.default_rng(7)
        s = rng.standard_normal(geom.xyz.shape[:3])
        v = rng.standard_normal(geom.xyz.shape)
        assert np.abs(new.gradient(s) - old.gradient(s)).max() < 1e-12
        assert np.abs(new.divergence(v) - old.divergence(v)).max() < 1e-12
        assert (
            np.abs(new.advect_scalar(v, s) - old.advect_scalar(v, s)).max()
            < 1e-12
        )
        assert (
            np.abs(new.project_tangent(v) - old.project_tangent(v)).max()
            < 1e-13
        )

    def test_stable_dt_rejects_negative_depth(self, geom):
        solver = ShallowWaterSolver(geom)
        state = williamson_tc2(geom)
        state.h[0, 0, 0] = -1.0
        with pytest.raises(ValueError, match="negative"):
            solver.stable_dt(state)

    def test_stable_dt_matches_precomputed_scale(self, geom):
        """Hoisted metric scale gives the same dt as before the PR."""
        solver = ShallowWaterSolver(geom)
        state = williamson_tc2(geom)
        dt = solver.stable_dt(state, cfl=0.4)
        assert 0 < dt < np.inf
        # Doubling CFL doubles dt (pure scale factor).
        assert np.isclose(solver.stable_dt(state, cfl=0.8), 2 * dt)


class TestCaches:
    def test_shared_dss_operator_memoized(self, geom):
        clear_dss_memo()
        op1 = shared_dss_operator(geom)
        op2 = shared_dss_operator(geom)
        assert op1 is op2
        stats = dss_memo_stats()
        assert stats["hits"] >= 1 and stats["misses"] >= 1

    def test_solvers_share_default_operator(self, geom):
        clear_dss_memo()
        a = ShallowWaterSolver(geom)
        b = ShallowWaterSolver(geom)
        assert a.dss is b.dss

    def test_memo_rejects_stale_geometry(self, geom):
        """Same (ne, npts) but a different geometry object rebuilds."""
        clear_dss_memo()
        op1 = shared_dss_operator(geom)
        from repro.seam.element import _build_grid_geometry

        rebuilt = _build_grid_geometry(geom.mesh.ne, geom.npts)
        op2 = shared_dss_operator(rebuilt)
        assert op2 is not op1
        assert op2.geom is rebuilt

    def test_geometry_cache_counts_hits(self, geom):
        before = geometry_cache_stats()
        build_geometry(geom.mesh.ne, geom.npts)  # already cached
        after = geometry_cache_stats()
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]
        assert any(
            k["ne"] == geom.mesh.ne and k["npts"] == geom.npts
            for k in after["keys"]
        )
