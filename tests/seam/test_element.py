"""Unit tests for spectral-element geometry on the cubed-sphere."""

from __future__ import annotations

import numpy as np
import pytest

from repro.seam.element import build_geometry
from repro.seam.transport import solid_body_wind


@pytest.fixture(scope="module")
def geom():
    return build_geometry(3, 5)


class TestGeometry:
    def test_total_area_is_sphere(self, geom):
        # Quadrature of the (non-polynomial) Jacobian: not exact, but
        # already tight at np=5 ...
        assert geom.total_area() == pytest.approx(4 * np.pi, rel=1e-5)
        # ... and spectrally convergent in np.
        err5 = abs(geom.total_area() - 4 * np.pi)
        err8 = abs(build_geometry(3, 8).total_area() - 4 * np.pi)
        assert err8 < err5 / 10

    def test_points_on_unit_sphere(self, geom):
        for e in geom.elements:
            np.testing.assert_allclose(
                np.linalg.norm(e.xyz, axis=-1), 1.0, atol=1e-14
            )

    def test_basis_tangent_to_sphere(self, geom):
        for e in geom.elements[:10]:
            assert np.abs(np.einsum("ijk,ijk->ij", e.xyz, e.basis_a)).max() < 1e-13
            assert np.abs(np.einsum("ijk,ijk->ij", e.xyz, e.basis_b)).max() < 1e-13

    def test_jacobian_positive(self, geom):
        for e in geom.elements:
            assert (e.jac > 0).all()

    def test_metric_inverse_correct(self, geom):
        e = geom.elements[7]
        g11 = np.einsum("ijk,ijk->ij", e.basis_a, e.basis_a)
        g12 = np.einsum("ijk,ijk->ij", e.basis_a, e.basis_b)
        g22 = np.einsum("ijk,ijk->ij", e.basis_b, e.basis_b)
        g = np.empty(g11.shape + (2, 2))
        g[..., 0, 0] = g11
        g[..., 0, 1] = g12
        g[..., 1, 0] = g12
        g[..., 1, 1] = g22
        prod = np.einsum("ijab,ijbc->ijac", g, e.ginv)
        np.testing.assert_allclose(prod[..., 0, 0], 1.0, atol=1e-12)
        np.testing.assert_allclose(prod[..., 0, 1], 0.0, atol=1e-12)

    def test_jacobian_matches_quadrature_of_element_area(self, geom):
        """Per-element quadrature areas agree with the mesh's exact
        spherical-quad areas."""
        w = geom.basis.weights
        w2 = w[:, None] * w[None, :]
        quad_areas = np.array([(e.jac * w2).sum() for e in geom.elements])
        exact = geom.mesh.element_areas()
        np.testing.assert_allclose(quad_areas, exact, rtol=1e-7)


class TestContravariantWind:
    def test_reconstruction_roundtrip(self, geom):
        """u = u^1 e_1 + u^2 e_2 must reconstruct the tangent field."""
        e = geom.elements[11]
        u = solid_body_wind(e.xyz, np.array([0.3, -0.5, 0.8]), omega=1.0)
        contra = e.contravariant_wind(u)
        recon = (
            contra[..., 0, None] * e.basis_a + contra[..., 1, None] * e.basis_b
        )
        np.testing.assert_allclose(recon, u, atol=1e-12)

    def test_zero_wind(self, geom):
        e = geom.elements[0]
        contra = e.contravariant_wind(np.zeros_like(e.xyz))
        np.testing.assert_allclose(contra, 0.0)


class TestBuildGeometry:
    def test_cached(self):
        assert build_geometry(2, 4) is build_geometry(2, 4)

    def test_npts_property(self, geom):
        assert geom.npts == 5

    def test_element_count(self, geom):
        assert len(geom.elements) == 54
