"""Unit tests for error norms and conservation diagnostics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.seam import DSSOperator, build_geometry, conservation_drift, error_norms


@pytest.fixture(scope="module")
def dss():
    return DSSOperator(build_geometry(2, 4))


class TestErrorNorms:
    def test_zero_error(self, dss):
        q = np.ones(dss.local_mass.shape)
        norms = error_norms(dss, q, q)
        assert norms.l1 == norms.l2 == norms.linf == 0.0

    def test_constant_offset(self, dss):
        ref = np.ones(dss.local_mass.shape)
        q = ref + 0.1
        norms = error_norms(dss, q, ref)
        assert norms.l1 == pytest.approx(0.1, rel=1e-12)
        assert norms.l2 == pytest.approx(0.1, rel=1e-12)
        assert norms.linf == pytest.approx(0.1, rel=1e-12)

    def test_norm_ordering(self, dss, rng):
        ref = 1.0 + 0.1 * rng.standard_normal(dss.local_mass.shape)
        q = ref + 0.05 * rng.standard_normal(ref.shape)
        norms = error_norms(dss, q, ref)
        # For normalized norms of a rough error field: l1 <= l2 <= linf
        # is typical (Cauchy-Schwarz on the probability measure).
        assert norms.l1 <= norms.l2 * 1.001
        assert norms.l2 <= norms.linf * 1.001

    def test_shape_mismatch(self, dss):
        with pytest.raises(ValueError, match="same shape"):
            error_norms(
                dss,
                np.ones(dss.local_mass.shape),
                np.ones((1, 2, 2)),
            )

    def test_zero_reference_rejected(self, dss):
        z = np.zeros(dss.local_mass.shape)
        with pytest.raises(ValueError, match="nonzero"):
            error_norms(dss, z, z)

    def test_as_row(self, dss):
        q = np.ones(dss.local_mass.shape)
        row = error_norms(dss, q + 1e-3, q).as_row()
        assert len(row) == 3
        assert all("e-" in s for s in row)


class TestConservationDrift:
    def test_no_drift(self, dss):
        q = np.full(dss.local_mass.shape, 2.0)
        assert conservation_drift(dss, q, q) == 0.0

    def test_relative_drift(self, dss):
        q0 = np.ones(dss.local_mass.shape)
        q1 = 1.01 * q0
        assert conservation_drift(dss, q0, q1) == pytest.approx(0.01, rel=1e-10)

    def test_zero_initial_rejected(self, dss):
        z = np.zeros(dss.local_mass.shape)
        with pytest.raises(ValueError, match="zero"):
            conservation_drift(dss, z, z)
