"""Unit tests for the nonlinear shallow-water solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.seam import build_geometry
from repro.seam.shallow_water import ShallowWaterSolver, SWState, williamson_tc2


@pytest.fixture(scope="module")
def geom():
    return build_geometry(3, 6)


@pytest.fixture(scope="module")
def solver(geom):
    return ShallowWaterSolver(geom)


class TestOperators:
    def test_gradient_of_linear_height_field(self, solver):
        """grad(z) on the unit sphere is the tangent projection of z."""
        z = solver.rhat[..., 2]
        grad = solver.gradient(z)
        expect = solver.project_tangent(
            np.broadcast_to([0.0, 0.0, 1.0], solver.rhat.shape)
        )
        np.testing.assert_allclose(grad, expect, atol=1e-4)
        # Spectral convergence: one more order cuts the error sharply.
        s8 = ShallowWaterSolver(build_geometry(3, 8))
        g8 = s8.gradient(s8.rhat[..., 2])
        e8 = s8.project_tangent(
            np.broadcast_to([0.0, 0.0, 1.0], s8.rhat.shape)
        )
        assert np.abs(g8 - e8).max() < np.abs(grad - expect).max() / 10

    def test_gradient_of_constant_is_zero(self, solver):
        c = np.ones(solver.jac.shape)
        np.testing.assert_allclose(solver.gradient(c), 0.0, atol=1e-11)

    def test_divergence_of_rotational_field_is_zero(self, solver):
        """Solid-body rotation is divergence-free."""
        v = np.cross(np.broadcast_to([0.0, 0.0, 1.0], solver.rhat.shape), solver.rhat)
        div = solver.divergence(v)
        assert np.abs(div).max() < 1e-3

    def test_divergence_theorem(self, solver):
        """Integral of div(v) over the closed sphere vanishes."""
        rng = np.random.default_rng(0)
        # A smooth tangent field: gradient of a random low-order
        # spherical polynomial.
        x, y, z = (solver.rhat[..., i] for i in range(3))
        s = 0.3 * x * y + 0.2 * z**2 - 0.1 * x
        v = solver.gradient(s)
        total = solver.dss.integrate(solver.divergence(v))
        assert abs(total) < 1e-8
        del rng

    def test_advect_scalar_matches_gradient_dot(self, solver):
        x, y, z = (solver.rhat[..., i] for i in range(3))
        s = x * z
        v = np.cross(np.broadcast_to([0.0, 0.0, 1.0], solver.rhat.shape), solver.rhat)
        a = solver.advect_scalar(v, s)
        b = np.einsum("...k,...k->...", v, solver.gradient(s))
        np.testing.assert_allclose(a, b, atol=1e-9)

    def test_project_tangent(self, solver):
        v = np.ones(solver.rhat.shape)
        t = solver.project_tangent(v)
        assert np.abs(np.einsum("...k,...k->...", t, solver.rhat)).max() < 1e-13


class TestWilliamsonTC2:
    def test_initial_state_valid(self, geom):
        state = williamson_tc2(geom)
        assert (state.h > 0).all()
        # Velocity tangent to the sphere.
        rhat = np.stack([e.xyz for e in geom.elements])
        assert np.abs(np.einsum("...k,...k->...", state.v, rhat)).max() < 1e-14

    def test_depth_guard(self, geom):
        with pytest.raises(ValueError, match="h0 too small"):
            williamson_tc2(geom, u0=2.0, h0=0.5)

    def test_geostrophic_balance_is_discrete_steady_state(self, solver, geom):
        """The TC2 RHS must be ~zero pointwise (discretization error)."""
        state = williamson_tc2(geom)
        rhs = solver.rhs(state)
        assert np.abs(rhs.h).max() < 1e-3
        assert np.abs(rhs.v).max() < 1e-3

    def test_remains_steady_under_integration(self, geom):
        solver = ShallowWaterSolver(geom)
        state0 = williamson_tc2(geom)
        state = solver.run(state0, t_end=0.5, cfl=0.4)
        assert np.abs(state.h - state0.h).max() < 1e-4
        assert np.abs(state.v - state0.v).max() < 1e-3

    def test_mass_conserved(self, geom):
        solver = ShallowWaterSolver(geom)
        state0 = williamson_tc2(geom)
        m0 = solver.total_mass(state0)
        state = solver.run(state0, t_end=0.3, cfl=0.4)
        assert solver.total_mass(state) == pytest.approx(m0, rel=1e-12)

    def test_energy_nearly_conserved(self, geom):
        solver = ShallowWaterSolver(geom)
        state0 = williamson_tc2(geom)
        e0 = solver.total_energy(state0)
        state = solver.run(state0, t_end=0.3, cfl=0.4)
        assert solver.total_energy(state) == pytest.approx(e0, rel=1e-8)


class TestDynamics:
    def test_gravity_wave_from_height_bump(self, geom):
        """A height perturbation at rest must radiate (h changes) while
        conserving mass."""
        from repro.seam.transport import cosine_bell

        solver = ShallowWaterSolver(geom, omega=0.0)
        rhat = np.stack([e.xyz for e in geom.elements])
        h = 1.0 + 0.01 * cosine_bell(rhat, np.array([1.0, 0, 0]), radius=0.8)
        state0 = SWState(v=np.zeros_like(rhat), h=h)
        m0 = solver.total_mass(state0)
        state = solver.run(state0, t_end=0.3, cfl=0.3)
        assert np.abs(state.v).max() > 1e-4  # flow developed
        assert solver.total_mass(state) == pytest.approx(m0, rel=1e-12)

    def test_stable_dt_decreases_with_gravity(self, geom):
        state = williamson_tc2(geom)
        lo = ShallowWaterSolver(geom, gravity=1.0).stable_dt(state)
        hi_state = williamson_tc2(geom, gravity=4.0)
        hi = ShallowWaterSolver(geom, gravity=4.0).stable_dt(hi_state)
        assert hi < lo

    def test_rest_state_stays_at_rest(self, geom):
        solver = ShallowWaterSolver(geom, omega=1.0)
        rhat = np.stack([e.xyz for e in geom.elements])
        state0 = SWState(v=np.zeros_like(rhat), h=np.ones(solver.jac.shape))
        state = solver.run(state0, t_end=0.2, cfl=0.4)
        assert np.abs(state.v).max() < 1e-10
        assert np.abs(state.h - 1.0).max() < 1e-10
