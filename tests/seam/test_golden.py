"""Golden tests for the vectorized halo-schedule construction.

``tests/golden/halo_golden.json`` holds exchange schedules produced by
the pre-kernelization quadratic Python scan; the vectorized
``build_halo_schedule`` must reproduce every (src, dst) -> count entry
exactly, for an SFC partition and for both METIS families.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cubesphere import cubed_sphere_mesh
from repro.graphs import mesh_graph
from repro.metis import part_graph
from repro.partition import sfc_partition
from repro.seam import build_geometry, build_point_map
from repro.seam.dss import build_halo_schedule, exchange_schedule

GOLDEN = json.loads(
    (Path(__file__).parent.parent / "golden" / "halo_golden.json").read_text()
)


@pytest.fixture(scope="module")
def point_map():
    return build_point_map(build_geometry(4, 4))


def _partition(label):
    if label == "sfc7":
        return sfc_partition(4, 7)
    mesh4 = mesh_graph(cubed_sphere_mesh(4))
    if label == "kway13":
        return part_graph(mesh4, 13, "kway", seed=0)
    return part_graph(mesh4, 5, "rb", seed=1)


@pytest.mark.parametrize("label", ["sfc7", "kway13", "rb5"])
def test_halo_schedule_matches_golden(point_map, label):
    sched = build_halo_schedule(point_map, _partition(label))
    got = {f"{a},{b}": int(c) for (a, b), c in sched.items()}
    assert got == GOLDEN[label]


def test_exchange_schedule_alias(point_map):
    assert exchange_schedule is build_halo_schedule
