"""Unit tests for GLL quadrature and spectral differentiation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.seam.gll import gll_basis, legendre_and_derivative


class TestLegendre:
    def test_low_degrees(self):
        x = np.linspace(-1, 1, 7)
        p0, d0 = legendre_and_derivative(0, x)
        np.testing.assert_allclose(p0, 1.0)
        np.testing.assert_allclose(d0, 0.0)
        p1, d1 = legendre_and_derivative(1, x)
        np.testing.assert_allclose(p1, x)
        np.testing.assert_allclose(d1, 1.0)
        p2, _ = legendre_and_derivative(2, x)
        np.testing.assert_allclose(p2, 1.5 * x**2 - 0.5)

    def test_endpoint_values(self):
        for n in range(1, 10):
            p, dp = legendre_and_derivative(n, np.array([1.0, -1.0]))
            assert p[0] == pytest.approx(1.0)
            assert p[1] == pytest.approx((-1.0) ** n)
            assert dp[0] == pytest.approx(n * (n + 1) / 2)

    def test_matches_numpy_legendre(self):
        x = np.linspace(-0.99, 0.99, 11)
        for n in (3, 5, 8):
            p, dp = legendre_and_derivative(n, x)
            ref = np.polynomial.legendre.Legendre.basis(n)
            np.testing.assert_allclose(p, ref(x), atol=1e-12)
            np.testing.assert_allclose(dp, ref.deriv()(x), atol=1e-10)


class TestGLLBasis:
    @pytest.mark.parametrize("npts", [2, 3, 4, 5, 8, 12, 16])
    def test_quadrature_exactness(self, npts):
        """GLL with npts points integrates degree 2*npts-3 exactly."""
        b = gll_basis(npts)
        for deg in range(2 * npts - 2):
            exact = 0.0 if deg % 2 else 2.0 / (deg + 1)
            assert (b.weights * b.nodes**deg).sum() == pytest.approx(
                exact, abs=1e-12
            )

    @pytest.mark.parametrize("npts", [2, 4, 8, 12])
    def test_differentiation_exact_on_polynomials(self, npts):
        b = gll_basis(npts)
        for k in range(npts):
            d = b.diff @ (b.nodes**k)
            expect = k * b.nodes ** (k - 1) if k else np.zeros(npts)
            np.testing.assert_allclose(d, expect, atol=1e-9)

    def test_nodes_symmetric_and_sorted(self):
        b = gll_basis(8)
        np.testing.assert_allclose(b.nodes, -b.nodes[::-1], atol=1e-15)
        assert (np.diff(b.nodes) > 0).all()
        assert b.nodes[0] == -1.0 and b.nodes[-1] == 1.0

    def test_weights_positive_and_sum_to_two(self):
        b = gll_basis(9)
        assert (b.weights > 0).all()
        assert b.weights.sum() == pytest.approx(2.0)

    def test_seam_configuration(self):
        """SEAM's np=8 nodes match published values."""
        b = gll_basis(8)
        # Interior nodes are the roots of P7'; spot-check the largest.
        assert b.nodes[6] == pytest.approx(0.8717401485096066, abs=1e-12)

    def test_derivative_annihilates_constants(self):
        b = gll_basis(6)
        np.testing.assert_allclose(b.diff @ np.ones(6), 0.0, atol=1e-12)

    def test_cached(self):
        assert gll_basis(8) is gll_basis(8)

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            gll_basis(1)

    def test_arrays_readonly(self):
        b = gll_basis(4)
        with pytest.raises(ValueError):
            b.nodes[0] = 0.0
