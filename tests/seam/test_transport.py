"""Unit tests for the spectral-element transport solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.seam.element import build_geometry
from repro.seam.transport import (
    TransportSolver,
    advect,
    cosine_bell,
    rotate_about_axis,
    solid_body_wind,
)

Z = np.array([0.0, 0.0, 1.0])
X = np.array([1.0, 0.0, 0.0])


@pytest.fixture(scope="module")
def geom():
    return build_geometry(3, 6)


def element_xyz(geom):
    return np.stack([e.xyz for e in geom.elements])


class TestFields:
    def test_solid_body_wind_tangent(self, geom):
        xyz = element_xyz(geom)
        u = solid_body_wind(xyz, Z, omega=2.0)
        assert np.abs(np.einsum("...k,...k->...", u, xyz)).max() < 1e-14

    def test_solid_body_speed(self):
        # At the equator of the rotation axis, |u| = omega.
        p = np.array([[1.0, 0.0, 0.0]])
        u = solid_body_wind(p, Z, omega=3.0)
        assert np.linalg.norm(u[0]) == pytest.approx(3.0)

    def test_cosine_bell_range_and_support(self, geom):
        xyz = element_xyz(geom)
        q = cosine_bell(xyz, X, radius=0.5)
        assert q.min() >= 0.0
        # The GLL grid need not sample the exact peak; it must get close.
        assert 0.8 < q.max() <= 1.0
        far = xyz[..., 0] < 0  # opposite hemisphere
        assert np.abs(q[far]).max() == 0.0

    def test_rotate_about_axis(self):
        p = np.array([[1.0, 0.0, 0.0]])
        out = rotate_about_axis(p, Z, np.pi / 2)
        np.testing.assert_allclose(out, [[0.0, 1.0, 0.0]], atol=1e-15)

    def test_rotation_inverse(self, rng):
        p = rng.standard_normal((20, 3))
        p /= np.linalg.norm(p, axis=1, keepdims=True)
        axis = np.array([0.2, 0.5, -0.8])
        back = rotate_about_axis(rotate_about_axis(p, axis, 1.1), axis, -1.1)
        np.testing.assert_allclose(back, p, atol=1e-13)


class TestSolver:
    def test_zero_wind_is_identity(self, geom):
        xyz = element_xyz(geom)
        solver = TransportSolver(geom, np.zeros_like(xyz))
        q0 = cosine_bell(xyz, X)
        q = solver.step(solver.dss.apply(q0), dt=0.1)
        np.testing.assert_allclose(q, solver.dss.apply(q0), atol=1e-13)

    def test_stable_dt_positive_and_scales(self, geom):
        xyz = element_xyz(geom)
        s1 = TransportSolver(geom, solid_body_wind(xyz, Z, 1.0))
        s2 = TransportSolver(geom, solid_body_wind(xyz, Z, 2.0))
        assert 0 < s2.stable_dt() < s1.stable_dt()

    def test_zero_wind_infinite_dt(self, geom):
        xyz = element_xyz(geom)
        solver = TransportSolver(geom, np.zeros_like(xyz))
        assert solver.stable_dt() == np.inf

    def test_mass_conservation(self, geom):
        xyz = element_xyz(geom)
        wind = solid_body_wind(xyz, Z, 1.0)
        solver = TransportSolver(geom, wind)
        q0 = solver.dss.apply(cosine_bell(xyz, X))
        mass0 = solver.dss.integrate(q0)
        q = q0
        dt = solver.stable_dt(0.5)
        for _ in range(10):
            q = solver.step(q, dt)
        assert solver.dss.integrate(q) == pytest.approx(mass0, rel=1e-10)

    def test_solution_stays_continuous(self, geom):
        xyz = element_xyz(geom)
        solver = TransportSolver(geom, solid_body_wind(xyz, Z, 1.0))
        q = solver.run(cosine_bell(xyz, X), t_end=0.3)
        assert solver.dss.is_continuous(q, atol=1e-10)

    def test_rhs_eval_counter(self, geom):
        xyz = element_xyz(geom)
        solver = TransportSolver(geom, solid_body_wind(xyz, Z, 1.0))
        q = solver.dss.apply(cosine_bell(xyz, X))
        solver.step(q, 0.01)
        assert solver.rhs_evals == 3  # SSP RK3

    def test_wrong_wind_shape_rejected(self, geom):
        with pytest.raises(ValueError, match="shape"):
            TransportSolver(geom, np.zeros((2, 2, 2, 3)))


class TestAccuracy:
    def test_quarter_rotation_accuracy(self):
        geom = build_geometry(4, 8)
        xyz = element_xyz(geom)
        q0 = cosine_bell(xyz, X)
        q, departed = advect(geom, Z, np.pi / 2, q0, cfl=0.4)
        ref = cosine_bell(departed, X)
        rel_l2 = np.sqrt(((q - ref) ** 2).mean() / (ref**2).mean())
        assert rel_l2 < 0.03

    def test_spectral_convergence_in_np(self):
        """Error drops fast as GLL order increases (same elements)."""
        errs = []
        for npts in (4, 8):
            geom = build_geometry(3, npts)
            xyz = element_xyz(geom)
            q0 = cosine_bell(xyz, X, radius=0.8)
            q, departed = advect(geom, Z, 0.5, q0, cfl=0.3)
            ref = cosine_bell(departed, X, radius=0.8)
            errs.append(np.sqrt(((q - ref) ** 2).mean()))
        assert errs[1] < errs[0] / 3

    def test_oblique_axis_rotation(self):
        """Advection across cube edges and corners (oblique axis)."""
        geom = build_geometry(4, 8)
        xyz = element_xyz(geom)
        axis = np.array([1.0, 1.0, 1.0])
        q0 = cosine_bell(xyz, X)
        q, departed = advect(geom, axis, 0.8, q0, cfl=0.4)
        ref = cosine_bell(departed, X)
        rel_l2 = np.sqrt(((q - ref) ** 2).mean() / (ref**2).mean())
        assert rel_l2 < 0.05
