"""Unit tests for the simulated distributed (partitioned) execution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metis import part_graph
from repro.partition import Partition, sfc_partition
from repro.seam import (
    DSSOperator,
    PartitionedDSS,
    PartitionedTransportRun,
    TransportSolver,
    build_geometry,
    cosine_bell,
    solid_body_wind,
)

Z = np.array([0.0, 0.0, 1.0])
X = np.array([1.0, 0.0, 0.0])


@pytest.fixture(scope="module")
def geom():
    return build_geometry(3, 5)


@pytest.fixture(scope="module")
def partition():
    return sfc_partition(3, 6)


class TestPartitionedDSS:
    def test_equals_serial_dss(self, geom, partition, rng):
        serial = DSSOperator(geom)
        parallel = PartitionedDSS(geom, partition)
        q = rng.standard_normal(serial.local_mass.shape)
        np.testing.assert_allclose(
            parallel.apply(q), serial.apply(q), atol=1e-12
        )

    def test_equals_serial_for_metis_partition(self, geom, rng):
        from repro.graphs import mesh_graph

        g = mesh_graph(geom.mesh)
        part = part_graph(g, 9, "kway", seed=0)
        serial = DSSOperator(geom)
        parallel = PartitionedDSS(geom, part)
        q = rng.standard_normal(serial.local_mass.shape)
        np.testing.assert_allclose(
            parallel.apply(q), serial.apply(q), atol=1e-12
        )

    def test_result_continuous(self, geom, partition, rng):
        parallel = PartitionedDSS(geom, partition)
        q = rng.standard_normal(parallel.local_mass.shape)
        assert parallel.is_continuous(parallel.apply(q))

    def test_single_rank_no_messages(self, geom, rng):
        p = Partition(np.zeros(geom.mesh.nelem, dtype=np.int64), nparts=1)
        parallel = PartitionedDSS(geom, p)
        q = rng.standard_normal(parallel.local_mass.shape)
        parallel.apply(q)
        assert parallel.accounting.messages == 0
        assert parallel.accounting.values == 0
        assert parallel.accounting.exchanges == 1

    def test_accounting_counts_per_exchange(self, geom, partition, rng):
        parallel = PartitionedDSS(geom, partition)
        q = rng.standard_normal(parallel.local_mass.shape)
        parallel.apply(q)
        after_one = parallel.accounting.values
        parallel.apply(q)
        assert parallel.accounting.values == 2 * after_one
        assert parallel.accounting.exchanges == 2

    def test_accounting_matches_exchange_schedule(self, geom, partition, rng):
        from repro.seam import build_point_map, exchange_schedule

        parallel = PartitionedDSS(geom, partition)
        q = rng.standard_normal(parallel.local_mass.shape)
        parallel.apply(q)
        sched = exchange_schedule(build_point_map(geom), partition)
        assert parallel.accounting.values == sum(sched.values())
        assert parallel.accounting.messages == len(sched)

    def test_per_rank_sent_sums_to_total(self, geom, partition, rng):
        parallel = PartitionedDSS(geom, partition)
        q = rng.standard_normal(parallel.local_mass.shape)
        parallel.apply(q)
        assert parallel.accounting.per_rank_sent.sum() == parallel.accounting.values

    def test_bytes_moved(self, geom, partition, rng):
        parallel = PartitionedDSS(geom, partition)
        q = rng.standard_normal(parallel.local_mass.shape)
        parallel.apply(q)
        assert parallel.accounting.bytes_moved(8) == 8 * parallel.accounting.values

    def test_mismatched_partition_rejected(self, geom):
        with pytest.raises(ValueError, match="does not match"):
            PartitionedDSS(geom, sfc_partition(2, 4))


class TestPartitionedTransport:
    def test_matches_serial_solver(self, geom):
        xyz = np.stack([e.xyz for e in geom.elements])
        wind = solid_body_wind(xyz, Z, 1.0)
        q0 = cosine_bell(xyz, X)
        serial = TransportSolver(geom, wind).run(q0, t_end=0.15, cfl=0.4)
        par = PartitionedTransportRun(geom, wind, sfc_partition(3, 9))
        parallel = par.run(q0, t_end=0.15, cfl=0.4)
        np.testing.assert_allclose(parallel, serial, atol=1e-12)

    def test_messages_scale_with_steps(self, geom):
        xyz = np.stack([e.xyz for e in geom.elements])
        wind = solid_body_wind(xyz, Z, 1.0)
        q0 = cosine_bell(xyz, X)
        run = PartitionedTransportRun(geom, wind, sfc_partition(3, 6))
        dt = run.stable_dt(0.4)
        q = run.pdss.apply(q0)
        base = run.accounting.exchanges
        run.step(q, dt)
        # One RK3 step = 3 DSS applications.
        assert run.accounting.exchanges == base + 3

    def test_more_ranks_more_traffic(self, geom):
        xyz = np.stack([e.xyz for e in geom.elements])
        wind = solid_body_wind(xyz, Z, 1.0)
        q0 = cosine_bell(xyz, X)
        totals = []
        for nparts in (2, 6, 18):
            run = PartitionedTransportRun(geom, wind, sfc_partition(3, nparts))
            run.run(q0, t_end=0.05, cfl=0.4)
            totals.append(
                run.accounting.values / max(run.accounting.exchanges, 1)
            )
        assert totals[0] < totals[1] < totals[2]
