"""Unit tests for direct stiffness summation and exchange schedules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.partition.sfc import sfc_partition
from repro.seam.dss import DSSOperator, build_point_map, exchange_schedule
from repro.seam.element import build_geometry


@pytest.fixture(scope="module")
def geom():
    return build_geometry(4, 6)


@pytest.fixture(scope="module")
def pmap(geom):
    return build_point_map(geom)


@pytest.fixture(scope="module")
def dss(geom, pmap):
    return DSSOperator(geom, pmap)


class TestPointMap:
    def test_multiplicities(self, geom, pmap):
        """1 interior, 2 edge-interior, 3 at cube corners, 4 at mesh
        corners — the counts are fully determined by ne and np."""
        ne, npts = geom.mesh.ne, geom.npts
        nelem = geom.mesh.nelem
        hist = dict(zip(*map(list, np.unique(pmap.multiplicity, return_counts=True))))
        interior = nelem * (npts - 2) ** 2
        edge_interior = (npts - 2) * 2 * nelem  # 2*nelem mesh edges
        corner4 = 6 * ne * ne + 2 - 8
        assert hist[1] == interior
        assert hist[2] == edge_interior
        assert hist[3] == 8
        assert hist[4] == corner4

    def test_total_points(self, geom, pmap):
        assert pmap.point_ids.max() == pmap.npoints - 1
        assert pmap.multiplicity.sum() == geom.mesh.nelem * geom.npts**2

    def test_boundary_mask(self, geom, pmap):
        mask = pmap.boundary_mask()
        # Exactly the perimeter points of each element are shared.
        per_elem = mask.reshape(geom.mesh.nelem, -1).sum(axis=1)
        assert (per_elem == 4 * geom.npts - 4).all()


class TestDSS:
    def test_projection_is_continuous(self, dss, rng):
        q = rng.standard_normal(dss.local_mass.shape)
        qc = dss.apply(q)
        assert dss.is_continuous(qc)

    def test_idempotent(self, dss, rng):
        q = rng.standard_normal(dss.local_mass.shape)
        qc = dss.apply(q)
        np.testing.assert_allclose(dss.apply(qc), qc, atol=1e-13)

    def test_preserves_continuous_fields(self, dss, geom):
        """A globally smooth function sampled at GLL points is already
        continuous, so DSS must not change it."""
        xyz = np.stack([e.xyz for e in geom.elements])
        q = xyz[..., 2] ** 2  # smooth on the sphere
        np.testing.assert_allclose(dss.apply(q), q, atol=1e-12)

    def test_conserves_integral(self, dss, rng):
        q = rng.standard_normal(dss.local_mass.shape)
        assert dss.integrate(dss.apply(q)) == pytest.approx(dss.integrate(q))

    def test_integrate_constant_gives_area(self, dss):
        ones = np.ones(dss.local_mass.shape)
        assert dss.integrate(ones) == pytest.approx(4 * np.pi, rel=1e-10)

    def test_interior_points_untouched(self, dss, rng, pmap):
        q = rng.standard_normal(dss.local_mass.shape)
        qc = dss.apply(q)
        interior = ~pmap.boundary_mask()
        np.testing.assert_allclose(qc[interior], q[interior], atol=1e-14)

    def test_is_continuous_detects_discontinuity(self, dss, rng):
        q = rng.standard_normal(dss.local_mass.shape)
        assert not dss.is_continuous(q)


class TestExchangeSchedule:
    def test_symmetric_pairs(self, pmap):
        p = sfc_partition(4, 8)
        sched = exchange_schedule(pmap, p)
        for (a, b), n in sched.items():
            assert sched[(b, a)] == n  # DSS exchanges are symmetric

    def test_no_self_messages(self, pmap):
        sched = exchange_schedule(pmap, sfc_partition(4, 8))
        assert all(a != b for a, b in sched)

    def test_single_part_empty_schedule(self, pmap):
        sched = exchange_schedule(pmap, sfc_partition(4, 1))
        assert sched == {}

    def test_counts_scale_with_npts(self):
        """More GLL points per edge -> more exchanged values."""
        p = sfc_partition(4, 8)
        small = exchange_schedule(build_point_map(build_geometry(4, 4)), p)
        large = exchange_schedule(build_point_map(build_geometry(4, 8)), p)
        assert sum(large.values()) > sum(small.values())

    def test_size_mismatch_rejected(self, pmap):
        with pytest.raises(ValueError, match="does not match"):
            exchange_schedule(pmap, sfc_partition(2, 4))

    def test_matches_graph_comm_pattern_shape(self, pmap, graph4):
        """The graph-model communication pairs must be exactly the
        point-level exchange pairs (the graph is a faithful proxy)."""
        from repro.partition.metrics import communication_pattern

        p = sfc_partition(4, 12)
        sched = exchange_schedule(pmap, p)
        comm = communication_pattern(graph4, p)
        assert set(sched) == set(comm.pair_points)
