"""Unit tests for the SEAM cost model."""

from __future__ import annotations

import pytest

from repro.seam.cost import DEFAULT_COST_MODEL, SEAMCostModel


class TestFlops:
    def test_rhs_flops_formula(self):
        m = SEAMCostModel(npts=8, nlev=1, nvars=1, seam_complexity=1.0, pointwise_ops=0)
        # Two derivative contractions of 2*8^3 each.
        assert m.flops_per_rhs_per_element() == 4 * 512

    def test_scales_linearly_with_levels_and_vars(self):
        base = SEAMCostModel(nlev=1, nvars=1)
        assert SEAMCostModel(nlev=5, nvars=1).flops_per_rhs_per_element() == (
            5 * base.flops_per_rhs_per_element()
        )
        assert SEAMCostModel(nlev=1, nvars=4).flops_per_rhs_per_element() == (
            4 * base.flops_per_rhs_per_element()
        )

    def test_step_includes_rk_stages(self):
        m = DEFAULT_COST_MODEL
        assert m.flops_per_step_per_element() > (
            m.rk_stages * m.flops_per_rhs_per_element()
        )

    def test_step_flops_scales_with_elements(self):
        m = DEFAULT_COST_MODEL
        assert m.step_flops(384) == pytest.approx(384 * m.flops_per_step_per_element())

    def test_complexity_multiplier(self):
        lo = SEAMCostModel(seam_complexity=1.0)
        hi = SEAMCostModel(seam_complexity=4.0)
        assert hi.flops_per_rhs_per_element() == 4 * lo.flops_per_rhs_per_element()


class TestBytes:
    def test_bytes_per_point(self):
        m = SEAMCostModel(nlev=20, nvars=3, bytes_per_value=8)
        assert m.bytes_per_point() == 480

    def test_default_exchanges_match_rk(self):
        assert DEFAULT_COST_MODEL.exchanges_per_step() == 3

    def test_default_matches_seam(self):
        assert DEFAULT_COST_MODEL.npts == 8
        assert DEFAULT_COST_MODEL.nvars == 3
