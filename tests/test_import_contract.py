"""Layering contract: service and partition never import experiments.

The registry + pipeline refactor inverted the old experiments→service
dependency; the experiments package is the *top* layer (figure/table
drivers) and nothing below it may reach back up.  This test walks the
AST of every module in the lower layers so the contract cannot rot
silently (CI additionally greps for the same thing).
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

import repro

SRC = Path(repro.__file__).resolve().parent
FORBIDDEN_PACKAGE = "experiments"
LOWER_LAYERS = ("service", "partition")


def _violations(source: str, depth: int) -> list[str]:
    """Imports of repro.experiments (absolute or relative) in ``source``.

    ``depth`` is how many packages below ``repro`` the module lives
    (``repro/service/x.py`` is 1 deep, so ``from ..experiments ...``
    has level 2 and lands back inside ``repro``).
    """
    found = []
    for node in ast.walk(ast.parse(source)):
        if isinstance(node, ast.Import):
            for alias in node.names:
                parts = alias.name.split(".")
                if parts[0] == "repro" and FORBIDDEN_PACKAGE in parts:
                    found.append(f"line {node.lineno}: import {alias.name}")
        elif isinstance(node, ast.ImportFrom):
            module_parts = node.module.split(".") if node.module else []
            lands_in_repro = (
                (node.level == 0 and module_parts[:1] == ["repro"])
                or node.level >= depth
            )
            if lands_in_repro and (
                FORBIDDEN_PACKAGE in module_parts
                or any(a.name == FORBIDDEN_PACKAGE for a in node.names)
            ):
                dots = "." * node.level
                names = ", ".join(a.name for a in node.names)
                found.append(
                    f"line {node.lineno}: from {dots}{node.module or ''} "
                    f"import {names}"
                )
    return found


def _lower_layer_modules():
    for layer in LOWER_LAYERS:
        for path in sorted((SRC / layer).rglob("*.py")):
            yield pytest.param(path, id=str(path.relative_to(SRC)))


@pytest.mark.parametrize("path", _lower_layer_modules())
def test_no_experiments_imports(path):
    depth = len(path.relative_to(SRC).parts) - 1
    violations = _violations(path.read_text(), depth)
    assert not violations, (
        f"{path.relative_to(SRC.parent)} imports the experiments package "
        f"(layering violation): {violations}"
    )


def test_contract_scans_something():
    assert len(list(_lower_layer_modules())) >= 10


@pytest.mark.parametrize(
    "source",
    [
        "import repro.experiments.figures",
        "import repro.experiments",
        "from repro.experiments import figures",
        "from repro.experiments.figures import make_partition",
        "from ..experiments.figures import make_partition",
        "from ..experiments import figures",
        "from .. import experiments",
    ],
)
def test_detector_catches_violations(source):
    """The AST walker flags every spelling a violation could take."""
    assert _violations(source, depth=1), f"detector missed {source!r}"


@pytest.mark.parametrize(
    "source",
    [
        "from ..partition import registry",
        "from . import requests",
        "import numpy as np",
        "from repro.report import format_table",
        # A *local* sibling named like the forbidden package at a level
        # that stays inside the layer is not a layering violation.
        "from .experiments_helpers import x",
    ],
)
def test_detector_allows_clean_imports(source):
    assert not _violations(source, depth=1)
