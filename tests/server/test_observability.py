"""Observability end-to-end: trace propagation, debug endpoints, logs.

Each test runs a real server on an ephemeral port.  The trace
continuity test is also executed with the C kernels disabled
(``REPRO_NO_CKERNELS=1``) in a subprocess, mirroring the kernel-parity
suite: request identity must survive both compute paths.
"""

from __future__ import annotations

import asyncio
import json
import os
import subprocess
import sys

from repro.server import Connection, PartitionServer, fetch
from repro.service import PartitionEngine, PartitionRequest
from repro.telemetry import (
    RequestContext,
    add_sink,
    read_log,
    remove_sink,
    telemetry_session,
)

TRACE = "ab" * 16
PARENT = "cd" * 8


def run(coro, timeout: float = 60.0):
    return asyncio.run(asyncio.wait_for(coro, timeout))


class TestRequestIdentity:
    def test_every_response_carries_identity_headers(self):
        async def inner():
            async with PartitionServer(PartitionEngine()) as server:
                host, port = server.address
                resp = await fetch(host, port, "GET", "/healthz")
                rid = resp.headers["x-request-id"]
                assert len(rid) == 16
                tp = resp.headers["traceparent"]
                version, trace_id, span_id, flags = tp.split("-")
                assert (version, flags) == ("00", "01")
                assert span_id == rid
                assert len(trace_id) == 32

        run(inner())

    def test_traceparent_header_continues_callers_trace(self):
        async def inner():
            async with PartitionServer(PartitionEngine()) as server:
                host, port = server.address
                async with await Connection.open(host, port) as conn:
                    resp = await conn.request(
                        "POST",
                        "/partition",
                        json.dumps({"ne": 2, "nparts": 4}).encode(),
                        headers={"traceparent": f"00-{TRACE}-{PARENT}-01"},
                    )
                    assert resp.status == 200
                    assert resp.headers["traceparent"].split("-")[1] == TRACE
                    data = resp.json()
                    assert data["trace_id"] == TRACE
                    assert data["request_id"] == resp.headers["x-request-id"]
                    # This hop got its own span id, not the caller's.
                    assert data["request_id"] != PARENT

        run(inner())

    def test_malformed_traceparent_starts_a_fresh_trace(self):
        async def inner():
            async with PartitionServer(PartitionEngine()) as server:
                host, port = server.address
                async with await Connection.open(host, port) as conn:
                    resp = await conn.request(
                        "POST",
                        "/partition",
                        json.dumps({"ne": 2, "nparts": 4}).encode(),
                        headers={"traceparent": "00-garbage-01"},
                    )
                    assert resp.status == 200
                    trace_id = resp.json()["trace_id"]
                    assert len(trace_id) == 32
                    assert trace_id != "0" * 32

        run(inner())

    def test_error_responses_carry_identity_too(self):
        async def inner():
            async with PartitionServer(PartitionEngine()) as server:
                host, port = server.address
                resp = await fetch(host, port, "GET", "/nope")
                assert resp.status == 404
                assert "x-request-id" in resp.headers
                # The 404 hints at the known routes, /debug/* included.
                message = resp.json()["error"]["message"]
                assert "/debug/vars" in message

        run(inner())


class TestDebugEndpoints:
    def test_debug_vars_reports_live_internals(self):
        async def inner():
            async with PartitionServer(PartitionEngine()) as server:
                host, port = server.address
                await fetch(
                    host, port, "POST", "/partition",
                    json.dumps({"ne": 2, "nparts": 4}).encode(),
                )
                data = (await fetch(host, port, "GET", "/debug/vars")).json()
                assert data["schema"] == 1
                assert data["build"]["pid"] == os.getpid()
                assert data["build"]["version"]
                assert data["uptime_s"] >= 0
                assert data["server"]["closing"] is False
                assert data["engine"]["requests"] >= 1
                assert "hit_rate" in data["cache"]
                assert "hits" in data["geometry_cache"]
                assert "hits" in data["dss_memo"]
                assert data["slo"]["status"] == "ok"
                assert data["coalescing"]["inflight"] == 0

        run(inner())

    def test_debug_requests_ring_buffer(self):
        async def inner():
            async with PartitionServer(PartitionEngine()) as server:
                host, port = server.address
                async with await Connection.open(host, port) as conn:
                    resp = await conn.post_json(
                        "/partition", {"ne": 2, "nparts": 4}
                    )
                    rid = resp.headers["x-request-id"]
                    await conn.request("GET", "/healthz")
                    data = (
                        await conn.request("GET", "/debug/requests")
                    ).json()
                    assert data["capacity"] >= len(data["requests"])
                    by_id = {r["request_id"]: r for r in data["requests"]}
                    entry = by_id[rid]
                    assert entry["path"] == "/partition"
                    assert entry["status"] == 200
                    assert entry["source"] == "computed"
                    assert entry["ms"] > 0
                    assert len(entry["trace_id"]) == 32

                    last = (
                        await conn.request("GET", "/debug/requests?n=1")
                    ).json()
                    assert len(last["requests"]) == 1

                    bad = await conn.request("GET", "/debug/requests?n=zero")
                    assert bad.status == 400

        run(inner())

    def test_debug_profile_returns_collapsed_stacks(self):
        async def inner():
            async with PartitionServer(PartitionEngine()) as server:
                host, port = server.address
                resp = await fetch(
                    host, port, "GET", "/debug/profile?seconds=0.05"
                )
                assert resp.status == 200
                assert resp.headers["content-type"].startswith("text/plain")
                assert int(resp.headers["x-profile-samples"]) >= 1
                for line in resp.body.decode().splitlines():
                    path, _, count = line.rpartition(" ")
                    assert path and int(count) > 0

        run(inner())

    def test_debug_profile_validates_seconds(self):
        async def inner():
            async with PartitionServer(PartitionEngine()) as server:
                host, port = server.address
                for query in ("seconds=0", "seconds=-1", "seconds=1e9",
                              "seconds=junk"):
                    resp = await fetch(
                        host, port, "GET", f"/debug/profile?{query}"
                    )
                    assert resp.status == 400, query

        run(inner())

    def test_debug_routes_reject_post(self):
        async def inner():
            async with PartitionServer(PartitionEngine()) as server:
                host, port = server.address
                resp = await fetch(
                    host, port, "POST", "/debug/vars", b"{}"
                )
                assert resp.status == 405

        run(inner())


class TestHealthzSLO:
    def test_healthz_carries_the_slo_verdict(self):
        async def inner():
            async with PartitionServer(PartitionEngine()) as server:
                host, port = server.address
                await fetch(host, port, "GET", "/healthz")
                health = (await fetch(host, port, "GET", "/healthz")).json()
                assert health["status"] == "ok"
                slo = health["slo"]
                assert slo["status"] == "ok"
                assert [w["seconds"] for w in slo["windows"]] == [60, 300]
                assert slo["lifetime"]["count"] >= 1
                assert slo["objectives"]["burn_threshold"] > 0

        run(inner())


class TestAccessLog:
    def test_one_access_record_per_request(self, tmp_path):
        log_path = tmp_path / "access.jsonl"

        async def inner():
            async with PartitionServer(PartitionEngine()) as server:
                host, port = server.address
                async with await Connection.open(host, port) as conn:
                    first = await conn.post_json(
                        "/partition", {"ne": 2, "nparts": 4}
                    )
                    again = await conn.post_json(
                        "/partition", {"ne": 2, "nparts": 4}
                    )
                    missing = await conn.request("GET", "/nope")
            return first, again, missing

        sink = add_sink(log_path, events={"access"})
        try:
            first, again, missing = run(inner())
        finally:
            remove_sink(sink)
        records = read_log(log_path)
        by_id = {r["request_id"]: r for r in records if "request_id" in r}
        assert all(r["event"] == "access" for r in records)

        computed = by_id[first.headers["x-request-id"]]
        assert computed["method"] == "POST"
        assert computed["path"] == "/partition"
        assert computed["status"] == 200
        assert computed["source"] == "computed"
        assert computed["ms"] > 0
        assert computed["trace_id"] == first.json()["trace_id"]

        assert by_id[again.headers["x-request-id"]]["source"] == "memory"
        assert by_id[missing.headers["x-request-id"]]["status"] == 404


class TestTraceContinuity:
    def test_one_trace_covers_server_engine_and_worker(self):
        """Computed path: worker-process spans share the request trace."""
        with telemetry_session(command="test") as session:
            async def inner():
                async with PartitionServer(PartitionEngine()) as server:
                    host, port = server.address
                    async with await Connection.open(host, port) as conn:
                        resp = await conn.request(
                            "POST",
                            "/partition",
                            json.dumps({"ne": 2, "nparts": 4}).encode(),
                            headers={
                                "traceparent": f"00-{TRACE}-{PARENT}-01"
                            },
                        )
                        assert resp.status == 200
                        assert resp.json()["trace_id"] == TRACE

                        # Cache-hit path under a second, distinct trace.
                        other = RequestContext.new()
                        hit = await conn.request(
                            "POST",
                            "/partition",
                            json.dumps({"ne": 2, "nparts": 4}).encode(),
                            headers={"traceparent": other.traceparent()},
                        )
                        assert hit.json()["source"] == "memory"
                        assert hit.json()["trace_id"] == other.trace_id
                        return other.trace_id

            hit_trace = run(inner())

        spans = session.tracer.spans
        traced = [s for s in spans if s.args.get("trace_id") == TRACE]
        names = {s.name for s in traced}
        assert "request" in names  # server accept/dispatch
        assert "compute" in names  # engine pipeline entry
        worker_spans = [s for s in traced if "worker_pid" in s.args]
        assert worker_spans, "no worker-process span joined the trace"
        assert all(s.args["worker_pid"] != os.getpid() for s in worker_spans)

        # The cache-hit request produced its own (worker-free) trace.
        hit_spans = [s for s in spans if s.args.get("trace_id") == hit_trace]
        assert {s.name for s in hit_spans} == {"request"}

    def test_trace_continuity_without_ckernels(self):
        """The same continuity holds on the pure-NumPy kernel path."""
        script = (
            "import sys; sys.argv = ['pytest']\n"
            "from tests.server.test_observability import TestTraceContinuity\n"
            "TestTraceContinuity()"
            ".test_one_trace_covers_server_engine_and_worker()\n"
            "print('CONTINUITY-OK')\n"
        )
        env = dict(os.environ)
        env["REPRO_NO_CKERNELS"] = "1"
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert "CONTINUITY-OK" in proc.stdout
