"""End-to-end tests for the ``POST /repartition`` service verb.

Every test runs a real server on an ephemeral port and checks that the
repartition path carries the full serving contract — plan parity with
the in-process planner, coalescing, the plan LRU, validation-as-422,
metrics families, and trace propagation — exactly like ``/partition``.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np

from repro.partition import plan_repartition, sfc_partition
from repro.scenarios import scenario_weights
from repro.server import Connection, PartitionServer, fetch
from repro.service import PartitionEngine, RepartitionRequest
from repro.telemetry import telemetry_session

NE = 4
K = 6 * NE * NE
TRACE = "ab" * 16
PARENT = "cd" * 8


def run(coro, timeout: float = 60.0):
    return asyncio.run(asyncio.wait_for(coro, timeout))


def storm_request(step: int = 3, nparts: int = 12) -> RepartitionRequest:
    return RepartitionRequest(
        ne=NE,
        old_assignment=sfc_partition(NE, nparts).assignment,
        weights={"scenario": "storm", "step": step},
        nparts=nparts,
    )


class TestPlanParity:
    def test_http_plan_matches_direct_planner(self):
        """The wire answer is the same plan plan_repartition computes."""
        rreq = storm_request()
        direct = plan_repartition(
            rreq.old_assignment,
            scenario_weights("storm", NE, 3),
            ne=NE,
            nparts=12,
        )

        async def inner():
            async with PartitionServer(PartitionEngine()) as server:
                host, port = server.address
                async with await Connection.open(host, port) as conn:
                    resp = await conn.repartition(rreq)
                    assert resp.status == 200
                    return resp.json()

        data = run(inner())
        assert data["schema"] == 1
        assert data["source"] == "computed"
        plan = data["plan"]
        assert plan["method"] == "sfc-rebal"
        assert plan["nparts"] == 12
        assert plan["assignment"] == direct.new_assignment.tolist()
        assert plan["elements_moved"] == direct.elements_moved
        assert plan["lb_before"] == direct.lb_before
        assert plan["lb_after"] == direct.lb_after
        assert {int(r): g for r, g in plan["moves"].items()} == {
            r: g.tolist() for r, g in direct.moves.items()
        }

    def test_wire_dict_accepted_directly(self):
        """A raw JSON body (no client-side dataclass) works too."""
        body = {
            "ne": NE,
            "old_assignment": (np.arange(K) % 8).tolist(),
            "weights": np.full(K, 2.0).tolist(),
        }

        async def inner():
            async with PartitionServer(PartitionEngine()) as server:
                host, port = server.address
                async with await Connection.open(host, port) as conn:
                    resp = await conn.post_json("/repartition", body)
                    assert resp.status == 200
                    return resp.json()

        data = run(inner())
        assert data["plan"]["nparts"] == 8  # inferred from old_assignment


class TestCachingAndCoalescing:
    def test_repeat_served_from_plan_lru(self):
        async def inner():
            async with PartitionServer(PartitionEngine()) as server:
                host, port = server.address
                async with await Connection.open(host, port) as conn:
                    first = (await conn.repartition(storm_request())).json()
                    second = (await conn.repartition(storm_request())).json()
            assert first["source"] == "computed"
            assert second["source"] == "memory"
            assert second["plan"] == first["plan"]

        run(inner())

    def test_different_steps_not_conflated(self):
        async def inner():
            async with PartitionServer(PartitionEngine()) as server:
                host, port = server.address
                async with await Connection.open(host, port) as conn:
                    a = (await conn.repartition(storm_request(step=1))).json()
                    b = (await conn.repartition(storm_request(step=50))).json()
            assert a["source"] == b["source"] == "computed"
            assert a["plan"]["assignment"] != b["plan"]["assignment"]

        run(inner())

    def test_concurrent_identical_requests_coalesce(self):
        """Concurrent duplicates share one compute: exactly one
        ``computed`` answer, the rest ``coalesced``/``memory``."""

        async def inner():
            async with PartitionServer(PartitionEngine()) as server:
                host, port = server.address

                async def one():
                    async with await Connection.open(host, port) as conn:
                        return (await conn.repartition(storm_request())).json()

                results = await asyncio.gather(*(one() for _ in range(6)))
            sources = [r["source"] for r in results]
            assert sources.count("computed") == 1
            assert set(sources) <= {"computed", "coalesced", "memory"}
            plans = {json.dumps(r["plan"], sort_keys=True) for r in results}
            assert len(plans) == 1  # every caller got the same plan

        run(inner())


class TestValidation:
    async def _post(self, body: dict) -> tuple[int, dict]:
        async with PartitionServer(PartitionEngine()) as server:
            host, port = server.address
            async with await Connection.open(host, port) as conn:
                resp = await conn.post_json("/repartition", body)
                return resp.status, resp.json()

    def test_negative_weights_422(self):
        w = np.ones(K)
        w[7] = -2.0
        status, data = run(self._post({
            "ne": NE,
            "old_assignment": [0] * K,
            "weights": w.tolist(),
        }))
        assert status == 422
        assert data["error"]["code"] == "invalid_request"
        assert "positive; entry 7" in data["error"]["message"]

    def test_nan_weights_422(self):
        status, data = run(self._post({
            "ne": NE,
            "old_assignment": [0] * K,
            "weights": ["nan"] + [1.0] * (K - 1),
        }))
        assert status == 422
        assert "finite" in data["error"]["message"]

    def test_wrong_length_weights_422(self):
        status, data = run(self._post({
            "ne": NE,
            "old_assignment": [0] * K,
            "weights": [1.0, 2.0],
        }))
        assert status == 422
        assert f"expected {K}, got 2" in data["error"]["message"]

    def test_unknown_scenario_422_with_hint(self):
        status, data = run(self._post({
            "ne": NE,
            "old_assignment": [0] * K,
            "weights": {"scenario": "strom"},
        }))
        assert status == 422
        assert "did you mean 'storm'" in data["error"]["message"]

    def test_missing_weights_422(self):
        status, data = run(self._post({"ne": NE, "old_assignment": [0] * K}))
        assert status == 422
        assert "weights" in data["error"]["message"]

    def test_unweighted_method_422_names_weighted_ones(self):
        status, data = run(self._post({
            "ne": NE,
            "old_assignment": [0] * K,
            "weights": [1.0] * K,
            "method": "block",
        }))
        assert status == 422
        assert "does not support per-element weights" in data["error"]["message"]
        assert "sfc" in data["error"]["message"]

    def test_non_object_body_400(self):
        status, data = run(self._post([1, 2, 3]))
        assert status == 400
        assert data["error"]["code"] == "bad_json"

    def test_404_hint_lists_repartition(self):
        async def inner():
            async with PartitionServer(PartitionEngine()) as server:
                host, port = server.address
                resp = await fetch(host, port, "GET", "/nope")
                assert resp.status == 404
                assert "/repartition" in resp.json()["error"]["message"]

        run(inner())


class TestObservability:
    def test_identity_headers_and_trace_continuation(self):
        async def inner():
            async with PartitionServer(PartitionEngine()) as server:
                host, port = server.address
                async with await Connection.open(host, port) as conn:
                    resp = await conn.request(
                        "POST",
                        "/repartition",
                        json.dumps(storm_request().to_wire()).encode(),
                        headers={
                            "Content-Type": "application/json",
                            "traceparent": f"00-{TRACE}-{PARENT}-01",
                        },
                    )
                    assert resp.status == 200
                    assert resp.headers["traceparent"].split("-")[1] == TRACE
                    data = resp.json()
                    assert data["trace_id"] == TRACE
                    assert data["request_id"] == resp.headers["x-request-id"]
                    assert data["request_id"] != PARENT

        run(inner())

    def test_metrics_families_recorded(self):
        async def inner():
            async with PartitionServer(PartitionEngine()) as server:
                host, port = server.address
                async with await Connection.open(host, port) as conn:
                    await conn.repartition(storm_request())
                    await conn.repartition(storm_request())  # LRU hit
                    text = (await conn.request("GET", "/metrics")).body.decode()
            assert 'server_repartition_total{' in text
            assert 'source="computed"' in text
            assert 'source="memory"' in text
            assert "server_repartition_cache_hits 1" in text
            assert "repartition_lb_after_count" in text
            assert "repartition_fraction_moved_count" in text

        run(inner())

    def test_engine_stats_count_repartitions(self):
        """RepartitionResponses flow through the shared ServiceStats."""
        with telemetry_session():
            async def inner():
                engine = PartitionEngine()
                async with PartitionServer(engine) as server:
                    host, port = server.address
                    async with await Connection.open(host, port) as conn:
                        await conn.repartition(storm_request())
                    return engine.stats.total_requests

            assert run(inner()) == 1

    def test_debug_requests_ring_sees_repartition(self):
        async def inner():
            async with PartitionServer(PartitionEngine()) as server:
                host, port = server.address
                async with await Connection.open(host, port) as conn:
                    await conn.repartition(storm_request())
                    ring = (await conn.request(
                        "GET", "/debug/requests"
                    )).json()["requests"]
            entries = [r for r in ring if r["path"] == "/repartition"]
            assert entries and entries[-1]["status"] == 200
            assert entries[-1]["source"] == "computed"

        run(inner())

    def test_methods_lists_scenarios(self):
        async def inner():
            async with PartitionServer(PartitionEngine()) as server:
                host, port = server.address
                resp = await fetch(host, port, "GET", "/methods")
                return resp.json()

        data = run(inner())
        names = {s["name"] for s in data["scenarios"]}
        assert {"storm", "daynight", "amr"} <= names
        storm = next(s for s in data["scenarios"] if s["name"] == "storm")
        assert "amplitude" in storm["params"]
