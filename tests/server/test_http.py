"""Unit tests for the minimal HTTP/1.1 framing layer."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.server.http import (
    HTTPError,
    error_body,
    read_request,
    render_response,
)


def parse(data: bytes):
    """Run read_request over a pre-fed stream."""

    async def inner():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(inner())


class TestReadRequest:
    def test_get(self):
        req = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        assert req.method == "GET"
        assert req.path == "/healthz"
        assert req.headers["host"] == "x"
        assert req.body == b""
        assert req.keep_alive

    def test_post_with_body(self):
        body = b'{"ne": 4, "nparts": 8}'
        req = parse(
            b"POST /partition HTTP/1.1\r\nContent-Length: "
            + str(len(body)).encode()
            + b"\r\n\r\n"
            + body
        )
        assert req.method == "POST"
        assert req.body == body

    def test_query_string_stripped(self):
        req = parse(b"GET /metrics?format=prom HTTP/1.1\r\n\r\n")
        assert req.path == "/metrics"

    def test_connection_close(self):
        req = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert not req.keep_alive

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_bad_request_line(self):
        with pytest.raises(HTTPError) as err:
            parse(b"NOT A REQUEST\r\n\r\n")
        assert err.value.status == 400

    def test_bad_version(self):
        with pytest.raises(HTTPError) as err:
            parse(b"GET / HTTP/2.0\r\n\r\n")
        assert err.value.status == 400

    def test_post_without_length(self):
        with pytest.raises(HTTPError) as err:
            parse(b"POST /partition HTTP/1.1\r\n\r\n")
        assert err.value.status == 411

    def test_chunked_rejected(self):
        with pytest.raises(HTTPError) as err:
            parse(
                b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
            )
        assert err.value.status == 501

    def test_oversized_body_rejected(self):
        with pytest.raises(HTTPError) as err:
            parse(b"POST / HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n")
        assert err.value.status == 413

    def test_truncated_body(self):
        with pytest.raises(HTTPError) as err:
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")
        assert err.value.status == 400

    def test_malformed_header(self):
        with pytest.raises(HTTPError) as err:
            parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n")
        assert err.value.status == 400


class TestRenderResponse:
    def test_roundtrip_fields(self):
        raw = render_response(200, b'{"ok": 1}', headers={"Retry-After": "1"})
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Length: 9" in head
        assert b"Retry-After: 1" in head
        assert b"Connection: keep-alive" in head
        assert body == b'{"ok": 1}'

    def test_close_header(self):
        raw = render_response(503, b"{}", keep_alive=False)
        assert b"Connection: close" in raw

    def test_error_body_structure(self):
        exc = HTTPError(503, "overloaded", "busy", {"Retry-After": "2"})
        data = json.loads(error_body(exc))
        assert data["error"] == {
            "status": 503,
            "code": "overloaded",
            "message": "busy",
        }
