"""End-to-end asyncio tests for the partition server.

Every test spawns a real server on an ephemeral port and drives it
through the async client.  A deliberately slow stub partitioner
(registered for the test, inherited by forked pool workers) makes the
concurrency behavior — coalescing, admission control, draining,
disconnect handling — deterministic without large meshes.
"""

from __future__ import annotations

import asyncio
import json
import time

import numpy as np
import pytest

from repro.partition.base import Partition
from repro.partition.registry import Partitioner, register, unregister
from repro.server import Connection, PartitionServer, fetch
from repro.service import PartitionEngine, PartitionRequest

SLOW_S = 0.6  # stub compute time: long enough to overlap requests under


def run(coro, timeout: float = 60.0):
    """Run one test coroutine with a safety timeout."""
    return asyncio.run(asyncio.wait_for(coro, timeout))


def _slow_build(problem) -> Partition:
    time.sleep(SLOW_S)
    assignment = np.arange(problem.k, dtype=np.int64) % problem.nparts
    return Partition(assignment, nparts=problem.nparts, method="slowstub")


@pytest.fixture()
def slowstub():
    """A partitioner that takes SLOW_S seconds, visible to forked workers."""
    register(
        Partitioner(
            name="slowstub",
            build=_slow_build,
            description="deliberately slow test stub",
            family="test",
        )
    )
    yield "slowstub"
    unregister("slowstub")


async def wait_for_inflight(host: str, port: int, value: int, timeout: float = 10.0):
    """Poll /healthz until the in-flight compute count reaches ``value``."""
    deadline = asyncio.get_running_loop().time() + timeout
    while True:
        health = (await fetch(host, port, "GET", "/healthz")).json()
        if health["inflight"] == value:
            return health
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError(f"inflight never reached {value}: {health}")
        await asyncio.sleep(0.05)


class TestRoutes:
    def test_partition_healthz_methods_metrics(self):
        async def inner():
            async with PartitionServer(PartitionEngine()) as server:
                host, port = server.address
                async with await Connection.open(host, port) as conn:
                    resp = await conn.post_json(
                        "/partition", {"ne": 2, "nparts": 4}
                    )
                    assert resp.status == 200
                    data = resp.json()
                    assert data["source"] == "computed"
                    assert len(data["assignment"]) == 24
                    assert "lb_nelemd" in data["metrics"]

                    again = await conn.post_json(
                        "/partition", {"ne": 2, "nparts": 4}
                    )
                    assert again.json()["source"] == "memory"
                    assert again.json()["assignment"] == data["assignment"]

                    health = (await conn.request("GET", "/healthz")).json()
                    assert health["status"] == "ok"
                    assert health["inflight"] == 0

                    methods = (await conn.request("GET", "/methods")).json()
                    names = [m["name"] for m in methods["methods"]]
                    assert "sfc" in names and "rb" in names

                    metrics = await conn.request("GET", "/metrics")
                    assert metrics.status == 200
                    assert metrics.headers["content-type"].startswith("text/plain")
                    text = metrics.body.decode()
                    assert 'server_requests_total{partitioner="sfc",status="200"} 2' in text
                    assert "server_request_seconds_count" in text
                    assert "service_requests_total" in text

        run(inner())

    def test_batch_mixed_valid_and_invalid(self):
        async def inner():
            async with PartitionServer(PartitionEngine()) as server:
                resp = await (
                    await Connection.open(*server.address)
                ).post_json(
                    "/batch",
                    {
                        "requests": [
                            {"ne": 2, "nparts": 4},
                            {"ne": 2, "nparts": 4},
                            {"ne": 2, "nparts": 999},
                        ]
                    },
                )
                assert resp.status == 200
                items = resp.json()["responses"]
                assert len(items) == 3
                assert items[0]["source"] in ("computed", "coalesced", "memory")
                assert items[1]["source"] in ("computed", "coalesced", "memory")
                assert items[0]["assignment"] == items[1]["assignment"]
                assert items[2]["error"]["status"] == 422

        run(inner())

    def test_unknown_route_and_method(self):
        async def inner():
            async with PartitionServer(PartitionEngine()) as server:
                host, port = server.address
                assert (await fetch(host, port, "GET", "/nope")).status == 404
                assert (await fetch(host, port, "GET", "/partition")).status == 405

        run(inner())


class TestValidationErrors:
    def test_malformed_json_is_400_with_structured_body(self):
        async def inner():
            async with PartitionServer(PartitionEngine()) as server:
                conn = await Connection.open(*server.address)
                resp = await conn.request(
                    "POST", "/partition", b"this is not json"
                )
                assert resp.status == 400
                error = resp.json()["error"]
                assert error["status"] == 400
                assert error["code"] == "bad_json"
                await conn.close()

        run(inner())

    def test_unknown_method_is_422_with_did_you_mean(self):
        async def inner():
            async with PartitionServer(PartitionEngine()) as server:
                conn = await Connection.open(*server.address)
                resp = await conn.post_json(
                    "/partition", {"ne": 4, "nparts": 8, "method": "sffc"}
                )
                assert resp.status == 422
                message = resp.json()["error"]["message"]
                assert "did you mean 'sfc'" in message
                await conn.close()

        run(inner())

    def test_inadmissible_ne_and_capability_violation_are_422(self):
        async def inner():
            async with PartitionServer(PartitionEngine()) as server:
                conn = await Connection.open(*server.address)
                # sfc requires ne = 2^a 3^b: ne=5 is inadmissible.
                bad_ne = await conn.post_json(
                    "/partition", {"ne": 5, "nparts": 6, "method": "sfc"}
                )
                assert bad_ne.status == 422
                assert "admissible" in bad_ne.json()["error"]["message"]
                # rb takes no refinement schedule: capability violation.
                bad_cap = await conn.post_json(
                    "/partition",
                    {"ne": 4, "nparts": 8, "method": "rb", "schedule": "HH"},
                )
                assert bad_cap.status == 422
                assert "schedule" in bad_cap.json()["error"]["message"]
                await conn.close()

        run(inner())

    def test_morton_is_servable_but_discontinuity_is_422(self):
        async def inner():
            async with PartitionServer(PartitionEngine()) as server:
                conn = await Connection.open(*server.address)
                ok = await conn.post_json(
                    "/partition", {"ne": 4, "nparts": 8, "method": "morton"}
                )
                assert ok.status == 200
                assert ok.json()["request"]["method"] == "morton"
                # Z-order cannot chain faces: a schedule is meaningless.
                bad = await conn.post_json(
                    "/partition",
                    {"ne": 4, "nparts": 8, "method": "morton",
                     "schedule": "HH"},
                )
                assert bad.status == 422
                assert "discontinuous" in bad.json()["error"]["message"]
                # And ne must be a power of two for the bit interleave.
                bad_ne = await conn.post_json(
                    "/partition", {"ne": 12, "nparts": 8, "method": "morton"}
                )
                assert bad_ne.status == 422

                methods = (await conn.request("GET", "/methods")).json()
                by_name = {m["name"]: m for m in methods["methods"]}
                assert by_name["morton"]["continuous"] is False
                assert by_name["sfc"]["continuous"] is True
                await conn.close()

        run(inner())


class TestCoalescing:
    def test_concurrent_identical_requests_share_one_compute(self, slowstub):
        async def inner():
            engine = PartitionEngine()
            async with PartitionServer(engine) as server:
                host, port = server.address
                payload = {"ne": 2, "nparts": 4, "method": slowstub}

                async def one():
                    async with await Connection.open(host, port) as conn:
                        return (await conn.post_json("/partition", payload)).json()

                results = await asyncio.gather(*(one() for _ in range(5)))
                sources = sorted(r["source"] for r in results)
                assert sources == ["coalesced"] * 4 + ["computed"]
                assert all(
                    r["assignment"] == results[0]["assignment"] for r in results
                )
                metrics = (await fetch(host, port, "GET", "/metrics")).body.decode()
                assert "server_coalesced_total 4" in metrics
                # One compute for five requests.
                assert engine.stats.count("computed") == 1
                assert engine.stats.count("coalesced") == 4

        run(inner())


class TestAdmissionControl:
    def test_over_limit_distinct_requests_get_503_retry_after(self, slowstub):
        async def inner():
            async with PartitionServer(
                PartitionEngine(), max_pending=1
            ) as server:
                host, port = server.address
                conn_a = await Connection.open(host, port)
                task_a = asyncio.ensure_future(
                    conn_a.post_json(
                        "/partition", {"ne": 2, "nparts": 4, "method": slowstub}
                    )
                )
                await wait_for_inflight(host, port, 1)
                # Distinct request while the only pending slot is taken.
                conn_b = await Connection.open(host, port)
                resp_b = await conn_b.post_json(
                    "/partition", {"ne": 2, "nparts": 6, "method": slowstub}
                )
                assert resp_b.status == 503
                assert resp_b.headers["retry-after"] == "1"
                assert resp_b.json()["error"]["code"] == "overloaded"
                # A duplicate of the in-flight request is coalesced, not
                # rejected: it adds no work.
                conn_c = await Connection.open(host, port)
                resp_c = await conn_c.post_json(
                    "/partition", {"ne": 2, "nparts": 4, "method": slowstub}
                )
                assert resp_c.status == 200
                assert resp_c.json()["source"] == "coalesced"
                resp_a = await task_a
                assert resp_a.status == 200
                metrics = (await fetch(host, port, "GET", "/metrics")).body.decode()
                assert "server_rejected_total 1" in metrics
                for conn in (conn_a, conn_b, conn_c):
                    await conn.close()

        run(inner())


class TestRobustness:
    def test_client_disconnect_never_leaks_a_worker(self, slowstub):
        async def inner():
            async with PartitionServer(PartitionEngine()) as server:
                host, port = server.address
                conn = await Connection.open(host, port)
                body = json.dumps(
                    {"ne": 2, "nparts": 4, "method": slowstub}
                ).encode()
                conn._writer.write(
                    b"POST /partition HTTP/1.1\r\nContent-Length: "
                    + str(len(body)).encode()
                    + b"\r\n\r\n"
                    + body
                )
                await conn._writer.drain()
                await wait_for_inflight(host, port, 1)
                conn.abort()  # dead client: no response read, ever
                # The orphaned compute finishes and lands in the cache.
                await wait_for_inflight(host, port, 0)
                resp = await fetch(
                    host, port, "POST", "/partition", body
                )
                assert resp.status == 200
                assert resp.json()["source"] == "memory"

        run(inner())

    def test_request_timeout_returns_504_and_caches_compute(self, slowstub):
        async def inner():
            async with PartitionServer(
                PartitionEngine(), request_timeout=0.2
            ) as server:
                host, port = server.address
                body = json.dumps(
                    {"ne": 2, "nparts": 4, "method": slowstub}
                ).encode()
                resp = await fetch(host, port, "POST", "/partition", body)
                assert resp.status == 504
                assert resp.json()["error"]["code"] == "timeout"
                await wait_for_inflight(host, port, 0)
                resp = await fetch(host, port, "POST", "/partition", body)
                assert resp.status == 200
                assert resp.json()["source"] == "memory"

        run(inner())

    def test_oversized_header_closes_with_431(self):
        async def inner():
            async with PartitionServer(PartitionEngine()) as server:
                conn = await Connection.open(*server.address)
                conn._writer.write(
                    b"GET / HTTP/1.1\r\nX-Big: " + b"a" * 70000 + b"\r\n\r\n"
                )
                await conn._writer.drain()
                resp = await conn._read_response()
                assert resp.status == 431
                await conn.close()

        run(inner())


class TestGracefulShutdown:
    def test_shutdown_drains_inflight_requests(self, slowstub):
        async def inner():
            server = PartitionServer(PartitionEngine())
            await server.start()
            host, port = server.address
            conn = await Connection.open(host, port)
            pending = asyncio.ensure_future(
                conn.post_json(
                    "/partition", {"ne": 2, "nparts": 4, "method": slowstub}
                )
            )
            await wait_for_inflight(host, port, 1)
            await server.shutdown()  # must wait for the in-flight request
            resp = await pending
            assert resp.status == 200
            assert resp.json()["source"] == "computed"
            # The listener is gone: new connections are refused.
            with pytest.raises(OSError):
                await Connection.open(host, port)
            await conn.close()

        run(inner())

    def test_shutdown_is_idempotent(self):
        async def inner():
            server = PartitionServer(PartitionEngine())
            await server.start()
            await server.shutdown()
            await server.shutdown()

        run(inner())

    def test_start_with_closed_engine_is_a_clear_error(self):
        async def inner():
            engine = PartitionEngine()
            engine.close()
            server = PartitionServer(engine)
            with pytest.raises(RuntimeError, match="closed"):
                await server.start()

        run(inner())


class TestServerOwnedEngine:
    def test_default_engine_is_closed_on_shutdown(self):
        async def inner():
            server = PartitionServer()
            await server.start()
            resp = await fetch(
                *server.address, "POST", "/partition",
                json.dumps({"ne": 2, "nparts": 4}).encode(),
            )
            assert resp.status == 200
            engine = server.engine
            await server.shutdown()
            assert engine.closed

        run(inner())
