"""Unit tests for the partition service request/response schema."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.service import (
    METRIC_FIELDS,
    PartitionRequest,
    PartitionResponse,
    compute_response,
    load_request_file,
)


class TestPartitionRequest:
    def test_defaults(self):
        req = PartitionRequest(ne=4, nparts=8)
        assert req.method == "sfc"
        assert req.seed == 0
        assert req.schedule is None
        assert req.k == 96

    def test_validation(self):
        with pytest.raises(ValueError, match="ne must be"):
            PartitionRequest(ne=0, nparts=1)
        with pytest.raises(ValueError, match="nparts must be"):
            PartitionRequest(ne=4, nparts=0)
        with pytest.raises(ValueError, match="nparts must be"):
            PartitionRequest(ne=4, nparts=97)  # K = 96
        with pytest.raises(ValueError, match="unknown method"):
            PartitionRequest(ne=4, nparts=8, method="magic")
        with pytest.raises(ValueError, match="must be an integer"):
            PartitionRequest(ne=4.5, nparts=8)

    def test_numpy_ints_normalized(self):
        req = PartitionRequest(ne=np.int64(4), nparts=np.int32(8))
        assert isinstance(req.ne, int) and isinstance(req.nparts, int)
        assert req == PartitionRequest(ne=4, nparts=8)

    def test_cache_key_canonical(self):
        a = PartitionRequest(ne=4, nparts=8, method="sfc", seed=0)
        b = PartitionRequest(ne=np.int64(4), nparts=8)
        assert a.cache_key() == b.cache_key()
        assert len(a.cache_key()) == 64  # sha256 hex

    def test_cache_key_distinguishes_fields(self):
        base = PartitionRequest(ne=4, nparts=8)
        variants = [
            PartitionRequest(ne=8, nparts=8),
            PartitionRequest(ne=4, nparts=12),
            PartitionRequest(ne=4, nparts=8, method="rb"),
            PartitionRequest(ne=4, nparts=8, seed=1),
            PartitionRequest(ne=4, nparts=8, schedule="HH"),
        ]
        keys = {base.cache_key()} | {v.cache_key() for v in variants}
        assert len(keys) == 6

    def test_json_round_trip(self):
        req = PartitionRequest(ne=4, nparts=8, method="kway", seed=3)
        assert PartitionRequest.from_json(req.to_json()) == req

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown request fields"):
            PartitionRequest.from_dict({"ne": 4, "nparts": 8, "foo": 1})
        with pytest.raises(ValueError, match="at least"):
            PartitionRequest.from_dict({"ne": 4})


class TestPartitionResponse:
    def test_compute_response_has_full_metrics(self):
        resp = compute_response(PartitionRequest(ne=2, nparts=4))
        assert set(METRIC_FIELDS) <= set(resp.metrics)
        assert resp.source == "computed"
        assert resp.elapsed_s > 0
        assert resp.assignment.shape == (24,)

    def test_matches_direct_evaluation(self):
        from repro.partition.pipeline import partition_stage
        from repro.graphs import mesh_graph
        from repro.cubesphere import cubed_sphere_mesh
        from repro.partition import evaluate_partition
        from repro.seam import DEFAULT_COST_MODEL

        req = PartitionRequest(ne=4, nparts=12, method="rb")
        resp = compute_response(req)
        part = partition_stage("rb", 4, 12)
        assert np.array_equal(resp.assignment, part.assignment)
        graph = mesh_graph(
            cubed_sphere_mesh(4),
            edge_weight=DEFAULT_COST_MODEL.npts,
            corner_weight=1,
        )
        q = evaluate_partition(graph, part)
        assert resp.metrics["edgecut"] == q.edgecut
        assert resp.metrics["lb_spcv"] == q.lb_spcv

    def test_validates_assignment(self):
        req = PartitionRequest(ne=2, nparts=4)
        good = compute_response(req)
        with pytest.raises(ValueError, match="shape"):
            PartitionResponse(req, good.assignment[:-1], good.metrics)
        bad = good.assignment.copy()
        bad[0] = 99
        with pytest.raises(ValueError, match="out-of-range"):
            PartitionResponse(req, bad, good.metrics)
        with pytest.raises(ValueError, match="metrics missing"):
            PartitionResponse(req, good.assignment, {"edgecut": 1})

    def test_json_round_trip(self):
        resp = compute_response(PartitionRequest(ne=2, nparts=6, seed=2))
        back = PartitionResponse.from_json(resp.to_json())
        assert back.request == resp.request
        assert np.array_equal(back.assignment, resp.assignment)
        assert back.metrics == resp.metrics

    def test_to_partition(self):
        resp = compute_response(PartitionRequest(ne=2, nparts=4, method="block"))
        part = resp.to_partition()
        part.validate()
        assert part.method == "block"
        assert part.nparts == 4


class TestLoadRequestFile:
    def test_json_list(self, tmp_path):
        path = tmp_path / "reqs.json"
        path.write_text(json.dumps([{"ne": 4, "nparts": 8}, {"ne": 4, "nparts": 12}]))
        reqs = load_request_file(path)
        assert [r.nparts for r in reqs] == [8, 12]

    def test_json_wrapper(self, tmp_path):
        path = tmp_path / "reqs.json"
        path.write_text(json.dumps({"requests": [{"ne": 2, "nparts": 4, "seed": 7}]}))
        (req,) = load_request_file(path)
        assert req.seed == 7

    def test_csv(self, tmp_path):
        path = tmp_path / "reqs.csv"
        path.write_text("ne,nparts,method,seed\n4,8,,\n4,12,rb,3\n")
        reqs = load_request_file(path)
        assert reqs[0] == PartitionRequest(ne=4, nparts=8)
        assert reqs[1] == PartitionRequest(ne=4, nparts=12, method="rb", seed=3)

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "reqs.json"
        path.write_text("[]")
        with pytest.raises(ValueError, match="no requests"):
            load_request_file(path)

    def test_non_list_rejected(self, tmp_path):
        path = tmp_path / "reqs.json"
        path.write_text('{"nope": 1}')
        with pytest.raises(ValueError, match="expected a JSON list"):
            load_request_file(path)
