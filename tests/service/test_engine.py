"""Engine tests: batching, dedup, parallelism, cache integration.

Includes the subsystem's acceptance check: a 20-request sweep batch is
bit-identical to serial in-process partitioning, and a second run
against a warm disk cache answers (almost) everything from cache.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.partition.pipeline import partition_stage
from repro.service import PartitionCache, PartitionEngine, PartitionRequest


def sweep_requests(ne: int = 4) -> list[PartitionRequest]:
    """A 20-point (method x nparts) sweep, the acceptance workload."""
    return [
        PartitionRequest(ne=ne, nparts=nparts, method=method)
        for method in ("sfc", "rb", "kway", "tv")
        for nparts in (4, 8, 12, 24, 48)
    ]


class TestEngineBasics:
    def test_serve_single(self):
        resp = PartitionEngine().serve(PartitionRequest(ne=2, nparts=4))
        assert resp.source == "computed"
        assert resp.to_partition().nparts == 4

    def test_jobs_validated(self):
        with pytest.raises(ValueError, match="jobs"):
            PartitionEngine(jobs=0)

    def test_empty_batch(self):
        assert PartitionEngine().run([]) == []

    def test_responses_align_with_requests(self):
        reqs = [PartitionRequest(ne=2, nparts=n) for n in (6, 2, 4)]
        responses = PartitionEngine().run(reqs)
        assert [r.request.nparts for r in responses] == [6, 2, 4]

    def test_batch_deduplicates(self):
        engine = PartitionEngine()
        req = PartitionRequest(ne=2, nparts=4)
        responses = engine.run([req, req, req])
        assert len(responses) == 3
        assert engine.cache.stores == 1  # computed once
        assert [r.source for r in responses] == ["computed", "dedup", "dedup"]
        assert engine.stats.count("computed") == 1  # no double-counted time
        assert all(
            np.array_equal(r.assignment, responses[0].assignment)
            for r in responses
        )

    def test_second_batch_hits_memory(self):
        engine = PartitionEngine()
        req = PartitionRequest(ne=2, nparts=4)
        engine.run([req])
        (resp,) = engine.run([req])
        assert resp.source == "memory"
        assert engine.stats.hit_rate == 0.5  # 1 of 2 served from cache


class TestAcceptance:
    """ISSUE acceptance criteria for the serving subsystem."""

    def test_batch_bit_identical_to_serial(self):
        """Parallel batched serving == serial `repro partition` calls."""
        reqs = sweep_requests()
        assert len(reqs) == 20
        engine = PartitionEngine(jobs=2)
        responses = engine.run(reqs)
        for req, resp in zip(reqs, responses):
            serial = partition_stage(req.method, req.ne, req.nparts, seed=req.seed)
            assert np.array_equal(resp.assignment, serial.assignment), req

    def test_warm_disk_cache_hit_rate(self, tmp_path):
        reqs = sweep_requests()
        cold = PartitionEngine(PartitionCache(cache_dir=tmp_path), jobs=2)
        cold_responses = cold.run(reqs)
        assert cold.stats.hit_rate == 0.0
        # Fresh engine + fresh memory tier: only the disk store is warm.
        warm = PartitionEngine(PartitionCache(cache_dir=tmp_path))
        warm_responses = warm.run(reqs)
        assert warm.stats.hit_rate >= 0.95
        assert warm.stats.count("computed") == 0
        for a, b in zip(cold_responses, warm_responses):
            assert np.array_equal(a.assignment, b.assignment)
            assert a.metrics == b.metrics


class TestParallelExecution:
    def test_parallel_matches_inline(self):
        reqs = [
            PartitionRequest(ne=2, nparts=nparts, method=method)
            for method in ("sfc", "rb")
            for nparts in (2, 4, 6, 12)
        ]
        inline = PartitionEngine(jobs=1).run(reqs)
        parallel = PartitionEngine(jobs=2).run(reqs)
        for a, b in zip(inline, parallel):
            assert np.array_equal(a.assignment, b.assignment)
            assert a.metrics == b.metrics

    def test_stats_track_workers(self):
        engine = PartitionEngine(jobs=2)
        engine.run([PartitionRequest(ne=2, nparts=n) for n in (2, 3, 4, 6)])
        stats = engine.stats
        assert stats.jobs == 2
        assert stats.count("computed") == 4
        assert stats.wall_s > 0
        assert stats.compute_s > 0
        assert 0 < stats.worker_utilization <= 1
        assert stats.throughput > 0


class TestLifecycle:
    def test_close_is_idempotent(self):
        engine = PartitionEngine()
        engine.run([PartitionRequest(ne=2, nparts=4)])
        assert not engine.closed
        engine.close()
        engine.close()
        assert engine.closed

    def test_run_after_close_is_a_clear_error(self):
        engine = PartitionEngine()
        engine.close()
        with pytest.raises(RuntimeError, match="closed"):
            engine.run([PartitionRequest(ne=2, nparts=4)])

    def test_executor_after_close_is_a_clear_error(self):
        engine = PartitionEngine()
        engine.close()
        with pytest.raises(RuntimeError, match="closed"):
            engine.executor()

    def test_context_manager_closes(self):
        with PartitionEngine() as engine:
            engine.run([PartitionRequest(ne=2, nparts=4)])
        assert engine.closed

    def test_executor_is_process_backed_even_at_jobs_1(self):
        with PartitionEngine(jobs=1) as engine:
            pool = engine.executor()
            assert pool is engine.executor()  # one pool, reused
            import os

            worker_pid = pool.submit(os.getpid).result()
            assert worker_pid != os.getpid()

    def test_warm_forks_all_workers_up_front(self):
        with PartitionEngine(jobs=2) as engine:
            assert engine.warm() == 2

    def test_concurrent_executor_calls_share_one_pool(self):
        import threading

        engine = PartitionEngine(jobs=2)
        pools = []
        barrier = threading.Barrier(4)

        def grab():
            barrier.wait()
            pools.append(engine.executor())

        threads = [threading.Thread(target=grab) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(map(id, pools))) == 1
        engine.close()
