"""Weights at the service boundary: schema, cache keys, engine serving."""

from __future__ import annotations

import numpy as np
import pytest

from repro.partition.registry import CapabilityError
from repro.service import (
    PartitionCache,
    PartitionEngine,
    PartitionRequest,
    RepartitionRequest,
    WeightSpec,
)
from repro.service.engine import compute_repartition_response, compute_response

NE = 2
K = 6 * NE * NE


def inline_request(values, **kw) -> PartitionRequest:
    return PartitionRequest(ne=NE, nparts=4, weights=values, **kw)


class TestWeightSpec:
    def test_exactly_one_form_required(self):
        with pytest.raises(ValueError, match="inline values or a named scenario"):
            WeightSpec()
        with pytest.raises(ValueError, match="inline values or a named scenario"):
            WeightSpec(scenario="storm", values=np.ones(4))

    def test_coerce_list_array_spec_equal(self):
        values = [1.0 + i for i in range(K)]
        a = WeightSpec.coerce(values)
        b = WeightSpec.coerce(np.asarray(values))
        c = WeightSpec.coerce({"inline": values})
        assert a == b == c
        assert hash(a) == hash(b) == hash(c)

    def test_inline_values_frozen(self):
        spec = WeightSpec.coerce(np.ones(K))
        with pytest.raises(ValueError, match="read-only"):
            spec.values[0] = 2.0

    def test_scenario_params_normalized_sorted(self):
        a = WeightSpec.coerce({"scenario": "storm", "params": {"sigma": 1, "amplitude": 2}})
        b = WeightSpec.coerce({"scenario": "storm", "params": {"amplitude": 2.0, "sigma": 1.0}})
        assert a == b and a.canonical() == b.canonical()

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            WeightSpec.coerce({"scenario": "blizzard"})

    def test_unknown_scenario_param_rejected(self):
        with pytest.raises(ValueError, match="does not accept parameters"):
            WeightSpec.coerce({"scenario": "storm", "params": {"wind": 3}})

    def test_unknown_wire_field_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario weight fields"):
            WeightSpec.coerce({"scenario": "storm", "steps": 2})

    def test_scenario_resolve_matches_generator(self):
        from repro.scenarios import scenario_weights

        spec = WeightSpec.coerce({"scenario": "daynight", "step": 9})
        np.testing.assert_array_equal(
            spec.resolve(NE), scenario_weights("daynight", NE, 9)
        )

    def test_inline_canonical_is_a_digest(self):
        spec = WeightSpec.coerce(np.ones(K) * 2.0)
        canon = spec.canonical()
        assert set(canon) == {"inline"}
        assert canon["inline"]["n"] == K
        assert len(canon["inline"]["sha256"]) == 64


class TestBoundaryValidation:
    """The 422 surface: every malformed weights payload fails with a
    clear ValueError at request construction, never mid-compute."""

    def test_negative_weight(self):
        bad = np.ones(K)
        bad[5] = -1.0
        with pytest.raises(ValueError, match="must be positive; entry 5"):
            inline_request(bad)

    def test_zero_weight(self):
        bad = np.ones(K)
        bad[0] = 0.0
        with pytest.raises(ValueError, match="must be positive"):
            inline_request(bad)

    def test_nan_weight(self):
        bad = np.ones(K)
        bad[3] = np.nan
        with pytest.raises(ValueError, match="must be finite; entry 3"):
            inline_request(bad)

    def test_inf_weight(self):
        bad = np.ones(K)
        bad[1] = np.inf
        with pytest.raises(ValueError, match="must be finite"):
            inline_request(bad)

    def test_wrong_length(self):
        with pytest.raises(ValueError, match=f"expected {K}, got 7"):
            inline_request(np.ones(7))

    def test_wrong_shape(self):
        with pytest.raises(ValueError, match="1-D"):
            inline_request(np.ones((6, 4)))

    def test_non_numeric(self):
        with pytest.raises(ValueError, match="weights must be"):
            inline_request("heavy")

    def test_unweighted_method_rejected_with_hint(self):
        """Methods without weight support fail the capability check and
        the message names the methods that do."""
        from repro.partition.registry import weighted_methods

        with pytest.raises(CapabilityError, match="does not support per-element"):
            PartitionRequest(ne=NE, nparts=4, method="block", weights=np.ones(K))
        with pytest.raises(CapabilityError) as err:
            PartitionRequest(ne=NE, nparts=4, method="block", weights=np.ones(K))
        for name in weighted_methods():
            assert name in str(err.value)


class TestCacheKeys:
    def test_weighted_never_collides_with_unweighted(self):
        """The golden digest test: an unweighted request and its
        weighted twin hash to different cache keys."""
        plain = PartitionRequest(ne=NE, nparts=4)
        weighted = inline_request(np.ones(K) * 2.0)
        assert plain.cache_key() != weighted.cache_key()

    def test_unweighted_canonical_has_no_weights_key(self):
        """Pre-weights cache entries stay addressable: the canonical
        form of an unweighted request is unchanged (no ``weights``)."""
        assert "weights" not in PartitionRequest(ne=NE, nparts=4).canonical()

    def test_different_inline_weights_different_keys(self):
        a = inline_request(np.ones(K))
        w = np.ones(K)
        w[-1] = 1.0000001
        b = inline_request(w)
        assert a.cache_key() != b.cache_key()

    def test_scenario_fields_feed_the_key(self):
        base = {"ne": NE, "nparts": 4}
        k0 = PartitionRequest(**base, weights={"scenario": "storm"}).cache_key()
        k1 = PartitionRequest(
            **base, weights={"scenario": "storm", "step": 1}
        ).cache_key()
        k2 = PartitionRequest(
            **base, weights={"scenario": "storm", "params": {"sigma": 0.3}}
        ).cache_key()
        k3 = PartitionRequest(**base, weights={"scenario": "daynight"}).cache_key()
        assert len({k0, k1, k2, k3}) == 4

    def test_scenario_vs_equivalent_inline_distinct(self):
        """A scenario spec and its materialized values are different
        requests by design (the spec re-resolves at any ne)."""
        from repro.scenarios import scenario_weights

        spec = PartitionRequest(ne=NE, nparts=4, weights={"scenario": "storm"})
        inline = inline_request(scenario_weights("storm", NE))
        assert spec.cache_key() != inline.cache_key()

    def test_repartition_key_disjoint_from_partition(self):
        """The ``kind`` marker keeps the shared in-flight map safe."""
        old = np.zeros(K, dtype=np.int64)
        rreq = RepartitionRequest(
            ne=NE, old_assignment=old, weights=np.ones(K) * 3.0, nparts=4
        )
        preq = inline_request(np.ones(K) * 3.0)
        assert rreq.cache_key() != preq.cache_key()
        assert rreq.canonical()["kind"] == "repartition"

    def test_repartition_old_assignment_feeds_the_key(self):
        w = np.ones(K) * 2.0
        a = RepartitionRequest(
            ne=NE, old_assignment=np.zeros(K, dtype=int), weights=w, nparts=4
        )
        old2 = np.zeros(K, dtype=int)
        old2[0] = 1
        b = RepartitionRequest(ne=NE, old_assignment=old2, weights=w, nparts=4)
        assert a.cache_key() != b.cache_key()


class TestRoundTrips:
    def test_inline_request_json_round_trip(self):
        req = inline_request(np.linspace(1.0, 2.0, K), method="sfc", seed=3)
        back = PartitionRequest.from_json(req.to_json())
        assert back == req
        assert back.cache_key() == req.cache_key()

    def test_scenario_request_json_round_trip(self):
        req = PartitionRequest(
            ne=NE, nparts=4,
            weights={"scenario": "amr", "step": 4, "params": {"radius": 0.5}},
        )
        back = PartitionRequest.from_json(req.to_json())
        assert back == req
        assert back.cache_key() == req.cache_key()

    def test_repartition_request_json_round_trip(self):
        req = RepartitionRequest(
            ne=NE,
            old_assignment=np.arange(K) % 4,
            weights={"scenario": "storm", "step": 2},
        )
        back = RepartitionRequest.from_json(req.to_json())
        assert back == req
        np.testing.assert_array_equal(back.old_assignment, req.old_assignment)

    def test_repartition_response_json_round_trip(self):
        req = RepartitionRequest(
            ne=NE, old_assignment=np.arange(K) % 4, weights=np.ones(K) * 2.0
        )
        resp = compute_repartition_response(req)
        back = type(resp).from_json(resp.to_json())
        assert back.request == req
        np.testing.assert_array_equal(
            back.plan.new_assignment, resp.plan.new_assignment
        )
        assert back.plan.lb_after == resp.plan.lb_after
        assert set(back.plan.moves) == set(resp.plan.moves)

    def test_repartition_requires_weights(self):
        with pytest.raises(ValueError, match="requires weights"):
            RepartitionRequest(ne=NE, old_assignment=np.zeros(K, dtype=int))


class TestEngineServing:
    def test_weighted_compute_balances_weights(self):
        rng = np.random.default_rng(1)
        w = np.exp(rng.normal(0.0, 1.0, size=K)) + 0.1
        resp = compute_response(inline_request(w))
        loads = np.bincount(resp.assignment, weights=w, minlength=4)
        from repro.partition.metrics import load_balance

        assert resp.metrics["lb_weight"] == pytest.approx(load_balance(loads))

    def test_scenario_weights_resolved_in_engine(self):
        with PartitionEngine() as engine:
            resp = engine.serve(
                PartitionRequest(
                    ne=NE, nparts=4, weights={"scenario": "storm", "step": 5}
                )
            )
        assert resp.source == "computed"
        assert resp.metrics["lb_weight"] < 0.5

    def test_cache_round_trip_weighted(self, tmp_path):
        """A weighted response survives the disk cache and is keyed
        apart from its unweighted twin."""
        cache = PartitionCache(capacity=8, cache_dir=tmp_path)
        weighted = inline_request(np.linspace(1.0, 3.0, K))
        plain = PartitionRequest(ne=NE, nparts=4)
        cache.put(weighted, compute_response(weighted))
        assert cache.get(plain) is None
        # A fresh cache over the same directory must answer from disk.
        rehydrated = PartitionCache(capacity=8, cache_dir=tmp_path)
        hit = rehydrated.get(weighted)
        assert hit is not None
        assert hit.source == "disk"
        assert rehydrated.get(plain) is None

    def test_engine_caches_weighted_and_unweighted_separately(self):
        with PartitionEngine() as engine:
            r1 = engine.serve(PartitionRequest(ne=NE, nparts=4))
            r2 = engine.serve(inline_request(np.full(K, 2.0)))
            r3 = engine.serve(PartitionRequest(ne=NE, nparts=4))
        assert r1.source == "computed"
        assert r2.source == "computed"  # no collision with r1
        assert r3.source == "memory"

    def test_uniform_weighted_assignment_matches_unweighted(self):
        """The exact-reduction property surfaces end-to-end: constant
        inline weights produce the identical sfc assignment."""
        plain = compute_response(PartitionRequest(ne=NE, nparts=4))
        heavy = compute_response(inline_request(np.full(K, 5.0)))
        np.testing.assert_array_equal(plain.assignment, heavy.assignment)
