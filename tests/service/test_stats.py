"""Unit tests for service telemetry."""

from __future__ import annotations

from repro.service import (
    PartitionRequest,
    PartitionResponse,
    ServiceStats,
    compute_response,
)


def response(nparts: int, source: str, elapsed: float) -> PartitionResponse:
    base = compute_response(PartitionRequest(ne=2, nparts=nparts))
    return PartitionResponse(
        request=base.request,
        assignment=base.assignment,
        metrics=base.metrics,
        elapsed_s=elapsed,
        source=source,
    )


def test_empty_stats():
    stats = ServiceStats()
    assert stats.total_requests == 0
    assert stats.hit_rate == 0.0
    assert stats.throughput == 0.0
    assert stats.worker_utilization == 0.0


def test_empty_stats_summary_and_render_do_not_crash():
    """Regression: zero requests must render, not divide by zero."""
    stats = ServiceStats()
    summary = stats.summary()
    assert summary["requests"] == 0
    assert summary["hit_rate"] == 0.0
    assert summary["throughput_rps"] == 0.0
    text = stats.render(per_request=True)
    assert "Partition service stats" in text


def test_zero_elapsed_batch_does_not_crash():
    """Regression: a batch that takes ~0 wall seconds (all cache hits)."""
    stats = ServiceStats(jobs=2)
    stats.record(response(2, "memory", 0.0))
    stats.record_batch_wall(0.0)
    assert stats.throughput == 0.0
    assert stats.worker_utilization == 0.0
    summary = stats.summary()
    assert summary["wall_s"] == 0.0
    assert "memory" in stats.render(per_request=True)


def test_engine_empty_batch():
    """Regression: serving an empty request list is a no-op, not a crash."""
    from repro.service import PartitionEngine

    with PartitionEngine() as engine:
        assert engine.run([]) == []
    assert engine.stats.summary()["requests"] == 0
    engine.stats.render()


def test_counts_and_hit_rate():
    stats = ServiceStats(jobs=2)
    stats.record(response(2, "computed", 0.1))
    stats.record(response(3, "memory", 0.0))
    stats.record(response(4, "disk", 0.0))
    stats.record(response(6, "computed", 0.3))
    assert stats.total_requests == 4
    assert stats.count("computed") == 2
    assert stats.hits == 2
    assert stats.hit_rate == 0.5
    assert stats.compute_s == 0.4


def test_throughput_and_utilization():
    stats = ServiceStats(jobs=2)
    stats.record(response(2, "computed", 0.6))
    stats.record(response(3, "computed", 0.6))
    stats.record_batch_wall(1.0)
    assert stats.wall_s == 1.0
    assert stats.throughput == 2.0
    assert stats.worker_utilization == 0.6  # 1.2s compute over 2 workers x 1s

    # Utilization is clamped even if timers overlap oddly.
    stats.record(response(4, "computed", 10.0))
    assert stats.worker_utilization == 1.0


def test_summary_keys_match_render():
    stats = ServiceStats(jobs=1)
    stats.record(response(2, "computed", 0.05))
    stats.record_batch_wall(0.1)
    summary = stats.summary()
    text = stats.render(per_request=True)
    for key in summary:
        assert key in text
    assert "Partition service stats" in text
    assert "Requests" in text  # per-request table title
    assert "computed" in text
