"""Unit tests for service telemetry."""

from __future__ import annotations

from repro.service import (
    PartitionRequest,
    PartitionResponse,
    ServiceStats,
    compute_response,
)


def response(nparts: int, source: str, elapsed: float) -> PartitionResponse:
    base = compute_response(PartitionRequest(ne=2, nparts=nparts))
    return PartitionResponse(
        request=base.request,
        assignment=base.assignment,
        metrics=base.metrics,
        elapsed_s=elapsed,
        source=source,
    )


def test_empty_stats():
    stats = ServiceStats()
    assert stats.total_requests == 0
    assert stats.hit_rate == 0.0
    assert stats.throughput == 0.0
    assert stats.worker_utilization == 0.0


def test_counts_and_hit_rate():
    stats = ServiceStats(jobs=2)
    stats.record(response(2, "computed", 0.1))
    stats.record(response(3, "memory", 0.0))
    stats.record(response(4, "disk", 0.0))
    stats.record(response(6, "computed", 0.3))
    assert stats.total_requests == 4
    assert stats.count("computed") == 2
    assert stats.hits == 2
    assert stats.hit_rate == 0.5
    assert stats.compute_s == 0.4


def test_throughput_and_utilization():
    stats = ServiceStats(jobs=2)
    stats.record(response(2, "computed", 0.6))
    stats.record(response(3, "computed", 0.6))
    stats.record_batch_wall(1.0)
    assert stats.wall_s == 1.0
    assert stats.throughput == 2.0
    assert stats.worker_utilization == 0.6  # 1.2s compute over 2 workers x 1s

    # Utilization is clamped even if timers overlap oddly.
    stats.record(response(4, "computed", 10.0))
    assert stats.worker_utilization == 1.0


def test_summary_keys_match_render():
    stats = ServiceStats(jobs=1)
    stats.record(response(2, "computed", 0.05))
    stats.record_batch_wall(0.1)
    summary = stats.summary()
    text = stats.render(per_request=True)
    for key in summary:
        assert key in text
    assert "Partition service stats" in text
    assert "Requests" in text  # per-request table title
    assert "computed" in text
