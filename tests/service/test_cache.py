"""Unit tests for the content-addressed partition cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.service import PartitionCache, PartitionRequest, compute_response


@pytest.fixture()
def req():
    return PartitionRequest(ne=2, nparts=4)


@pytest.fixture()
def resp(req):
    return compute_response(req)


class TestMemoryTier:
    def test_miss_then_hit(self, req, resp):
        cache = PartitionCache()
        assert cache.get(req) is None
        cache.put(req, resp)
        hit = cache.get(req)
        assert hit is not None
        assert hit.source == "memory"
        assert np.array_equal(hit.assignment, resp.assignment)
        assert cache.stats() == {
            "memory_hits": 1,
            "disk_hits": 0,
            "misses": 1,
            "stores": 1,
            "hit_rate": 0.5,
            "memory_entries": 1,
        }

    def test_contains(self, req, resp):
        cache = PartitionCache()
        assert req not in cache
        cache.put(req, resp)
        assert req in cache

    def test_lru_eviction(self):
        cache = PartitionCache(capacity=2)
        reqs = [PartitionRequest(ne=2, nparts=n) for n in (2, 3, 4)]
        for r in reqs:
            cache.put(r, compute_response(r))
        assert len(cache) == 2
        assert cache.get(reqs[0]) is None  # oldest evicted
        assert cache.get(reqs[2]) is not None

    def test_lru_touch_on_get(self):
        cache = PartitionCache(capacity=2)
        a, b, c = (PartitionRequest(ne=2, nparts=n) for n in (2, 3, 4))
        cache.put(a, compute_response(a))
        cache.put(b, compute_response(b))
        cache.get(a)  # refresh a; b becomes LRU
        cache.put(c, compute_response(c))
        assert cache.get(a) is not None
        assert cache.get(b) is None

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            PartitionCache(capacity=0)


class TestDiskTier:
    def test_survives_process_memory(self, tmp_path, req, resp):
        PartitionCache(cache_dir=tmp_path).put(req, resp)
        fresh = PartitionCache(cache_dir=tmp_path)  # empty memory tier
        hit = fresh.get(req)
        assert hit is not None
        assert hit.source == "disk"
        assert np.array_equal(hit.assignment, resp.assignment)
        assert hit.metrics == resp.metrics

    def test_disk_hit_promoted_to_memory(self, tmp_path, req, resp):
        PartitionCache(cache_dir=tmp_path).put(req, resp)
        fresh = PartitionCache(cache_dir=tmp_path)
        assert fresh.get(req).source == "disk"
        assert fresh.get(req).source == "memory"

    def test_clear_memory_keeps_disk(self, tmp_path, req, resp):
        cache = PartitionCache(cache_dir=tmp_path)
        cache.put(req, resp)
        cache.clear_memory()
        assert len(cache) == 0
        assert cache.get(req).source == "disk"

    def test_corrupt_entry_is_a_miss(self, tmp_path, req, resp):
        cache = PartitionCache(cache_dir=tmp_path)
        cache.put(req, resp)
        path = cache._path(req.cache_key())
        path.write_bytes(b"not an npz")
        cache.clear_memory()
        assert cache.get(req) is None

    def test_mismatched_entry_is_a_miss(self, tmp_path, req, resp):
        """An entry whose stored request differs is never served."""
        cache = PartitionCache(cache_dir=tmp_path)
        cache.put(req, resp)
        other = PartitionRequest(ne=2, nparts=6)
        # Simulate a (cosmically unlikely) hash collision by renaming.
        cache._path(req.cache_key()).rename(cache._path(other.cache_key()))
        cache.clear_memory()
        assert cache.get(other) is None

    def test_no_dir_until_first_store(self, tmp_path, req, resp):
        target = tmp_path / "sub" / "cache"
        cache = PartitionCache(cache_dir=target)
        assert cache.get(req) is None  # lookup must not create dirs
        assert not target.exists()
        cache.put(req, resp)
        assert target.is_dir()
