"""Unit tests for the content-addressed partition cache."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.service import PartitionCache, PartitionRequest, compute_response
from repro.service.cache import scan_cache_dir


@pytest.fixture()
def req():
    return PartitionRequest(ne=2, nparts=4)


@pytest.fixture()
def resp(req):
    return compute_response(req)


class TestMemoryTier:
    def test_miss_then_hit(self, req, resp):
        cache = PartitionCache()
        assert cache.get(req) is None
        cache.put(req, resp)
        hit = cache.get(req)
        assert hit is not None
        assert hit.source == "memory"
        assert np.array_equal(hit.assignment, resp.assignment)
        assert cache.stats() == {
            "memory_hits": 1,
            "disk_hits": 0,
            "misses": 1,
            "stale": 0,
            "stores": 1,
            "hit_rate": 0.5,
            "memory_entries": 1,
        }

    def test_contains(self, req, resp):
        cache = PartitionCache()
        assert req not in cache
        cache.put(req, resp)
        assert req in cache

    def test_lru_eviction(self):
        cache = PartitionCache(capacity=2)
        reqs = [PartitionRequest(ne=2, nparts=n) for n in (2, 3, 4)]
        for r in reqs:
            cache.put(r, compute_response(r))
        assert len(cache) == 2
        assert cache.get(reqs[0]) is None  # oldest evicted
        assert cache.get(reqs[2]) is not None

    def test_lru_touch_on_get(self):
        cache = PartitionCache(capacity=2)
        a, b, c = (PartitionRequest(ne=2, nparts=n) for n in (2, 3, 4))
        cache.put(a, compute_response(a))
        cache.put(b, compute_response(b))
        cache.get(a)  # refresh a; b becomes LRU
        cache.put(c, compute_response(c))
        assert cache.get(a) is not None
        assert cache.get(b) is None

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            PartitionCache(capacity=0)


class TestDiskTier:
    def test_survives_process_memory(self, tmp_path, req, resp):
        PartitionCache(cache_dir=tmp_path).put(req, resp)
        fresh = PartitionCache(cache_dir=tmp_path)  # empty memory tier
        hit = fresh.get(req)
        assert hit is not None
        assert hit.source == "disk"
        assert np.array_equal(hit.assignment, resp.assignment)
        assert hit.metrics == resp.metrics

    def test_disk_hit_promoted_to_memory(self, tmp_path, req, resp):
        PartitionCache(cache_dir=tmp_path).put(req, resp)
        fresh = PartitionCache(cache_dir=tmp_path)
        assert fresh.get(req).source == "disk"
        assert fresh.get(req).source == "memory"

    def test_clear_memory_keeps_disk(self, tmp_path, req, resp):
        cache = PartitionCache(cache_dir=tmp_path)
        cache.put(req, resp)
        cache.clear_memory()
        assert len(cache) == 0
        assert cache.get(req).source == "disk"

    def test_corrupt_entry_is_a_miss(self, tmp_path, req, resp):
        cache = PartitionCache(cache_dir=tmp_path)
        cache.put(req, resp)
        path = cache._path(req.cache_key())
        path.write_bytes(b"not an npz")
        cache.clear_memory()
        assert cache.get(req) is None

    def test_mismatched_entry_is_a_miss(self, tmp_path, req, resp):
        """An entry whose stored request differs is never served."""
        cache = PartitionCache(cache_dir=tmp_path)
        cache.put(req, resp)
        other = PartitionRequest(ne=2, nparts=6)
        # Simulate a (cosmically unlikely) hash collision by renaming.
        cache._path(req.cache_key()).rename(cache._path(other.cache_key()))
        cache.clear_memory()
        assert cache.get(other) is None

    def test_no_dir_until_first_store(self, tmp_path, req, resp):
        target = tmp_path / "sub" / "cache"
        cache = PartitionCache(cache_dir=target)
        assert cache.get(req) is None  # lookup must not create dirs
        assert not target.exists()
        cache.put(req, resp)
        assert target.is_dir()


def _rewrite_meta(path, mutate):
    """Rewrite one NPZ entry's metadata through ``mutate(meta) -> meta``."""
    with np.load(path) as data:
        assignment = data["assignment"]
        meta = json.loads(bytes(data["meta"]).decode())
    meta = mutate(meta)
    with open(path, "wb") as fh:
        np.savez_compressed(
            fh,
            assignment=assignment,
            meta=np.frombuffer(
                json.dumps(meta, sort_keys=True).encode(), dtype=np.uint8
            ),
        )


class TestStageVersioning:
    """Entries from a different pipeline version are recomputed."""

    def _age_entry(self, cache, req, mutate):
        _rewrite_meta(cache._path(req.cache_key()), mutate)
        cache.clear_memory()

    def test_pre_refactor_entry_is_stale(self, tmp_path, req, resp):
        """An entry written before the tag existed is never served."""
        cache = PartitionCache(cache_dir=tmp_path)
        cache.put(req, resp)

        def strip_version(meta):
            del meta["cache_version"]
            return meta

        self._age_entry(cache, req, strip_version)
        assert cache.get(req) is None
        assert cache.stats()["stale"] == 1

    def test_version_mismatch_is_stale(self, tmp_path, req, resp):
        cache = PartitionCache(cache_dir=tmp_path)
        cache.put(req, resp)
        self._age_entry(
            cache, req, lambda m: {**m, "cache_version": "mesh0.graph0"}
        )
        assert cache.get(req) is None
        assert cache.stats()["stale"] == 1

    def test_stale_entry_recomputed_and_overwritten(self, tmp_path, req):
        """The engine path: stale → recompute → store → fresh hit."""
        from repro.service import PartitionEngine

        with PartitionEngine(cache=PartitionCache(cache_dir=tmp_path)) as engine:
            first = engine.serve(req)
            assert first.source == "computed"
        _rewrite_meta(
            PartitionCache(cache_dir=tmp_path)._path(req.cache_key()),
            lambda m: {**m, "cache_version": "old"},
        )
        with PartitionEngine(cache=PartitionCache(cache_dir=tmp_path)) as engine:
            second = engine.serve(req)
            assert second.source == "computed"  # not served stale
            assert engine.cache.stats()["stale"] == 1
        # The recompute overwrote the entry with the current tag ...
        with PartitionEngine(cache=PartitionCache(cache_dir=tmp_path)) as engine:
            third = engine.serve(req)
            assert third.source == "disk"  # ... so now it serves
        np.testing.assert_array_equal(first.assignment, third.assignment)

    def test_current_entry_still_served(self, tmp_path, req, resp):
        cache = PartitionCache(cache_dir=tmp_path)
        cache.put(req, resp)
        cache.clear_memory()
        hit = cache.get(req)
        assert hit is not None and hit.source == "disk"
        assert cache.stats()["stale"] == 0


class TestScanCacheDir:
    def test_missing_dir(self, tmp_path):
        info = scan_cache_dir(tmp_path / "nope")
        assert info["entries"] == 0
        assert "mesh" in info["cache_version"]

    def test_counts_by_freshness(self, tmp_path, req, resp):
        cache = PartitionCache(cache_dir=tmp_path)
        cache.put(req, resp)
        other = PartitionRequest(ne=2, nparts=6)
        cache.put(other, compute_response(other))
        _rewrite_meta(
            cache._path(other.cache_key()),
            lambda m: {**m, "cache_version": "old"},
        )
        (tmp_path / "junk.npz").write_bytes(b"not an npz")
        info = scan_cache_dir(tmp_path)
        assert info["entries"] == 3
        assert info["current"] == 1
        assert info["stale"] == 1
        assert info["unreadable"] == 1
        assert info["bytes"] > 0
