"""Unit tests for refinement-schedule factorization."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sfc.factorization import (
    admissible_sizes,
    all_schedules,
    default_schedule,
    factorize_2_3,
    is_admissible_size,
    schedule_size,
)


class TestFactorize:
    @pytest.mark.parametrize(
        "n,expected",
        [(1, (0, 0)), (2, (1, 0)), (3, (0, 1)), (6, (1, 1)), (8, (3, 0)),
         (9, (0, 2)), (12, (2, 1)), (16, (4, 0)), (18, (1, 2)), (24, (3, 1)),
         (36, (2, 2)), (1024, (10, 0))],
    )
    def test_known_factorizations(self, n, expected):
        assert factorize_2_3(n) == expected

    @pytest.mark.parametrize("n", [5, 7, 10, 14, 15, 22, 100])
    def test_rejects_other_primes(self, n):
        with pytest.raises(ValueError, match="not of the form"):
            factorize_2_3(n)

    @pytest.mark.parametrize("n", [0, -1, -6])
    def test_rejects_nonpositive(self, n):
        with pytest.raises(ValueError):
            factorize_2_3(n)

    @given(st.integers(min_value=0, max_value=10), st.integers(min_value=0, max_value=6))
    def test_roundtrip(self, a, b):
        n = 2**a * 3**b
        assert factorize_2_3(n) == (a, b)


class TestAdmissibility:
    def test_paper_resolutions_admissible(self):
        for ne in (8, 9, 16, 18, 24):
            assert is_admissible_size(ne)

    def test_inadmissible(self):
        assert not is_admissible_size(10)
        assert not is_admissible_size(0)

    def test_admissible_sizes_list(self):
        sizes = admissible_sizes(20)
        assert sizes == [1, 2, 3, 4, 6, 8, 9, 12, 16, 18]


class TestSchedules:
    def test_default_schedule_is_peano_first(self):
        # Paper Fig. 5: m-Peano refinement first, then Hilbert.
        assert default_schedule(6) == "PH"
        assert default_schedule(12) == "PHH"
        assert default_schedule(18) == "PPH"

    def test_pure_families(self):
        assert default_schedule(8) == "HHH"
        assert default_schedule(9) == "PP"
        assert default_schedule(1) == ""

    def test_schedule_size_inverts_default(self):
        for n in admissible_sizes(100):
            assert schedule_size(default_schedule(n)) == n

    def test_schedule_size_rejects_unknown_codes(self):
        with pytest.raises(ValueError, match="unknown refinement code"):
            schedule_size("HXP")

    def test_all_schedules_count(self):
        # ne=12 = 2^2 * 3: schedules are permutations of HHP -> 3 distinct.
        assert all_schedules(12) == ["HHP", "HPH", "PHH"]

    def test_all_schedules_sizes_consistent(self):
        for sched in all_schedules(36):
            assert schedule_size(sched) == 36

    def test_all_schedules_single_family(self):
        assert all_schedules(8) == ["HHH"]
        assert all_schedules(9) == ["PP"]
