"""The uint64 key path is bit-identical to the materialized curve.

``curve_keys`` must reproduce ``generate_curve(...).index`` exactly —
for every admissible size, every refinement schedule, and every
implementation (C kernel, generic NumPy decode, bitwise Hilbert
transpose).  The materialized generator is the golden oracle.
"""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.sfc.baselines import morton_curve
from repro.sfc.factorization import admissible_sizes, all_schedules
from repro.sfc.generator import generate_curve
from repro.sfc.keys import (
    KEY_DTYPE,
    _keys_hilbert,
    _keys_numpy,
    curve_keys,
    morton_keys,
    schedule_tables,
)

#: Every admissible size the golden sweep covers (through 24 this is
#: {1, 2, 3, 4, 6, 8, 9, 12, 16, 18, 24} — all radix mixes appear).
SIZES = admissible_sizes(24)


def _grid(n: int) -> tuple[np.ndarray, np.ndarray]:
    y, x = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    return x.ravel(), y.ravel()


class TestGoldenEquivalence:
    @pytest.mark.parametrize("n", SIZES)
    def test_every_schedule_matches_generator(self, n):
        x, y = _grid(n)
        for schedule in all_schedules(n):
            golden = generate_curve(schedule=schedule).index[x, y]
            keys = curve_keys(x, y, schedule=schedule)
            assert keys.dtype == KEY_DTYPE
            np.testing.assert_array_equal(keys.astype(np.int64), golden)

    @pytest.mark.parametrize("n", SIZES)
    def test_size_selector_uses_default_schedule(self, n):
        x, y = _grid(n)
        golden = generate_curve(n).index[x, y]
        np.testing.assert_array_equal(
            curve_keys(x, y, size=n).astype(np.int64), golden
        )

    def test_keys_are_a_bijection(self):
        x, y = _grid(12)
        keys = curve_keys(x, y, size=12)
        assert sorted(keys.tolist()) == list(range(12 * 12))


class TestImplementationParity:
    """All three decoders agree (the dispatch is an optimization only)."""

    @pytest.mark.parametrize("schedule", ["HHH", "HHHH"])
    def test_hilbert_transpose_matches_generic(self, schedule):
        kt = schedule_tables(schedule)
        x, y = _grid(kt.size)
        assert kt.pure_hilbert
        np.testing.assert_array_equal(
            _keys_hilbert(x, y, kt.size), _keys_numpy(x, y, kt)
        )

    @pytest.mark.parametrize("schedule", ["PP", "PHP", "HPH"])
    def test_generic_matches_generator(self, schedule):
        kt = schedule_tables(schedule)
        x, y = _grid(kt.size)
        golden = generate_curve(schedule=schedule).index[x, y]
        np.testing.assert_array_equal(
            _keys_numpy(x, y, kt).astype(np.int64), golden
        )

    def test_ckernel_and_fallback_identical(self):
        """Keys do not depend on whether the C kernel loaded.

        Each side runs in a subprocess because the kernel library is
        chosen at import time (same idiom as the telemetry parity test).
        """
        script = (
            "import json, numpy as np\n"
            "from repro.sfc.keys import curve_keys\n"
            "out = {}\n"
            "for sched in ('HHHH', 'PP', 'PHHP'):\n"
            "    from repro.sfc.factorization import schedule_size\n"
            "    n = schedule_size(sched)\n"
            "    y, x = np.meshgrid(np.arange(n), np.arange(n), indexing='ij')\n"
            "    out[sched] = curve_keys(\n"
            "        x.ravel(), y.ravel(), schedule=sched).tolist()\n"
            "print(json.dumps(out))\n"
        )

        def run(no_ckernels: bool) -> str:
            env = dict(os.environ)
            env.pop("REPRO_NO_CKERNELS", None)
            if no_ckernels:
                env["REPRO_NO_CKERNELS"] = "1"
            return subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            ).stdout

        assert run(no_ckernels=False) == run(no_ckernels=True)


class TestMorton:
    @pytest.mark.parametrize("level", [0, 1, 2, 3])
    def test_matches_materialized_z_order(self, level):
        mc = morton_curve(level)
        n = mc.size
        keys = morton_keys(mc.coords[:, 0], mc.coords[:, 1], n)
        np.testing.assert_array_equal(
            keys.astype(np.int64), np.arange(n * n)
        )

    def test_power_of_two_required(self):
        with pytest.raises(ValueError, match="power-of-two"):
            morton_keys([0], [0], 12)

    def test_bounds_checked(self):
        with pytest.raises(ValueError, match="coordinates"):
            morton_keys([4], [0], 4)


class TestValidation:
    def test_exactly_one_selector(self):
        with pytest.raises(ValueError, match="exactly one"):
            curve_keys([0], [0])
        with pytest.raises(ValueError, match="exactly one"):
            curve_keys([0], [0], size=4, schedule="HH")

    def test_coordinate_bounds(self):
        with pytest.raises(ValueError, match="x coordinates"):
            curve_keys([4], [0], size=4)
        with pytest.raises(ValueError, match="y coordinates"):
            curve_keys([0], [-1], size=4)

    def test_check_false_skips_bounds(self):
        curve_keys(np.array([0]), np.array([0]), size=4, check=False)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="same shape"):
            curve_keys([0, 1], [0], size=4)

    def test_shape_preserved(self):
        x = np.arange(4).reshape(2, 2)
        y = np.zeros((2, 2), dtype=int)
        assert curve_keys(x, y, size=4).shape == (2, 2)

    def test_unknown_schedule_code(self):
        with pytest.raises(ValueError, match="unknown refinement code"):
            schedule_tables("HX")

    def test_tables_are_immutable(self):
        kt = schedule_tables("HH")
        with pytest.raises(ValueError):
            kt.tables[0, 0] = 99


class TestGeneratorDowncast:
    """Satellite: curve arrays shrink to int32 when positions fit."""

    def test_int32_at_small_sizes(self):
        c = generate_curve(16)
        assert c.coords.dtype == np.int32
        assert c.index.dtype == np.int32

    def test_positions_unchanged_by_downcast(self):
        c = generate_curve(schedule="PH")
        golden = curve_keys(
            c.coords[:, 0], c.coords[:, 1], schedule="PH"
        )
        np.testing.assert_array_equal(golden.astype(np.int64), np.arange(36))
