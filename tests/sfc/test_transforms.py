"""Unit tests for the D4 transform algebra."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sfc.transforms import (
    ALL_TRANSFORMS,
    ANTITRANSPOSE,
    FLIP_X,
    FLIP_Y,
    IDENTITY,
    ROT90,
    ROT180,
    ROT270,
    TRANSPOSE,
)

transforms = st.sampled_from(ALL_TRANSFORMS)
sizes = st.integers(min_value=1, max_value=9)


def all_cells(n: int) -> np.ndarray:
    xs, ys = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    return np.stack([xs.ravel(), ys.ravel()], axis=1)


class TestBasicActions:
    def test_identity_fixes_everything(self):
        x, y = IDENTITY.apply(3, 5, 8)
        assert (x, y) == (3, 5)

    def test_rot90_moves_origin_to_bottom_right(self):
        # CCW quarter turn maps (0,0) -> (n-1, 0).
        assert ROT90.apply(0, 0, 4) == (3, 0)

    def test_rot180_swaps_opposite_corners(self):
        assert ROT180.apply(0, 0, 5) == (4, 4)
        assert ROT180.apply(4, 4, 5) == (0, 0)

    def test_rot270_is_rot90_inverse(self):
        assert ROT270.compose(ROT90) is IDENTITY
        assert ROT90.compose(ROT270) is IDENTITY

    def test_transpose_swaps_axes(self):
        assert TRANSPOSE.apply(1, 2, 4) == (2, 1)

    def test_antitranspose(self):
        assert ANTITRANSPOSE.apply(0, 0, 4) == (3, 3)
        assert ANTITRANSPOSE.apply(3, 0, 4) == (3, 0)

    def test_flips(self):
        assert FLIP_X.apply(0, 2, 4) == (3, 2)
        assert FLIP_Y.apply(2, 0, 4) == (2, 3)

    def test_all_transforms_distinct(self):
        mats = {(t.mxx, t.mxy, t.myx, t.myy) for t in ALL_TRANSFORMS}
        assert len(mats) == 8


class TestGroupLaws:
    @given(transforms, sizes)
    def test_bijective_on_grid(self, t, n):
        pts = all_cells(n)
        out = t.apply_points(pts, n)
        assert out.min() >= 0 and out.max() <= n - 1
        seen = {tuple(p) for p in out.tolist()}
        assert len(seen) == n * n

    @given(transforms, transforms, sizes)
    def test_compose_matches_sequential_application(self, a, b, n):
        pts = all_cells(n)
        via_compose = a.compose(b).apply_points(pts, n)
        via_seq = a.apply_points(b.apply_points(pts, n), n)
        np.testing.assert_array_equal(via_compose, via_seq)

    @given(transforms)
    def test_inverse(self, t):
        assert t.compose(t.inverse()) is IDENTITY
        assert t.inverse().compose(t) is IDENTITY

    @given(transforms, transforms, transforms)
    def test_associativity(self, a, b, c):
        assert a.compose(b).compose(c) is a.compose(b.compose(c))

    @given(transforms)
    def test_identity_is_neutral(self, t):
        assert IDENTITY.compose(t) is t
        assert t.compose(IDENTITY) is t

    def test_closure(self):
        products = {a.compose(b) for a in ALL_TRANSFORMS for b in ALL_TRANSFORMS}
        assert products == set(ALL_TRANSFORMS)


class TestVectorizedApply:
    def test_apply_points_matches_scalar(self):
        pts = all_cells(5)
        for t in ALL_TRANSFORMS:
            out = t.apply_points(pts, 5)
            for (x, y), (xp, yp) in zip(pts.tolist(), out.tolist()):
                assert t.apply(x, y, 5) == (xp, yp)

    @pytest.mark.parametrize("t", ALL_TRANSFORMS, ids=lambda t: t.name)
    def test_preserves_adjacency(self, t):
        # Unit grid steps stay unit grid steps under any D4 element.
        n = 6
        a = t.apply_points(np.array([[2, 3]]), n)[0]
        b = t.apply_points(np.array([[2, 4]]), n)[0]
        assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1
