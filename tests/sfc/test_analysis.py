"""Unit tests for curve locality analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sfc.analysis import (
    analyze_curve,
    neighbor_stretch,
    segment_bounding_boxes,
    segment_surface_to_volume,
)
from repro.sfc.generator import generate_curve, hilbert_curve


class TestSegmentBoundingBoxes:
    def test_whole_curve_is_one_box(self):
        c = hilbert_curve(3)
        boxes = segment_bounding_boxes(c, 1)
        np.testing.assert_array_equal(boxes[0], [0, 0, 7, 7])

    def test_four_segments_of_level2_hilbert_are_quadrants(self):
        c = hilbert_curve(2)
        boxes = segment_bounding_boxes(c, 4)
        # Each quarter of the curve fills one 2x2 quadrant exactly.
        areas = (boxes[:, 2] - boxes[:, 0] + 1) * (boxes[:, 3] - boxes[:, 1] + 1)
        assert (areas == 4).all()

    def test_invalid_nsegments(self):
        c = hilbert_curve(2)
        with pytest.raises(ValueError):
            segment_bounding_boxes(c, 0)
        with pytest.raises(ValueError):
            segment_bounding_boxes(c, 17)


class TestSurfaceToVolume:
    def test_single_segment_has_no_boundary(self):
        c = hilbert_curve(3)
        s2v = segment_surface_to_volume(c, 1)
        assert s2v[0] == 0.0

    def test_hilbert_beats_row_major_scan(self):
        # The defining advantage of SFC partitions: segments are
        # blockier than scanline segments, so their boundary is
        # smaller.  Compare against a synthetic row-major "curve".
        c = hilbert_curve(4)
        n = c.size
        hil = segment_surface_to_volume(c, 8).mean()
        # Build a row-major visit order (not an actual SFC).
        from dataclasses import replace

        coords = np.array([(x, y) for y in range(n) for x in range(n)])
        index = np.empty((n, n), dtype=np.int64)
        index[coords[:, 0], coords[:, 1]] = np.arange(n * n)
        scan = replace(c, coords=coords, index=index)
        row = segment_surface_to_volume(scan, 8).mean()
        assert hil < row

    def test_segments_partition_cells(self):
        c = generate_curve(size=6)
        s2v = segment_surface_to_volume(c, 6)
        assert len(s2v) == 6
        assert (s2v >= 0).all()


class TestNeighborStretch:
    def test_edge_count(self):
        c = hilbert_curve(2)
        stretch = neighbor_stretch(c)
        # 2 * n * (n-1) undirected grid edges.
        assert len(stretch) == 2 * 4 * 3

    def test_minimum_stretch_is_one(self):
        c = hilbert_curve(3)
        assert neighbor_stretch(c).min() == 1

    def test_stretch_positive(self):
        c = generate_curve(size=9)
        assert (neighbor_stretch(c) >= 1).all()


class TestAnalyzeCurve:
    def test_summary_fields(self):
        c = generate_curve(size=12)
        loc = analyze_curve(c, nsegments=12)
        assert loc.schedule == c.schedule
        assert loc.size == 12
        assert loc.nsegments == 12
        assert loc.mean_bbox_aspect >= 1.0
        assert loc.mean_surface_to_volume > 0
        assert loc.max_neighbor_stretch >= loc.mean_neighbor_stretch

    def test_default_nsegments_is_size(self):
        c = hilbert_curve(3)
        loc = analyze_curve(c)
        assert loc.nsegments == 8

    def test_trivial_curve(self):
        c = generate_curve(size=1)
        loc = analyze_curve(c, nsegments=1)
        assert loc.max_neighbor_stretch == 0
