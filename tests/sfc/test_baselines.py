"""Unit tests for the baseline orderings (boustrophedon, Morton)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sfc import analyze_curve, hilbert_curve
from repro.sfc.baselines import (
    boustrophedon_curve,
    is_continuous_ordering,
    morton_curve,
)


class TestBoustrophedon:
    @pytest.mark.parametrize("size", [1, 2, 3, 5, 8, 10])
    def test_bijective(self, size):
        c = boustrophedon_curve(size)
        assert len({tuple(p) for p in c.coords.tolist()}) == size * size

    @pytest.mark.parametrize("size", [2, 3, 7, 8])
    def test_continuous(self, size):
        assert is_continuous_ordering(boustrophedon_curve(size))

    def test_no_size_restriction(self):
        """Unlike Hilbert/Peano, any side length works (5 = prime)."""
        c = boustrophedon_curve(5)
        assert c.size == 5

    def test_visit_order(self):
        c = boustrophedon_curve(2)
        assert [c.cell_at(k) for k in range(4)] == [(0, 0), (0, 1), (1, 1), (1, 0)]

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            boustrophedon_curve(0)

    def test_stringier_than_hilbert(self):
        """The whole point: scanline segments have worse locality."""
        h = analyze_curve(hilbert_curve(4), nsegments=8)
        b = analyze_curve(boustrophedon_curve(16), nsegments=8)
        assert h.mean_bbox_aspect < b.mean_bbox_aspect
        assert h.mean_surface_to_volume < b.mean_surface_to_volume


class TestMorton:
    @pytest.mark.parametrize("level", [0, 1, 2, 4])
    def test_bijective(self, level):
        c = morton_curve(level)
        n = 2**level
        assert len({tuple(p) for p in c.coords.tolist()}) == n * n

    def test_level1_is_z_shape(self):
        c = morton_curve(1)
        assert [c.cell_at(k) for k in range(4)] == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_not_continuous(self):
        """Morton jumps — why the paper needs Hilbert, not Z-order."""
        assert not is_continuous_ordering(morton_curve(2))
        assert (morton_curve(3).step_lengths() > 1).any()

    def test_locality_competitive_with_hilbert(self):
        """Despite the jumps, Morton segments are reasonably compact."""
        h = analyze_curve(hilbert_curve(4), nsegments=16)
        m = analyze_curve(morton_curve(4), nsegments=16)
        b = analyze_curve(boustrophedon_curve(16), nsegments=16)
        assert m.mean_surface_to_volume < b.mean_surface_to_volume
        assert m.mean_surface_to_volume < 2.0 * h.mean_surface_to_volume

    def test_rejects_negative_level(self):
        with pytest.raises(ValueError):
            morton_curve(-1)


class TestIsContinuous:
    def test_hilbert_is(self):
        assert is_continuous_ordering(hilbert_curve(3))

    def test_trivial_is(self):
        assert is_continuous_ordering(morton_curve(0))
