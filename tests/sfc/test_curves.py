"""Unit tests for the base curve templates."""

from __future__ import annotations

import pytest

from repro.sfc.curves import (
    HILBERT,
    MEANDER_PEANO,
    TEMPLATES,
    CurveTemplate,
    template_for_radix,
)
from repro.sfc.transforms import IDENTITY, TRANSPOSE


class TestRegisteredTemplates:
    def test_hilbert_shape(self):
        assert HILBERT.radix == 2
        assert len(HILBERT.blocks) == 4
        assert HILBERT.code == "H"

    def test_peano_shape(self):
        assert MEANDER_PEANO.radix == 3
        assert len(MEANDER_PEANO.blocks) == 9
        assert MEANDER_PEANO.code == "P"

    def test_registry_aliases(self):
        assert TEMPLATES["H"] is HILBERT
        assert TEMPLATES["hilbert"] is HILBERT
        assert TEMPLATES["P"] is MEANDER_PEANO
        assert TEMPLATES["peano"] is MEANDER_PEANO

    def test_template_for_radix(self):
        assert template_for_radix(2) is HILBERT
        assert template_for_radix(3) is MEANDER_PEANO
        with pytest.raises(KeyError):
            template_for_radix(5)

    def test_hilbert_visit_order_is_the_u_shape(self):
        assert HILBERT.blocks == ((0, 0), (0, 1), (1, 1), (1, 0))

    def test_peano_blocks_tile_grid(self):
        assert sorted(MEANDER_PEANO.blocks) == [
            (x, y) for x in range(3) for y in range(3)
        ]


class TestTemplateValidation:
    """The constructor must reject malformed templates."""

    def test_wrong_block_count(self):
        with pytest.raises(ValueError, match="need 4"):
            CurveTemplate("bad", 2, ((0, 0),), (IDENTITY,))

    def test_blocks_must_tile(self):
        with pytest.raises(ValueError, match="tile"):
            CurveTemplate(
                "bad",
                2,
                ((0, 0), (0, 0), (1, 1), (1, 0)),
                (IDENTITY,) * 4,
            )

    def test_discontinuous_transforms_rejected(self):
        # Identity everywhere breaks the child-to-child adjacency.
        with pytest.raises(ValueError, match="not\\s+adjacent|enter|exit"):
            CurveTemplate(
                "bad",
                2,
                ((0, 0), (0, 1), (1, 1), (1, 0)),
                (IDENTITY, IDENTITY, IDENTITY, IDENTITY),
            )

    def test_wrong_entry_rejected(self):
        # Swapping the first transform moves the curve entry off (0,0).
        with pytest.raises(ValueError):
            CurveTemplate(
                "bad",
                2,
                ((0, 1), (0, 0), (1, 0), (1, 1)),
                (TRANSPOSE, IDENTITY, IDENTITY, TRANSPOSE),
            )


class TestCanonicalContract:
    @pytest.mark.parametrize("tpl", [HILBERT, MEANDER_PEANO], ids=lambda t: t.name)
    def test_entry_exit_under_unit_children(self, tpl):
        # With child size 1 the blocks themselves are the cells.
        first = tpl.blocks[0]
        last = tpl.blocks[-1]
        assert first == (0, 0)
        assert last == (tpl.radix - 1, 0)

    @pytest.mark.parametrize("tpl", [HILBERT, MEANDER_PEANO], ids=lambda t: t.name)
    def test_block_path_is_connected(self, tpl):
        for (ax, ay), (bx, by) in zip(tpl.blocks, tpl.blocks[1:]):
            assert abs(ax - bx) + abs(ay - by) == 1
