"""Unit and property tests for space-filling curve generation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sfc.factorization import schedule_size
from repro.sfc.generator import (
    generate_curve,
    hilbert_curve,
    hilbert_peano_curve,
    peano_curve,
)

# Schedules up to 4 levels keep domains <= 81x81 in property tests.
schedules = st.text(alphabet="HP", min_size=0, max_size=4)


class TestKnownCurves:
    def test_level1_hilbert_visit_order(self):
        c = hilbert_curve(1)
        assert [c.cell_at(k) for k in range(4)] == [(0, 0), (0, 1), (1, 1), (1, 0)]

    def test_level1_peano_visit_order(self):
        c = peano_curve(1)
        expected = [
            (0, 0), (0, 1), (0, 2), (1, 2), (2, 2), (2, 1), (1, 1), (1, 0), (2, 0),
        ]
        assert [c.cell_at(k) for k in range(9)] == expected

    def test_level2_hilbert_matches_classic_construction(self):
        c = hilbert_curve(2)
        # The classic order-2 Hilbert curve starts by traversing the
        # transposed bottom-left quadrant.
        assert [c.cell_at(k) for k in range(4)] == [(0, 0), (1, 0), (1, 1), (0, 1)]
        assert c.exit == (3, 0)

    def test_level1_hilbert_peano_has_36_cells(self):
        # Paper Fig. 5: "A level 2 Hilbert-Peano curve that connects 36
        # sub-domains" (one Peano + one Hilbert refinement).
        c = hilbert_peano_curve(1, 1)
        assert len(c) == 36
        assert c.size == 6

    def test_trivial_curve(self):
        c = generate_curve(size=1)
        assert len(c) == 1
        assert c.entry == c.exit == (0, 0)


class TestSelectors:
    def test_size_and_schedule_mutually_exclusive(self):
        with pytest.raises(ValueError, match="exactly one"):
            generate_curve(4, schedule="HH")
        with pytest.raises(ValueError, match="exactly one"):
            generate_curve()

    def test_inadmissible_size_rejected(self):
        with pytest.raises(ValueError, match="not of the form"):
            generate_curve(size=10)

    def test_unknown_schedule_code_rejected(self):
        with pytest.raises(ValueError, match="unknown refinement code"):
            generate_curve(schedule="HQ")

    def test_negative_levels_rejected(self):
        with pytest.raises(ValueError):
            hilbert_curve(-1)
        with pytest.raises(ValueError):
            peano_curve(-2)
        with pytest.raises(ValueError):
            hilbert_peano_curve(1, -1)

    def test_caching_returns_same_object(self):
        assert generate_curve(schedule="HH") is generate_curve(schedule="HH")


class TestCurveProperties:
    @settings(max_examples=40, deadline=None)
    @given(schedules)
    def test_bijective(self, schedule):
        c = generate_curve(schedule=schedule)
        n = c.size
        cells = {tuple(p) for p in c.coords.tolist()}
        assert len(cells) == n * n

    @settings(max_examples=40, deadline=None)
    @given(schedules)
    def test_unit_steps(self, schedule):
        c = generate_curve(schedule=schedule)
        if len(c) > 1:
            assert (c.step_lengths() == 1).all()

    @settings(max_examples=40, deadline=None)
    @given(schedules)
    def test_canonical_entry_exit(self, schedule):
        c = generate_curve(schedule=schedule)
        assert c.entry == (0, 0)
        assert c.exit == (c.size - 1, 0)

    @settings(max_examples=40, deadline=None)
    @given(schedules)
    def test_index_inverts_coords(self, schedule):
        c = generate_curve(schedule=schedule)
        ks = np.arange(len(c))
        np.testing.assert_array_equal(
            c.index[c.coords[:, 0], c.coords[:, 1]], ks
        )

    @settings(max_examples=20, deadline=None)
    @given(schedules)
    def test_size_matches_schedule(self, schedule):
        c = generate_curve(schedule=schedule)
        assert c.size == schedule_size(schedule)

    def test_position_and_cell_roundtrip(self):
        c = generate_curve(size=12)
        for k in (0, 7, 100, len(c) - 1):
            x, y = c.cell_at(k)
            assert c.position_of(x, y) == k

    def test_coords_are_readonly(self):
        c = generate_curve(size=4)
        with pytest.raises(ValueError):
            c.coords[0, 0] = 99

    def test_schedule_order_changes_curve_not_properties(self):
        a = generate_curve(schedule="PH")
        b = generate_curve(schedule="HP")
        assert a.size == b.size == 6
        assert not np.array_equal(a.coords, b.coords)
        for c in (a, b):
            assert (c.step_lengths() == 1).all()
            assert c.entry == (0, 0) and c.exit == (5, 0)


class TestRender:
    def test_render_shows_all_indices(self):
        c = hilbert_curve(1)
        text = c.render()
        rows = text.splitlines()
        assert len(rows) == 2
        assert set(text.split()) == {"0", "1", "2", "3"}

    def test_render_origin_bottom_left(self):
        c = hilbert_curve(1)
        rows = c.render().splitlines()
        # Bottom row holds curve positions 0 (left) and 3 (right).
        assert rows[-1].split() == ["0", "3"]
        assert rows[0].split() == ["1", "2"]
