"""Global element keys equal the materialized curve's positions.

``element_keys`` must agree with ``cubed_sphere_curve(ne).position``
for every admissible resolution and schedule — including the ``ne = 1``
degenerate case — and the canonical face chain it relies on must be
independent of resolution.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cubesphere.curve import (
    cubed_sphere_curve,
    element_keys,
    face_chain,
    find_face_chain,
)
from repro.cubesphere.mesh import cubed_sphere_mesh

NES = (1, 2, 3, 4, 6, 8, 12)


class TestGoldenEquivalence:
    @pytest.mark.parametrize("ne", NES)
    def test_matches_materialized_curve(self, ne):
        curve = cubed_sphere_curve(ne)
        keys = element_keys(ne)
        assert keys.dtype == np.uint64
        np.testing.assert_array_equal(
            keys.astype(np.int64), curve.position.astype(np.int64)
        )

    @pytest.mark.parametrize("schedule", ["HP", "PH", "PP", "HHH"])
    def test_matches_with_explicit_schedule(self, schedule):
        from repro.sfc.factorization import schedule_size

        ne = schedule_size(schedule)
        curve = cubed_sphere_curve(ne, schedule)
        np.testing.assert_array_equal(
            element_keys(ne, schedule).astype(np.int64),
            curve.position.astype(np.int64),
        )

    def test_gid_subset_slices_the_full_keying(self):
        full = element_keys(6)
        gids = np.array([0, 17, 100, 215])
        np.testing.assert_array_equal(element_keys(6, gids=gids), full[gids])

    def test_gid_shape_preserved(self):
        gids = np.arange(24).reshape(4, 6)
        assert element_keys(2, gids=gids).shape == (4, 6)

    def test_keys_are_a_bijection(self):
        keys = element_keys(4)
        assert sorted(keys.tolist()) == list(range(6 * 16))

    def test_schedule_size_mismatch(self):
        with pytest.raises(ValueError, match="mesh has ne"):
            element_keys(4, schedule="HHH")


class TestKernelParity:
    def test_fused_kernel_and_fallback_identical(self):
        """Global keys do not depend on whether the C kernel loaded.

        Each side runs in a subprocess because the kernel library is
        chosen at import time.
        """
        import os
        import subprocess
        import sys

        script = (
            "import json\n"
            "from repro.cubesphere.curve import element_keys\n"
            "print(json.dumps({str(ne): element_keys(ne).tolist()\n"
            "                  for ne in (1, 2, 6, 8, 12)}))\n"
        )

        def run(no_ckernels: bool) -> str:
            env = dict(os.environ)
            env.pop("REPRO_NO_CKERNELS", None)
            if no_ckernels:
                env["REPRO_NO_CKERNELS"] = "1"
            return subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            ).stdout

        assert run(no_ckernels=False) == run(no_ckernels=True)


class TestFaceChain:
    @pytest.mark.parametrize("ne", [2, 3, 4, 6])
    def test_chain_is_resolution_independent(self, ne):
        chain = find_face_chain(cubed_sphere_mesh(ne))
        assert chain == face_chain()

    def test_ne_1_same_face_order(self):
        chain = find_face_chain(cubed_sphere_mesh(1))
        assert chain.faces == face_chain().faces


class TestDowncast:
    """Satellite: curve arrays shrink to int32 when element ids fit."""

    def test_int32_order_and_position(self):
        curve = cubed_sphere_curve(4)
        assert curve.order.dtype == np.int32
        assert curve.position.dtype == np.int32

    def test_downcast_positions_unchanged(self):
        # The int32 arrays still encode the same permutation the
        # uint64 key path computes independently.
        curve = cubed_sphere_curve(8)
        np.testing.assert_array_equal(
            curve.position.astype(np.int64),
            element_keys(8).astype(np.int64),
        )
        np.testing.assert_array_equal(
            np.sort(curve.order), np.arange(6 * 64, dtype=np.int32)
        )
