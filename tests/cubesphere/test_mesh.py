"""Unit tests for the cubed-sphere element mesh."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cubesphere.mesh import CubedSphereMesh, cubed_sphere_mesh


class TestIndexing:
    def test_gid_locate_roundtrip(self, mesh4):
        for gid in range(mesh4.nelem):
            face, ix, iy = mesh4.locate(gid)
            assert mesh4.gid(face, ix, iy) == gid

    def test_gid_bounds(self, mesh4):
        with pytest.raises(IndexError):
            mesh4.gid(6, 0, 0)
        with pytest.raises(IndexError):
            mesh4.gid(0, 4, 0)
        with pytest.raises(IndexError):
            mesh4.locate(96)

    def test_nelem(self):
        assert CubedSphereMesh(3).nelem == 54

    def test_invalid_ne(self):
        with pytest.raises(ValueError):
            CubedSphereMesh(0)


class TestAdjacency:
    def test_every_element_has_four_edge_neighbors(self, mesh4):
        assert (mesh4.edge_adjacency.degrees() == 4).all()

    def test_corner_neighbor_counts(self, mesh4):
        """24 cube-corner elements have 3 corner neighbors, rest 4."""
        deg = mesh4.corner_adjacency.degrees()
        vals, counts = np.unique(deg, return_counts=True)
        assert dict(zip(vals.tolist(), counts.tolist())) == {3: 24, 4: 72}

    def test_symmetry(self, mesh4):
        for gid in range(mesh4.nelem):
            for nb in mesh4.edge_neighbors(gid):
                assert gid in mesh4.edge_neighbors(int(nb))
            for nb in mesh4.corner_neighbors(gid):
                assert gid in mesh4.corner_neighbors(int(nb))

    def test_edge_and_corner_neighbors_disjoint(self, mesh4):
        for gid in range(mesh4.nelem):
            e = set(mesh4.edge_neighbors(gid).tolist())
            c = set(mesh4.corner_neighbors(gid).tolist())
            assert not (e & c)
            assert gid not in e | c

    def test_interior_adjacency_matches_grid(self, mesh8):
        """Face-interior neighbors are the obvious +-1 grid steps."""
        gid = mesh8.gid(2, 3, 3)
        expect = {
            mesh8.gid(2, 2, 3), mesh8.gid(2, 4, 3),
            mesh8.gid(2, 3, 2), mesh8.gid(2, 3, 4),
        }
        assert set(mesh8.edge_neighbors(gid).tolist()) == expect

    def test_cross_face_neighbors_exist(self, mesh4):
        """Boundary elements have neighbors on other faces."""
        ne = mesh4.ne
        gid = mesh4.gid(0, ne - 1, 1)  # east edge of face 0
        faces = {mesh4.locate(int(nb))[0] for nb in mesh4.edge_neighbors(gid)}
        assert faces == {0, 1}

    def test_all_neighbors_union(self, mesh4):
        gid = 17
        allnb = mesh4.all_neighbors(gid)
        assert len(allnb) in (7, 8)
        assert set(allnb.tolist()) == set(
            mesh4.edge_neighbors(gid).tolist()
        ) | set(mesh4.corner_neighbors(gid).tolist())

    def test_neighbor_pairs_counts(self, mesh4):
        edge_pairs, corner_pairs = mesh4.neighbor_pairs()
        # 4 edge neighbors each -> 2*nelem undirected edges.
        assert len(edge_pairs) == 2 * mesh4.nelem
        assert (edge_pairs[:, 0] < edge_pairs[:, 1]).all()
        assert (corner_pairs[:, 0] < corner_pairs[:, 1]).all()

    def test_ne1_adjacency(self):
        """At ne=1 each face-element touches the four adjacent faces."""
        m = CubedSphereMesh(1)
        assert (m.edge_adjacency.degrees() == 4).all()
        # No pure corner neighbors: all face pairs meeting at a corner
        # already share an edge at this degenerate resolution.
        assert (m.corner_adjacency.degrees() == 0).all()


class TestGeometry:
    def test_centers_on_sphere(self, mesh4):
        np.testing.assert_allclose(
            np.linalg.norm(mesh4.centers_xyz, axis=1), 1.0, atol=1e-14
        )

    def test_centers_cached_and_readonly(self, mesh4):
        a = mesh4.centers_xyz
        assert a is mesh4.centers_xyz
        with pytest.raises(ValueError):
            a[0, 0] = 2.0

    def test_lonlat_shapes(self, mesh4):
        lon, lat = mesh4.centers_lonlat
        assert lon.shape == lat.shape == (mesh4.nelem,)

    @pytest.mark.parametrize("projection", ["equiangular", "equidistant"])
    def test_areas_sum_to_sphere(self, projection):
        m = CubedSphereMesh(3, projection)
        assert m.element_areas().sum() == pytest.approx(4 * np.pi, rel=1e-12)

    def test_equiangular_areas_more_uniform(self):
        eq = CubedSphereMesh(8, "equiangular").element_areas()
        ed = CubedSphereMesh(8, "equidistant").element_areas()
        assert eq.max() / eq.min() < ed.max() / ed.min()

    def test_nnodes(self, mesh4):
        assert mesh4.nnodes == 6 * 16 + 2


class TestCache:
    def test_cached_constructor(self):
        assert cubed_sphere_mesh(2) is cubed_sphere_mesh(2)
        assert cubed_sphere_mesh(2) is not cubed_sphere_mesh(2, "equidistant")
