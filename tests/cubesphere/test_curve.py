"""Unit tests for the global cubed-sphere space-filling curve (Fig. 6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cubesphere.curve import (
    build_curve,
    cubed_sphere_curve,
    find_face_chain,
)
from repro.cubesphere.mesh import cubed_sphere_mesh

PAPER_NES = [8, 9, 16, 18]
SMALL_NES = [1, 2, 3, 4, 6]


class TestFaceChain:
    def test_chain_covers_all_faces(self, mesh4):
        chain = find_face_chain(mesh4)
        assert sorted(chain.faces) == [0, 1, 2, 3, 4, 5]
        assert len(chain.transforms) == 6

    def test_chain_deterministic(self, mesh4):
        a = find_face_chain(mesh4)
        b = find_face_chain(mesh4)
        assert a.faces == b.faces
        assert a.transforms == b.transforms

    def test_chain_consecutive_faces_adjacent(self, mesh4):
        """Consecutive chain faces share a cube edge."""
        chain = find_face_chain(mesh4)
        ne2 = mesh4.ne**2
        for a, b in zip(chain.faces, chain.faces[1:]):
            # Some element of face a must edge-neighbor some element
            # of face b.
            found = False
            for gid in range(a * ne2, (a + 1) * ne2):
                nb_faces = {
                    int(n) // ne2 for n in mesh4.edge_neighbors(gid)
                }
                if b in nb_faces:
                    found = True
                    break
            assert found


class TestGlobalCurve:
    @pytest.mark.parametrize("ne", SMALL_NES + PAPER_NES)
    def test_hamiltonian_path(self, ne):
        c = cubed_sphere_curve(ne)
        assert sorted(c.order.tolist()) == list(range(c.mesh.nelem))
        assert c.is_continuous()

    @pytest.mark.parametrize("ne", [2, 6])
    def test_position_inverts_order(self, ne):
        c = cubed_sphere_curve(ne)
        np.testing.assert_array_equal(
            c.position[c.order], np.arange(len(c))
        )

    def test_len(self):
        assert len(cubed_sphere_curve(4)) == 96

    def test_explicit_schedule(self):
        c = build_curve(cubed_sphere_mesh(6), schedule="HP")
        assert c.schedule == "HP"
        assert c.is_continuous()

    def test_schedule_size_mismatch_rejected(self):
        with pytest.raises(ValueError, match="generates size"):
            build_curve(cubed_sphere_mesh(6), schedule="HH")

    def test_inadmissible_ne_rejected(self):
        with pytest.raises(ValueError, match="not of the form"):
            cubed_sphere_curve(10)

    def test_cache(self):
        assert cubed_sphere_curve(4) is cubed_sphere_curve(4)
        assert cubed_sphere_curve(6, "PH") is not cubed_sphere_curve(6, "HP")

    def test_order_readonly(self):
        c = cubed_sphere_curve(2)
        with pytest.raises(ValueError):
            c.order[0] = 5

    def test_each_face_traversed_contiguously(self):
        """The curve finishes one face before entering the next."""
        c = cubed_sphere_curve(4)
        ne2 = 16
        faces_seq = c.order // ne2
        changes = int((np.diff(faces_seq) != 0).sum())
        assert changes == 5  # exactly one transition per chained face pair

    @pytest.mark.parametrize("schedule", ["PH", "HP"])
    def test_hilbert_peano_schedules_both_work(self, schedule):
        c = build_curve(cubed_sphere_mesh(6), schedule=schedule)
        assert c.is_continuous()
