"""Unit tests for cube topology and exact node identification."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cubesphere.topology import (
    FACES,
    NUM_FACES,
    Face,
    corner_nodes_scaled,
    face_point,
)


class TestFaces:
    def test_six_faces(self):
        assert len(FACES) == NUM_FACES == 6

    def test_frames_right_handed(self):
        for f in FACES:
            np.testing.assert_array_equal(
                np.cross(f.ex, f.ey), np.array(f.normal)
            )

    def test_normals_cover_all_directions(self):
        normals = {f.normal for f in FACES}
        assert normals == {
            (1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0), (0, 0, 1), (0, 0, -1),
        }

    def test_bad_frame_rejected(self):
        with pytest.raises(ValueError, match="ex x ey"):
            Face(0, (1, 0, 0), (0, 1, 0), (0, 1, 0))


class TestFacePoint:
    def test_center_is_normal(self):
        for f in FACES:
            np.testing.assert_allclose(
                face_point(f.index, 0.0, 0.0), np.array(f.normal, dtype=float)
            )

    def test_point_on_cube_surface(self):
        p = face_point(0, 0.3, -0.7)
        assert np.max(np.abs(p)) == pytest.approx(1.0)

    def test_vectorized(self):
        a = np.linspace(-1, 1, 5)
        p = face_point(2, a, a)
        assert p.shape == (5, 3)
        assert np.allclose(np.abs(p).max(axis=1), 1.0)


class TestCornerNodes:
    def test_shape(self):
        nodes = corner_nodes_scaled(0, 4)
        assert nodes.shape == (5, 5, 3)
        assert nodes.dtype == np.int64

    def test_all_on_scaled_cube_surface(self):
        ne = 3
        for face in range(6):
            nodes = corner_nodes_scaled(face, ne)
            assert (np.abs(nodes).max(axis=-1) == ne).all()

    def test_shared_edges_coincide_exactly(self):
        """Nodes on cube edges are bitwise equal between the two faces."""
        ne = 4
        all_nodes = [
            {tuple(n) for n in corner_nodes_scaled(f, ne).reshape(-1, 3).tolist()}
            for f in range(6)
        ]
        # Each pair of adjacent faces shares exactly ne+1 nodes; the
        # cube has 12 edges, so total shared-pair count is 12*(ne+1)
        # minus corner multi-counting.  Check the global unique count:
        # 6*(ne+1)^2 raw nodes collapse to 6*ne^2 + 2 unique.
        union = set().union(*all_nodes)
        assert len(union) == 6 * ne * ne + 2

    def test_adjacent_faces_share_edge_nodes(self):
        ne = 2
        a = {tuple(n) for n in corner_nodes_scaled(0, ne).reshape(-1, 3).tolist()}
        b = {tuple(n) for n in corner_nodes_scaled(1, ne).reshape(-1, 3).tolist()}
        assert len(a & b) == ne + 1

    def test_opposite_faces_share_nothing(self):
        ne = 3
        a = {tuple(n) for n in corner_nodes_scaled(0, ne).reshape(-1, 3).tolist()}
        b = {tuple(n) for n in corner_nodes_scaled(2, ne).reshape(-1, 3).tolist()}
        assert not (a & b)
