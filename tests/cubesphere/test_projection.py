"""Unit tests for the gnomonic projection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cubesphere.projection import (
    PROJECTIONS,
    element_center_local,
    face_local_grid,
    local_to_sphere,
    sphere_to_lonlat,
)


class TestLocalToSphere:
    @pytest.mark.parametrize("projection", PROJECTIONS)
    def test_unit_vectors(self, projection):
        a = np.linspace(-1, 1, 7)
        for face in range(6):
            xyz = local_to_sphere(face, a[:, None], a[None, :], projection)
            np.testing.assert_allclose(
                np.linalg.norm(xyz, axis=-1), 1.0, atol=1e-14
            )

    def test_face_center_maps_to_normal(self):
        from repro.cubesphere.topology import FACES

        for f in FACES:
            xyz = local_to_sphere(f.index, 0.0, 0.0)
            np.testing.assert_allclose(xyz, np.array(f.normal, dtype=float))

    def test_face_corner_maps_to_cube_corner(self):
        xyz = local_to_sphere(0, 1.0, 1.0, "equidistant")
        np.testing.assert_allclose(xyz, np.ones(3) / np.sqrt(3.0))

    def test_equiangular_corner_agrees(self):
        # tan(pi/4) = 1, so the corners coincide across projections.
        a = local_to_sphere(0, 1.0, 1.0, "equiangular")
        b = local_to_sphere(0, 1.0, 1.0, "equidistant")
        np.testing.assert_allclose(a, b, atol=1e-15)

    def test_projections_differ_in_interior(self):
        a = local_to_sphere(0, 0.5, 0.5, "equiangular")
        b = local_to_sphere(0, 0.5, 0.5, "equidistant")
        assert not np.allclose(a, b)

    def test_unknown_projection(self):
        with pytest.raises(ValueError, match="unknown projection"):
            local_to_sphere(0, 0.0, 0.0, "mercator")


class TestLonLat:
    def test_axes(self):
        lon, lat = sphere_to_lonlat(np.array([1.0, 0.0, 0.0]))
        assert lon == pytest.approx(0.0)
        assert lat == pytest.approx(0.0)
        lon, lat = sphere_to_lonlat(np.array([0.0, 1.0, 0.0]))
        assert lon == pytest.approx(np.pi / 2)
        lon, lat = sphere_to_lonlat(np.array([0.0, 0.0, 1.0]))
        assert lat == pytest.approx(np.pi / 2)

    def test_ranges(self):
        rng = np.random.default_rng(0)
        v = rng.standard_normal((100, 3))
        v /= np.linalg.norm(v, axis=1, keepdims=True)
        lon, lat = sphere_to_lonlat(v)
        assert (np.abs(lat) <= np.pi / 2 + 1e-12).all()
        assert (np.abs(lon) <= np.pi + 1e-12).all()


class TestGrids:
    def test_element_centers_shape_and_range(self):
        a, b = element_center_local(4)
        assert a.shape == b.shape == (4, 4)
        assert a.min() == pytest.approx(-0.75)
        assert a.max() == pytest.approx(0.75)

    def test_face_local_grid(self):
        a, b = face_local_grid(2, 3)
        assert len(a) == 6
        assert (np.diff(a) > 0).all()
        assert -1 < a[0] < a[-1] < 1
