"""Unit tests for SFC-ordered adaptive refinement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cubesphere import cubed_sphere_curve
from repro.cubesphere.refinement import RefinedMesh, refine_uniform, refine_where
from repro.partition import load_balance, migration_cost


@pytest.fixture(scope="module")
def curve():
    return cubed_sphere_curve(4)


class TestConstruction:
    def test_uniform_base(self, curve):
        rm = refine_uniform(curve)
        assert rm.nleaves == 96
        assert (rm.leaves_per_element() == 1).all()

    def test_uniform_level(self, curve):
        rm = refine_uniform(curve, level=2)
        assert rm.nleaves == 96 * 16

    def test_refine_where(self, curve):
        mask = np.zeros(96, dtype=bool)
        mask[:5] = True
        rm = refine_where(curve, mask, level=1)
        assert rm.nleaves == 91 + 5 * 4

    def test_bad_levels_rejected(self, curve):
        with pytest.raises(ValueError, match="one entry per base"):
            RefinedMesh(curve, np.zeros(5, dtype=np.int64))
        with pytest.raises(ValueError, match="levels must be in"):
            RefinedMesh(curve, np.full(96, -1, dtype=np.int64))

    def test_bad_predicate_rejected(self, curve):
        with pytest.raises(ValueError, match="one entry per element"):
            refine_where(curve, np.zeros(7, dtype=bool))

    def test_refined_returns_new_state(self, curve):
        rm = refine_uniform(curve)
        rm2 = rm.refined(np.array([0, 1]))
        assert rm.nleaves == 96
        assert rm2.nleaves == 96 + 2 * 3


class TestLeafOffsets:
    def test_prefix_structure(self, curve):
        mask = np.zeros(96, dtype=bool)
        mask[10] = True
        rm = refine_where(curve, mask, level=1)
        offs = rm.leaf_offsets_along_curve()
        assert offs[0] == 0
        assert offs[-1] == rm.nleaves
        widths = np.diff(offs)
        # One block of 4 leaves, the rest singletons, in curve order.
        pos = curve.position[10]
        assert widths[pos] == 4
        assert (np.delete(widths, pos) == 1).all()


class TestPartitioning:
    def test_uniform_matches_plain_sfc(self, curve):
        from repro.partition import sfc_partition

        rm = refine_uniform(curve)
        p = rm.partition(12)
        q = sfc_partition(4, 12)
        np.testing.assert_array_equal(p.assignment, q.assignment)

    def test_refined_partition_balances_leaf_work(self, curve):
        mask = np.zeros(96, dtype=bool)
        mask[curve.order[:20]] = True  # refine the first curve stretch
        rm = refine_where(curve, mask, level=1)
        p = rm.partition(8)
        assert rm.imbalance(p) < 0.3
        # Unweighted element counts are now intentionally uneven.
        assert load_balance(p.part_sizes()) > 0.0

    def test_parts_contiguous_along_curve(self, curve):
        rm = refine_where(curve, np.arange(96) % 7 == 0, level=2)
        p = rm.partition(10)
        along = p.assignment[curve.order]
        assert (np.diff(along) >= 0).all()

    def test_refinement_step_causes_local_migration(self, curve):
        """Refining a few elements shifts cuts, not the whole map."""
        rm0 = refine_uniform(curve)
        p0 = rm0.partition(12)
        rm1 = rm0.refined(curve.order[40:44])
        p1 = rm1.partition(12)
        cost = migration_cost(p0, p1)
        assert cost.fraction_moved < 0.35

    def test_leaf_granularity_not_implemented(self, curve):
        rm = refine_uniform(curve, 1)
        with pytest.raises(NotImplementedError):
            rm.partition(4, atomic=False)

    def test_weighted_partition_shape_check(self, curve):
        rm = refine_uniform(curve)
        with pytest.raises(ValueError, match="one entry per base"):
            rm.partition_weighted(4, np.ones(3))

    def test_method_label(self, curve):
        assert refine_uniform(curve).partition(4).method == "sfc-amr"
