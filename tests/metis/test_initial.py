"""Unit tests for initial bisection methods."""

from __future__ import annotations

import numpy as np

from repro.metis.initial import greedy_graph_growing, spectral_initial_bisection
from tests.conftest import grid_graph, two_cliques


def cut_of(graph, side):
    u, v, w = graph.edge_array()
    return int(w[side[u] != side[v]].sum())


class TestGreedyGraphGrowing:
    def test_balance(self):
        g = grid_graph(6, 6)
        side = greedy_graph_growing(g, target_left=18, seed=0)
        assert (side == 0).sum() == 18

    def test_grown_side_contiguous(self):
        from repro.graphs.traversal import is_connected

        g = grid_graph(8, 8)
        side = greedy_graph_growing(g, target_left=32, seed=0)
        sub, _ = g.subgraph(np.flatnonzero(side == 0))
        assert is_connected(sub)

    def test_cut_beats_random_split(self):
        g = grid_graph(10, 10)
        side = greedy_graph_growing(g, target_left=50, seed=0)
        rng = np.random.default_rng(0)
        rand_cuts = []
        for _ in range(5):
            r = np.ones(100, dtype=np.int64)
            r[rng.permutation(100)[:50]] = 0
            rand_cuts.append(cut_of(g, r))
        assert cut_of(g, side) < min(rand_cuts)

    def test_splits_cliques_apart(self):
        g = two_cliques(8)
        side = greedy_graph_growing(g, target_left=8, seed=0)
        left = set(np.flatnonzero(side == 0).tolist())
        assert left in ({*range(8)}, {*range(8, 16)})

    def test_weighted_target(self):
        g = grid_graph(4, 4)
        # Give one vertex big weight; target_left equal to it.
        import dataclasses

        g = dataclasses.replace(
            g, vweights=np.array([10] + [1] * 15, dtype=np.int64)
        )
        side = greedy_graph_growing(g, target_left=12, seed=0)
        assert g.vweights[side == 0].sum() >= 12

    def test_disconnected_graph_handled(self):
        from repro.graphs.csr import graph_from_edges

        g = graph_from_edges(6, np.array([(0, 1), (2, 3), (4, 5)]))
        side = greedy_graph_growing(g, target_left=4, seed=0)
        assert (side == 0).sum() == 4

    def test_empty_graph(self):
        from repro.graphs.csr import graph_from_edges

        g = graph_from_edges(0, np.empty((0, 2)))
        assert len(greedy_graph_growing(g, target_left=0)) == 0


class TestSpectralBisection:
    def test_splits_cliques(self):
        g = two_cliques(6)
        side = spectral_initial_bisection(g, target_left=6)
        left = set(np.flatnonzero(side == 0).tolist())
        assert left in ({*range(6)}, {*range(6, 12)})

    def test_grid_split_is_straight(self):
        """Fiedler bisection of a grid cuts roughly down the middle."""
        g = grid_graph(8, 8)
        side = spectral_initial_bisection(g, target_left=32)
        assert (side == 0).sum() == 32
        assert cut_of(g, side) <= 12  # a straight cut costs 8
