"""Unit tests for the METIS-style public API."""

from __future__ import annotations

import pytest

from repro.metis.api import METIS_METHODS, part_graph
from repro.partition.metrics import evaluate_partition, load_balance


class TestPartGraph:
    @pytest.mark.parametrize("method", METIS_METHODS)
    def test_all_methods_produce_partitions(self, graph4, method):
        p = part_graph(graph4, 12, method, seed=0)
        assert p.nparts == 12
        assert p.method == method

    def test_unknown_method(self, graph4):
        with pytest.raises(ValueError, match="unknown method"):
            part_graph(graph4, 4, "magic")

    def test_rb_never_empty(self, graph8):
        for nparts in (96, 192, 384):
            p = part_graph(graph8, nparts, "rb", seed=0)
            assert (p.part_sizes() > 0).all()

    def test_kway_may_leave_empty_parts_at_saturation(self, graph8):
        """METIS-4 behaviour: at nparts == nvertices the K-way pipeline
        may merge singleton parts (the paper's load-imbalance source)."""
        p = part_graph(graph8, 384, "kway", seed=0)
        sizes = p.part_sizes()
        assert sizes.sum() == 384
        # Either perfect or showing the characteristic 2-and-0 pattern.
        assert sizes.max() in (1, 2)

    def test_explicit_ubfactor_overrides_default(self, graph8):
        strict = part_graph(graph8, 192, "rb", ubfactor=1.001, seed=0)
        assert load_balance(strict.part_sizes()) == 0.0

    def test_quality_ordering_table2(self, graph8):
        """KWAY trades balance for cut relative to RB (Table 2 shape)."""
        rb = evaluate_partition(graph8, part_graph(graph8, 96, "rb", seed=0))
        kw = evaluate_partition(graph8, part_graph(graph8, 96, "kway", seed=0))
        assert kw.weighted_edgecut <= rb.weighted_edgecut
        assert kw.lb_nelemd >= rb.lb_nelemd
