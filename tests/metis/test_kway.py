"""Unit tests for multilevel K-way partitioning (KWAY/TV)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metis.bisection import recursive_bisection
from repro.metis.kway import multilevel_kway
from repro.metis.refine import balance_constraint
from repro.partition.metrics import evaluate_partition


class TestKway:
    @pytest.mark.parametrize("nparts", [2, 4, 8, 16, 48])
    def test_valid_assignments(self, graph8, nparts):
        p = multilevel_kway(graph8, nparts, seed=0)
        assert p.nparts == nparts
        assert p.nvertices == 384
        # every vertex assigned in range (Partition enforces)

    def test_balance_constraint_honored(self, graph8):
        for nparts in (8, 48, 96):
            p = multilevel_kway(graph8, nparts, ubfactor=1.03, seed=0)
            cap = balance_constraint(384, nparts, 1.03)
            assert p.part_sizes().max() <= cap

    def test_cut_competitive_with_rb(self, graph8):
        """KWAY's looser balance must buy an edgecut no worse than RB's
        (the property the paper's Table 2 relies on)."""
        kw = evaluate_partition(graph8, multilevel_kway(graph8, 48, seed=0))
        rb = evaluate_partition(graph8, recursive_bisection(graph8, 48, seed=0))
        assert kw.weighted_edgecut <= rb.weighted_edgecut * 1.05

    def test_imbalance_at_small_parts(self, graph8):
        """At 2 elements/processor KWAY trades balance for cut — the
        paper's central observation about METIS at O(1000) procs."""
        p = multilevel_kway(graph8, 192, ubfactor=1.03, seed=0)
        sizes = p.part_sizes()
        assert sizes.max() == 3  # one extra element somewhere

    def test_tv_objective_label(self, graph8):
        p = multilevel_kway(graph8, 16, objective="volume", seed=0)
        assert p.method == "tv"
        p = multilevel_kway(graph8, 16, objective="cut", seed=0)
        assert p.method == "kway"

    def test_deterministic(self, graph8):
        a = multilevel_kway(graph8, 24, seed=9)
        b = multilevel_kway(graph8, 24, seed=9)
        np.testing.assert_array_equal(a.assignment, b.assignment)

    def test_seed_sensitivity(self, graph8):
        a = multilevel_kway(graph8, 24, seed=1)
        b = multilevel_kway(graph8, 24, seed=2)
        assert not np.array_equal(a.assignment, b.assignment)

    def test_errors(self, graph8):
        with pytest.raises(ValueError):
            multilevel_kway(graph8, 0)
        with pytest.raises(ValueError):
            multilevel_kway(graph8, 385)
