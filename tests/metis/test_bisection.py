"""Unit tests for multilevel bisection and recursive bisection (RB)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metis.bisection import multilevel_bisection, recursive_bisection
from repro.partition.metrics import evaluate_partition, load_balance
from tests.conftest import grid_graph, two_cliques


def cut_of(graph, side):
    u, v, w = graph.edge_array()
    return int(w[side[u] != side[v]].sum())


class TestMultilevelBisection:
    def test_balanced_split(self, graph8):
        side = multilevel_bisection(graph8, target_left=192, seed=0)
        assert (side == 0).sum() == 192

    def test_cut_quality_on_grid(self):
        g = grid_graph(16, 16)
        side = multilevel_bisection(g, target_left=128, seed=0)
        # A straight cut costs 16; allow slack but reject garbage.
        assert cut_of(g, side) <= 32

    def test_finds_clique_split(self):
        g = two_cliques(10)
        side = multilevel_bisection(g, target_left=10, seed=0)
        assert cut_of(g, side) == 1

    def test_spectral_initialization(self, graph4):
        side = multilevel_bisection(graph4, target_left=48, seed=0, initial="spectral")
        assert (side == 0).sum() == 48

    def test_bad_target_rejected(self, graph4):
        with pytest.raises(ValueError, match="target_left"):
            multilevel_bisection(graph4, target_left=0)
        with pytest.raises(ValueError, match="target_left"):
            multilevel_bisection(graph4, target_left=96)

    def test_deterministic(self, graph4):
        a = multilevel_bisection(graph4, target_left=48, seed=42)
        b = multilevel_bisection(graph4, target_left=48, seed=42)
        np.testing.assert_array_equal(a, b)


class TestRecursiveBisection:
    @pytest.mark.parametrize("nparts", [2, 3, 4, 6, 8, 12, 24])
    def test_valid_partitions(self, graph4, nparts):
        p = recursive_bisection(graph4, nparts, seed=0)
        p.validate()
        assert p.nparts == nparts
        assert p.method == "rb"

    def test_strict_ubfactor_gives_perfect_balance(self, graph4):
        p = recursive_bisection(graph4, 8, ubfactor=1.001, seed=0)
        assert load_balance(p.part_sizes()) == 0.0

    def test_non_power_of_two(self, graph4):
        p = recursive_bisection(graph4, 6, ubfactor=1.001, seed=0)
        assert p.part_sizes().tolist() == [16] * 6

    def test_nparts_equals_nvertices(self):
        g = grid_graph(4, 4)
        p = recursive_bisection(g, 16, seed=0)
        assert (p.part_sizes() == 1).all()

    def test_single_part(self, graph4):
        p = recursive_bisection(graph4, 1, seed=0)
        assert (p.assignment == 0).all()

    def test_cut_beats_random(self, graph8):
        from repro.partition.block import random_partition

        rb = evaluate_partition(graph8, recursive_bisection(graph8, 16, seed=0))
        rnd = evaluate_partition(graph8, random_partition(384, 16, seed=0))
        assert rb.weighted_edgecut < rnd.weighted_edgecut / 2

    def test_errors(self, graph4):
        with pytest.raises(ValueError):
            recursive_bisection(graph4, 0)
        with pytest.raises(ValueError):
            recursive_bisection(graph4, 97)

    def test_table2_regime_imbalance(self, graph8):
        """With the METIS-4 default slack, RB at 2 elements/processor
        shows the mild imbalance the paper's Table 2 reports."""
        p = recursive_bisection(graph8, 192, ubfactor=1.01, seed=0)
        lb = load_balance(p.part_sizes())
        assert 0.0 <= lb <= 0.34
