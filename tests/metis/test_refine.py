"""Unit tests for FM and greedy K-way refinement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metis.refine import (
    balance_constraint,
    fm_refine_bisection,
    greedy_kway_refine,
)
from tests.conftest import grid_graph, two_cliques


def cut_of(graph, assignment):
    u, v, w = graph.edge_array()
    return int(w[assignment[u] != assignment[v]].sum())


class TestBalanceConstraint:
    def test_exact_division(self):
        assert balance_constraint(100, 4, 1.0) == 25

    def test_metis_default_allows_one_extra_atom(self):
        # 2 elements/processor with 3% tolerance -> cap 3 (the regime
        # of the paper's Table 2).
        assert balance_constraint(1536, 768, 1.03) == 3

    def test_never_below_ceiling(self):
        assert balance_constraint(10, 3, 1.0) == 4

    def test_large_parts(self):
        assert balance_constraint(960, 10, 1.03) == 99


class TestFMBisection:
    def test_improves_bad_split(self):
        g = grid_graph(8, 8)
        # Strided split: terrible cut, perfectly balanced.
        side = (np.arange(64) % 2).astype(np.int64)
        before = cut_of(g, side)
        refined = fm_refine_bisection(g, side, 32, 32)
        after = cut_of(g, refined)
        assert after < before
        assert (refined == 0).sum() == 32

    def test_never_worsens(self):
        g = two_cliques(6)
        side = np.array([0] * 6 + [1] * 6, dtype=np.int64)
        before = cut_of(g, side)  # already optimal (1)
        refined = fm_refine_bisection(g, side, 6, 6)
        assert cut_of(g, refined) <= before

    def test_respects_caps(self):
        g = grid_graph(6, 6)
        side = (np.arange(36) % 2).astype(np.int64)
        refined = fm_refine_bisection(g, side, 20, 20)
        assert (refined == 0).sum() <= 20
        assert (refined == 1).sum() <= 20

    def test_rebalances_overweight_side(self):
        g = grid_graph(6, 6)
        side = np.zeros(36, dtype=np.int64)
        side[:6] = 1  # left side has 30 > cap 18
        refined = fm_refine_bisection(g, side, 18, 18)
        assert (refined == 0).sum() <= 18
        assert (refined == 1).sum() <= 18

    def test_input_not_mutated(self):
        g = grid_graph(4, 4)
        side = (np.arange(16) % 2).astype(np.int64)
        copy = side.copy()
        fm_refine_bisection(g, side, 8, 8)
        np.testing.assert_array_equal(side, copy)


class TestGreedyKway:
    def test_improves_random_partition(self):
        g = grid_graph(8, 8)
        rng = np.random.default_rng(0)
        assignment = rng.permutation(np.arange(64) % 4).astype(np.int64)
        before = cut_of(g, assignment)
        refined = greedy_kway_refine(g, assignment, 4, ubfactor=1.03, seed=0)
        assert cut_of(g, refined) < before

    def test_zero_gain_plateau_left_alone(self):
        """Greedy refinement (like METIS's) cannot escape an
        all-zero-gain plateau — documented, authentic behaviour."""
        g = grid_graph(8, 8)
        assignment = (np.arange(64) % 4).astype(np.int64)
        refined = greedy_kway_refine(g, assignment, 4, ubfactor=1.03, seed=0)
        assert cut_of(g, refined) <= cut_of(g, assignment)

    def test_balance_cap_respected(self):
        g = grid_graph(8, 8)
        assignment = (np.arange(64) % 4).astype(np.int64)
        refined = greedy_kway_refine(g, assignment, 4, ubfactor=1.03, seed=0)
        cap = balance_constraint(64, 4, 1.03)
        sizes = np.bincount(refined, minlength=4)
        assert sizes.max() <= cap

    def test_drains_overfull_part(self):
        # Part 0 owns 30 of 36 cells; part 1 owns a contiguous strip it
        # can grow from.  Refinement must pull part 0 under the cap.
        g = grid_graph(6, 6)
        assignment = np.zeros(36, dtype=np.int64)
        assignment[30:] = 1  # last column (x = 5)
        refined = greedy_kway_refine(g, assignment, 2, ubfactor=1.03, seed=0)
        cap = balance_constraint(36, 2, 1.03)
        assert np.bincount(refined, minlength=2).max() <= cap

    def test_volume_objective_runs_and_respects_balance(self):
        g = grid_graph(8, 8)
        assignment = (np.arange(64) % 4).astype(np.int64)
        refined = greedy_kway_refine(
            g, assignment, 4, ubfactor=1.03, objective="volume", seed=0
        )
        cap = balance_constraint(64, 4, 1.03)
        assert np.bincount(refined, minlength=4).max() <= cap

    def test_volume_objective_reduces_count_volume(self):
        from repro.partition.base import Partition
        from repro.partition.metrics import communication_pattern

        def count_volume(assignment, nparts):
            p = Partition(assignment, nparts=nparts)
            comm = communication_pattern(g, p)
            # METIS unit-size volume: distinct external parts per vertex.
            total = 0
            a = p.assignment
            for v in range(g.nvertices):
                ext = {int(a[u]) for u in g.neighbors(v)} - {int(a[v])}
                total += len(ext)
            return total

        g = grid_graph(8, 8)
        assignment = (np.arange(64) % 4).astype(np.int64)
        refined = greedy_kway_refine(
            g, assignment, 4, ubfactor=1.03, objective="volume", seed=0
        )
        assert count_volume(refined, 4) < count_volume(assignment, 4)

    def test_unknown_objective(self):
        g = grid_graph(2, 2)
        with pytest.raises(ValueError, match="objective"):
            greedy_kway_refine(g, np.zeros(4, dtype=np.int64), 1, objective="x")

    def test_input_not_mutated(self):
        g = grid_graph(4, 4)
        assignment = (np.arange(16) % 2).astype(np.int64)
        copy = assignment.copy()
        greedy_kway_refine(g, assignment, 2, seed=0)
        np.testing.assert_array_equal(assignment, copy)


class TestRefinementEdgeCases:
    """Degenerate inputs the kernelized paths must handle exactly."""

    def _chain_with_heavy_head(self):
        from repro.graphs import graph_from_edges

        edges = np.array([[0, 1], [1, 2], [2, 3]], dtype=np.int64)
        vw = np.array([5, 1, 1, 1], dtype=np.int64)
        return graph_from_edges(4, edges, vweights=vw)

    def test_max_passes_zero_is_identity(self):
        g = self._chain_with_heavy_head()
        side = np.array([0, 0, 1, 1], dtype=np.int64)
        out = fm_refine_bisection(g, side, 8, 8, max_passes=0)
        np.testing.assert_array_equal(out, side)

    def test_single_vertex_graph(self):
        from repro.graphs import graph_from_edges

        g = graph_from_edges(1, np.empty((0, 2), dtype=np.int64))
        np.testing.assert_array_equal(
            fm_refine_bisection(g, np.array([0]), 1, 1), [0]
        )
        np.testing.assert_array_equal(
            greedy_kway_refine(g, np.array([0]), 1), [0]
        )

    def test_caps_tighter_than_heaviest_vertex(self):
        # cap=4 < the weight-5 vertex: the rebalance sheds every light
        # vertex but the heavy one cannot fit anywhere; refinement must
        # terminate with the heavy vertex alone on its side.
        g = self._chain_with_heavy_head()
        side = np.array([0, 0, 1, 1], dtype=np.int64)
        out = fm_refine_bisection(g, side, 4, 4)
        assert set(out.tolist()) <= {0, 1}
        heavy_side = int(out[0])
        weights = [int(g.vweights[out == s].sum()) for s in (0, 1)]
        assert weights[heavy_side] == 5  # heavy vertex isolated
        assert weights[1 - heavy_side] == 3

    def test_seed_determinism_across_runs(self):
        from repro.metis import part_graph
        from tests.metis.test_golden import _generator

        g = _generator.random_weighted_graph(n=50, seed=7)
        for method in ("rb", "kway", "tv"):
            a = part_graph(g, 6, method, seed=11)
            b = part_graph(g, 6, method, seed=11)
            np.testing.assert_array_equal(a.assignment, b.assignment)
