"""Unit tests for graph contraction and the coarsening loop."""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import graph_from_edges
from repro.metis.coarsen import coarsen_to, contract
from repro.metis.matching import heavy_edge_matching
from tests.conftest import grid_graph


class TestContract:
    def test_vertex_weight_conserved(self, graph8):
        match = heavy_edge_matching(graph8, seed=0)
        level = contract(graph8, match)
        assert level.graph.total_vweight() == graph8.total_vweight()

    def test_edge_weight_conserved_including_hidden(self, graph8):
        """Visible coarse edge weight + weight hidden inside coarse
        vertices = fine edge weight."""
        match = heavy_edge_matching(graph8, seed=0)
        level = contract(graph8, match)
        fine_total = int(graph8.eweights.sum()) // 2
        coarse_total = int(level.graph.eweights.sum()) // 2
        hidden = 0
        for v in range(graph8.nvertices):
            u = int(match[v])
            if u > v:
                nbrs = graph8.neighbors(v).tolist()
                hidden += int(graph8.neighbor_weights(v)[nbrs.index(u)])
        assert coarse_total + hidden == fine_total

    def test_mapping_is_onto(self):
        g = grid_graph(4, 4)
        match = heavy_edge_matching(g, seed=1)
        level = contract(g, match)
        nc = level.graph.nvertices
        assert set(level.fine_to_coarse.tolist()) == set(range(nc))

    def test_coarse_graph_valid(self, graph4):
        match = heavy_edge_matching(graph4, seed=0)
        level = contract(graph4, match)
        level.graph.validate()

    def test_parallel_edges_merged(self):
        # Square 0-1-2-3: matching (0,1) and (2,3) creates two coarse
        # vertices joined by two fine edges that must merge to weight 2.
        g = graph_from_edges(4, np.array([(0, 1), (1, 2), (2, 3), (3, 0)]))
        match = np.array([1, 0, 3, 2])
        level = contract(g, match)
        assert level.graph.nvertices == 2
        assert level.graph.nedges == 1
        assert level.graph.eweights[0] == 2

    def test_matched_pair_weight_summed(self):
        g = graph_from_edges(2, np.array([(0, 1)]), vweights=[3, 4])
        level = contract(g, np.array([1, 0]))
        assert level.graph.nvertices == 1
        assert level.graph.vweights[0] == 7
        assert level.graph.nedges == 0


class TestCoarsenTo:
    def test_reaches_target(self, graph8):
        levels = coarsen_to(graph8, 64, seed=0)
        assert levels
        assert levels[-1].graph.nvertices <= 64 * 2  # may stall slightly above
        sizes = [lv.graph.nvertices for lv in levels]
        assert sizes == sorted(sizes, reverse=True)

    def test_no_levels_when_small_enough(self, graph4):
        assert coarsen_to(graph4, 200, seed=0) == []

    def test_weight_conserved_through_hierarchy(self, graph8):
        levels = coarsen_to(graph8, 32, seed=0)
        for lv in levels:
            assert lv.graph.total_vweight() == graph8.total_vweight()

    def test_all_levels_valid(self, graph8):
        for lv in coarsen_to(graph8, 32, seed=0):
            lv.graph.validate()
