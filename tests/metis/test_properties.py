"""Property-based tests for the full METIS-style pipeline.

Hypothesis generates random connected weighted graphs; every partition
the pipeline emits must satisfy the structural invariants regardless of
topology, weights, seed, or part count.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.csr import CSRGraph, graph_from_edges
from repro.metis import part_graph
from repro.metis.refine import balance_constraint
from repro.partition.metrics import evaluate_partition


@st.composite
def connected_graphs(draw) -> CSRGraph:
    """Random connected graph: a spanning path plus random chords."""
    n = draw(st.integers(min_value=4, max_value=40))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    perm = rng.permutation(n)
    edges = {(min(int(a), int(b)), max(int(a), int(b)))
             for a, b in zip(perm, perm[1:])}
    extra = draw(st.integers(min_value=0, max_value=3 * n))
    for _ in range(extra):
        a, b = rng.integers(n, size=2)
        if a != b:
            edges.add((min(int(a), int(b)), max(int(a), int(b))))
    earr = np.array(sorted(edges), dtype=np.int64)
    ew = rng.integers(1, 10, size=len(earr)).astype(np.int64)
    vw = rng.integers(1, 5, size=n).astype(np.int64)
    return graph_from_edges(n, earr, ew, vw)


class TestPipelineInvariants:
    @settings(max_examples=30, deadline=None)
    @given(connected_graphs(), st.integers(2, 6), st.integers(0, 99))
    def test_rb_invariants(self, graph, nparts, seed):
        nparts = min(nparts, graph.nvertices)
        p = part_graph(graph, nparts, "rb", seed=seed)
        assert p.nvertices == graph.nvertices
        assert (p.part_sizes() > 0).all()  # RB never leaves empties
        q = evaluate_partition(graph, p)
        assert 0 <= q.lb_weight < 1
        assert q.weighted_edgecut <= int(graph.eweights.sum()) // 2

    @settings(max_examples=30, deadline=None)
    @given(connected_graphs(), st.integers(2, 6), st.integers(0, 99))
    def test_kway_invariants(self, graph, nparts, seed):
        nparts = min(nparts, graph.nvertices)
        p = part_graph(graph, nparts, "kway", seed=seed)
        assert p.nvertices == graph.nvertices
        sizes = p.part_sizes()
        assert sizes.sum() == graph.nvertices
        # Weight cap holds for every non-empty part.
        cap = balance_constraint(graph.total_vweight(), nparts, 1.03)
        weights = p.part_weights(graph.vweights)
        # Projection from coarse levels can exceed the cap only by one
        # coarse atom; with our vertex weights <= 4 and pair
        # contraction, the worst atom is bounded by 2 * max vweight.
        slack = 2 * int(graph.vweights.max())
        assert weights.max() <= cap + slack

    @settings(max_examples=15, deadline=None)
    @given(connected_graphs(), st.integers(0, 9))
    def test_determinism(self, graph, seed):
        a = part_graph(graph, 4, "rb", seed=seed)
        b = part_graph(graph, 4, "rb", seed=seed)
        np.testing.assert_array_equal(a.assignment, b.assignment)

    def test_rb_quality_not_worse_than_strided_on_meshes(self):
        """RB beats the naive strided split on real mesh graphs.

        Deterministic replacement for a hypothesis property: on tiny
        adversarial random graphs RB can legitimately lose to a
        strided split (the multilevel heuristic gives no per-instance
        guarantee), but on the structured cubed-sphere meshes the
        paper studies it must win in aggregate and never badly lose.
        """
        from repro.cubesphere import cubed_sphere_mesh
        from repro.graphs import mesh_graph
        from repro.partition.block import strided_partition
        from repro.partition.metrics import weighted_edgecut

        rb_total = 0
        strided_total = 0
        for ne in (4, 6, 8):
            graph = mesh_graph(cubed_sphere_mesh(ne))
            for nparts in (4, 7):
                rb_cut = weighted_edgecut(
                    graph, part_graph(graph, nparts, "rb", seed=0)
                )
                strided_cut = weighted_edgecut(
                    graph, strided_partition(graph.nvertices, nparts)
                )
                assert rb_cut <= 1.5 * strided_cut
                rb_total += rb_cut
                strided_total += strided_cut
        assert rb_total < strided_total


class TestMetricConsistency:
    @settings(max_examples=25, deadline=None)
    @given(connected_graphs(), st.integers(2, 5), st.integers(0, 50))
    def test_volume_is_twice_cut_weight(self, graph, nparts, seed):
        """With per-edge exchange, directed volume = 2x cut weight."""
        nparts = min(nparts, graph.nvertices)
        p = part_graph(graph, nparts, "rb", seed=seed)
        q = evaluate_partition(graph, p)
        assert q.total_volume_points == 2 * q.weighted_edgecut

    @settings(max_examples=25, deadline=None)
    @given(connected_graphs(), st.integers(2, 5))
    def test_eq1_load_balance_consistency(self, graph, nparts):
        nparts = min(nparts, graph.nvertices)
        p = part_graph(graph, nparts, "rb", seed=0)
        q = evaluate_partition(graph, p)
        sizes = q.nelemd.astype(float)
        expect = (sizes.max() - sizes.mean()) / sizes.max()
        assert q.lb_nelemd == pytest.approx(expect)
