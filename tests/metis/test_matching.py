"""Unit tests for coarsening matchings."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.csr import graph_from_edges
from repro.metis.matching import heavy_edge_matching, random_matching
from tests.conftest import grid_graph


def assert_valid_matching(graph, match):
    n = graph.nvertices
    for v in range(n):
        assert match[match[v]] == v  # involution
        if match[v] != v:
            assert match[v] in graph.neighbors(v)  # matched along an edge


class TestRandomMatching:
    def test_valid_on_grid(self):
        g = grid_graph(5, 5)
        match = random_matching(g, seed=0)
        assert_valid_matching(g, match)

    def test_maximal(self):
        """No two adjacent vertices may both be unmatched."""
        g = grid_graph(4, 4)
        match = random_matching(g, seed=3)
        unmatched = {v for v in range(16) if match[v] == v}
        for v in unmatched:
            assert not (set(g.neighbors(v).tolist()) & unmatched)

    def test_deterministic(self):
        g = grid_graph(4, 4)
        np.testing.assert_array_equal(
            random_matching(g, seed=5), random_matching(g, seed=5)
        )


class TestHeavyEdgeMatching:
    def test_valid(self, graph4):
        match = heavy_edge_matching(graph4, seed=0)
        assert_valid_matching(graph4, match)

    def test_prefers_heavy_edges(self):
        # Star of light edges plus one heavy edge: the heavy edge must
        # be in the matching.
        edges = np.array([(0, 1), (0, 2), (0, 3), (2, 3)])
        g = graph_from_edges(4, edges, eweights=[1, 1, 1, 100])
        match = heavy_edge_matching(g, seed=0)
        assert match[2] == 3 and match[3] == 2

    def test_hides_more_weight_than_random_on_mesh(self, graph8):
        def hidden_weight(match):
            total = 0
            for v in range(graph8.nvertices):
                u = match[v]
                if u > v:
                    nbrs = graph8.neighbors(v)
                    w = graph8.neighbor_weights(v)
                    total += int(w[list(nbrs).index(u)])
            return total

        hem = np.mean(
            [hidden_weight(heavy_edge_matching(graph8, seed=s)) for s in range(3)]
        )
        rnd = np.mean(
            [hidden_weight(random_matching(graph8, seed=s)) for s in range(3)]
        )
        assert hem > rnd

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 1000))
    def test_valid_for_any_seed(self, seed):
        g = grid_graph(4, 5)
        assert_valid_matching(g, heavy_edge_matching(g, seed=seed))

    def test_isolated_vertices_stay_unmatched(self):
        g = graph_from_edges(3, np.array([(0, 1)]))
        match = heavy_edge_matching(g, seed=0)
        assert match[2] == 2
