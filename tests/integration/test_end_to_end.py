"""Integration tests: full pipelines across all subsystems.

These tests tie the reproduction together: mesh → curve → partition →
exchange schedule → machine model, and the solver-level check that a
partitioned DSS (explicit per-rank partial sums + scheduled exchanges)
reproduces the serial DSS bit-for-bit up to summation order.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cubesphere import cubed_sphere_curve, cubed_sphere_mesh
from repro.graphs import is_connected, mesh_graph
from repro.machine import PerformanceModel
from repro.metis import part_graph
from repro.partition import evaluate_partition, sfc_partition
from repro.seam import DSSOperator, build_geometry, build_point_map, exchange_schedule


class TestPartitionedDSS:
    """A rank-by-rank DSS with explicit exchanges equals serial DSS."""

    def test_partitioned_equals_serial(self):
        geom = build_geometry(4, 6)
        pmap = build_point_map(geom)
        dss = DSSOperator(geom, pmap)
        rng = np.random.default_rng(7)
        q = rng.standard_normal(dss.local_mass.shape)
        serial = dss.apply(q)

        part = sfc_partition(4, 12)
        nparts = 12
        ids = pmap.point_ids
        weighted = dss.local_mass * q
        # Per-rank partial numerator/denominator over local elements.
        num_partial = np.zeros((nparts, pmap.npoints))
        den_partial = np.zeros((nparts, pmap.npoints))
        for e in range(geom.mesh.nelem):
            r = int(part.assignment[e])
            np.add.at(num_partial[r], ids[e].ravel(), weighted[e].ravel())
            np.add.at(den_partial[r], ids[e].ravel(), dss.local_mass[e].ravel())
        # "Exchange": every rank receives every other rank's partials
        # for the points it owns (the schedule says which ranks talk).
        sched = exchange_schedule(pmap, part)
        result = np.empty_like(q)
        for e in range(geom.mesh.nelem):
            r = int(part.assignment[e])
            num = num_partial[r].copy()
            den = den_partial[r].copy()
            for (src, dst), _count in sched.items():
                if dst == r:
                    num += num_partial[src]
                    den += den_partial[src]
            local_ids = ids[e]
            with np.errstate(invalid="ignore"):
                vals = num[local_ids] / den[local_ids]
            result[e] = vals
        np.testing.assert_allclose(result, serial, atol=1e-12)

    def test_schedule_pairs_match_graph_model(self):
        """The graph communication model and the point-level schedule
        agree on who talks to whom for every partitioner."""
        from repro.partition.metrics import communication_pattern

        geom = build_geometry(4, 6)
        pmap = build_point_map(geom)
        g = mesh_graph(cubed_sphere_mesh(4))
        for method in ("rb", "kway"):
            p = part_graph(g, 16, method, seed=0)
            sched = exchange_schedule(pmap, p)
            comm = communication_pattern(g, p)
            assert set(sched) == set(comm.pair_points)


class TestFullPipeline:
    @pytest.mark.parametrize("method", ["sfc", "rb", "kway", "tv"])
    def test_mesh_to_timing(self, method):
        g = mesh_graph(cubed_sphere_mesh(4))
        from repro.experiments import run_method

        r = run_method(4, 16, method)
        assert r.speedup > 1
        assert r.quality.nparts == 16

    def test_sfc_parts_connected_all_resolutions(self):
        for ne in (2, 3, 6):
            mesh = cubed_sphere_mesh(ne)
            g = mesh_graph(mesh)
            nparts = mesh.nelem // 2
            p = sfc_partition(ne, nparts)
            for part in range(0, nparts, max(1, nparts // 8)):
                sub, _ = g.subgraph(p.members(part))
                assert is_connected(sub)


class TestPaperHeadlines:
    """The claims of the paper's abstract and Section 4, as assertions.

    These run at the paper's actual scales; they are the 'does the
    reproduction reproduce' gate.
    """

    @pytest.mark.slow
    def test_sfc_matches_metis_at_small_counts(self):
        from repro.experiments import best_metis, speedup_sweep

        res = speedup_sweep(8, nprocs=[6, 12, 24])
        for i in range(3):
            sfc = res["sfc"][i]
            bm = best_metis(res, i)
            assert sfc.speedup > 0.9 * bm.speedup

    @pytest.mark.slow
    def test_sfc_wins_above_fifty_processors(self):
        """'The advantage of the SFC approach occurs above 50
        processors where each processor contains less than eight
        spectral elements.'"""
        from repro.experiments import best_metis, speedup_sweep

        res = speedup_sweep(8, nprocs=[96, 192, 384])
        for i in range(3):
            assert res["sfc"][i].speedup > best_metis(res, i).speedup

    @pytest.mark.slow
    def test_k384_large_advantage_at_384_procs(self):
        """Paper: 37% better than best METIS at 384 procs (we assert a
        double-digit advantage; absolute % depends on network consts)."""
        from repro.experiments import best_metis, speedup_sweep

        res = speedup_sweep(8, nprocs=[384])
        adv = res["sfc"][0].speedup / best_metis(res, 0).speedup - 1
        assert adv > 0.10

    @pytest.mark.slow
    def test_k1536_advantage_at_768_procs(self):
        """Paper: 22% at 768 processors."""
        from repro.experiments import best_metis, speedup_sweep

        res = speedup_sweep(16, nprocs=[768])
        adv = res["sfc"][0].speedup / best_metis(res, 0).speedup - 1
        assert adv > 0.10

    @pytest.mark.slow
    def test_table2_sfc_row(self):
        from repro.experiments import table2

        rows = table2(ne=16, nproc=768)
        sfc = rows[0]
        assert sfc.lb_nelemd == 0.0
        assert sfc.time_us == min(r.time_us for r in rows)
