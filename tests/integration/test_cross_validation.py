"""Cross-validation against networkx and scipy on shared quantities."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.graphs import (
    connected_components,
    grid_2d,
    mesh_graph,
    random_geometric,
)
from repro.metis import part_graph
from repro.partition import Partition, evaluate_partition, sfc_partition


def to_networkx(graph):
    u, v, w = graph.edge_array()
    gx = nx.Graph()
    gx.add_nodes_from(range(graph.nvertices))
    gx.add_weighted_edges_from(zip(u.tolist(), v.tolist(), w.tolist()))
    return gx


class TestGraphEquivalence:
    def test_components_match(self):
        g = random_geometric(80, 0.06, seed=3, ensure_connected=False)
        ours = connected_components(g)
        theirs = list(nx.connected_components(to_networkx(g)))
        assert len(set(ours.tolist())) == len(theirs)
        for comp in theirs:
            labels = {int(ours[v]) for v in comp}
            assert len(labels) == 1

    def test_cut_size_matches_networkx(self, graph8):
        p = part_graph(graph8, 8, "kway", seed=0)
        gx = to_networkx(graph8)
        side_a = set(np.flatnonzero(p.assignment == 0).tolist())
        side_b = set(range(graph8.nvertices)) - side_a
        nx_cut = nx.cut_size(gx, side_a, side_b, weight="weight")
        # Our weighted cut of the induced 2-way split.
        two_way = Partition(
            (p.assignment != 0).astype(np.int64), nparts=2
        )
        q = evaluate_partition(graph8, two_way)
        assert q.weighted_edgecut == nx_cut

    def test_degree_distribution_matches(self, mesh8):
        g = mesh_graph(mesh8)
        gx = to_networkx(g)
        ours = sorted(g.degrees().tolist())
        theirs = sorted(d for _, d in gx.degree())
        assert ours == theirs

    def test_algebraic_connectivity_positive(self):
        from repro.graphs import fiedler_vector, laplacian_matrix

        g = grid_2d(7, 7)
        lap = laplacian_matrix(g).toarray()
        vals = np.sort(np.linalg.eigvalsh(lap))
        f = fiedler_vector(g)
        # Rayleigh quotient of the Fiedler vector equals lambda_2.
        rq = f @ lap @ f / (f @ f)
        assert rq == pytest.approx(vals[1], rel=1e-6)


class TestPartitionQualityCrossChecks:
    def test_sfc_segments_are_bfs_compact(self, mesh8, graph8):
        """Each SFC part's diameter (in hops) stays small — the
        geometric compactness that drives the paper's results —
        validated with networkx eccentricity."""
        p = sfc_partition(8, 48)
        gx = to_networkx(graph8)
        diameters = []
        for part in range(0, 48, 6):
            members = np.flatnonzero(p.assignment == part).tolist()
            sub = gx.subgraph(members)
            diameters.append(nx.diameter(sub))
        # 8 elements per part: a compact patch has diameter <= 4.
        assert max(diameters) <= 4

    def test_metis_cut_close_to_networkx_greedy_modularity_scale(self, graph8):
        """Sanity scale check: our multilevel cut on K=384 at 8 parts
        is well below the total edge weight and nontrivially above the
        theoretical floor."""
        p = part_graph(graph8, 8, "kway", seed=0)
        q = evaluate_partition(graph8, p)
        total_w = int(graph8.eweights.sum()) // 2
        assert q.weighted_edgecut < 0.25 * total_w
        assert q.weighted_edgecut > 0
