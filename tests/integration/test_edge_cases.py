"""Edge-case and failure-injection tests across subsystems."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cubesphere import cubed_sphere_curve, cubed_sphere_mesh, refine_uniform
from repro.graphs import mesh_graph
from repro.partition import Partition, evaluate_partition, sfc_partition
from repro.seam import PartitionedDSS, build_geometry


class TestEmptyRanks:
    """METIS-4-style empty parts must flow through every consumer."""

    @pytest.fixture(scope="class")
    def partition_with_empty_rank(self):
        # Rank 3 of 4 owns nothing.
        assignment = np.repeat([0, 1, 2], 18)
        return Partition(assignment, nparts=4)

    def test_metrics_handle_empty_parts(self, partition_with_empty_rank):
        g = mesh_graph(cubed_sphere_mesh(3))
        q = evaluate_partition(g, partition_with_empty_rank)
        assert q.nelemd[3] == 0
        assert q.spcv[3] == 0
        assert 0 <= q.lb_nelemd < 1

    def test_perf_model_idles_empty_ranks(self, partition_with_empty_rank):
        from repro.machine import PerformanceModel

        g = mesh_graph(cubed_sphere_mesh(3))
        t = PerformanceModel().step_timing(g, partition_with_empty_rank)
        assert t.compute_s[3] == 0.0
        assert t.comm_s[3] == 0.0

    def test_partitioned_dss_with_empty_rank(self, partition_with_empty_rank):
        geom = build_geometry(3, 4)
        pdss = PartitionedDSS(geom, partition_with_empty_rank)
        rng = np.random.default_rng(0)
        q = rng.standard_normal(pdss.local_mass.shape)
        from repro.seam import DSSOperator

        serial = DSSOperator(geom).apply(q)
        np.testing.assert_allclose(pdss.apply(q), serial, atol=1e-12)
        assert pdss.accounting.per_rank_sent[3] == 0

    def test_trace_with_empty_rank(self, partition_with_empty_rank):
        from repro.machine import PerformanceModel, trace_step

        g = mesh_graph(cubed_sphere_mesh(3))
        tr = trace_step(PerformanceModel(), g, partition_with_empty_rank)
        assert tr.segments[3].total_s == 0.0
        assert not tr.segments[3].critical


class TestDegenerateSizes:
    def test_single_element_per_face(self):
        """ne=1: the minimal cubed-sphere still works end-to-end."""
        curve = cubed_sphere_curve(1)
        g = mesh_graph(curve.mesh)
        for nparts in (1, 2, 3, 6):
            p = sfc_partition(1, nparts)
            q = evaluate_partition(g, p)
            assert q.nelemd.sum() == 6

    def test_nparts_equals_nelements(self):
        p = sfc_partition(2, 24)
        assert (p.part_sizes() == 1).all()

    def test_refinement_coarsen_below_zero_rejected(self):
        rm = refine_uniform(cubed_sphere_curve(2))
        with pytest.raises(ValueError, match="levels must be in"):
            rm.refined(np.array([0]), delta=-1)

    def test_single_part_everything(self):
        g = mesh_graph(cubed_sphere_mesh(2))
        p = sfc_partition(2, 1)
        q = evaluate_partition(g, p)
        assert q.edgecut == 0
        assert q.total_volume_points == 0
        assert q.lb_nelemd == 0.0


class TestAdversarialInputs:
    def test_metis_on_star_graph(self):
        """A star (hub + leaves) stresses the matching (hub can match
        only once) and balance (hub weight dominates nothing here but
        every cut goes through the hub)."""
        from repro.graphs import graph_from_edges
        from repro.metis import part_graph

        n = 33
        edges = np.array([(0, i) for i in range(1, n)])
        g = graph_from_edges(n, edges)
        p = part_graph(g, 4, "rb", seed=0)
        sizes = p.part_sizes()
        assert sizes.sum() == n
        assert sizes.max() <= 10

    def test_metis_on_two_scales(self):
        """Vertex weights spanning two orders of magnitude."""
        from repro.graphs import graph_from_edges
        from repro.metis import part_graph

        n = 24
        edges = np.array([(i, i + 1) for i in range(n - 1)])
        vw = np.ones(n, dtype=np.int64)
        vw[::6] = 50
        g = graph_from_edges(n, edges, vweights=vw)
        p = part_graph(g, 4, "rb", seed=0)
        weights = p.part_weights(g.vweights)
        # Heavy vertices are atomic: the best possible max is >= 54.
        assert weights.max() <= 2 * weights.mean()

    def test_sfc_weighted_extreme_skew(self):
        """One element carries 100x the work: it must sit alone-ish."""
        w = np.ones(96)
        w[40] = 100.0
        p = sfc_partition(4, 8, weights=w)
        loads = np.array([w[p.members(i)].sum() for i in range(8)])
        heavy_part = int(p.assignment[40])
        # The heavy part should carry little besides the heavy element.
        assert loads[heavy_part] <= 100.0 + 12
