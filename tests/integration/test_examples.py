"""Smoke tests: every example script must run end-to-end.

Examples are part of the public surface; they are executed in-process
(with small arguments where the script accepts them) and their output
is checked for the landmark strings a reader would look for.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, argv: list[str], capsys) -> str:
    old_argv = sys.argv
    sys.argv = [name, *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", [], capsys)
        assert "sfc (Hilbert)" in out
        assert "LB(nelemd)" in out

    def test_curve_gallery(self, capsys):
        out = run_example("curve_gallery.py", [], capsys)
        assert "Level-1 Hilbert curve" in out
        assert "flattened cube" in out
        assert "12x12 Hilbert-Peano" in out

    def test_climate_partitioning_small(self, capsys):
        out = run_example("climate_partitioning.py", ["8", "96"], capsys)
        assert "Partitioner comparison" in out
        assert "Weighted elements" in out

    def test_cosine_bell_advection_small(self, capsys):
        out = run_example("cosine_bell_advection.py", ["2", "0.05"], capsys)
        assert "relative L2 error" in out
        assert "mass drift" in out

    def test_scaling_study_small(self, capsys):
        out = run_example("scaling_study.py", ["2"], capsys)
        assert "Speedup vs 1 processor" in out
        assert "sfc advantage" in out

    def test_adaptive_load_balancing_runs(self, capsys):
        out = run_example("adaptive_load_balancing.py", ["4", "12"], capsys)
        assert "Rebalancing a moving hotspot" in out
        assert "Average migration" in out

    def test_shallow_water_tc2_small(self, capsys):
        out = run_example("shallow_water_tc2.py", ["2", "0.2"], capsys)
        assert "Steady-state hold" in out
        assert "mass drift (rel)" in out

    def test_every_example_has_a_smoke_test(self):
        """Adding an example without a smoke test should fail CI."""
        scripts = {p.name for p in EXAMPLES.glob("*.py")}
        covered = {
            "quickstart.py",
            "curve_gallery.py",
            "climate_partitioning.py",
            "cosine_bell_advection.py",
            "scaling_study.py",
            "adaptive_load_balancing.py",
            "shallow_water_tc2.py",
        }
        assert scripts == covered
