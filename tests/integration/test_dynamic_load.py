"""Acceptance test: the 100-step moving-storm trajectory at Ne=64.

The dynamic-load-balancing claim of this PR, end to end: re-cutting
the space-filling curve per step (``LoadTracker`` on the streaming
key path) keeps the weighted load balance within 5% of the weighted
optimum over a full storm revolution at Ne=64 / 16 parts, while
migrating a per-step element fraction strictly below what fresh METIS
partitions of the same weights would force — and ``POST /repartition``
serves the very same plan over HTTP.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.partition import LoadTracker, migration_cost, plan_repartition
from repro.scenarios import scenario_weights

NE = 64
NPARTS = 16
NSTEPS = 100
#: Steps at which the fresh-METIS alternative is sampled (a full METIS
#: trajectory would dominate the suite's runtime for no extra signal).
METIS_SAMPLE_STEPS = (10, 50, 90)


@pytest.fixture(scope="module")
def trajectory():
    """Run the full 100-step storm through the streaming LoadTracker."""
    tracker = LoadTracker(NE, nparts=NPARTS)
    for step in range(NSTEPS):
        tracker.update(scenario_weights("storm", NE, step))
    return tracker


class TestStormTrajectory:
    def test_lb_within_5pct_of_weighted_optimum(self, trajectory):
        """At every step the maximum rank load stays within 5% of the
        ideal (total weight / nparts) — the paper-style LB acceptance
        bar, under *weighted* cuts."""
        assert len(trajectory.history) == NSTEPS
        for step, entry in enumerate(trajectory.history):
            ratio = entry["max_load"] / entry["mean_load"]
            assert ratio <= 1.05, f"step {step}: max/ideal = {ratio:.4f}"

    def test_migration_stays_bounded(self, trajectory):
        """Successive cuts only shift: per-step migration is a small
        fraction of the mesh, never a global reshuffle."""
        fractions = [e["fraction_moved"] for e in trajectory.history[1:]]
        assert max(fractions) < 0.5
        assert float(np.mean(fractions)) < 0.15

    def test_migration_strictly_below_fresh_metis(self, trajectory):
        """At each sampled step, SFC repartitioning moves strictly
        fewer elements than re-running METIS from scratch on the same
        weights (consecutive fresh k-way partitions share no history,
        so their diff is large)."""
        from repro.cubesphere import cubed_sphere_mesh
        from repro.graphs import mesh_graph
        from repro.metis import part_graph

        mesh = cubed_sphere_mesh(NE)
        for step in METIS_SAMPLE_STEPS:
            fresh = []
            for s in (step - 1, step):
                w = scenario_weights("storm", NE, s)
                graph = mesh_graph(
                    mesh,
                    vweights=np.maximum(np.round(w), 1).astype(np.int64),
                )
                fresh.append(part_graph(graph, NPARTS, "kway", seed=0))
            metis_fraction = migration_cost(fresh[0], fresh[1]).fraction_moved
            sfc_fraction = trajectory.history[step]["fraction_moved"]
            assert sfc_fraction < metis_fraction, (
                f"step {step}: sfc moved {sfc_fraction:.3f}, "
                f"fresh METIS {metis_fraction:.3f}"
            )

    def test_http_serves_the_same_plan(self, trajectory):
        """One trajectory step through ``POST /repartition``: the wire
        plan matches the in-process planner bit for bit at Ne=64."""
        from repro.server import Connection, PartitionServer
        from repro.service import PartitionEngine, RepartitionRequest

        step = 10
        old = LoadTracker(NE, nparts=NPARTS)
        old.update(scenario_weights("storm", NE, step - 1))
        old_assignment = old.current.assignment
        direct = plan_repartition(
            old_assignment,
            scenario_weights("storm", NE, step),
            ne=NE,
            nparts=NPARTS,
        )

        async def inner():
            async with PartitionServer(PartitionEngine()) as server:
                host, port = server.address
                async with await Connection.open(host, port) as conn:
                    resp = await conn.repartition(RepartitionRequest(
                        ne=NE,
                        old_assignment=old_assignment,
                        weights={"scenario": "storm", "step": step},
                        nparts=NPARTS,
                    ))
                    assert resp.status == 200
                    return resp.json()

        data = asyncio.run(asyncio.wait_for(inner(), 60.0))
        plan = data["plan"]
        assert plan["assignment"] == direct.new_assignment.tolist()
        assert plan["elements_moved"] == direct.elements_moved
        assert plan["lb_after"] == direct.lb_after
        assert plan["lb_after"] < 0.05
        # Rebalancing was worth doing: the stale cuts were worse.
        assert plan["lb_after"] <= plan["lb_before"]
