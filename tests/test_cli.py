"""Unit tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_no_args_exits_2_with_usage(self, capsys):
        """``python -m repro`` must exit 2 and print usage, no traceback."""
        with pytest.raises(SystemExit) as exc:
            main([])
        assert exc.value.code == 2
        assert "usage: repro" in capsys.readouterr().err

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")
        assert out.split()[1][0].isdigit()

    def test_curve_requires_selector(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["curve"])

    def test_curve_selectors_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["curve", "--size", "4", "--schedule", "H"])

    def test_partition_method_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["partition", "--ne", "4", "--nparts", "8", "--method", "magic"]
            )


class TestCurveCommand:
    def test_renders(self, capsys):
        assert main(["curve", "--size", "2"]) == 0
        out = capsys.readouterr().out
        assert "size=2" in out
        assert "0" in out and "3" in out

    def test_schedule_and_analyze(self, capsys):
        assert main(["curve", "--schedule", "PH", "--analyze"]) == 0
        out = capsys.readouterr().out
        assert "locality:" in out
        assert "bbox_aspect" in out

    def test_bad_size_errors(self):
        with pytest.raises(ValueError):
            main(["curve", "--size", "10"])


class TestPartitionCommand:
    def test_text_output(self, capsys):
        assert main(["partition", "--ne", "4", "--nparts", "12"]) == 0
        out = capsys.readouterr().out
        assert "LB(nelemd)   = 0.0000" in out
        assert "edgecut" in out

    def test_csv_output(self, capsys):
        assert main(
            ["partition", "--ne", "4", "--nparts", "8", "--csv"]
        ) == 0
        out = capsys.readouterr().out.splitlines()
        assert out[0].startswith("method,nparts")
        assert out[1].startswith("sfc,8,")

    def test_metis_method(self, capsys):
        assert main(
            ["partition", "--ne", "4", "--nparts", "8", "--method", "rb"]
        ) == 0
        assert "method=rb" in capsys.readouterr().out

    def test_write_files(self, tmp_path, capsys):
        assign = tmp_path / "assign.csv"
        graph = tmp_path / "mesh.graph"
        assert main(
            [
                "partition",
                "--ne",
                "2",
                "--nparts",
                "4",
                "--write-assignment",
                str(assign),
                "--write-graph",
                str(graph),
            ]
        ) == 0
        lines = assign.read_text().splitlines()
        assert lines[0] == "gid,part"
        assert len(lines) == 25  # header + 24 elements
        from repro.graphs import read_metis_graph

        g = read_metis_graph(graph)
        assert g.nvertices == 24

    def test_write_assignment_creates_parents(self, tmp_path, capsys):
        target = tmp_path / "deep" / "nested" / "assign.csv"
        assert main(
            [
                "partition", "--ne", "2", "--nparts", "4",
                "--write-assignment", str(target),
            ]
        ) == 0
        assert target.read_text().splitlines()[0] == "gid,part"

    def test_write_assignment_unwritable_clean_error(self, tmp_path, capsys):
        # A parent that is a regular file is unwritable for any user
        # (including root), unlike chmod-based read-only directories.
        blocker = tmp_path / "blocker"
        blocker.write_text("i am a file")
        with pytest.raises(SystemExit) as exc:
            main(
                [
                    "partition", "--ne", "2", "--nparts", "4",
                    "--write-assignment", str(blocker / "sub" / "assign.csv"),
                ]
            )
        message = str(exc.value.code)
        assert "cannot write assignment" in message
        assert "Traceback" not in message

    def test_cache_dir_round_trip(self, tmp_path, capsys):
        argv = [
            "partition", "--ne", "2", "--nparts", "6", "--csv",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert main(argv) == 0  # served from the on-disk cache
        warm = capsys.readouterr().out
        assert warm == cold
        assert any((tmp_path / "cache").glob("*.npz"))


class TestBatchCommand:
    def write_requests(self, tmp_path):
        path = tmp_path / "reqs.json"
        path.write_text(
            json.dumps(
                [
                    {"ne": 2, "nparts": 4},
                    {"ne": 2, "nparts": 6, "method": "rb"},
                    {"ne": 2, "nparts": 4},  # duplicate: deduplicated
                ]
            )
        )
        return path

    def test_table_output(self, tmp_path, capsys):
        assert main(["batch", str(self.write_requests(tmp_path))]) == 0
        out = capsys.readouterr().out
        assert "Batch of 3 requests" in out
        assert "lb_nelemd" in out
        assert "rb" in out

    def test_csv_and_stats(self, tmp_path, capsys):
        assert main(
            ["batch", str(self.write_requests(tmp_path)), "--csv", "--stats"]
        ) == 0
        out = capsys.readouterr().out
        lines = out.splitlines()
        assert lines[0].startswith("ne,nparts,method,seed,source")
        assert len([ln for ln in lines if ln.startswith("2,")]) == 3
        assert "Partition service stats" in out

    def test_csv_request_file(self, tmp_path, capsys):
        path = tmp_path / "reqs.csv"
        path.write_text("ne,nparts,method\n2,4,sfc\n2,6,block\n")
        assert main(["batch", str(path), "--csv"]) == 0
        out = capsys.readouterr().out
        assert "2,6,block" in out

    def test_warm_cache_reports_hits(self, tmp_path, capsys):
        reqs = self.write_requests(tmp_path)
        cache = str(tmp_path / "cache")
        assert main(["batch", str(reqs), "--cache-dir", cache]) == 0
        capsys.readouterr()
        assert main(["batch", str(reqs), "--cache-dir", cache, "--csv"]) == 0
        out = capsys.readouterr().out
        assert "computed" not in out  # every request served from cache
        assert "disk" in out

    def test_write_assignments_match_partition_command(self, tmp_path, capsys):
        reqs = self.write_requests(tmp_path)
        outdir = tmp_path / "assignments"
        assert main(
            ["batch", str(reqs), "--write-assignments", str(outdir)]
        ) == 0
        files = sorted(outdir.glob("*.csv"))
        assert len(files) == 3
        serial = tmp_path / "serial.csv"
        assert main(
            [
                "partition", "--ne", "2", "--nparts", "4",
                "--write-assignment", str(serial),
            ]
        ) == 0
        assert files[0].read_text() == serial.read_text()

    def test_missing_file_clean_error(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["batch", str(tmp_path / "nope.json")])
        assert "not found" in str(exc.value.code)

    def test_bad_file_clean_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"nope": 1}')
        with pytest.raises(SystemExit) as exc:
            main(["batch", str(bad)])
        assert "expected a JSON list" in str(exc.value.code)


class TestSweepCommand:
    def test_table(self, capsys):
        assert main(
            ["sweep", "--ne", "2", "--methods", "sfc", "--nprocs", "2", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "Nproc" in out and "S(sfc)" in out

    def test_csv(self, capsys):
        assert main(
            [
                "sweep",
                "--ne",
                "2",
                "--methods",
                "sfc",
                "rb",
                "--nprocs",
                "4",
                "--csv",
            ]
        ) == 0
        out = capsys.readouterr().out.splitlines()
        assert out[0] == "nproc,speedup_sfc,gflops_sfc,speedup_rb,gflops_rb"
        assert out[1].startswith("4,")


class TestTraceCommand:
    def test_renders_timeline(self, capsys):
        assert main(
            ["trace", "--ne", "4", "--nparts", "12", "--max-ranks", "6"]
        ) == 0
        out = capsys.readouterr().out
        assert "<== critical" in out
        assert "idle=" in out

    def test_method_choice(self, capsys):
        assert main(
            ["trace", "--ne", "4", "--nparts", "8", "--method", "rb"]
        ) == 0
        assert "method=rb" in capsys.readouterr().out


class TestReportCommand:
    def test_structural_report(self, capsys):
        assert main(["report", "--ne", "4", "--nparts", "12"]) == 0
        out = capsys.readouterr().out
        assert "fragmented parts" in out
        assert "Worst parts" in out

    def test_metis_report(self, capsys):
        assert main(
            ["report", "--ne", "4", "--nparts", "12", "--method", "kway"]
        ) == 0
        assert "method=kway" in capsys.readouterr().out


class TestTable2Command:
    def test_runs_small(self, capsys):
        assert main(["table2", "--ne", "4", "--nparts", "48"]) == 0
        out = capsys.readouterr().out
        assert "LB(nelemd)" in out
        assert "K=96" in out

    def test_nlev_scales_tcv(self, capsys):
        main(["table2", "--ne", "8", "--nparts", "96", "--nlev", "1"])
        tcv1 = capsys.readouterr().out
        main(["table2", "--ne", "8", "--nparts", "96", "--nlev", "16"])
        tcv16 = capsys.readouterr().out

        def tcv_value(text):
            for line in text.splitlines():
                if line.startswith("TCV"):
                    return float(line.split()[2])
            raise AssertionError("no TCV row")

        # Printed to 2 decimals, so compare loosely.
        assert tcv_value(tcv16) == pytest.approx(16 * tcv_value(tcv1), rel=0.05)


class TestProfileCommand:
    def test_stage_table(self, capsys):
        assert main(
            ["profile", "--ne", "2", "--nparts", "6", "--method", "rb"]
        ) == 0
        out = capsys.readouterr().out
        assert "K=24 method=rb nparts=6" in out
        assert "Stage profile: rb ne=2 nparts=6 x1" in out
        # The METIS pipeline stages and the engine stages all report.
        for name in ("coarsen", "refine", "compute", "cache"):
            assert name in out
        assert "cache_misses=1" in out

    def test_repeat_exercises_cache(self, capsys):
        assert main(
            ["profile", "--ne", "2", "--nparts", "6", "--repeat", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "cache_hits=2" in out
        assert "cache_misses=1" in out

    def test_json_output(self, tmp_path, capsys):
        path = tmp_path / "prof" / "out.json"
        assert main(
            [
                "profile", "--ne", "2", "--nparts", "6",
                "--method", "sfc", "--json", str(path),
            ]
        ) == 0
        payload = json.loads(path.read_text())
        assert payload["command"] == "profile"
        assert payload["method"] == "sfc"
        assert payload["repeat"] == 1
        assert payload["elapsed_s"] > 0
        assert "cache" in payload["stages"]
        assert payload["stages"]["cache"]["calls"] == 1
        assert payload["counters"]["cache_misses"] == 1

    def test_repeat_rejects_nonpositive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["profile", "--ne", "2", "--nparts", "6", "--repeat", "0"]
            )


class TestProfileFlags:
    def test_partition_profile_table(self, capsys):
        assert main(
            ["partition", "--ne", "2", "--nparts", "4", "--profile"]
        ) == 0
        out = capsys.readouterr().out
        assert "LB(nelemd)" in out  # normal output still printed
        assert "Stage profile: partition" in out

    def test_partition_profile_json(self, tmp_path, capsys):
        path = tmp_path / "prof.json"
        assert main(
            [
                "partition", "--ne", "2", "--nparts", "4",
                "--method", "kway", "--profile-json", str(path),
            ]
        ) == 0
        payload = json.loads(path.read_text())
        assert payload["command"] == "partition"
        assert payload["method"] == "kway"
        assert "uncoarsen" in payload["stages"]

    def test_batch_profile_json(self, tmp_path, capsys):
        reqs = tmp_path / "reqs.json"
        reqs.write_text(json.dumps([{"ne": 2, "nparts": 4}]))
        path = tmp_path / "prof.json"
        assert main(
            ["batch", str(reqs), "--profile-json", str(path)]
        ) == 0
        payload = json.loads(path.read_text())
        assert payload["command"] == "batch"
        assert payload["counters"]["cache_misses"] == 1

    def test_no_flags_no_table(self, capsys):
        assert main(["partition", "--ne", "2", "--nparts", "4"]) == 0
        assert "Stage profile" not in capsys.readouterr().out


class TestTelemetryFlags:
    def test_partition_trace_json(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        assert main(
            ["partition", "--ne", "2", "--nparts", "4", "--trace-json", str(path)]
        ) == 0
        trace = json.loads(path.read_text())
        assert trace["schema"] == 1
        assert trace["meta"]["command"] == "partition"
        names = {e["name"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert {"engine_run", "cache", "compute"} <= names

    def test_partition_metrics_table(self, capsys):
        assert main(
            ["partition", "--ne", "2", "--nparts", "4", "--metrics"]
        ) == 0
        out = capsys.readouterr().out
        assert "LB(nelemd)" in out  # normal output still printed
        assert "request_lb_nelemd" in out
        assert "cache_misses" in out

    def test_batch_trace_has_worker_spans(self, tmp_path):
        reqs = tmp_path / "reqs.json"
        reqs.write_text(
            json.dumps(
                [
                    {"ne": 2, "nparts": 4, "method": "sfc"},
                    {"ne": 2, "nparts": 4, "method": "rb"},
                    {"ne": 2, "nparts": 6, "method": "sfc"},
                ]
            )
        )
        path = tmp_path / "trace.json"
        assert main(
            ["batch", str(reqs), "--jobs", "2", "--trace-json", str(path)]
        ) == 0
        trace = json.loads(path.read_text())
        events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        pool = [e for e in events if e["name"] == "pool"]
        assert len(pool) == 1
        pool_id = pool[0]["args"]["span_id"]
        worker = [e for e in events if "worker_pid" in e["args"]]
        assert worker, "no worker-side spans in the trace"
        computes = [e for e in worker if e["name"] == "compute"]
        assert computes
        assert all(e["args"]["parent_id"] == pool_id for e in computes)

    def test_batch_metrics_json_and_run_log(self, tmp_path):
        reqs = tmp_path / "reqs.json"
        reqs.write_text(json.dumps([{"ne": 2, "nparts": 4}]))
        mpath = tmp_path / "metrics.json"
        lpath = tmp_path / "run.jsonl"
        assert main(
            [
                "batch", str(reqs),
                "--metrics-json", str(mpath), "--run-log", str(lpath),
            ]
        ) == 0
        snapshot = json.loads(mpath.read_text())
        assert snapshot["schema"] == 1
        names = {entry["name"] for entry in snapshot["metrics"]}
        assert {
            "request_lb_nelemd", "request_lb_spcv",
            "request_edgecut", "request_tcv_points",
        } <= names
        kinds = {json.loads(line)["kind"] for line in lpath.read_text().splitlines()}
        assert {"run", "span", "metric"} <= kinds

    def test_profile_with_trace_json(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        assert main(
            [
                "profile", "--ne", "2", "--nparts", "6",
                "--trace-json", str(path),
            ]
        ) == 0
        assert "Stage profile" in capsys.readouterr().out
        assert json.loads(path.read_text())["traceEvents"]


class TestMetricsCommand:
    def test_reads_metrics_snapshot(self, tmp_path, capsys):
        mpath = tmp_path / "metrics.json"
        assert main(
            ["partition", "--ne", "2", "--nparts", "4",
             "--metrics-json", str(mpath)]
        ) == 0
        capsys.readouterr()
        assert main(["metrics", str(mpath)]) == 0
        out = capsys.readouterr().out
        assert "request_lb_nelemd" in out
        assert "request_edgecut" in out

    def test_prometheus_output(self, tmp_path, capsys):
        mpath = tmp_path / "metrics.json"
        main(["partition", "--ne", "2", "--nparts", "4",
              "--metrics-json", str(mpath)])
        capsys.readouterr()
        assert main(["metrics", str(mpath), "--prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE request_lb_nelemd histogram" in out
        assert 'request_lb_nelemd_bucket{le="+Inf",partitioner="sfc"} 1' in out

    def test_serves_request_file(self, tmp_path, capsys):
        reqs = tmp_path / "reqs.json"
        reqs.write_text(json.dumps([{"ne": 2, "nparts": 4}]))
        assert main(["metrics", str(reqs)]) == 0
        out = capsys.readouterr().out
        assert "served 1 requests" in out
        assert "request_tcv_points" in out

    def test_missing_source_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="not found"):
            main(["metrics", str(tmp_path / "nope.json")])


class TestMethodsCommand:
    def test_lists_all_registered(self, capsys):
        from repro.partition.registry import available

        assert main(["methods"]) == 0
        out = capsys.readouterr().out
        assert "Registered partitioners" in out
        for name in available():
            assert name in out
        assert "2^n * 3^m" in out  # sfc's ne constraint surfaced

    def test_csv_output(self, capsys):
        assert main(["methods", "--csv"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith(
            "method,family,weighted,seeded,schedule,continuous"
        )
        assert len(lines) == 10  # header + nine methods
        assert lines[1].startswith("sfc,sfc,yes,no,yes,yes")
        assert lines[2].startswith("morton,sfc,yes,no,no,no")

    def test_choices_follow_registry(self):
        """--method choices come from the registry, not a literal list."""
        from repro.partition.registry import available

        parser = build_parser()
        args = parser.parse_args(
            ["partition", "--ne", "4", "--nparts", "8", "--method", "strided"]
        )
        assert args.method == "strided"
        assert "strided" in available()


class TestCacheCommand:
    def test_info_prints_versions(self, capsys):
        from repro.partition.pipeline import cache_version

        assert main(["cache", "info"]) == 0
        out = capsys.readouterr().out
        assert f"cache version: {cache_version()}" in out
        assert "stage versions:" in out
        assert "mesh=1" in out

    def test_info_scans_directory(self, tmp_path, capsys):
        assert main(["partition", "--ne", "2", "--nparts", "4",
                     "--cache-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["cache", "info", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries: 1 (current 1, stale 0, unreadable 0)" in out

    def test_help_documents_stale_policy(self, capsys):
        with pytest.raises(SystemExit):
            main(["cache", "--help"])
        out = capsys.readouterr().out
        assert "recomputed" in out
        assert "never served" in out
