"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_curve_requires_selector(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["curve"])

    def test_curve_selectors_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["curve", "--size", "4", "--schedule", "H"])

    def test_partition_method_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["partition", "--ne", "4", "--nparts", "8", "--method", "magic"]
            )


class TestCurveCommand:
    def test_renders(self, capsys):
        assert main(["curve", "--size", "2"]) == 0
        out = capsys.readouterr().out
        assert "size=2" in out
        assert "0" in out and "3" in out

    def test_schedule_and_analyze(self, capsys):
        assert main(["curve", "--schedule", "PH", "--analyze"]) == 0
        out = capsys.readouterr().out
        assert "locality:" in out
        assert "bbox_aspect" in out

    def test_bad_size_errors(self):
        with pytest.raises(ValueError):
            main(["curve", "--size", "10"])


class TestPartitionCommand:
    def test_text_output(self, capsys):
        assert main(["partition", "--ne", "4", "--nparts", "12"]) == 0
        out = capsys.readouterr().out
        assert "LB(nelemd)   = 0.0000" in out
        assert "edgecut" in out

    def test_csv_output(self, capsys):
        assert main(
            ["partition", "--ne", "4", "--nparts", "8", "--csv"]
        ) == 0
        out = capsys.readouterr().out.splitlines()
        assert out[0].startswith("method,nparts")
        assert out[1].startswith("sfc,8,")

    def test_metis_method(self, capsys):
        assert main(
            ["partition", "--ne", "4", "--nparts", "8", "--method", "rb"]
        ) == 0
        assert "method=rb" in capsys.readouterr().out

    def test_write_files(self, tmp_path, capsys):
        assign = tmp_path / "assign.csv"
        graph = tmp_path / "mesh.graph"
        assert main(
            [
                "partition",
                "--ne",
                "2",
                "--nparts",
                "4",
                "--write-assignment",
                str(assign),
                "--write-graph",
                str(graph),
            ]
        ) == 0
        lines = assign.read_text().splitlines()
        assert lines[0] == "gid,part"
        assert len(lines) == 25  # header + 24 elements
        from repro.graphs import read_metis_graph

        g = read_metis_graph(graph)
        assert g.nvertices == 24


class TestSweepCommand:
    def test_table(self, capsys):
        assert main(
            ["sweep", "--ne", "2", "--methods", "sfc", "--nprocs", "2", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "Nproc" in out and "S(sfc)" in out

    def test_csv(self, capsys):
        assert main(
            [
                "sweep",
                "--ne",
                "2",
                "--methods",
                "sfc",
                "rb",
                "--nprocs",
                "4",
                "--csv",
            ]
        ) == 0
        out = capsys.readouterr().out.splitlines()
        assert out[0] == "nproc,speedup_sfc,gflops_sfc,speedup_rb,gflops_rb"
        assert out[1].startswith("4,")


class TestTraceCommand:
    def test_renders_timeline(self, capsys):
        assert main(
            ["trace", "--ne", "4", "--nparts", "12", "--max-ranks", "6"]
        ) == 0
        out = capsys.readouterr().out
        assert "<== critical" in out
        assert "idle=" in out

    def test_method_choice(self, capsys):
        assert main(
            ["trace", "--ne", "4", "--nparts", "8", "--method", "rb"]
        ) == 0
        assert "method=rb" in capsys.readouterr().out


class TestReportCommand:
    def test_structural_report(self, capsys):
        assert main(["report", "--ne", "4", "--nparts", "12"]) == 0
        out = capsys.readouterr().out
        assert "fragmented parts" in out
        assert "Worst parts" in out

    def test_metis_report(self, capsys):
        assert main(
            ["report", "--ne", "4", "--nparts", "12", "--method", "kway"]
        ) == 0
        assert "method=kway" in capsys.readouterr().out


class TestTable2Command:
    def test_runs_small(self, capsys):
        assert main(["table2", "--ne", "4", "--nparts", "48"]) == 0
        out = capsys.readouterr().out
        assert "LB(nelemd)" in out
        assert "K=96" in out

    def test_nlev_scales_tcv(self, capsys):
        main(["table2", "--ne", "8", "--nparts", "96", "--nlev", "1"])
        tcv1 = capsys.readouterr().out
        main(["table2", "--ne", "8", "--nparts", "96", "--nlev", "16"])
        tcv16 = capsys.readouterr().out

        def tcv_value(text):
            for line in text.splitlines():
                if line.startswith("TCV"):
                    return float(line.split()[2])
            raise AssertionError("no TCV row")

        # Printed to 2 decimals, so compare loosely.
        assert tcv_value(tcv16) == pytest.approx(16 * tcv_value(tcv1), rel=0.05)
