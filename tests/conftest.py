"""Shared fixtures: small meshes, graphs and partitions used across suites."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cubesphere import cubed_sphere_mesh
from repro.graphs import CSRGraph, graph_from_edges, mesh_graph


@pytest.fixture(scope="session")
def mesh4():
    """Cubed-sphere mesh at ne=4 (96 elements)."""
    return cubed_sphere_mesh(4)


@pytest.fixture(scope="session")
def mesh8():
    """Cubed-sphere mesh at ne=8 (K=384, the paper's smallest case)."""
    return cubed_sphere_mesh(8)


@pytest.fixture(scope="session")
def graph4(mesh4) -> CSRGraph:
    return mesh_graph(mesh4)


@pytest.fixture(scope="session")
def graph8(mesh8) -> CSRGraph:
    return mesh_graph(mesh8)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def grid_graph(nx: int, ny: int) -> CSRGraph:
    """A 4-connected nx x ny grid graph with unit weights."""
    edges = []
    for x in range(nx):
        for y in range(ny):
            v = x * ny + y
            if x + 1 < nx:
                edges.append((v, (x + 1) * ny + y))
            if y + 1 < ny:
                edges.append((v, v + 1))
    return graph_from_edges(nx * ny, np.array(edges))


def path_graph(n: int) -> CSRGraph:
    """A simple path of n vertices."""
    edges = np.array([(i, i + 1) for i in range(n - 1)])
    return graph_from_edges(n, edges)


def two_cliques(k: int) -> CSRGraph:
    """Two k-cliques joined by a single bridge edge."""
    edges = []
    for base in (0, k):
        for i in range(k):
            for j in range(i + 1, k):
                edges.append((base + i, base + j))
    edges.append((k - 1, k))
    return graph_from_edges(2 * k, np.array(edges))


@pytest.fixture()
def grid6x6() -> CSRGraph:
    return grid_graph(6, 6)
