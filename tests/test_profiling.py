"""Unit tests for the stage profiler and engine lifecycle."""

from __future__ import annotations

import json
import time

from repro.profiling import (
    Profiler,
    active_profiler,
    counter,
    profiled,
    stage,
)
from repro.service import PartitionEngine, PartitionRequest


class TestProfiler:
    def test_add_accumulates_time_and_calls(self):
        prof = Profiler()
        prof.add("coarsen", 0.25)
        prof.add("coarsen", 0.75)
        prof.add("refine", 0.5)
        assert prof.seconds["coarsen"] == 1.0
        assert prof.calls["coarsen"] == 2
        assert prof.calls["refine"] == 1

    def test_count_accumulates(self):
        prof = Profiler()
        prof.count("hits")
        prof.count("hits", 4)
        assert prof.counters == {"hits": 5}

    def test_finish_freezes_elapsed(self):
        prof = Profiler()
        prof.finish()
        frozen = prof.elapsed_s
        time.sleep(0.01)
        assert prof.elapsed_s == frozen

    def test_to_json_round_trips_with_meta(self):
        prof = Profiler()
        prof.add("cache", 0.5)
        prof.count("cache_hits", 3)
        prof.finish()
        payload = json.loads(prof.to_json(command="profile", ne=8))
        assert payload["command"] == "profile"
        assert payload["ne"] == 8
        assert payload["stages"]["cache"] == {"seconds": 0.5, "calls": 1}
        assert payload["counters"] == {"cache_hits": 3}
        assert payload["elapsed_s"] == prof.elapsed_s

    def test_render_sorts_by_time_desc(self):
        prof = Profiler()
        prof.add("small", 0.1)
        prof.add("big", 0.9)
        prof.count("widgets", 2)
        text = prof.render(title="T")
        lines = text.splitlines()
        assert lines[0].startswith("T  (wall")
        assert lines.index([l for l in lines if l.startswith("big")][0]) < (
            lines.index([l for l in lines if l.startswith("small")][0])
        )
        assert "widgets=2" in lines[-1]


class TestContextManagers:
    def test_stage_and_counter_noop_when_inactive(self):
        assert active_profiler() is None
        with stage("anything"):
            counter("anything")
        assert active_profiler() is None

    def test_profiled_activates_and_restores(self):
        with profiled() as prof:
            assert active_profiler() is prof
            with stage("work"):
                pass
            counter("events", 2)
        assert active_profiler() is None
        assert prof.calls["work"] == 1
        assert prof.counters["events"] == 2
        assert prof.elapsed_s > 0

    def test_profiled_nests_and_restores_outer(self):
        with profiled() as outer:
            with profiled() as inner:
                with stage("inner-only"):
                    pass
            assert active_profiler() is outer
        assert "inner-only" in inner.seconds
        assert "inner-only" not in outer.seconds


class TestEngineLifecycle:
    def test_close_is_idempotent(self):
        engine = PartitionEngine()
        engine.run([PartitionRequest(ne=2, nparts=4)])
        engine.close()
        engine.close()

    def test_context_manager_closes_pool(self):
        reqs = [
            PartitionRequest(ne=2, nparts=4),
            PartitionRequest(ne=2, nparts=6),
        ]
        with PartitionEngine(jobs=2) as engine:
            responses = engine.run(reqs)
            assert engine._pool is not None
            # A second run reuses the same pool.
            pool = engine._pool
            engine.run(reqs)
            assert engine._pool is pool
        assert engine._pool is None
        assert len(responses) == 2
