"""Structured JSON-lines logging: sinks, sampling, worker capture."""

from __future__ import annotations

import io
import json

import pytest

from repro.telemetry import (
    RequestContext,
    add_sink,
    log_event,
    read_log,
    remove_sink,
    request_context,
)
from repro.telemetry.logs import JsonLogger, capture_records, emit_records


@pytest.fixture
def stream_sink():
    stream = io.StringIO()
    sink = add_sink(stream)
    yield stream
    remove_sink(sink)


def _records(stream: io.StringIO) -> list[dict]:
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestLogEvent:
    def test_noop_without_sinks(self):
        log_event("orphan", x=1)  # must not raise, must not write anywhere

    def test_record_shape(self, stream_sink):
        log_event("unit.test", answer=42)
        (record,) = _records(stream_sink)
        assert record["schema"] == 1
        assert record["event"] == "unit.test"
        assert record["answer"] == 42
        assert isinstance(record["ts"], float)
        assert isinstance(record["pid"], int)
        assert "trace_id" not in record  # no active request context

    def test_context_ids_stamped(self, stream_sink):
        ctx = RequestContext.new()
        with request_context(ctx):
            log_event("unit.test")
        (record,) = _records(stream_sink)
        assert record["trace_id"] == ctx.trace_id
        assert record["request_id"] == ctx.request_id

    def test_multiple_sinks_each_get_the_record(self, stream_sink):
        other = io.StringIO()
        sink = add_sink(other)
        try:
            log_event("unit.test")
        finally:
            remove_sink(sink)
        assert len(_records(stream_sink)) == 1
        assert len(_records(other)) == 1

    def test_dead_sink_never_fails_a_request(self):
        class Dead:
            def write(self, *_):
                raise OSError("gone")

            def flush(self):
                raise OSError("gone")

        sink = add_sink(Dead())
        try:
            log_event("unit.test")  # swallowed
        finally:
            remove_sink(sink)


class TestFilteringAndSampling:
    def test_event_filter(self, tmp_path):
        path = tmp_path / "access.jsonl"
        sink = add_sink(path, events={"access"})
        try:
            log_event("access", status=200)
            log_event("engine.compute", ms=1.0)
        finally:
            remove_sink(sink)
        records = read_log(path)
        assert [r["event"] for r in records] == ["access"]

    def test_sample_keeps_whole_traces(self):
        logger = JsonLogger(io.StringIO(), sample=0.5)
        kept_by_trace = {}
        for _ in range(50):
            ctx = RequestContext.new()
            decisions = {
                logger.accepts(
                    {"event": "a", "trace_id": ctx.trace_id}
                )
                for _ in range(3)
            }
            assert len(decisions) == 1  # all-or-nothing per trace
            kept_by_trace[ctx.trace_id] = decisions.pop()
        kept = sum(kept_by_trace.values())
        assert 0 < kept < 50  # statistically certain at sample=0.5

    def test_context_free_records_always_pass(self):
        logger = JsonLogger(io.StringIO(), sample=0.001)
        assert logger.accepts({"event": "boot"})

    def test_bad_sample_rejected(self):
        with pytest.raises(ValueError):
            JsonLogger(io.StringIO(), sample=0.0)
        with pytest.raises(ValueError):
            JsonLogger(io.StringIO(), sample=1.5)


class TestWorkerCapture:
    def test_capture_masks_sinks_and_replays(self, stream_sink):
        with capture_records() as records:
            log_event("worker.compute", ms=2.0)
        assert _records(stream_sink) == []  # masked during capture
        assert [r["event"] for r in records] == ["worker.compute"]
        emit_records(records)
        (record,) = _records(stream_sink)
        assert record["event"] == "worker.compute"

    def test_replay_applies_sink_filters(self, tmp_path):
        path = tmp_path / "access.jsonl"
        with capture_records() as records:
            log_event("worker.compute")
            log_event("access")
        sink = add_sink(path, events={"access"})
        try:
            emit_records(records)
        finally:
            remove_sink(sink)
        assert [r["event"] for r in read_log(path)] == ["access"]

    def test_emit_tolerates_garbage(self, stream_sink):
        emit_records(None)
        emit_records([])
        emit_records(["not-a-dict", {"event": "ok"}])
        (record,) = _records(stream_sink)
        assert record["event"] == "ok"


class TestFileSink:
    def test_appends_and_reads_back(self, tmp_path):
        path = tmp_path / "logs" / "run.jsonl"
        for round_ in range(2):
            sink = add_sink(path)
            try:
                log_event("round", n=round_)
            finally:
                remove_sink(sink)
        assert [r["n"] for r in read_log(path)] == [0, 1]

    def test_read_log_skips_bad_lines(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"event": "ok"}\nnot json\n[1, 2]\n\n')
        assert [r["event"] for r in read_log(path)] == ["ok"]
