"""Thread-sampling wall-clock profiler (collapsed stacks)."""

from __future__ import annotations

import time

import pytest

from repro.telemetry import StackSampler, collapse_stacks, sample_stacks
from repro.telemetry.sampling import MAX_SECONDS


def _spin(deadline: float) -> None:
    while time.perf_counter() < deadline:
        sum(range(100))


class TestStackSampler:
    def test_collects_samples_of_running_code(self):
        sampler = StackSampler(interval=0.002)
        with sampler:
            _spin(time.perf_counter() + 0.08)
        assert sampler.samples > 0
        text = sampler.collapsed()
        assert text
        # Collapsed format: "frame;frame;... count" per line.
        for line in text.splitlines():
            path, _, count = line.rpartition(" ")
            assert path
            assert int(count) > 0
        # The busy loop itself must show up in some stack.
        assert "_spin" in text

    def test_sample_stacks_blocks_and_returns(self):
        sampler = sample_stacks(0.03, interval=0.002)
        assert sampler.samples >= 1

    def test_sample_stacks_validates_duration(self):
        with pytest.raises(ValueError):
            sample_stacks(0.0)
        with pytest.raises(ValueError):
            sample_stacks(-1.0)
        with pytest.raises(ValueError):
            sample_stacks(MAX_SECONDS + 1)

    def test_stop_is_idempotent(self):
        sampler = StackSampler(interval=0.002)
        sampler.start()
        sampler.stop()
        sampler.stop()


class TestCollapseStacks:
    def test_orders_by_count_then_path(self):
        counts = {
            ("mod:a", "mod:b"): 3,
            ("mod:a",): 5,
            ("mod:z",): 3,
        }
        lines = collapse_stacks(counts).splitlines()
        assert lines[0] == "mod:a 5"
        assert lines[1] == "mod:a;mod:b 3"
        assert lines[2] == "mod:z 3"

    def test_empty(self):
        assert collapse_stacks({}) == ""
