"""Multi-window SLO burn rates: the /healthz verdict arithmetic."""

from __future__ import annotations

import pytest

from repro.telemetry import SLOTracker


class FakeClock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def tick(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


def _tracker(clock, **kwargs) -> SLOTracker:
    kwargs.setdefault("windows", (10, 60))
    kwargs.setdefault("burn_threshold", 10.0)
    return SLOTracker(clock=clock, **kwargs)


class TestRecording:
    def test_healthy_traffic_is_ok(self, clock):
        slo = _tracker(clock)
        for _ in range(100):
            slo.record(200, 0.01)
            clock.tick(0.05)
        health = slo.health()
        assert health["status"] == "ok"
        assert health["degraded_by"] == []
        assert health["lifetime"] == {"count": 100, "errors": 0}

    def test_client_errors_do_not_burn_budget(self, clock):
        slo = _tracker(clock)
        for _ in range(50):
            slo.record(422, 0.01)
        stats = slo.window_stats(10)
        assert stats["errors"] == 0
        assert stats["availability_burn"] == 0.0

    def test_slow_requests_burn_latency_budget(self, clock):
        slo = _tracker(clock, latency_slo_s=0.1, latency_objective=0.99)
        for _ in range(10):
            slo.record(200, 0.5)
        stats = slo.window_stats(10)
        assert stats["slow"] == 10
        assert stats["latency_burn"] == pytest.approx(100.0)


class TestMultiWindowRule:
    def test_sustained_errors_degrade(self, clock):
        slo = _tracker(clock)
        # 100% 5xx across both windows: burn 1000x in each.
        for _ in range(120):
            slo.record(500, 0.01)
            clock.tick(0.5)
        health = slo.health()
        assert health["status"] == "degraded"
        assert "availability" in health["degraded_by"]

    def test_old_blip_recovers_via_short_window(self, clock):
        slo = _tracker(clock)
        for _ in range(30):
            slo.record(500, 0.01)
        # 20 quiet-but-healthy seconds: the 10s window forgets the
        # blip, the 60s window still remembers it.
        for _ in range(40):
            clock.tick(0.5)
            slo.record(200, 0.01)
        long_window = slo.window_stats(60)
        assert long_window["errors"] == 30
        assert slo.health()["status"] == "ok"  # short window is clean

    def test_short_spike_alone_does_not_degrade(self, clock):
        slo = _tracker(clock)
        # A long healthy history, then a brief 5xx spike: the short
        # window burns hot but the long window dilutes it below the
        # threshold, so the verdict stays ok.
        for _ in range(1500):
            slo.record(200, 0.01)
            clock.tick(0.05)
        for _ in range(3):
            slo.record(500, 0.01)
            clock.tick(0.1)
        assert slo.window_stats(10)["availability_burn"] > 10.0
        assert slo.health()["status"] == "ok"

    def test_empty_tracker_is_ok(self, clock):
        health = _tracker(clock).health()
        assert health["status"] == "ok"
        assert health["windows"][0]["count"] == 0


class TestExpiry:
    def test_ring_forgets_beyond_horizon(self, clock):
        slo = _tracker(clock)
        slo.record(500, 0.01)
        clock.tick(61)
        assert slo.window_stats(60)["count"] == 0
        assert slo.total == 1  # lifetime totals never expire


class TestValidation:
    def test_bad_objectives_rejected(self, clock):
        with pytest.raises(ValueError):
            SLOTracker(availability_objective=1.0, clock=clock)
        with pytest.raises(ValueError):
            SLOTracker(latency_objective=0.0, clock=clock)
        with pytest.raises(ValueError):
            SLOTracker(latency_slo_s=0.0, clock=clock)
        with pytest.raises(ValueError):
            SLOTracker(windows=(60, 10), clock=clock)
        with pytest.raises(ValueError):
            SLOTracker(windows=(), clock=clock)
