"""Request identity: traceparent parsing, propagation, contextvar."""

from __future__ import annotations

from repro.telemetry import (
    RequestContext,
    current_context,
    parse_traceparent,
    request_context,
)


class TestRequestContext:
    def test_new_generates_well_formed_ids(self):
        ctx = RequestContext.new()
        assert len(ctx.trace_id) == 32
        assert len(ctx.request_id) == 16
        int(ctx.trace_id, 16)
        int(ctx.request_id, 16)
        assert ctx.parent_id == "0" * 16
        assert ctx.sampled

    def test_new_ids_are_distinct(self):
        a, b = RequestContext.new(), RequestContext.new()
        assert a.trace_id != b.trace_id
        assert a.request_id != b.request_id

    def test_traceparent_format(self):
        ctx = RequestContext(trace_id="ab" * 16, request_id="cd" * 8)
        assert ctx.traceparent() == f"00-{'ab' * 16}-{'cd' * 8}-01"
        unsampled = RequestContext(
            trace_id="ab" * 16, request_id="cd" * 8, sampled=False
        )
        assert unsampled.traceparent().endswith("-00")

    def test_dict_round_trip(self):
        ctx = RequestContext.new()
        back = RequestContext.from_dict(ctx.to_dict())
        assert back == ctx

    def test_from_dict_none(self):
        assert RequestContext.from_dict(None) is None
        assert RequestContext.from_dict({}) is None


class TestParseTraceparent:
    def test_valid_header_continues_the_trace(self):
        trace, parent = "ab" * 16, "cd" * 8
        ctx = parse_traceparent(f"00-{trace}-{parent}-01")
        assert ctx is not None
        assert ctx.trace_id == trace
        assert ctx.parent_id == parent
        assert ctx.request_id != parent  # fresh span id for this hop
        assert ctx.sampled

    def test_sampled_flag_parsed(self):
        ctx = parse_traceparent(f"00-{'ab' * 16}-{'cd' * 8}-00")
        assert ctx is not None and not ctx.sampled

    def test_round_trip_through_traceparent(self):
        first = RequestContext.new()
        second = parse_traceparent(first.traceparent())
        assert second is not None
        assert second.trace_id == first.trace_id
        assert second.parent_id == first.request_id

    def test_malformed_headers_rejected(self):
        trace, span = "ab" * 16, "cd" * 8
        bad = [
            None,
            "",
            "garbage",
            f"00-{trace}-{span}",               # missing flags
            f"00-{trace}-{span}-01-extra",      # version 00 with 5 fields
            f"ff-{trace}-{span}-01",            # reserved version
            f"00-{'0' * 32}-{span}-01",         # all-zero trace id
            f"00-{trace}-{'0' * 16}-01",        # all-zero parent id
            f"00-{trace[:-2]}-{span}-01",       # short trace id
            f"00-{trace}-{span}-0z",            # non-hex flags
            f"00-{trace.upper()}-{span}-01",    # uppercase hex
        ]
        for header in bad:
            assert parse_traceparent(header) is None, header

    def test_future_version_with_extra_fields_accepted(self):
        ctx = parse_traceparent(f"01-{'ab' * 16}-{'cd' * 8}-01-whatever")
        assert ctx is not None


class TestContextVar:
    def test_default_is_none(self):
        assert current_context() is None

    def test_enter_and_reset(self):
        ctx = RequestContext.new()
        with request_context(ctx):
            assert current_context() is ctx
            inner = RequestContext.new()
            with request_context(inner):
                assert current_context() is inner
            assert current_context() is ctx
        assert current_context() is None

    def test_follows_asyncio_tasks(self):
        import asyncio

        async def main():
            async def task_ctx(ctx):
                with request_context(ctx):
                    await asyncio.sleep(0.001)
                    return current_context().trace_id

            a, b = RequestContext.new(), RequestContext.new()
            got = await asyncio.gather(task_ctx(a), task_ctx(b))
            return got, [a.trace_id, b.trace_id]

        got, want = asyncio.run(main())
        assert got == want
