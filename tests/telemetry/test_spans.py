"""Span collection, nesting, sessions, and the exporters."""

from __future__ import annotations

import json

import pytest

from repro.telemetry import (
    chrome_trace,
    load_metrics,
    read_run_log,
    span,
    telemetry_session,
    write_chrome_trace,
    write_metrics_json,
    write_run_log,
)
from repro.telemetry.runtime import inc, observe, telemetry_active
from repro.telemetry.spans import Span, SpanCollector


def test_span_noop_when_inactive():
    assert not telemetry_active()
    with span("anything", "cat", k=1):
        pass  # must not record or raise
    inc("nothing")
    observe("nothing", 1.0)


def test_spans_nest():
    with telemetry_session() as session:
        with span("outer", "t"):
            with span("inner", "t"):
                pass
    spans = {s.name: s for s in session.tracer.spans}
    assert spans["inner"].parent == spans["outer"].id
    assert spans["outer"].parent == 0
    # inner closes first
    assert session.tracer.spans[0].name == "inner"


def test_span_args_and_category():
    with telemetry_session() as session:
        with span("work", "metis", method="rb", nparts=8):
            pass
    (s,) = session.tracer.spans
    assert s.cat == "metis"
    assert s.args == {"method": "rb", "nparts": 8}
    assert s.dur_us >= 0


def test_sessions_do_not_leak():
    with telemetry_session():
        assert telemetry_active()
    assert not telemetry_active()


def test_nested_sessions_restore_outer():
    with telemetry_session() as outer:
        with telemetry_session() as inner:
            with span("x"):
                pass
        assert len(inner.tracer.spans) == 1
        assert len(outer.tracer.spans) == 0


def test_span_from_dict_tolerates_unknown_fields():
    s = Span.from_dict(
        {"id": 1, "name": "x", "ts_us": 5, "dur_us": 2.0, "future_field": True}
    )
    assert s.id == 1 and s.parent == 0 and s.args == {}


def test_ingest_remaps_and_reparents():
    parent = SpanCollector(pid=100)
    sid, _ = parent.begin()  # an open span to attach under
    worker = SpanCollector(pid=200)
    wid, wparent = worker.begin()
    cid, cparent = worker.begin()
    worker.end(cid, cparent, "child", "", 10, 1.0, {})
    worker.end(wid, wparent, "top", "", 10, 2.0, {})
    n = parent.ingest(worker.export(), attach_parent=parent.open_parent())
    assert n == 2
    by_name = {s.name: s for s in parent.spans}
    assert by_name["top"].parent == sid  # re-parented under the open span
    assert by_name["child"].parent == by_name["top"].id  # remapped, still nested
    assert all(s.pid == 100 for s in parent.spans)
    assert all(s.tid == 200 for s in parent.spans)
    assert all(s.args["worker_pid"] == 200 for s in parent.spans)
    # ids allocated after ingest don't collide
    nid, _ = parent.begin()
    assert nid > max(s.id for s in parent.spans)


class TestExporters:
    @pytest.fixture()
    def session(self):
        with telemetry_session(run_id="test1234", command="unit") as session:
            with span("outer", "t"):
                with span("inner", "t"):
                    pass
            inc("hits", 3)
            observe("request_lb_nelemd", 0.01)
        return session

    def test_chrome_trace_shape(self, session):
        trace = chrome_trace(session)
        assert trace["schema"] == 1
        assert trace["run_id"] == "test1234"
        events = trace["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"outer", "inner"}
        for e in complete:
            assert set(e) >= {"name", "cat", "ph", "ts", "dur", "pid", "tid"}
        meta = [e for e in events if e["ph"] == "M"]
        assert meta and meta[0]["name"] == "process_name"

    def test_chrome_trace_file_is_valid_json(self, session, tmp_path):
        path = write_chrome_trace(tmp_path / "trace.json", session)
        data = json.loads(path.read_text())
        assert isinstance(data["traceEvents"], list)

    def test_metrics_json_roundtrip(self, session, tmp_path):
        path = write_metrics_json(tmp_path / "metrics.json", session)
        data = json.loads(path.read_text())
        assert data["schema"] == 1
        registry = load_metrics(path)
        assert registry.counter("hits").value == 3

    def test_run_log_roundtrip(self, session, tmp_path):
        path = write_run_log(tmp_path / "run.jsonl", session)
        log = read_run_log(path)
        assert log["run"]["run_id"] == "test1234"
        assert {s["name"] for s in log["spans"]} == {"outer", "inner"}
        assert log["metrics"].counter("hits").value == 3
        # every line is standalone JSON
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_run_log_tolerates_junk_and_unknown_kinds(self, session, tmp_path):
        path = write_run_log(tmp_path / "run.jsonl", session)
        with path.open("a") as fh:
            fh.write("not json at all\n")
            fh.write(json.dumps({"kind": "future_event", "x": 1}) + "\n")
        log = read_run_log(path)
        assert log["metrics"].counter("hits").value == 3

    def test_load_metrics_rejects_other_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"requests": []}')
        with pytest.raises(ValueError):
            load_metrics(path)
