"""Quality metrics are identical with C kernels and the Python fallback.

The ``kernels`` label on ``part_graph_total`` records which path ran;
everything the paper reports — LB(nelemd), LB(spcv), edgecut, TCV —
must not depend on it.  Each side runs in a subprocess because the
kernel library is chosen at import time.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

_SCRIPT = """
import json, sys
from repro.service import PartitionEngine, PartitionRequest
from repro.telemetry import telemetry_session

requests = [
    PartitionRequest(ne=4, nparts=8, method="rb"),
    PartitionRequest(ne=4, nparts=8, method="kway"),
    PartitionRequest(ne=4, nparts=12, method="tv"),
]
with telemetry_session() as session:
    with PartitionEngine() as engine:
        engine.run(requests)
print(json.dumps(session.metrics.snapshot()))
"""

#: Metrics that legitimately differ between the two runs: wall time,
#: and the counter labelled with the kernel path itself.
_EXCLUDE = {"request_compute_seconds", "part_graph_total"}


def _run(no_ckernels: bool) -> dict:
    env = dict(os.environ)
    env.pop("REPRO_NO_CKERNELS", None)
    if no_ckernels:
        env["REPRO_NO_CKERNELS"] = "1"
    proc = subprocess.run(
        [sys.executable, "-c", _SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    snapshot = json.loads(proc.stdout)
    return {
        (e["name"], tuple(sorted(e.get("labels", {}).items()))): {
            k: v for k, v in e.items() if k not in ("name", "labels")
        }
        for e in snapshot
        if e["name"] not in _EXCLUDE
    }


def test_metrics_identical_with_and_without_ckernels():
    with_kernels = _run(no_ckernels=False)
    fallback = _run(no_ckernels=True)
    assert with_kernels == fallback
    # sanity: the comparison actually covers the quality histograms
    names = {name for name, _ in with_kernels}
    assert {"request_lb_nelemd", "request_lb_spcv",
            "request_edgecut", "request_tcv_points"} <= names


def test_kernel_selection_label_reflects_fallback():
    env = dict(os.environ)
    env["REPRO_NO_CKERNELS"] = "1"
    proc = subprocess.run(
        [sys.executable, "-c", _SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    snapshot = json.loads(proc.stdout)
    labels = [
        e["labels"]
        for e in snapshot
        if e["name"] == "part_graph_total"
    ]
    assert labels and all(lab["kernels"] == "python" for lab in labels)
