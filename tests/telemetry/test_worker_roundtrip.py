"""Spans and metrics recorded inside pool workers reach the parent."""

from __future__ import annotations

from repro.profiling import profiled
from repro.service import PartitionEngine, PartitionRequest
from repro.telemetry import telemetry_session

REQUESTS = [
    PartitionRequest(ne=4, nparts=8, method="sfc"),
    PartitionRequest(ne=4, nparts=8, method="rb"),
    PartitionRequest(ne=4, nparts=12, method="sfc"),
]


def test_pool_spans_ship_back_to_parent():
    with telemetry_session() as session:
        with PartitionEngine(jobs=2) as engine:
            responses = engine.run(REQUESTS)
    assert all(r.source == "computed" for r in responses)
    spans = session.tracer.spans
    by_name = {}
    for s in spans:
        by_name.setdefault(s.name, []).append(s)
    # worker-side spans arrived and are tagged with their worker pid
    computes = by_name["compute"]
    assert len(computes) == len(REQUESTS)
    assert all("worker_pid" in s.args for s in computes)
    # ... and are re-parented under the engine's pool span
    (pool,) = by_name["pool"]
    assert all(s.parent == pool.id for s in computes)
    assert all(s.pid == pool.pid for s in computes)
    # worker pids become track ids (one track per worker)
    assert {s.tid for s in computes} <= {
        s.args["worker_pid"] for s in computes
    }
    # multilevel stages from inside part_graph made the trip too
    assert "coarsen" in by_name and "refine" in by_name
    # workers land temporally inside the pool span (shared epoch clock)
    lo, hi = pool.ts_us, pool.ts_us + pool.dur_us
    assert all(lo <= s.ts_us <= hi for s in computes)


def test_pool_metrics_merge_into_parent_registry():
    with telemetry_session() as session:
        with PartitionEngine(jobs=2) as engine:
            engine.run(REQUESTS)
    reg = session.metrics
    assert reg.counter("worker_payloads_merged").value == len(REQUESTS)
    # quality histograms recorded in the parent (one per response),
    # labeled by registry partitioner name
    lb_series = {
        labels.get("partitioner"): metric
        for name, labels, metric in reg.items()
        if name == "request_lb_nelemd"
    }
    assert set(lb_series) == {"sfc", "rb"}
    assert sum(m.total for m in lb_series.values()) == len(REQUESTS)
    # kernel-selection counters recorded in the workers, merged here
    total = sum(
        metric.value
        for name, _labels, metric in reg.items()
        if name == "part_graph_total"
    )
    assert total >= 1  # rb request always calls part_graph


def test_pool_stages_reach_legacy_profiler():
    """The documented pool gap: ``--profile --jobs N`` sees worker stages."""
    with profiled() as prof:
        with PartitionEngine(jobs=2) as engine:
            engine.run(REQUESTS)
    stages = prof.as_dict()["stages"]
    assert stages["compute"]["calls"] == len(REQUESTS)
    assert "coarsen" in stages  # recorded inside a worker process


def test_pool_without_collectors_ships_no_payload():
    with PartitionEngine(jobs=2) as engine:
        responses = engine.run(REQUESTS)
    assert all(r.source == "computed" for r in responses)


def test_parallel_results_match_serial():
    with telemetry_session():
        with PartitionEngine(jobs=2) as engine:
            parallel = engine.run(REQUESTS)
    with PartitionEngine(jobs=1) as engine:
        serial = engine.run(REQUESTS)
    for p, s in zip(parallel, serial):
        assert (p.assignment == s.assignment).all()
        assert p.metrics == s.metrics
