"""Metrics registry: counters, gauges, histograms, snapshots, exposition."""

from __future__ import annotations

import pytest

from repro.telemetry import MetricsRegistry
from repro.telemetry.metrics import (
    BUCKETS_BY_METRIC,
    DEFAULT_BUCKETS,
    Histogram,
)


class TestCounter:
    def test_increments(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc()
        reg.counter("hits").inc(3)
        assert reg.counter("hits").value == 4

    def test_labels_separate_series(self):
        reg = MetricsRegistry()
        reg.counter("req", method="rb").inc()
        reg.counter("req", method="sfc").inc(2)
        assert reg.counter("req", method="rb").value == 1
        assert reg.counter("req", method="sfc").value == 2

    def test_negative_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("hits").inc(-1)

    def test_kind_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x")


class TestGauge:
    def test_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("depth").set(7)
        reg.gauge("depth").set(0)
        assert reg.gauge("depth").value == 0


class TestHistogram:
    def test_bucketing_is_inclusive_upper(self):
        h = Histogram((1.0, 2.0, 4.0))
        for v in (0.5, 1.0, 1.5, 4.0, 99.0):
            h.observe(v)
        # (<=1, <=2, <=4, +Inf)
        assert h.counts == [2, 1, 1, 1]
        assert h.total == 5
        assert h.min == 0.5 and h.max == 99.0

    def test_rejects_bad_boundaries(self):
        with pytest.raises(ValueError):
            Histogram(())
        with pytest.raises(ValueError):
            Histogram((1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram((2.0, 1.0))

    def test_default_buckets_valid(self):
        for bounds in (DEFAULT_BUCKETS, *BUCKETS_BY_METRIC.values()):
            Histogram(bounds)  # must not raise

    def test_quality_metric_names_have_buckets(self):
        for name in (
            "request_lb_nelemd",
            "request_lb_spcv",
            "request_edgecut",
            "request_tcv_points",
        ):
            assert name in BUCKETS_BY_METRIC

    def test_mean_empty(self):
        assert Histogram((1.0,)).mean == 0.0


class TestSnapshotMerge:
    def test_roundtrip(self):
        reg = MetricsRegistry()
        reg.counter("hits", source="memory").inc(5)
        reg.gauge("depth").set(3)
        reg.histogram("lat").observe(0.002)
        clone = MetricsRegistry.from_snapshot(reg.snapshot())
        assert clone.snapshot() == reg.snapshot()

    def test_merge_accumulates(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("hits").inc(2)
        a.histogram("lat").observe(0.01)
        b.counter("hits").inc(3)
        b.histogram("lat").observe(0.02)
        a.merge(b.snapshot())
        assert a.counter("hits").value == 5
        assert a.histogram("lat").total == 2

    def test_merge_boundary_mismatch_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("lat", buckets=(1.0, 2.0)).observe(1.5)
        b.histogram("lat", buckets=(5.0, 9.0)).observe(6.0)
        with pytest.raises(ValueError):
            a.merge(b.snapshot())

    def test_merge_tolerates_unknown_kind(self):
        reg = MetricsRegistry()
        reg.merge([{"name": "future", "kind": "summary", "value": 1}])
        assert len(reg) == 0


class TestRendering:
    def test_prometheus_format(self):
        reg = MetricsRegistry()
        reg.counter("hits", source="memory").inc(2)
        reg.histogram("lat", buckets=(1.0, 2.0)).observe(1.5)
        text = reg.to_prometheus()
        assert '# TYPE hits counter' in text
        assert 'hits{source="memory"} 2' in text
        assert 'lat_bucket{le="1"} 0' in text
        assert 'lat_bucket{le="2"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_sum 1.5" in text
        assert "lat_count 1" in text

    def test_render_empty(self):
        assert "no metrics" in MetricsRegistry().render()

    def test_render_tables(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc()
        reg.histogram("request_lb_nelemd").observe(0.01)
        text = reg.render()
        assert "hits" in text
        assert "request_lb_nelemd" in text


class TestPrometheusExposition:
    def test_help_lines_once_per_family(self):
        reg = MetricsRegistry()
        reg.counter("cache_hits").inc()
        reg.counter("server_requests_total", status="200").inc()
        reg.counter("server_requests_total", status="503").inc()
        text = reg.to_prometheus()
        assert (
            "# HELP cache_hits Requests answered from the partition cache."
            in text
        )
        assert text.count("# HELP server_requests_total") == 1
        assert text.count("# TYPE server_requests_total") == 1

    def test_help_precedes_type_per_family(self):
        reg = MetricsRegistry()
        reg.counter("cache_hits").inc()
        reg.histogram("server_request_seconds").observe(0.01)
        lines = reg.to_prometheus().splitlines()
        for i, line in enumerate(lines):
            if line.startswith("# TYPE "):
                family = line.split()[2]
                assert lines[i - 1].startswith(f"# HELP {family} ")

    def test_unknown_metric_gets_generic_help(self):
        reg = MetricsRegistry()
        reg.gauge("totally_new_gauge").set(3)
        assert "# HELP totally_new_gauge repro gauge." in reg.to_prometheus()

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("evil", path='a"b\\c\nd').inc()
        text = reg.to_prometheus()
        assert '\npath' not in text  # the newline must not split the line
        assert 'evil{path="a\\"b\\\\c\\nd"} 1' in text

    def test_help_text_escaped(self):
        from repro.telemetry.metrics import _escape_help

        assert _escape_help("a\\b\nc") == "a\\\\b\\nc"

    def test_exposition_round_trips_every_line(self):
        import re

        reg = MetricsRegistry()
        reg.counter("cache_hits").inc(2)
        reg.counter("server_requests_total", status="200").inc()
        reg.gauge("server_queue_depth").set(1)
        reg.histogram("server_request_seconds").observe(0.002)
        sample = re.compile(
            r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9.eE+\-]+$'
        )
        for line in reg.to_prometheus().splitlines():
            if not line:
                continue
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE "))
                continue
            assert sample.match(line), line
