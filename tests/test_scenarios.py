"""Tests for the named weight-scenario registry and its generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro import scenarios
from repro.scenarios import (
    Scenario,
    UnknownScenarioError,
    available_scenarios,
    get_scenario,
    register_scenario,
    scenario_weights,
    specs,
)

NE = 6
K = 6 * NE * NE


class TestRegistry:
    def test_builtin_scenarios_registered(self):
        assert {"storm", "daynight", "amr"} <= set(available_scenarios())

    def test_specs_align_with_names(self):
        assert tuple(s.name for s in specs()) == available_scenarios()

    def test_unknown_name_did_you_mean(self):
        with pytest.raises(UnknownScenarioError, match="did you mean 'storm'"):
            get_scenario("strom")

    def test_unknown_scenario_is_value_error(self):
        """Service boundaries catch ValueError; the subclass must be one."""
        with pytest.raises(ValueError, match="unknown scenario"):
            scenario_weights("nope", NE)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(get_scenario("storm"))

    def test_replace_allows_reregistration(self):
        spec = get_scenario("storm")
        assert register_scenario(spec, replace=True) is spec

    def test_bad_name_rejected(self):
        with pytest.raises(ValueError, match="identifier"):
            register_scenario(Scenario(name="no spaces", generate=lambda ne, s: None))

    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError, match="does not accept parameters"):
            scenario_weights("storm", NE, wind=3.0)


@pytest.mark.parametrize("name", ["storm", "daynight", "amr"])
class TestGeneratorContract:
    def test_shape_dtype_positive_finite(self, name):
        w = scenario_weights(name, NE, step=7)
        assert w.shape == (K,)
        assert w.dtype == np.float64
        assert w.flags["C_CONTIGUOUS"]
        assert np.isfinite(w).all()
        assert (w > 0).all()

    def test_deterministic(self, name):
        """Same (name, ne, step, params) is bit-identical — the property
        that makes scenario requests content-addressable."""
        a = scenario_weights(name, NE, step=13)
        b = scenario_weights(name, NE, step=13)
        np.testing.assert_array_equal(a, b)

    def test_periodic_in_nsteps(self, name):
        a = scenario_weights(name, NE, step=3)
        b = scenario_weights(name, NE, step=103)  # default nsteps=100
        np.testing.assert_array_equal(a, b)

    def test_steps_differ(self, name):
        a = scenario_weights(name, NE, step=0)
        b = scenario_weights(name, NE, step=25)
        assert not np.array_equal(a, b)


class TestStorm:
    def test_hotspot_moves_with_step(self):
        """The weight maximum tracks the circling storm center."""
        peaks = [int(np.argmax(scenario_weights("storm", NE, s)))
                 for s in (0, 25, 50, 75)]
        assert len(set(peaks)) == 4

    def test_amplitude_param(self):
        calm = scenario_weights("storm", NE, 0, amplitude=0.5)
        wild = scenario_weights("storm", NE, 0, amplitude=50.0)
        assert wild.max() > calm.max()
        assert np.isclose(calm.min(), 1.0, atol=0.1)


class TestDaynight:
    def test_hemisphere_contrast(self):
        w = scenario_weights("daynight", NE, 0)
        # Dark columns sit at exactly night_weight; sunlit ones above.
        assert np.isclose(w.min(), 1.0)
        assert w.max() > 3.5

    def test_invalid_weights_rejected(self):
        with pytest.raises(ValueError, match="night_weight"):
            scenario_weights("daynight", NE, 0, night_weight=5.0, day_weight=1.0)


class TestAmr:
    def test_cycle_breathes(self):
        """Level runs 0 -> max -> 0 over the cycle: uniform at the ends,
        maximally refined in the middle."""
        start = scenario_weights("amr", NE, 0)
        middle = scenario_weights("amr", NE, 50)
        assert np.all(start == 1.0)
        assert middle.max() == 4.0 ** 2  # default max_level=2

    def test_weights_are_power_of_four_leaf_counts(self):
        w = scenario_weights("amr", NE, 30, max_level=3)
        assert set(np.unique(w)) <= {4.0 ** v for v in range(4)}

    def test_bad_level_rejected(self):
        with pytest.raises(ValueError, match="max_level"):
            scenario_weights("amr", NE, 0, max_level=0)
