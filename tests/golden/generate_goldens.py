"""Generate the golden reference outputs for the kernelization PR.

Run from the repo root with the *pre-kernelization* implementations::

    PYTHONPATH=src python tests/golden/generate_goldens.py

The committed ``metis_golden.npz`` / ``halo_golden.json`` files were
produced by the pure-Python loops that predate the NumPy kernels; the
golden tests in ``tests/metis/test_golden.py`` and
``tests/seam/test_golden.py`` assert that the kernelized code
reproduces them bit-for-bit.  Regenerating with post-kernel code makes
the tests tautological — only do that if the algorithms are changed
*deliberately* (and say so in the commit).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.cubesphere import cubed_sphere_mesh
from repro.graphs import graph_from_edges, mesh_graph
from repro.metis import part_graph
from repro.metis.matching import heavy_edge_matching, random_matching
from repro.metis.refine import fm_refine_bisection, greedy_kway_refine
from repro.partition import sfc_partition
from repro.partition.metrics import evaluate_partition
from repro.seam import build_geometry, build_point_map
from repro.seam.dss import exchange_schedule

HERE = Path(__file__).parent


def random_weighted_graph(n: int = 60, seed: int = 42):
    """Deterministic random connected weighted graph (shared with tests)."""
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n)
    edges = {
        (min(int(a), int(b)), max(int(a), int(b))) for a, b in zip(perm, perm[1:])
    }
    for _ in range(3 * n):
        a, b = rng.integers(n, size=2)
        if a != b:
            edges.add((min(int(a), int(b)), max(int(a), int(b))))
    earr = np.array(sorted(edges), dtype=np.int64)
    ew = rng.integers(1, 10, size=len(earr)).astype(np.int64)
    vw = rng.integers(1, 5, size=n).astype(np.int64)
    return graph_from_edges(n, earr, ew, vw)


def main() -> None:
    arrays: dict[str, np.ndarray] = {}
    scalars: dict[str, int] = {}

    mesh4 = mesh_graph(cubed_sphere_mesh(4))  # K = 96
    mesh6 = mesh_graph(cubed_sphere_mesh(6))  # K = 216
    rand = random_weighted_graph()

    # -- full METIS pipelines -------------------------------------------
    for name, graph in (("mesh4", mesh4), ("mesh6", mesh6), ("rand", rand)):
        for method in ("rb", "kway", "tv"):
            for nparts, seed in ((7, 0), (16, 3)):
                if nparts > graph.nvertices:
                    continue
                p = part_graph(graph, nparts, method, seed=seed)
                key = f"part_{name}_{method}_{nparts}_{seed}"
                arrays[key] = p.assignment
                q = evaluate_partition(graph, p)
                scalars[f"{key}_edgecut"] = int(q.edgecut)
                scalars[f"{key}_tcv"] = int(q.total_volume_points)

    # -- matchings ------------------------------------------------------
    for name, graph in (("mesh6", mesh6), ("rand", rand)):
        for seed in (0, 1, 2):
            arrays[f"rm_{name}_{seed}"] = random_matching(graph, seed=seed)
            arrays[f"hem_{name}_{seed}"] = heavy_edge_matching(graph, seed=seed)

    # -- FM bisection refinement ----------------------------------------
    for name, graph in (("mesh4", mesh4), ("rand", rand)):
        n = graph.nvertices
        side0 = (np.arange(n) % 2).astype(np.int64)  # alternating start
        half = int(graph.vweights.sum()) // 2
        cap = half + int(graph.vweights.max())
        arrays[f"fm_{name}"] = fm_refine_bisection(graph, side0, cap, cap)
        side1 = (np.arange(n) >= n // 2).astype(np.int64)  # block start
        arrays[f"fm_block_{name}"] = fm_refine_bisection(graph, side1, cap, cap)

    # -- greedy K-way refinement (cut and volume objectives) ------------
    for name, graph in (("mesh4", mesh4), ("rand", rand)):
        n = graph.nvertices
        nparts = 9
        a0 = (np.arange(n) * nparts // n).astype(np.int64)
        for objective in ("cut", "volume"):
            arrays[f"kref_{objective}_{name}"] = greedy_kway_refine(
                graph, a0, nparts, objective=objective, seed=5
            )

    np.savez_compressed(HERE / "metis_golden.npz", **arrays)
    (HERE / "metis_golden_scalars.json").write_text(
        json.dumps(scalars, indent=0, sort_keys=True) + "\n"
    )

    # -- halo / exchange schedules --------------------------------------
    geom = build_geometry(4, 4)  # ne=4, np=4 GLL points
    pmap = build_point_map(geom)
    schedules = {}
    parts = {
        "sfc7": sfc_partition(4, 7),
        "kway13": part_graph(mesh4, 13, "kway", seed=0),
        "rb5": part_graph(mesh4, 5, "rb", seed=1),
    }
    for label, p in parts.items():
        sched = exchange_schedule(pmap, p)
        schedules[label] = {f"{a},{b}": int(c) for (a, b), c in sorted(sched.items())}
    (HERE / "halo_golden.json").write_text(
        json.dumps(schedules, indent=0, sort_keys=True) + "\n"
    )

    print(f"wrote {len(arrays)} arrays, {len(scalars)} scalars, "
          f"{len(schedules)} schedules")


if __name__ == "__main__":
    main()
