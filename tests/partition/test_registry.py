"""Registry contract tests: resolution, errors, capabilities, goldens."""

from __future__ import annotations

import numpy as np
import pytest

from repro.partition.registry import (
    CapabilityError,
    DuplicatePartitionerError,
    Partitioner,
    PartitionProblem,
    UnknownPartitionerError,
    available,
    get,
    register,
    specs,
    unregister,
    weighted_methods,
)

EXPECTED_METHODS = (
    "sfc", "morton", "rb", "kway", "tv", "rcb", "block", "random", "strided"
)


class TestResolution:
    def test_all_builtins_registered_in_order(self):
        assert available() == EXPECTED_METHODS

    def test_get_returns_spec_with_matching_name(self):
        for name in EXPECTED_METHODS:
            assert get(name).name == name

    def test_unknown_method_lists_choices(self):
        with pytest.raises(UnknownPartitionerError, match="choose from"):
            get("does_not_exist")

    def test_unknown_method_did_you_mean(self):
        with pytest.raises(UnknownPartitionerError, match="did you mean 'sfc'"):
            get("sfk")
        with pytest.raises(UnknownPartitionerError, match="did you mean 'kway'"):
            get("k-way")

    def test_unknown_is_a_value_error(self):
        # Callers that predate the registry catch ValueError.
        with pytest.raises(ValueError):
            get("nope")

    def test_weighted_methods(self):
        assert weighted_methods() == ("sfc", "morton")


class TestRegistration:
    def _dummy(self, name="dummy"):
        return Partitioner(name=name, build=lambda p: None, description="test")

    def test_duplicate_rejected(self):
        with pytest.raises(DuplicatePartitionerError, match="already registered"):
            register(self._dummy("sfc"))

    def test_replace_allows_override(self):
        original = get("sfc")
        try:
            replacement = register(self._dummy("sfc"), replace=True)
            assert get("sfc") is replacement
        finally:
            register(original, replace=True)
        assert get("sfc") is original

    def test_register_then_unregister(self):
        register(self._dummy())
        try:
            assert "dummy" in available()
            assert get("dummy").description == "test"
        finally:
            unregister("dummy")
        assert "dummy" not in available()
        unregister("dummy")  # no-op when absent

    def test_name_must_be_identifier(self):
        with pytest.raises(ValueError, match="identifier"):
            register(self._dummy("not a name"))
        with pytest.raises(ValueError, match="identifier"):
            register(self._dummy(""))


class TestCapabilities:
    def test_sfc_rejects_inadmissible_ne(self):
        with pytest.raises(CapabilityError, match="2\\^n \\* 3\\^m"):
            get("sfc").validate(ne=5, nparts=2)

    def test_sfc_accepts_admissible_ne(self):
        get("sfc").validate(ne=12, nparts=7)

    def test_metis_has_no_ne_constraint(self):
        get("rb").validate(ne=5, nparts=2)

    def test_schedule_only_for_schedule_methods(self):
        get("sfc").validate(ne=4, nparts=8, schedule="HH")
        with pytest.raises(CapabilityError, match="schedule"):
            get("kway").validate(ne=4, nparts=8, schedule="HH")

    def test_morton_is_discontinuous(self):
        # The sfc-family sibling explains *why* it rejects a schedule:
        # Z-order jumps, so faces cannot chain into one refined curve.
        assert get("sfc").continuous
        assert not get("morton").continuous
        with pytest.raises(CapabilityError, match="discontinuous"):
            get("morton").validate(ne=4, nparts=8, schedule="HH")

    def test_morton_needs_power_of_two_ne(self):
        get("morton").validate(ne=8, nparts=6)
        with pytest.raises(CapabilityError, match="2\\^n"):
            get("morton").validate(ne=12, nparts=6)

    def test_weights_only_for_weighted_methods(self):
        get("sfc").validate(ne=4, nparts=8, weighted=True)
        with pytest.raises(CapabilityError, match="weights"):
            get("block").validate(ne=4, nparts=8, weighted=True)

    def test_nparts_bounds(self):
        k = 6 * 4 * 4
        get("block").validate(ne=4, nparts=k)
        with pytest.raises(CapabilityError, match="nparts"):
            get("block").validate(ne=4, nparts=k + 1)
        with pytest.raises(CapabilityError, match="nparts"):
            get("block").validate(ne=4, nparts=0)

    def test_ne_must_be_positive(self):
        with pytest.raises(CapabilityError, match="ne"):
            get("block").validate(ne=0, nparts=1)

    def test_call_validates_before_building(self):
        calls = []
        spec = Partitioner(
            name="probe", build=lambda p: calls.append(p), weighted=False
        )
        with pytest.raises(CapabilityError):
            spec(PartitionProblem(ne=2, nparts=4, weights=np.ones(24)))
        assert calls == []  # builder never ran

    def test_violation_surfaces_at_request_validation(self):
        # The service layer enforces capabilities when the request is
        # constructed, before any compute is scheduled.
        from repro.service import PartitionRequest

        with pytest.raises(CapabilityError, match="not admissible"):
            PartitionRequest(ne=5, nparts=2, method="sfc")
        with pytest.raises(CapabilityError, match="schedule"):
            PartitionRequest(ne=4, nparts=8, method="rb", schedule="HH")
        with pytest.raises(UnknownPartitionerError, match="did you mean"):
            PartitionRequest(ne=4, nparts=8, method="sffc")


class TestProblem:
    def test_k(self):
        assert PartitionProblem(ne=4, nparts=8).k == 96

    def test_mesh_and_graph_resolve_through_pipeline(self):
        problem = PartitionProblem(ne=2, nparts=4)
        assert problem.mesh().ne == 2
        assert problem.graph().nvertices == 24


def _legacy_make_partition(ne, nproc, method, seed=0, schedule=None):
    """The pre-registry dispatch chain, verbatim, as the golden oracle."""
    from repro.cubesphere.mesh import cubed_sphere_mesh
    from repro.graphs.csr import mesh_graph
    from repro.metis.api import part_graph
    from repro.partition.block import (
        block_partition,
        random_partition,
        strided_partition,
    )
    from repro.partition.geometric import rcb_partition
    from repro.partition.sfc import sfc_partition
    from repro.seam.cost import DEFAULT_COST_MODEL

    graph = mesh_graph(
        cubed_sphere_mesh(ne),
        edge_weight=DEFAULT_COST_MODEL.npts,
        corner_weight=1,
    )
    if method == "sfc":
        return sfc_partition(ne, nproc, schedule=schedule)
    if method == "morton":
        # Materialized oracle: cut the explicit per-face Z-order
        # traversal the way partition_curve cuts the global SFC.
        from repro.partition.base import Partition
        from repro.partition.sfc import cut_positions_uniform
        from repro.sfc.baselines import morton_curve

        mc = morton_curve(ne.bit_length() - 1)
        n2 = ne * ne
        order = np.concatenate(
            [
                face * n2 + mc.coords[:, 1].astype(np.int64) * ne
                + mc.coords[:, 0].astype(np.int64)
                for face in range(6)
            ]
        )
        bounds = cut_positions_uniform(6 * n2, nproc)
        owner = np.empty(6 * n2, dtype=np.int64)
        for p in range(nproc):
            owner[bounds[p] : bounds[p + 1]] = p
        assignment = np.empty(6 * n2, dtype=np.int64)
        assignment[order] = owner
        return Partition(assignment, nparts=nproc, method="morton")
    if method in ("rb", "kway", "tv"):
        return part_graph(graph, nproc, method, seed=seed)
    if method == "rcb":
        return rcb_partition(cubed_sphere_mesh(ne).centers_xyz, nproc)
    if method == "block":
        return block_partition(graph.nvertices, nproc)
    if method == "random":
        return random_partition(graph.nvertices, nproc, seed=seed)
    if method == "strided":
        return strided_partition(graph.nvertices, nproc)
    raise ValueError(method)


class TestGolden:
    """Registry-built partitions are bit-identical to the old dispatch."""

    @pytest.mark.parametrize("method", EXPECTED_METHODS)
    @pytest.mark.parametrize("ne,nparts", [(2, 4), (4, 7)])
    def test_bit_identical_to_legacy(self, method, ne, nparts):
        from repro.partition.pipeline import partition_stage

        for seed in (0, 3):
            new = partition_stage(method, ne, nparts, seed=seed)
            old = _legacy_make_partition(ne, nparts, method, seed=seed)
            np.testing.assert_array_equal(new.assignment, old.assignment)
            assert new.nparts == old.nparts
            assert new.method == old.method

    def test_sfc_schedule_bit_identical(self):
        from repro.partition.pipeline import partition_stage

        new = partition_stage("sfc", 6, 8, schedule="HP")
        old = _legacy_make_partition(6, 8, "sfc", schedule="HP")
        np.testing.assert_array_equal(new.assignment, old.assignment)

    def test_seed_contract(self):
        """Seeded methods vary with seed; seedless methods ignore it."""
        from repro.partition.pipeline import partition_stage

        for spec in specs():
            a = partition_stage(spec.name, 4, 8, seed=0).assignment
            b = partition_stage(spec.name, 4, 8, seed=0).assignment
            np.testing.assert_array_equal(a, b)  # deterministic under a seed
            if not spec.uses_seed:
                c = partition_stage(spec.name, 4, 8, seed=99).assignment
                np.testing.assert_array_equal(a, c)
