"""Unit tests for partition structural analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import grid_2d, mesh_graph
from repro.partition import (
    Partition,
    analyze_structure,
    sfc_partition,
)


class TestPartShapes:
    def test_sfc_parts_single_component(self, mesh4, graph4):
        s = analyze_structure(graph4, sfc_partition(4, 12))
        assert s.fragmented_parts == 0
        assert all(sh.is_connected for sh in s.shapes)

    def test_fragmented_partition_detected(self):
        g = grid_2d(4, 4)
        # Part 0 owns two opposite corners — two components (they are
        # corner-separated in a 4-connected grid).
        assignment = np.ones(16, dtype=np.int64)
        assignment[0] = 0
        assignment[15] = 0
        s = analyze_structure(g, Partition(assignment, nparts=2))
        assert s.shapes[0].components == 2
        assert s.fragmented_parts == 1

    def test_singleton_part_shape(self):
        g = grid_2d(3, 3)
        assignment = np.zeros(9, dtype=np.int64)
        assignment[4] = 1
        s = analyze_structure(g, Partition(assignment, nparts=2))
        sh = s.shapes[1]
        assert sh.size == 1
        assert sh.diameter == 0
        assert sh.components == 1

    def test_empty_part_shape(self):
        g = grid_2d(2, 2)
        s = analyze_structure(g, Partition(np.zeros(4, dtype=np.int64), nparts=2))
        assert s.shapes[1].size == 0
        assert s.shapes[1].components == 0

    def test_diameter_of_path_part(self):
        g = grid_2d(5, 1)  # a path
        s = analyze_structure(g, Partition(np.zeros(5, dtype=np.int64), nparts=1))
        assert s.shapes[0].diameter == 4

    def test_boundary_elements(self):
        g = grid_2d(4, 1)
        # Split 2/2 on a path: the two middle vertices are boundary.
        s = analyze_structure(
            g, Partition(np.array([0, 0, 1, 1]), nparts=2)
        )
        assert s.shapes[0].boundary_elements == 1
        assert s.shapes[1].boundary_elements == 1
        assert s.mean_boundary_fraction == pytest.approx(0.5)


class TestCutKinds:
    def test_mesh_graph_splits_edge_and_corner_cuts(self, mesh4, graph4):
        s = analyze_structure(graph4, sfc_partition(4, 24))
        # Mesh graphs have weight-8 (edge) and weight-1 (corner) links.
        assert set(s.cut_weight_by_kind) <= {1, 8}
        assert s.cut_weight_by_kind.get(8, 0) > 0

    def test_total_matches_weighted_edgecut(self, graph4):
        from repro.partition import evaluate_partition

        p = sfc_partition(4, 12)
        s = analyze_structure(graph4, p)
        q = evaluate_partition(graph4, p)
        assert sum(s.cut_weight_by_kind.values()) == q.weighted_edgecut


class TestWorstParts:
    def test_ranking(self):
        g = grid_2d(4, 4)
        assignment = np.ones(16, dtype=np.int64)
        assignment[0] = 0
        assignment[15] = 0
        s = analyze_structure(g, Partition(assignment, nparts=2))
        worst = s.worst_parts(1)
        assert worst[0].part == 0  # the fragmented one

    def test_limit(self, graph4):
        s = analyze_structure(graph4, sfc_partition(4, 12))
        assert len(s.worst_parts(5)) == 5
