"""Unit tests for the trivial baseline partitioners."""

from __future__ import annotations

import numpy as np
import pytest

from repro.partition.block import block_partition, random_partition, strided_partition
from repro.partition.metrics import load_balance


class TestBlock:
    def test_contiguous(self):
        p = block_partition(10, 2)
        assert p.assignment.tolist() == [0] * 5 + [1] * 5

    def test_remainder(self):
        p = block_partition(10, 3)
        assert p.part_sizes().tolist() == [4, 3, 3]

    def test_balance(self):
        sizes = block_partition(97, 8).part_sizes()
        assert sizes.max() - sizes.min() <= 1

    def test_errors(self):
        with pytest.raises(ValueError):
            block_partition(4, 5)
        with pytest.raises(ValueError):
            block_partition(4, 0)


class TestStrided:
    def test_round_robin(self):
        p = strided_partition(6, 3)
        assert p.assignment.tolist() == [0, 1, 2, 0, 1, 2]

    def test_perfectly_balanced(self):
        assert load_balance(strided_partition(100, 7).part_sizes()) < 0.15

    def test_errors(self):
        with pytest.raises(ValueError):
            strided_partition(2, 3)


class TestRandom:
    def test_balanced(self):
        sizes = random_partition(100, 8, seed=0).part_sizes()
        assert sizes.max() - sizes.min() <= 1

    def test_deterministic_by_seed(self):
        a = random_partition(50, 5, seed=7)
        b = random_partition(50, 5, seed=7)
        np.testing.assert_array_equal(a.assignment, b.assignment)

    def test_seed_changes_result(self):
        a = random_partition(50, 5, seed=1)
        b = random_partition(50, 5, seed=2)
        assert not np.array_equal(a.assignment, b.assignment)

    def test_methods_labeled(self):
        assert block_partition(4, 2).method == "block"
        assert strided_partition(4, 2).method == "strided"
        assert random_partition(4, 2).method == "random"
