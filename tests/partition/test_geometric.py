"""Unit tests for recursive coordinate bisection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.csr import mesh_graph
from repro.graphs.traversal import is_connected
from repro.partition.geometric import rcb_partition
from repro.partition.metrics import evaluate_partition, load_balance


class TestRCB:
    def test_balance_power_of_two(self):
        rng = np.random.default_rng(0)
        pts = rng.standard_normal((64, 3))
        p = rcb_partition(pts, 8)
        assert load_balance(p.part_sizes()) == 0.0

    def test_balance_odd_parts(self):
        rng = np.random.default_rng(1)
        pts = rng.standard_normal((90, 2))
        p = rcb_partition(pts, 9)
        sizes = p.part_sizes()
        assert sizes.max() - sizes.min() <= 1

    def test_splits_along_widest_axis(self):
        # Points on a line: RCB must cut across the line.
        pts = np.stack([np.arange(10.0), np.zeros(10)], axis=1)
        p = rcb_partition(pts, 2)
        assert p.assignment.tolist() == [0] * 5 + [1] * 5

    def test_locality_on_cubed_sphere(self, mesh4):
        """RCB parts should be geometrically compact (connected)."""
        g = mesh_graph(mesh4)
        p = rcb_partition(mesh4.centers_xyz, 8)
        for part in range(8):
            sub, _ = g.subgraph(p.members(part))
            assert is_connected(sub)

    def test_beats_random_on_edgecut(self, mesh4, graph4):
        from repro.partition.block import random_partition

        rcb = evaluate_partition(graph4, rcb_partition(mesh4.centers_xyz, 12))
        rnd = evaluate_partition(graph4, random_partition(96, 12, seed=0))
        assert rcb.edgecut < rnd.edgecut

    def test_errors(self):
        with pytest.raises(ValueError):
            rcb_partition(np.zeros((4, 2)), 5)
        with pytest.raises(ValueError):
            rcb_partition(np.zeros((4, 2)), 0)

    def test_single_part(self):
        p = rcb_partition(np.zeros((5, 3)), 1)
        assert (p.assignment == 0).all()
