"""Golden tests for weighted curve cutting and its correction pass."""

from __future__ import annotations

import numpy as np
import pytest

from repro.partition.metrics import load_balance
from repro.partition.sfc import (
    cut_positions_uniform,
    cut_positions_weighted,
    refine_cut_positions,
)


def segment_loads(weights: np.ndarray, bounds: np.ndarray) -> np.ndarray:
    prefix = np.concatenate([[0.0], np.cumsum(weights)])
    return prefix[bounds[1:]] - prefix[bounds[:-1]]


def random_weights(rng: np.random.Generator, n: int) -> np.ndarray:
    """Strictly positive, heavy-tailed weights (the hard case)."""
    return np.exp(rng.normal(0.0, 1.5, size=n)) + 1e-3


class TestRefineCutPositions:
    @pytest.mark.parametrize("seed", range(25))
    def test_never_worse_than_greedy(self, seed):
        """The golden property: the correction pass's LB is never worse
        than the greedy cuts it starts from."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(8, 200))
        nparts = int(rng.integers(2, min(n, 24)))
        w = random_weights(rng, n)
        greedy = cut_positions_weighted(w, nparts, refine=False)
        refined = refine_cut_positions(w, greedy)
        lb_greedy = load_balance(segment_loads(w, greedy))
        lb_refined = load_balance(segment_loads(w, refined))
        assert lb_refined <= lb_greedy + 1e-12

    @pytest.mark.parametrize("seed", range(25))
    def test_bounds_stay_valid(self, seed):
        rng = np.random.default_rng(100 + seed)
        n = int(rng.integers(8, 120))
        nparts = int(rng.integers(2, min(n, 16)))
        w = random_weights(rng, n)
        bounds = cut_positions_weighted(w, nparts)
        assert bounds[0] == 0 and bounds[-1] == n
        assert (np.diff(bounds) >= 1).all()  # every segment non-empty

    def test_improves_a_known_bad_greedy_cut(self):
        """A case where the greedy midpoint rule provably misplaces the
        first cut and one boundary shift fixes it."""
        w = np.array([7.0, 8.0, 1.0, 2.0, 7.0, 8.0, 2.0, 3.0, 7.0])
        greedy = cut_positions_weighted(w, 3, refine=False)
        refined = cut_positions_weighted(w, 3)
        assert greedy.tolist() == [0, 2, 6, 9]  # loads [15, 18, 12]
        assert refined.tolist() == [0, 3, 6, 9]  # loads [16, 17, 12]
        lb_g = load_balance(segment_loads(w, greedy))
        lb_r = load_balance(segment_loads(w, refined))
        assert lb_r < lb_g

    def test_input_bounds_not_mutated(self):
        w = np.array([5.0, 1.0, 1.0, 1.0])
        bounds = np.array([0, 2, 4], dtype=np.int64)
        out = refine_cut_positions(w, bounds)
        assert bounds.tolist() == [0, 2, 4]
        assert out is not bounds

    def test_max_sweeps_caps_work(self):
        rng = np.random.default_rng(7)
        w = random_weights(rng, 200)
        greedy = cut_positions_weighted(w, 16, refine=False)
        capped = refine_cut_positions(w, greedy, max_sweeps=1)
        full = refine_cut_positions(w, greedy)
        lb_capped = load_balance(segment_loads(w, capped))
        lb_full = load_balance(segment_loads(w, full))
        assert lb_full <= lb_capped + 1e-12

    def test_fixpoint_is_stable(self):
        """Running the pass on its own output changes nothing."""
        rng = np.random.default_rng(11)
        w = random_weights(rng, 150)
        once = cut_positions_weighted(w, 12)
        twice = refine_cut_positions(w, once)
        np.testing.assert_array_equal(once, twice)


class TestUniformReduction:
    @pytest.mark.parametrize("n,nparts", [(12, 4), (13, 4), (96, 7), (5, 5)])
    def test_uniform_weights_reduce_exactly(self, n, nparts):
        """The golden reduction: constant weights give bit-identical cuts
        to the unweighted path — any constant, not just 1.0."""
        for value in (1.0, 0.25, 3.7):
            w = np.full(n, value)
            np.testing.assert_array_equal(
                cut_positions_weighted(w, nparts),
                cut_positions_uniform(n, nparts),
            )

    def test_near_uniform_does_not_shortcut(self):
        """An epsilon perturbation must take the weighted path (the
        reduction is exact equality, not a tolerance)."""
        w = np.ones(10)
        w[3] += 1e-9
        bounds = cut_positions_weighted(w, 3)
        assert bounds[0] == 0 and bounds[-1] == 10
        assert (np.diff(bounds) >= 1).all()


class TestRefinedPartitions:
    def test_sfc_partition_benefits_from_refinement(self):
        """End-to-end: the shipped sfc_partition uses the corrected
        cuts, so a hotspot weight field is well balanced."""
        from repro.partition import sfc_partition

        rng = np.random.default_rng(0)
        w = np.exp(rng.normal(0.0, 1.0, size=96)) + 0.1
        p = sfc_partition(4, 8, weights=w)
        loads = np.bincount(p.assignment, weights=w, minlength=8)
        assert load_balance(loads) < 0.15
