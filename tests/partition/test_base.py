"""Unit tests for the Partition container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.partition.base import Partition


class TestConstruction:
    def test_basic(self):
        p = Partition(np.array([0, 1, 0, 2]), nparts=3, method="test")
        assert p.nvertices == 4
        assert p.nparts == 3
        assert p.method == "test"

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out-of-range"):
            Partition(np.array([0, 3]), nparts=3)
        with pytest.raises(ValueError, match="out-of-range"):
            Partition(np.array([-1, 0]), nparts=2)

    def test_bad_nparts(self):
        with pytest.raises(ValueError, match="nparts"):
            Partition(np.array([0]), nparts=0)

    def test_2d_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            Partition(np.zeros((2, 2), dtype=int), nparts=1)

    def test_assignment_readonly(self):
        p = Partition(np.array([0, 1]), nparts=2)
        with pytest.raises(ValueError):
            p.assignment[0] = 1


class TestDerived:
    def test_part_sizes(self):
        p = Partition(np.array([0, 1, 0, 2, 1, 1]), nparts=4)
        assert p.part_sizes().tolist() == [2, 3, 1, 0]

    def test_part_weights(self):
        p = Partition(np.array([0, 1, 0]), nparts=2)
        w = p.part_weights(np.array([10, 20, 30]))
        assert w.tolist() == [40, 20]

    def test_members_sorted(self):
        p = Partition(np.array([1, 0, 1, 0]), nparts=2)
        assert p.members(1).tolist() == [0, 2]

    def test_validate_empty(self):
        p = Partition(np.array([0, 0]), nparts=2)
        with pytest.raises(ValueError, match="empty parts"):
            p.validate()
        p.validate(allow_empty=True)

    def test_renumbered(self):
        p = Partition(np.array([5, 2, 5, 9]), nparts=10)
        r = p.renumbered()
        assert r.assignment.tolist() == [0, 1, 0, 2]
        assert r.nparts == 3
        assert r.method == p.method

    def test_with_method(self):
        p = Partition(np.array([0]), nparts=1)
        assert p.with_method("x").method == "x"


def _renumbered_reference(assignment: np.ndarray) -> tuple[np.ndarray, int]:
    """The original Python-loop renumbering, kept as the golden oracle."""
    mapping: dict[int, int] = {}
    new = np.empty_like(assignment, dtype=np.int64)
    for i, part in enumerate(assignment):
        if part not in mapping:
            mapping[part] = len(mapping)
        new[i] = mapping[part]
    return new, len(mapping)


class TestRenumberedGolden:
    """The vectorized renumbering is bit-identical to the old loop."""

    @pytest.mark.parametrize(
        "assignment",
        [
            [5, 2, 5, 9],
            [0],
            [7, 7, 7],
            [3, 2, 1, 0],
            [0, 1, 2, 3],
            [9, 0, 9, 0, 4, 4, 9],
        ],
        ids=["gapped", "single", "constant", "reversed", "identity", "mixed"],
    )
    def test_matches_loop_reference(self, assignment):
        arr = np.array(assignment)
        r = Partition(arr, nparts=int(arr.max()) + 1).renumbered()
        want, want_nparts = _renumbered_reference(arr)
        np.testing.assert_array_equal(r.assignment, want)
        assert r.nparts == want_nparts

    def test_matches_loop_reference_random(self):
        rng = np.random.default_rng(42)
        for trial in range(20):
            n = int(rng.integers(1, 400))
            nparts = int(rng.integers(1, 64))
            arr = rng.integers(0, nparts, size=n)
            r = Partition(arr, nparts=nparts).renumbered()
            want, want_nparts = _renumbered_reference(arr)
            np.testing.assert_array_equal(r.assignment, want)
            assert r.nparts == want_nparts
            assert r.assignment.dtype == np.int64

    def test_empty_assignment(self):
        r = Partition(np.array([], dtype=np.int64), nparts=3).renumbered()
        assert len(r.assignment) == 0
        assert r.nparts == 3
