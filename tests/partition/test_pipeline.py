"""Staged-pipeline tests: versioned keys, stage caching, equivalence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.partition.pipeline import (
    STAGE_VERSIONS,
    cache_version,
    clear_stage_caches,
    evaluate_stage,
    graph_stage,
    mesh_stage,
    partition_stage,
    run_pipeline,
    stage_cache_stats,
)


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_stage_caches()
    yield
    clear_stage_caches()


class TestVersioning:
    def test_all_stages_versioned(self):
        assert set(STAGE_VERSIONS) == {"mesh", "graph", "partition", "evaluate"}

    def test_cache_version_composite(self):
        tag = cache_version()
        for stage, version in STAGE_VERSIONS.items():
            assert f"{stage}{version}" in tag
        assert tag == "mesh1.graph1.partition2.evaluate1"

    def test_version_bump_changes_key(self):
        before = cache_version()
        STAGE_VERSIONS["graph"] += 1
        try:
            assert cache_version() != before
            # A bumped stage must not serve entries cached pre-bump.
            clear_stage_caches()
            graph_stage(2)
            STAGE_VERSIONS["graph"] -= 1
            graph_stage(2)
            assert stage_cache_stats()["graph"]["misses"] == 2
        finally:
            STAGE_VERSIONS["graph"] = 1


class TestStageCaches:
    def test_mesh_reused_across_calls(self):
        a = mesh_stage(2)
        b = mesh_stage(2)
        assert a is b
        stats = stage_cache_stats()["mesh"]
        assert stats == {"hits": 1, "misses": 1, "entries": 1}

    def test_graph_reused_across_methods_at_equal_ne(self):
        """The batch-serving win: one graph serves every method."""
        for method in ("sfc", "rb", "kway", "block"):
            run_pipeline(method, 2, 4)
        stats = stage_cache_stats()
        assert stats["graph"]["misses"] == 1
        assert stats["graph"]["hits"] >= 3
        assert stats["mesh"]["misses"] == 1

    def test_distinct_ne_distinct_entries(self):
        graph_stage(2)
        graph_stage(4)
        stats = stage_cache_stats()["graph"]
        assert stats == {"hits": 0, "misses": 2, "entries": 2}

    def test_custom_npts_not_conflated_with_default(self):
        g_default = graph_stage(2)
        g_coarse = graph_stage(2, npts=2)
        assert g_default is not g_coarse
        assert stage_cache_stats()["graph"]["misses"] == 2

    def test_clear_resets_counters(self):
        mesh_stage(2)
        clear_stage_caches()
        assert stage_cache_stats() == {
            "mesh": {"hits": 0, "misses": 0, "entries": 0},
            "graph": {"hits": 0, "misses": 0, "entries": 0},
        }

    def test_hits_counted_in_telemetry(self):
        from repro.telemetry import telemetry_session

        with telemetry_session() as session:
            graph_stage(2)
            graph_stage(2)
        outcomes = {
            labels["outcome"]: metric.value
            for name, labels, metric in session.metrics.items()
            if name == "stage_cache_total" and labels["stage"] == "graph"
        }
        assert outcomes == {"hit": 1, "miss": 1}


class TestEquivalence:
    def test_run_pipeline_matches_direct_stages(self):
        result = run_pipeline("sfc", 4, 8)
        part = partition_stage("sfc", 4, 8)
        quality = evaluate_stage(graph_stage(4), part)
        np.testing.assert_array_equal(result.partition.assignment, part.assignment)
        assert result.quality.lb_nelemd == quality.lb_nelemd
        assert result.quality.edgecut == quality.edgecut
        assert result.quality.total_volume_points == quality.total_volume_points
        np.testing.assert_array_equal(result.quality.nelemd, quality.nelemd)

    def test_stage_spans_traced(self):
        from repro.telemetry import telemetry_session

        with telemetry_session() as session:
            run_pipeline("rb", 2, 4)
        names = {s.name for s in session.tracer.spans}
        assert {
            "stage:mesh", "stage:graph", "stage:partition", "stage:evaluate"
        } <= names

    def test_partition_span_labeled_with_partitioner(self):
        from repro.telemetry import telemetry_session

        with telemetry_session() as session:
            partition_stage("kway", 2, 4)
        (span,) = [s for s in session.tracer.spans if s.name == "stage:partition"]
        assert span.args["partitioner"] == "kway"
