"""Unit and property tests for the SFC partitioner (paper Sec. 3)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cubesphere.curve import cubed_sphere_curve
from repro.graphs.csr import mesh_graph
from repro.graphs.traversal import is_connected
from repro.partition.metrics import load_balance
from repro.partition.sfc import (
    cut_positions_uniform,
    cut_positions_weighted,
    keyed_cut,
    morton_partition,
    partition_curve,
    sfc_partition,
)


class TestUniformCuts:
    def test_exact_division(self):
        bounds = cut_positions_uniform(12, 4)
        assert bounds.tolist() == [0, 3, 6, 9, 12]

    def test_remainder_goes_to_early_segments(self):
        bounds = cut_positions_uniform(10, 4)
        assert np.diff(bounds).tolist() == [3, 3, 2, 2]

    def test_single_part(self):
        assert cut_positions_uniform(7, 1).tolist() == [0, 7]

    def test_errors(self):
        with pytest.raises(ValueError):
            cut_positions_uniform(4, 0)
        with pytest.raises(ValueError):
            cut_positions_uniform(4, 5)

    @given(st.integers(1, 200), st.integers(1, 200))
    def test_sizes_differ_by_at_most_one(self, ncells, nparts):
        if nparts > ncells:
            return
        sizes = np.diff(cut_positions_uniform(ncells, nparts))
        assert sizes.sum() == ncells
        assert sizes.max() - sizes.min() <= 1
        assert sizes.min() >= 1


class TestWeightedCuts:
    def test_uniform_weights_match_uniform_cuts(self):
        w = np.ones(12)
        assert cut_positions_weighted(w, 4).tolist() == [0, 3, 6, 9, 12]

    def test_heavy_cell_isolated(self):
        w = np.array([1.0, 1.0, 100.0, 1.0, 1.0])
        bounds = cut_positions_weighted(w, 3)
        sizes = np.diff(bounds)
        assert sizes.sum() == 5
        # The heavy cell's segment should not also absorb everything else.
        loads = [w[bounds[i] : bounds[i + 1]].sum() for i in range(3)]
        assert max(loads) == 100.0

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            cut_positions_weighted(np.array([1.0, 0.0]), 2)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.floats(min_value=0.1, max_value=10), min_size=2, max_size=60),
        st.integers(1, 20),
    )
    def test_segments_nonempty(self, weights, nparts):
        w = np.array(weights)
        if nparts > len(w):
            return
        bounds = cut_positions_weighted(w, nparts)
        assert (np.diff(bounds) >= 1).all()
        assert bounds[0] == 0 and bounds[-1] == len(w)


class TestSFCPartition:
    @pytest.mark.parametrize("nparts", [1, 2, 6, 16, 24, 96])
    def test_perfect_balance_when_divisible(self, nparts):
        p = sfc_partition(4, nparts)
        assert load_balance(p.part_sizes()) == 0.0
        p.validate()

    def test_non_divisible_near_balance(self):
        p = sfc_partition(4, 7)  # 96 / 7
        sizes = p.part_sizes()
        assert sizes.max() - sizes.min() <= 1

    def test_parts_contiguous_along_curve(self):
        curve = cubed_sphere_curve(4)
        p = partition_curve(curve, 12)
        along = p.assignment[curve.order]
        # Part ids along the curve are non-decreasing.
        assert (np.diff(along) >= 0).all()

    def test_parts_are_connected_subgraphs(self, mesh4):
        """Curve contiguity implies each processor's elements form a
        connected patch — the locality property SFC partitioning buys."""
        g = mesh_graph(mesh4, corner_weight=1)
        p = sfc_partition(4, 12)
        for part in range(12):
            sub, _ = g.subgraph(p.members(part))
            assert is_connected(sub)

    def test_weighted_partition_balances_weight(self):
        rng = np.random.default_rng(1)
        w = rng.uniform(0.5, 2.0, size=96)
        p = sfc_partition(4, 8, weights=w)
        loads = np.array([w[p.members(i)].sum() for i in range(8)])
        ideal = w.sum() / 8
        assert loads.max() < 2.0 * ideal

    def test_weight_length_mismatch(self):
        with pytest.raises(ValueError, match="one entry per element"):
            sfc_partition(4, 4, weights=np.ones(5))

    def test_custom_schedule(self):
        a = sfc_partition(6, 9, schedule="PH")
        b = sfc_partition(6, 9, schedule="HP")
        assert not np.array_equal(a.assignment, b.assignment)
        for p in (a, b):
            assert load_balance(p.part_sizes()) == 0.0

    def test_method_label(self):
        assert sfc_partition(2, 4).method == "sfc"


class TestKeyedCut:
    """The streaming key path is bit-identical to cutting the curve."""

    @pytest.mark.parametrize("ne,nparts", [(2, 4), (4, 7), (6, 9), (12, 30)])
    def test_keyed_equals_materialized(self, ne, nparts):
        keyed = sfc_partition(ne, nparts)
        golden = partition_curve(cubed_sphere_curve(ne), nparts)
        np.testing.assert_array_equal(keyed.assignment, golden.assignment)

    @pytest.mark.parametrize("chunk", [1, 7, 100, 10**9])
    def test_chunk_size_never_changes_the_cut(self, chunk):
        whole = sfc_partition(6, 9)
        np.testing.assert_array_equal(
            sfc_partition(6, 9, chunk=chunk).assignment, whole.assignment
        )

    def test_weighted_keyed_equals_materialized(self):
        rng = np.random.default_rng(7)
        w = rng.uniform(0.5, 2.0, size=96)
        keyed = sfc_partition(4, 8, weights=w, chunk=13)
        golden = partition_curve(cubed_sphere_curve(4), 8, weights=w)
        np.testing.assert_array_equal(keyed.assignment, golden.assignment)

    def test_schedule_flows_through_key_path(self):
        keyed = sfc_partition(6, 8, schedule="HP")
        golden = partition_curve(cubed_sphere_curve(6, "HP"), 8)
        np.testing.assert_array_equal(keyed.assignment, golden.assignment)

    def test_inadmissible_ne_rejected_before_work(self):
        with pytest.raises(ValueError):
            sfc_partition(5, 2)

    def test_bad_chunk(self):
        with pytest.raises(ValueError, match="chunk"):
            keyed_cut(lambda ids: ids.astype(np.uint64), 24, 4, chunk=0)


class TestMortonPartition:
    def test_balanced_and_valid(self):
        p = morton_partition(4, 8)
        assert p.method == "morton"
        sizes = p.part_sizes()
        assert sizes.max() - sizes.min() <= 1
        p.validate()

    @pytest.mark.parametrize("chunk", [1, 11, None])
    def test_chunk_invariant(self, chunk):
        np.testing.assert_array_equal(
            morton_partition(4, 7, chunk=chunk).assignment,
            morton_partition(4, 7).assignment,
        )

    def test_power_of_two_required(self):
        with pytest.raises(ValueError, match="2\\^n"):
            morton_partition(12, 4)

    def test_differs_from_sfc(self):
        # Z-order jumps; the continuous Hilbert cut is a different map.
        assert not np.array_equal(
            morton_partition(4, 8).assignment,
            sfc_partition(4, 8).assignment,
        )
