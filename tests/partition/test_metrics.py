"""Unit and property tests for partition-quality metrics (paper Sec. 2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.csr import graph_from_edges
from repro.partition.base import Partition
from repro.partition.metrics import (
    communication_pattern,
    edgecut,
    evaluate_partition,
    load_balance,
    weighted_edgecut,
)
from tests.conftest import grid_graph


class TestLoadBalanceEq1:
    """LB(S) = (max - avg) / max, the paper's Eq. 1."""

    def test_perfect_balance_is_zero(self):
        assert load_balance([4, 4, 4, 4]) == 0.0

    def test_paper_regime_two_vs_three(self):
        # 2 elements average, one processor with 3: LB = (3 - 2.x)/3.
        vals = [2] * 7 + [3]
        expected = (3 - np.mean(vals)) / 3
        assert load_balance(vals) == pytest.approx(expected)

    def test_single_loaded_processor(self):
        assert load_balance([8, 0, 0, 0]) == pytest.approx((8 - 2) / 8)

    def test_empty_and_zero(self):
        assert load_balance([]) == 0.0
        assert load_balance([0, 0]) == 0.0

    @given(
        st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=30)
    )
    def test_bounds(self, vals):
        lb = load_balance(vals)
        assert 0.0 <= lb < 1.0 or lb == 0.0


class TestEdgecut:
    def test_hand_computed(self):
        g = graph_from_edges(4, np.array([(0, 1), (1, 2), (2, 3)]), eweights=[5, 7, 9])
        p = Partition(np.array([0, 0, 1, 1]), nparts=2)
        assert edgecut(g, p) == 1
        assert weighted_edgecut(g, p) == 7

    def test_no_cut(self):
        g = grid_graph(3, 3)
        p = Partition(np.zeros(9, dtype=int), nparts=1)
        assert edgecut(g, p) == 0

    def test_all_cut(self):
        g = grid_graph(2, 2)
        p = Partition(np.arange(4), nparts=4)
        assert edgecut(g, p) == g.nedges


class TestCommunicationPattern:
    def test_pair_volumes_symmetric_for_uniform_weights(self):
        g = grid_graph(4, 4)
        p = Partition(np.repeat([0, 1], 8), nparts=2)
        comm = communication_pattern(g, p)
        assert comm.pair_points[(0, 1)] == comm.pair_points[(1, 0)]

    def test_total_equals_directed_cut_weight(self):
        g = grid_graph(4, 4)
        p = Partition((np.arange(16) % 3), nparts=3)
        comm = communication_pattern(g, p)
        u, v, w = g.edge_array()
        cut_w = int(w[p.assignment[u] != p.assignment[v]].sum())
        assert comm.total_points() == 2 * cut_w

    def test_message_counts(self):
        g = grid_graph(2, 2)
        p = Partition(np.array([0, 0, 1, 1]), nparts=2)
        comm = communication_pattern(g, p)
        assert comm.message_counts.tolist() == [1, 1]

    def test_boundary_vertices(self):
        g = grid_graph(3, 1)  # path 0-1-2
        p = Partition(np.array([0, 0, 1]), nparts=2)
        comm = communication_pattern(g, p)
        # Vertices 1 and 2 touch the cut.
        assert comm.boundary_vertices.tolist() == [1, 1]

    def test_bytes_conversion(self):
        g = grid_graph(2, 1)
        p = Partition(np.array([0, 1]), nparts=2)
        comm = communication_pattern(g, p)
        assert comm.total_bytes(480) == comm.total_points() * 480
        assert comm.pair_bytes(10)[(0, 1)] == comm.pair_points[(0, 1)] * 10


class TestEvaluatePartition:
    def test_full_report(self, graph4):
        from repro.partition.sfc import sfc_partition

        p = sfc_partition(4, 12)
        q = evaluate_partition(graph4, p)
        assert q.nparts == 12
        assert q.lb_nelemd == 0.0  # 96 / 12 exact
        assert q.edgecut > 0
        assert q.total_volume_points > 0
        assert q.method == "sfc"
        assert len(q.nelemd) == 12
        assert q.total_volume_mbytes(1_000_000) == pytest.approx(
            q.total_volume_points
        )

    def test_weighted_lb(self):
        g = graph_from_edges(
            4, np.array([(0, 1), (2, 3)]), vweights=[1, 1, 1, 5]
        )
        p = Partition(np.array([0, 0, 1, 1]), nparts=2)
        q = evaluate_partition(g, p)
        assert q.lb_nelemd == 0.0
        assert q.lb_weight == pytest.approx((6 - 4) / 6)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=12), st.integers(min_value=0, max_value=99))
    def test_invariants_random_partitions(self, nparts, seed):
        g = grid_graph(5, 5)
        rng = np.random.default_rng(seed)
        p = Partition(rng.integers(nparts, size=25), nparts=nparts)
        q = evaluate_partition(g, p)
        assert 0 <= q.lb_nelemd < 1
        assert 0 <= q.lb_spcv < 1
        assert q.edgecut <= g.nedges
        assert q.weighted_edgecut >= q.edgecut  # weights >= 1
        assert q.total_volume_points == 2 * q.weighted_edgecut
        assert q.boundary_vertices <= g.nvertices
        assert q.nelemd.sum() == g.nvertices
