"""Unit tests for dynamic SFC repartitioning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cubesphere import cubed_sphere_curve
from repro.partition import (
    LoadTracker,
    load_balance,
    migration_cost,
    repartition_curve,
    sfc_partition,
)
from repro.partition.base import Partition


@pytest.fixture(scope="module")
def curve():
    return cubed_sphere_curve(4)


def moving_weights(curve, center_gid: int, boost: float = 4.0) -> np.ndarray:
    """Weights with a hotspot around one element (curve-ordered blob)."""
    n = len(curve)
    w = np.ones(n)
    pos = curve.position[center_gid]
    lo, hi = max(0, pos - 8), min(n, pos + 8)
    hot = curve.order[lo:hi]
    w[hot] = boost
    return w


class TestMigrationCost:
    def test_identical_partitions_cost_nothing(self, curve):
        p = sfc_partition(4, 12)
        cost = migration_cost(p, p)
        assert cost.elements_moved == 0
        assert cost.fraction_moved == 0.0

    def test_counts_moved_elements(self):
        a = Partition(np.array([0, 0, 1, 1]), nparts=2)
        b = Partition(np.array([0, 1, 1, 0]), nparts=2)
        cost = migration_cost(a, b)
        assert cost.elements_moved == 2
        assert cost.fraction_moved == 0.5

    def test_weighted(self):
        a = Partition(np.array([0, 0, 1]), nparts=2)
        b = Partition(np.array([0, 1, 1]), nparts=2)
        cost = migration_cost(a, b, weights=np.array([1.0, 5.0, 1.0]))
        assert cost.weight_moved == 5.0

    def test_size_mismatch(self):
        a = Partition(np.array([0]), nparts=1)
        b = Partition(np.array([0, 0]), nparts=1)
        with pytest.raises(ValueError, match="different vertex sets"):
            migration_cost(a, b)


class TestRepartitionCurve:
    def test_balances_new_weights(self, curve):
        w = moving_weights(curve, center_gid=10)
        p = repartition_curve(curve, w, 12)
        loads = np.bincount(p.assignment, weights=w, minlength=12)
        assert load_balance(loads) < 0.35

    def test_method_label(self, curve):
        p = repartition_curve(curve, np.ones(len(curve)), 8)
        assert p.method == "sfc-rebal"

    def test_small_weight_change_small_migration(self, curve):
        """The SFC rebalancing selling point: cuts only shift."""
        w1 = moving_weights(curve, center_gid=10)
        w2 = moving_weights(curve, center_gid=14)  # hotspot drifts
        p1 = repartition_curve(curve, w1, 12)
        p2 = repartition_curve(curve, w2, 12)
        cost = migration_cost(p1, p2)
        assert cost.fraction_moved < 0.25

    def test_migration_beats_fresh_metis(self, curve):
        """Re-cutting the curve migrates far fewer elements than a
        from-scratch graph partition of the same weights."""
        from repro.graphs import mesh_graph
        from repro.metis import part_graph

        w1 = moving_weights(curve, 10)
        w2 = moving_weights(curve, 14)
        p1 = repartition_curve(curve, w1, 12)
        p2 = repartition_curve(curve, w2, 12)
        sfc_cost = migration_cost(p1, p2)
        g = mesh_graph(curve.mesh, vweights=np.round(w2).astype(np.int64))
        metis_new = part_graph(g, 12, "kway", seed=0)
        metis_cost = migration_cost(p1, metis_new)
        assert sfc_cost.fraction_moved < metis_cost.fraction_moved

    def test_migration_monotone_with_hotspot_speed(self, curve):
        w0 = moving_weights(curve, 10)
        p0 = repartition_curve(curve, w0, 12)
        costs = []
        for target in (12, 30):
            p = repartition_curve(curve, moving_weights(curve, target), 12)
            costs.append(migration_cost(p0, p).elements_moved)
        assert costs[0] <= costs[1]


class TestLoadTracker:
    def test_history_records_balance_and_migration(self, curve):
        tracker = LoadTracker(curve, nparts=12)
        for center in (5, 9, 13, 17):
            tracker.update(moving_weights(curve, center))
        assert len(tracker.history) == 4
        assert tracker.history[0]["elements_moved"] == 0.0
        for entry in tracker.history[1:]:
            assert entry["elements_moved"] >= 0
            assert entry["lb"] < 0.5

    def test_current_partition_valid(self, curve):
        tracker = LoadTracker(curve, nparts=8)
        p = tracker.update(np.ones(len(curve)))
        p.validate()
        assert tracker.current is p

    def test_single_rebalance_step(self, curve):
        """One update: no prior partition, so migration is zero and the
        history holds exactly one fully-populated entry."""
        tracker = LoadTracker(curve, nparts=12)
        p = tracker.update(moving_weights(curve, center_gid=20))
        assert len(tracker.history) == 1
        entry = tracker.history[0]
        assert entry["elements_moved"] == 0.0
        assert entry["fraction_moved"] == 0.0
        assert entry["max_load"] >= entry["mean_load"] > 0
        assert 0.0 <= entry["lb"] < 1.0
        assert tracker.current is p

    def test_all_equal_weights_zero_migration(self, curve):
        """Unchanged uniform weights re-cut identically: no migration,
        perfect balance at every step."""
        tracker = LoadTracker(curve, nparts=12)
        w = np.ones(len(curve))
        first = tracker.update(w)
        second = tracker.update(w)
        assert np.array_equal(first.assignment, second.assignment)
        assert tracker.history[1]["elements_moved"] == 0.0
        assert tracker.history[1]["fraction_moved"] == 0.0
        # 96 elements over 12 parts divides evenly -> LB = 0 exactly.
        assert tracker.history[0]["lb"] == 0.0
        assert tracker.history[1]["lb"] == 0.0

    def test_nparts_exceeding_k_degenerate(self, curve):
        """More parts than elements cannot yield non-empty segments."""
        k = len(curve)
        tracker = LoadTracker(curve, nparts=k + 1)
        with pytest.raises(ValueError, match="more parts"):
            tracker.update(np.ones(k))
        assert tracker.current is None  # failed update records nothing
        assert tracker.history == []

    def test_nparts_equal_k_single_element_parts(self, curve):
        """nparts == K is the extreme legal cut: one element each."""
        k = len(curve)
        tracker = LoadTracker(curve, nparts=k)
        p = tracker.update(np.ones(k))
        p.validate()
        assert np.array_equal(np.sort(p.assignment), np.arange(k))
        assert tracker.history[0]["lb"] == 0.0
