"""Unit tests for dynamic SFC repartitioning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cubesphere import cubed_sphere_curve
from repro.partition import (
    LoadTracker,
    load_balance,
    migration_cost,
    repartition_curve,
    sfc_partition,
)
from repro.partition.base import Partition


@pytest.fixture(scope="module")
def curve():
    return cubed_sphere_curve(4)


def moving_weights(curve, center_gid: int, boost: float = 4.0) -> np.ndarray:
    """Weights with a hotspot around one element (curve-ordered blob)."""
    n = len(curve)
    w = np.ones(n)
    pos = curve.position[center_gid]
    lo, hi = max(0, pos - 8), min(n, pos + 8)
    hot = curve.order[lo:hi]
    w[hot] = boost
    return w


class TestMigrationCost:
    def test_identical_partitions_cost_nothing(self, curve):
        p = sfc_partition(4, 12)
        cost = migration_cost(p, p)
        assert cost.elements_moved == 0
        assert cost.fraction_moved == 0.0

    def test_counts_moved_elements(self):
        a = Partition(np.array([0, 0, 1, 1]), nparts=2)
        b = Partition(np.array([0, 1, 1, 0]), nparts=2)
        cost = migration_cost(a, b)
        assert cost.elements_moved == 2
        assert cost.fraction_moved == 0.5

    def test_weighted(self):
        a = Partition(np.array([0, 0, 1]), nparts=2)
        b = Partition(np.array([0, 1, 1]), nparts=2)
        cost = migration_cost(a, b, weights=np.array([1.0, 5.0, 1.0]))
        assert cost.weight_moved == 5.0

    def test_size_mismatch(self):
        a = Partition(np.array([0]), nparts=1)
        b = Partition(np.array([0, 0]), nparts=1)
        with pytest.raises(ValueError, match="different vertex sets"):
            migration_cost(a, b)


class TestRepartitionCurve:
    def test_balances_new_weights(self, curve):
        w = moving_weights(curve, center_gid=10)
        p = repartition_curve(curve, w, 12)
        loads = np.bincount(p.assignment, weights=w, minlength=12)
        assert load_balance(loads) < 0.35

    def test_method_label(self, curve):
        p = repartition_curve(curve, np.ones(len(curve)), 8)
        assert p.method == "sfc-rebal"

    def test_small_weight_change_small_migration(self, curve):
        """The SFC rebalancing selling point: cuts only shift."""
        w1 = moving_weights(curve, center_gid=10)
        w2 = moving_weights(curve, center_gid=14)  # hotspot drifts
        p1 = repartition_curve(curve, w1, 12)
        p2 = repartition_curve(curve, w2, 12)
        cost = migration_cost(p1, p2)
        assert cost.fraction_moved < 0.25

    def test_migration_beats_fresh_metis(self, curve):
        """Re-cutting the curve migrates far fewer elements than a
        from-scratch graph partition of the same weights."""
        from repro.graphs import mesh_graph
        from repro.metis import part_graph

        w1 = moving_weights(curve, 10)
        w2 = moving_weights(curve, 14)
        p1 = repartition_curve(curve, w1, 12)
        p2 = repartition_curve(curve, w2, 12)
        sfc_cost = migration_cost(p1, p2)
        g = mesh_graph(curve.mesh, vweights=np.round(w2).astype(np.int64))
        metis_new = part_graph(g, 12, "kway", seed=0)
        metis_cost = migration_cost(p1, metis_new)
        assert sfc_cost.fraction_moved < metis_cost.fraction_moved

    def test_migration_monotone_with_hotspot_speed(self, curve):
        w0 = moving_weights(curve, 10)
        p0 = repartition_curve(curve, w0, 12)
        costs = []
        for target in (12, 30):
            p = repartition_curve(curve, moving_weights(curve, target), 12)
            costs.append(migration_cost(p0, p).elements_moved)
        assert costs[0] <= costs[1]


class TestLoadTracker:
    def test_history_records_balance_and_migration(self, curve):
        tracker = LoadTracker(curve, nparts=12)
        for center in (5, 9, 13, 17):
            tracker.update(moving_weights(curve, center))
        assert len(tracker.history) == 4
        assert tracker.history[0]["elements_moved"] == 0.0
        for entry in tracker.history[1:]:
            assert entry["elements_moved"] >= 0
            assert entry["lb"] < 0.5

    def test_current_partition_valid(self, curve):
        tracker = LoadTracker(curve, nparts=8)
        p = tracker.update(np.ones(len(curve)))
        p.validate()
        assert tracker.current is p

    def test_single_rebalance_step(self, curve):
        """One update: no prior partition, so migration is zero and the
        history holds exactly one fully-populated entry."""
        tracker = LoadTracker(curve, nparts=12)
        p = tracker.update(moving_weights(curve, center_gid=20))
        assert len(tracker.history) == 1
        entry = tracker.history[0]
        assert entry["elements_moved"] == 0.0
        assert entry["fraction_moved"] == 0.0
        assert entry["max_load"] >= entry["mean_load"] > 0
        assert 0.0 <= entry["lb"] < 1.0
        assert tracker.current is p

    def test_all_equal_weights_zero_migration(self, curve):
        """Unchanged uniform weights re-cut identically: no migration,
        perfect balance at every step."""
        tracker = LoadTracker(curve, nparts=12)
        w = np.ones(len(curve))
        first = tracker.update(w)
        second = tracker.update(w)
        assert np.array_equal(first.assignment, second.assignment)
        assert tracker.history[1]["elements_moved"] == 0.0
        assert tracker.history[1]["fraction_moved"] == 0.0
        # 96 elements over 12 parts divides evenly -> LB = 0 exactly.
        assert tracker.history[0]["lb"] == 0.0
        assert tracker.history[1]["lb"] == 0.0

    def test_nparts_exceeding_k_degenerate(self, curve):
        """More parts than elements cannot yield non-empty segments."""
        k = len(curve)
        tracker = LoadTracker(curve, nparts=k + 1)
        with pytest.raises(ValueError, match="more parts"):
            tracker.update(np.ones(k))
        assert tracker.current is None  # failed update records nothing
        assert tracker.history == []

    def test_nparts_equal_k_single_element_parts(self, curve):
        """nparts == K is the extreme legal cut: one element each."""
        k = len(curve)
        tracker = LoadTracker(curve, nparts=k)
        p = tracker.update(np.ones(k))
        p.validate()
        assert np.array_equal(np.sort(p.assignment), np.arange(k))
        assert tracker.history[0]["lb"] == 0.0


class TestKeyedCurvePath:
    """The streaming (pass-``ne``) path must match the materialized curve."""

    def test_keyed_matches_materialized(self, curve):
        w = moving_weights(curve, center_gid=10)
        via_curve = repartition_curve(curve, w, 12)
        via_ne = repartition_curve(4, w, 12)
        np.testing.assert_array_equal(via_curve.assignment, via_ne.assignment)

    def test_keyed_matches_materialized_chunked(self, curve):
        w = moving_weights(curve, center_gid=20)
        via_curve = repartition_curve(curve, w, 8)
        via_ne = repartition_curve(4, w, 8, chunk=17)
        np.testing.assert_array_equal(via_curve.assignment, via_ne.assignment)

    def test_schedule_conflict_rejected(self, curve):
        with pytest.raises(ValueError, match="conflicts with the curve's"):
            repartition_curve(curve, np.ones(len(curve)), 4, schedule="0:d1")

    def test_tracker_accepts_plain_ne(self, curve):
        """LoadTracker(ne, ...) never materializes the curve — the
        Ne >= 256 trajectory path — and matches the curve-built one."""
        by_curve = LoadTracker(curve, nparts=12)
        by_ne = LoadTracker(4, nparts=12)
        for center in (5, 9, 13):
            w = moving_weights(curve, center)
            a = by_curve.update(w)
            b = by_ne.update(w)
            np.testing.assert_array_equal(a.assignment, b.assignment)
        assert by_curve.history == by_ne.history


class TestPlanRepartition:
    def test_moves_reconstruct_new_assignment(self, curve):
        from repro.partition import plan_repartition

        w = moving_weights(curve, center_gid=30)
        old = sfc_partition(4, 12).assignment
        plan = plan_repartition(old, w, ne=4)
        rebuilt = old.copy()
        for rank, gids in plan.moves.items():
            rebuilt[gids] = rank
        np.testing.assert_array_equal(rebuilt, plan.new_assignment)

    def test_only_changed_elements_appear(self, curve):
        from repro.partition import plan_repartition

        w = moving_weights(curve, center_gid=30)
        old = sfc_partition(4, 12).assignment
        plan = plan_repartition(old, w, ne=4)
        listed = sum(len(g) for g in plan.moves.values())
        assert listed == plan.elements_moved
        for rank, gids in plan.moves.items():
            assert (old[gids] != rank).all()  # every listed gid truly moves
            assert (plan.new_assignment[gids] == rank).all()

    def test_lb_before_after_consistent(self, curve):
        from repro.partition import plan_repartition

        w = moving_weights(curve, center_gid=30)
        old = sfc_partition(4, 12).assignment
        plan = plan_repartition(old, w, ne=4)
        before = np.bincount(old, weights=w, minlength=12)
        after = np.bincount(plan.new_assignment, weights=w, minlength=12)
        assert plan.lb_before == pytest.approx(load_balance(before))
        assert plan.lb_after == pytest.approx(load_balance(after))
        assert plan.lb_after <= plan.lb_before + 1e-12
        assert plan.weight_moved == pytest.approx(
            float(w[old != plan.new_assignment].sum())
        )

    def test_identity_plan_is_empty(self, curve):
        from repro.partition import plan_repartition

        old = sfc_partition(4, 12).assignment
        plan = plan_repartition(old, np.ones(len(curve)), ne=4)
        assert plan.elements_moved == 0
        assert plan.moves == {}
        assert plan.fraction_moved == 0.0

    def test_grow_and_shrink_nparts(self, curve):
        from repro.partition import plan_repartition

        old = sfc_partition(4, 12).assignment
        w = np.ones(len(curve))
        grown = plan_repartition(old, w, ne=4, nparts=16)
        shrunk = plan_repartition(old, w, ne=4, nparts=6)
        assert grown.nparts == 16 and grown.new_assignment.max() == 15
        assert shrunk.nparts == 6 and shrunk.new_assignment.max() == 5

    def test_method_label_and_registry_routing(self, curve):
        from repro.partition import plan_repartition

        w = moving_weights(curve, 12)
        old = sfc_partition(4, 12).assignment
        assert plan_repartition(old, w, ne=4).method == "sfc-rebal"
        assert plan_repartition(old, w, ne=4, method="morton").method == "morton"

    def test_unweighted_method_rejected(self, curve):
        from repro.partition import plan_repartition
        from repro.partition.registry import CapabilityError

        old = sfc_partition(4, 12).assignment
        with pytest.raises(CapabilityError, match="per-element weights"):
            plan_repartition(old, np.ones(len(curve)), ne=4, method="block")

    def test_malformed_old_assignment(self, curve):
        from repro.partition import plan_repartition

        with pytest.raises(ValueError, match="one owner per element"):
            plan_repartition(np.zeros(5, dtype=int), np.ones(96), ne=4)
        bad = np.zeros(96, dtype=int)
        bad[0] = -1
        with pytest.raises(ValueError, match=">= 0"):
            plan_repartition(bad, np.ones(96), ne=4)

    def test_plan_to_dict_json_ready(self, curve):
        import json

        from repro.partition import plan_repartition

        w = moving_weights(curve, 30)
        old = sfc_partition(4, 12).assignment
        plan = plan_repartition(old, w, ne=4)
        data = plan.to_dict(include_assignment=True)
        json.dumps(data)  # must be JSON-clean
        assert data["nparts"] == 12
        assert len(data["assignment"]) == 96
        assert all(isinstance(k, str) for k in data["moves"])
