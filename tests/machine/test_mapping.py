"""Unit tests for rank-to-node mapping strategies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.machine import (
    P690_CLUSTER,
    PerformanceModel,
    apply_mapping,
    greedy_comm_mapping,
    identity_mapping,
    random_mapping,
)
from repro.metis import part_graph
from repro.partition import sfc_partition


class TestBasicMappings:
    def test_identity(self):
        np.testing.assert_array_equal(identity_mapping(5), [0, 1, 2, 3, 4])

    def test_random_is_permutation(self):
        perm = random_mapping(16, seed=1)
        assert sorted(perm.tolist()) == list(range(16))

    def test_random_deterministic(self):
        np.testing.assert_array_equal(random_mapping(10, 3), random_mapping(10, 3))


class TestApplyMapping:
    def test_relabels(self, graph4):
        p = sfc_partition(4, 4)
        perm = np.array([3, 2, 1, 0])
        q = apply_mapping(p, perm)
        np.testing.assert_array_equal(q.assignment, perm[p.assignment])
        assert q.method.endswith("+mapped")

    def test_rejects_non_permutation(self, graph4):
        p = sfc_partition(4, 4)
        with pytest.raises(ValueError, match="permutation"):
            apply_mapping(p, np.array([0, 0, 1, 2]))
        with pytest.raises(ValueError, match="size"):
            apply_mapping(p, np.array([0, 1]))

    def test_identity_is_noop_on_assignment(self, graph4):
        p = sfc_partition(4, 8)
        q = apply_mapping(p, identity_mapping(8))
        np.testing.assert_array_equal(q.assignment, p.assignment)


class TestGreedyCommMapping:
    def test_is_permutation(self, graph8):
        p = part_graph(graph8, 48, "kway", seed=0)
        perm = greedy_comm_mapping(graph8, p, P690_CLUSTER)
        assert sorted(perm.tolist()) == list(range(48))

    def test_improves_metis_comm_time(self, graph8):
        """Topology-aware placement must beat random placement and
        should not lose to the arbitrary METIS numbering."""
        model = PerformanceModel()
        p = part_graph(graph8, 96, "kway", seed=0)
        t_plain = model.step_timing(graph8, p).comm_s.sum()
        t_rand = model.step_timing(
            graph8, apply_mapping(p, random_mapping(96, seed=5))
        ).comm_s.sum()
        perm = greedy_comm_mapping(graph8, p, P690_CLUSTER)
        t_greedy = model.step_timing(graph8, apply_mapping(p, perm)).comm_s.sum()
        assert t_greedy < t_rand
        assert t_greedy <= t_plain * 1.02

    def test_sfc_already_well_mapped(self, graph8):
        """Greedy mapping cannot improve much on SFC's natural rank
        locality — the 'free mapping' property of curve partitions."""
        model = PerformanceModel()
        p = sfc_partition(8, 96)
        base = model.step_timing(graph8, p).comm_s.sum()
        perm = greedy_comm_mapping(graph8, p, P690_CLUSTER)
        remapped = model.step_timing(graph8, apply_mapping(p, perm)).comm_s.sum()
        assert remapped > 0.7 * base  # no dramatic win available
