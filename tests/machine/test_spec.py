"""Unit tests for the machine description."""

from __future__ import annotations

import pytest

from repro.machine.spec import FLAT_NETWORK_MACHINE, P690_CLUSTER, NetworkParams


class TestNetworkParams:
    def test_message_time(self):
        net = NetworkParams(latency_s=1e-5, bandwidth_Bps=1e8)
        assert net.message_time(0) == 1e-5
        assert net.message_time(1e8) == pytest.approx(1.0 + 1e-5)


class TestP690:
    def test_paper_constants(self):
        """Values quoted in the paper's Sec. 4."""
        assert P690_CLUSTER.peak_flops == 5.2e9
        assert P690_CLUSTER.sustained_flops == 841e6
        assert P690_CLUSTER.max_procs == 768
        assert P690_CLUSTER.procs_per_node == 8
        # "841 Mflops amounts to 16% of peak".
        assert P690_CLUSTER.sustained_fraction() == pytest.approx(0.16, abs=0.005)

    def test_node_mapping(self):
        assert P690_CLUSTER.node_of(0) == 0
        assert P690_CLUSTER.node_of(7) == 0
        assert P690_CLUSTER.node_of(8) == 1
        assert P690_CLUSTER.node_of(767) == 95

    def test_link_selection(self):
        assert P690_CLUSTER.link(0, 7) is P690_CLUSTER.intra_node
        assert P690_CLUSTER.link(0, 8) is P690_CLUSTER.inter_node
        assert P690_CLUSTER.link(9, 10) is P690_CLUSTER.intra_node

    def test_intra_node_faster(self):
        msg = 10_000
        assert P690_CLUSTER.intra_node.message_time(
            msg
        ) < P690_CLUSTER.inter_node.message_time(msg)


class TestFlatCounterfactual:
    def test_single_tier(self):
        assert FLAT_NETWORK_MACHINE.link(0, 1) == FLAT_NETWORK_MACHINE.link(0, 100)

    def test_same_compute(self):
        assert FLAT_NETWORK_MACHINE.sustained_flops == P690_CLUSTER.sustained_flops
