"""Unit tests for the per-rank timeline tracer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.machine import PerformanceModel, trace_step
from repro.partition import Partition, sfc_partition


@pytest.fixture(scope="module")
def model():
    return PerformanceModel()


class TestTrace:
    def test_segments_cover_all_ranks(self, model, graph4):
        tr = trace_step(model, graph4, sfc_partition(4, 12))
        assert len(tr.segments) == 12
        assert [s.rank for s in tr.segments] == list(range(12))

    def test_exactly_one_critical_rank(self, model, graph4):
        tr = trace_step(model, graph4, sfc_partition(4, 12))
        assert sum(s.critical for s in tr.segments) == 1

    def test_critical_rank_sets_step_time(self, model, graph4):
        tr = trace_step(model, graph4, sfc_partition(4, 12))
        crit = tr.segments[tr.critical_rank]
        assert crit.total_s == pytest.approx(tr.timing.step_s)
        for s in tr.segments:
            assert s.total_s <= crit.total_s + 1e-15

    def test_idle_fraction_bounds(self, model, graph4):
        tr = trace_step(model, graph4, sfc_partition(4, 12))
        assert 0.0 <= tr.idle_fraction() < 1.0

    def test_imbalanced_partition_has_more_idle(self, model, graph4):
        balanced = sfc_partition(4, 8)
        bad = balanced.assignment.copy()
        bad[balanced.members(1)[:6]] = 0  # rank 0 takes half of rank 1
        imbalanced = Partition(bad, nparts=8)
        idle_bal = trace_step(model, graph4, balanced).idle_fraction()
        idle_bad = trace_step(model, graph4, imbalanced).idle_fraction()
        assert idle_bad > idle_bal


class TestRender:
    def test_contains_bars_and_marker(self, model, graph4):
        tr = trace_step(model, graph4, sfc_partition(4, 8))
        text = tr.render(width=30)
        assert "<== critical" in text
        assert "#" in text and "~" in text
        assert sum(ln.startswith("rank ") for ln in text.splitlines()) == 8

    def test_elides_large_rank_counts(self, model, graph8):
        tr = trace_step(model, graph8, sfc_partition(8, 96))
        text = tr.render(width=30, max_ranks=10)
        assert "ranks elided" in text
        assert "<== critical" in text

    def test_bar_lengths_proportional(self, model, graph4):
        tr = trace_step(model, graph4, sfc_partition(4, 4))
        width = 40
        text = tr.render(width=width)
        crit_line = next(
            ln for ln in text.splitlines() if "<== critical" in ln
        )
        bar = crit_line.split("|")[1]
        assert len(bar.rstrip()) == pytest.approx(width, abs=1)

    def test_rank_sums(self, model, graph4):
        tr = trace_step(model, graph4, sfc_partition(4, 6))
        assert tr.timing.compute_s.sum() == pytest.approx(
            sum(s.compute_s for s in tr.segments)
        )
        assert np.isclose(
            tr.timing.comm_s.sum(), sum(s.comm_s for s in tr.segments)
        )
