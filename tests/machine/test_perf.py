"""Unit tests for the performance simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.machine.perf import PerformanceModel
from repro.machine.spec import P690_CLUSTER
from repro.partition.base import Partition
from repro.partition.sfc import sfc_partition
from repro.seam.cost import SEAMCostModel


@pytest.fixture(scope="module")
def model():
    return PerformanceModel()


class TestSerial:
    def test_serial_time_is_flops_over_rate(self, model):
        t = model.serial_step_time(384)
        expect = model.cost.step_flops(384) / P690_CLUSTER.sustained_flops
        assert t == pytest.approx(expect)

    def test_serial_sustained_rate_is_841_mflops(self, model, graph8):
        p = sfc_partition(8, 1)
        timing = model.step_timing(graph8, p)
        assert timing.sustained_flops == pytest.approx(841e6)


class TestStepTiming:
    def test_perfect_partition_splits_compute(self, model, graph8):
        p = sfc_partition(8, 96)
        timing = model.step_timing(graph8, p)
        np.testing.assert_allclose(
            timing.compute_s, model.serial_step_time(384) / 96
        )
        assert timing.step_s > timing.compute_s[0]  # comm adds time

    def test_speedup_monotone_through_midrange(self, model, graph8):
        speedups = [
            model.speedup(graph8, sfc_partition(8, n)) for n in (2, 8, 32, 96)
        ]
        assert speedups == sorted(speedups)

    def test_imbalanced_partition_slower(self, model, graph8):
        balanced = sfc_partition(8, 96)
        # Pile 2 extra elements onto rank 0.
        bad = balanced.assignment.copy()
        bad[balanced.members(1)[:2]] = 0
        imbalanced = Partition(bad, nparts=96)
        t_good = model.step_timing(graph8, balanced).step_s
        t_bad = model.step_timing(graph8, imbalanced).step_s
        assert t_bad > t_good

    def test_empty_parts_are_idle(self, model, graph8):
        # All elements on rank 0 of 4: ranks 1-3 idle, time ~ serial.
        p = Partition(np.zeros(384, dtype=np.int64), nparts=4)
        timing = model.step_timing(graph8, p)
        assert timing.compute_s[1:].sum() == 0
        assert timing.step_s == pytest.approx(model.serial_step_time(384))

    def test_job_limit_enforced(self, model, graph8):
        p = Partition(np.arange(384) % 384, nparts=384)
        object.__setattr__(p, "nparts", 769)  # forge an oversized job
        with pytest.raises(ValueError, match="job limit"):
            model.step_timing(graph8, p)

    def test_total_flops_independent_of_partition(self, model, graph8):
        a = model.step_timing(graph8, sfc_partition(8, 4)).total_flops
        b = model.step_timing(graph8, sfc_partition(8, 96)).total_flops
        assert a == b

    def test_compute_fraction_in_unit_interval(self, model, graph8):
        t = model.step_timing(graph8, sfc_partition(8, 48))
        assert 0 < t.compute_fraction <= 1


class TestCostScaling:
    def test_more_levels_more_time(self, graph8):
        lo = PerformanceModel(cost=SEAMCostModel(nlev=1))
        hi = PerformanceModel(cost=SEAMCostModel(nlev=16))
        p = sfc_partition(8, 48)
        assert hi.step_timing(graph8, p).step_s > lo.step_timing(graph8, p).step_s

    def test_communication_uses_intra_node_links(self, graph8):
        """Consecutive SFC ranks share SMP nodes, so SFC comm must be
        cheaper than the same partition with scrambled rank numbers."""
        model = PerformanceModel()
        p = sfc_partition(8, 96)
        rng = np.random.default_rng(0)
        perm = rng.permutation(96)
        scrambled = Partition(perm[p.assignment], nparts=96)
        t_sfc = model.step_timing(graph8, p)
        t_scr = model.step_timing(graph8, scrambled)
        assert t_sfc.comm_s.sum() < t_scr.comm_s.sum()
