"""Unit tests for synthetic graph generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import is_connected
from repro.graphs.generators import caterpillar, grid_2d, random_geometric, torus_2d


class TestGrid:
    def test_counts(self):
        g = grid_2d(4, 5)
        assert g.nvertices == 20
        assert g.nedges == 3 * 5 + 4 * 4
        g.validate()

    def test_degrees(self):
        g = grid_2d(3, 3)
        deg = sorted(g.degrees().tolist())
        assert deg == [2, 2, 2, 2, 3, 3, 3, 3, 4]

    def test_connected(self):
        assert is_connected(grid_2d(6, 7))

    def test_errors(self):
        with pytest.raises(ValueError):
            grid_2d(0, 3)


class TestTorus:
    def test_regular_degree_four(self):
        g = torus_2d(4, 5)
        assert (g.degrees() == 4).all()
        g.validate()

    def test_edge_count(self):
        g = torus_2d(5, 5)
        assert g.nedges == 2 * 25

    def test_connected(self):
        assert is_connected(torus_2d(3, 4))

    def test_small_sizes_rejected(self):
        with pytest.raises(ValueError, match=">= 3"):
            torus_2d(2, 5)


class TestRandomGeometric:
    def test_connected_by_default(self):
        g = random_geometric(60, radius=0.12, seed=0)
        assert is_connected(g)
        g.validate()

    def test_deterministic(self):
        a = random_geometric(30, 0.2, seed=4)
        b = random_geometric(30, 0.2, seed=4)
        np.testing.assert_array_equal(a.indices, b.indices)

    def test_radius_controls_density(self):
        sparse = random_geometric(50, 0.1, seed=1)
        dense = random_geometric(50, 0.3, seed=1)
        assert dense.nedges > sparse.nedges

    def test_without_connectivity_fixup(self):
        g = random_geometric(50, 0.05, seed=2, ensure_connected=False)
        g.validate()  # may be disconnected, must still be well-formed


class TestCaterpillar:
    def test_counts(self):
        g = caterpillar(spine=4, legs=3)
        assert g.nvertices == 16
        assert g.nedges == 3 + 12
        g.validate()

    def test_leaves_have_degree_one(self):
        g = caterpillar(5, 2)
        deg = g.degrees()
        assert (deg == 1).sum() == 10

    def test_connected(self):
        assert is_connected(caterpillar(6, 4))

    def test_errors(self):
        with pytest.raises(ValueError):
            caterpillar(1, 2)


class TestPartitionersOnGenerators:
    """The METIS pipeline must behave on non-cubed-sphere topologies."""

    @pytest.mark.parametrize(
        "graph",
        [grid_2d(8, 8), torus_2d(6, 6), random_geometric(64, 0.18, seed=0),
         caterpillar(16, 3)],
        ids=["grid", "torus", "geometric", "caterpillar"],
    )
    @pytest.mark.parametrize("method", ["rb", "kway"])
    def test_valid_partitions(self, graph, method):
        from repro.metis import part_graph
        from repro.partition import evaluate_partition

        p = part_graph(graph, 8, method, seed=0)
        q = evaluate_partition(graph, p)
        assert q.nelemd.sum() == graph.nvertices
        assert q.lb_nelemd < 0.5

    def test_torus_cut_exceeds_grid_cut(self):
        """Periodicity leaves no boundary to hide the cut at."""
        from repro.metis import part_graph
        from repro.partition import weighted_edgecut

        grid = grid_2d(8, 8)
        torus = torus_2d(8, 8)
        cut_grid = weighted_edgecut(grid, part_graph(grid, 4, "rb", seed=0))
        cut_torus = weighted_edgecut(torus, part_graph(torus, 4, "rb", seed=0))
        assert cut_torus > cut_grid
