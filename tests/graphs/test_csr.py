"""Unit tests for the CSR graph structure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.csr import CSRGraph, graph_from_edges, mesh_graph

TRIANGLE = np.array([(0, 1), (1, 2), (0, 2)])


class TestConstruction:
    def test_triangle(self):
        g = graph_from_edges(3, TRIANGLE)
        assert g.nvertices == 3
        assert g.nedges == 3
        assert sorted(g.neighbors(0).tolist()) == [1, 2]
        g.validate()

    def test_weights(self):
        g = graph_from_edges(3, TRIANGLE, eweights=[5, 7, 9], vweights=[1, 2, 3])
        assert g.total_vweight() == 6
        # Edge (0,1) has weight 5 from both sides.
        i = list(g.neighbors(0)).index(1)
        assert g.neighbor_weights(0)[i] == 5
        j = list(g.neighbors(1)).index(0)
        assert g.neighbor_weights(1)[j] == 5

    def test_isolated_vertices_allowed(self):
        g = graph_from_edges(5, np.array([(0, 1)]))
        assert g.degrees().tolist() == [1, 1, 0, 0, 0]
        g.validate()

    def test_empty_graph(self):
        g = graph_from_edges(3, np.empty((0, 2)))
        assert g.nedges == 0
        g.validate()

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loops"):
            graph_from_edges(3, np.array([(1, 1)]))

    def test_duplicate_edge_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            graph_from_edges(3, np.array([(0, 1), (1, 0)]))

    def test_weight_length_mismatch(self):
        with pytest.raises(ValueError, match="eweights"):
            graph_from_edges(3, TRIANGLE, eweights=[1])
        with pytest.raises(ValueError, match="vweights"):
            graph_from_edges(3, TRIANGLE, vweights=[1])


class TestValidation:
    def test_asymmetric_adjacency_detected(self):
        g = CSRGraph(
            indptr=np.array([0, 1, 1]),
            indices=np.array([1]),
            eweights=np.array([1]),
            vweights=np.ones(2, dtype=np.int64),
        )
        with pytest.raises(ValueError, match="symmetric"):
            g.validate()

    def test_out_of_range_index_detected(self):
        g = CSRGraph(
            indptr=np.array([0, 1, 2]),
            indices=np.array([5, 0]),
            eweights=np.array([1, 1]),
            vweights=np.ones(2, dtype=np.int64),
        )
        with pytest.raises(ValueError, match="out of range"):
            g.validate()


class TestDerived:
    def test_edge_array_lists_each_edge_once(self):
        g = graph_from_edges(4, np.array([(0, 1), (1, 2), (2, 3)]), eweights=[3, 4, 5])
        u, v, w = g.edge_array()
        assert (u < v).all()
        assert sorted(zip(u.tolist(), v.tolist(), w.tolist())) == [
            (0, 1, 3), (1, 2, 4), (2, 3, 5),
        ]

    def test_adjacency_matrix_matches_networkx(self, graph4):
        import networkx as nx

        a = graph4.adjacency_matrix()
        u, v, w = graph4.edge_array()
        gx = nx.Graph()
        gx.add_nodes_from(range(graph4.nvertices))
        gx.add_weighted_edges_from(zip(u.tolist(), v.tolist(), w.tolist()))
        b = nx.to_scipy_sparse_array(gx, nodelist=range(graph4.nvertices))
        assert abs(a - b).max() == 0

    def test_subgraph(self):
        g = graph_from_edges(5, np.array([(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]))
        sub, mapping = g.subgraph(np.array([0, 1, 4]))
        assert sub.nvertices == 3
        assert sub.nedges == 2  # (0,1) and (0,4)
        sub.validate()
        np.testing.assert_array_equal(mapping, [0, 1, 4])

    def test_subgraph_preserves_weights(self):
        g = graph_from_edges(
            4, np.array([(0, 1), (2, 3)]), eweights=[7, 9], vweights=[1, 2, 3, 4]
        )
        sub, _ = g.subgraph(np.array([2, 3]))
        assert sub.vweights.tolist() == [3, 4]
        assert sub.neighbor_weights(0).tolist() == [9]


class TestMeshGraph:
    def test_weights_encode_boundary_points(self, mesh4):
        g = mesh_graph(mesh4, edge_weight=8, corner_weight=1)
        g.validate()
        assert set(np.unique(g.eweights).tolist()) == {1, 8}

    def test_vertex_count(self, mesh4):
        g = mesh_graph(mesh4)
        assert g.nvertices == mesh4.nelem

    def test_custom_vweights(self, mesh4):
        w = np.arange(mesh4.nelem) + 1
        g = mesh_graph(mesh4, vweights=w)
        assert g.total_vweight() == w.sum()

    def test_degree_bounds(self, graph4):
        deg = graph4.degrees()
        assert deg.min() == 7 and deg.max() == 8
