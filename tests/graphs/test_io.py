"""Unit tests for METIS-format graph I/O."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.csr import graph_from_edges, mesh_graph
from repro.graphs.io import read_metis_graph, write_metis_graph


def make_graph():
    return graph_from_edges(
        4,
        np.array([(0, 1), (1, 2), (2, 3), (0, 3)]),
        eweights=[2, 3, 4, 5],
        vweights=[10, 20, 30, 40],
    )


class TestRoundtrip:
    def test_small_graph(self, tmp_path):
        g = make_graph()
        path = tmp_path / "g.graph"
        write_metis_graph(g, path)
        h = read_metis_graph(path)
        h.validate()
        assert h.nvertices == g.nvertices
        assert h.nedges == g.nedges
        np.testing.assert_array_equal(h.vweights, g.vweights)
        np.testing.assert_array_equal(h.indptr, g.indptr)
        np.testing.assert_array_equal(h.indices, g.indices)
        np.testing.assert_array_equal(h.eweights, g.eweights)

    def test_mesh_graph_roundtrip(self, tmp_path, mesh4):
        g = mesh_graph(mesh4)
        path = tmp_path / "cs.graph"
        write_metis_graph(g, path)
        h = read_metis_graph(path)
        assert h.nedges == g.nedges
        np.testing.assert_array_equal(h.eweights, g.eweights)


class TestFormats:
    def test_unweighted(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("3 2\n2\n1 3\n2\n")
        g = read_metis_graph(path)
        assert g.nedges == 2
        assert (g.vweights == 1).all()
        assert (g.eweights == 1).all()

    def test_edge_weights_only(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("2 1 001\n2 9\n1 9\n")
        g = read_metis_graph(path)
        assert g.eweights.tolist() == [9, 9]

    def test_vertex_weights_only(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("2 1 010\n4 2\n6 1\n")
        g = read_metis_graph(path)
        assert g.vweights.tolist() == [4, 6]

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("% header comment\n2 1\n2\n1\n")
        g = read_metis_graph(path)
        assert g.nedges == 1


class TestErrors:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_metis_graph(path)

    def test_wrong_line_count(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("3 1\n2\n1\n")
        with pytest.raises(ValueError, match="vertex lines"):
            read_metis_graph(path)

    def test_edge_count_mismatch(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("2 5\n2\n1\n")
        with pytest.raises(ValueError, match="edges"):
            read_metis_graph(path)

    def test_asymmetric_weights(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("2 1 001\n2 3\n1 4\n")
        with pytest.raises(ValueError, match="asymmetric"):
            read_metis_graph(path)

    def test_vertex_sizes_unsupported(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("2 1 100\n1 2\n1 1\n")
        with pytest.raises(ValueError, match="vertex sizes"):
            read_metis_graph(path)
