"""Unit tests for BFS, components and pseudo-peripheral vertices."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.graphs.csr import graph_from_edges
from repro.graphs.traversal import (
    bfs_levels,
    connected_components,
    is_connected,
    pseudo_peripheral_vertex,
)
from tests.conftest import grid_graph, path_graph


class TestBFS:
    def test_levels_match_networkx(self, grid6x6):
        levels = bfs_levels(grid6x6, 0)
        u, v, _ = grid6x6.edge_array()
        gx = nx.Graph(list(zip(u.tolist(), v.tolist())))
        expected = nx.single_source_shortest_path_length(gx, 0)
        for vtx, lvl in expected.items():
            assert levels[vtx] == lvl

    def test_unreachable_is_minus_one(self):
        g = graph_from_edges(4, np.array([(0, 1), (2, 3)]))
        levels = bfs_levels(g, 0)
        assert levels.tolist() == [0, 1, -1, -1]

    def test_mask_restricts(self, grid6x6):
        mask = np.zeros(36, dtype=bool)
        mask[:6] = True  # first column only
        levels = bfs_levels(grid6x6, 0, mask)
        assert levels[:6].tolist() == [0, 1, 2, 3, 4, 5]
        assert (levels[6:] == -1).all()

    def test_source_outside_mask(self, grid6x6):
        mask = np.zeros(36, dtype=bool)
        levels = bfs_levels(grid6x6, 0, mask)
        assert (levels == -1).all()


class TestComponents:
    def test_connected_grid(self, grid6x6):
        assert is_connected(grid6x6)
        assert (connected_components(grid6x6) == 0).all()

    def test_two_components(self):
        g = graph_from_edges(5, np.array([(0, 1), (2, 3)]))
        comp = connected_components(g)
        assert comp[0] == comp[1]
        assert comp[2] == comp[3]
        assert len({comp[0], comp[2], comp[4]}) == 3
        assert not is_connected(g)

    def test_empty_graph_connected(self):
        g = graph_from_edges(0, np.empty((0, 2)))
        assert is_connected(g)

    def test_mesh_graph_connected(self, graph4):
        assert is_connected(graph4)


class TestPseudoPeripheral:
    def test_path_graph_finds_an_end(self):
        g = path_graph(10)
        v = pseudo_peripheral_vertex(g, start=4)
        assert v in (0, 9)

    def test_grid_finds_a_corner(self):
        g = grid_graph(5, 5)
        v = pseudo_peripheral_vertex(g, start=12)  # center
        assert v in (0, 4, 20, 24)

    def test_empty_mask_rejected(self):
        g = path_graph(3)
        with pytest.raises(ValueError, match="no vertices"):
            pseudo_peripheral_vertex(g, mask=np.zeros(3, dtype=bool))
