"""Unit tests for the Laplacian and spectral bisection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.laplacian import (
    fiedler_vector,
    laplacian_matrix,
    spectral_bisection_order,
)
from tests.conftest import grid_graph, path_graph, two_cliques


class TestLaplacian:
    def test_rows_sum_to_zero(self, grid6x6):
        lap = laplacian_matrix(grid6x6)
        np.testing.assert_allclose(np.asarray(lap.sum(axis=1)).ravel(), 0.0)

    def test_psd(self):
        lap = laplacian_matrix(grid_graph(4, 4)).toarray()
        vals = np.linalg.eigvalsh(lap)
        assert vals.min() > -1e-12

    def test_smallest_eigenvalue_zero_for_connected(self):
        lap = laplacian_matrix(path_graph(8)).toarray()
        vals = np.sort(np.linalg.eigvalsh(lap))
        assert vals[0] == pytest.approx(0.0, abs=1e-12)
        assert vals[1] > 1e-8  # algebraic connectivity positive


class TestFiedler:
    def test_path_fiedler_is_monotone(self):
        """On a path the Fiedler vector is a half-cosine: monotone."""
        f = fiedler_vector(path_graph(12))
        d = np.diff(f)
        assert (d > 0).all() or (d < 0).all()

    def test_orthogonal_to_constants(self):
        f = fiedler_vector(grid_graph(5, 5))
        assert abs(f.sum()) < 1e-8

    def test_large_graph_uses_sparse_path(self, graph8):
        f = fiedler_vector(graph8)
        assert len(f) == graph8.nvertices
        assert abs(f.sum()) < 1e-6

    def test_too_small_rejected(self):
        from repro.graphs.csr import graph_from_edges

        g = graph_from_edges(1, np.empty((0, 2)))
        with pytest.raises(ValueError, match="at least 2"):
            fiedler_vector(g)

    def test_deterministic(self):
        a = fiedler_vector(grid_graph(6, 6), seed=3)
        b = fiedler_vector(grid_graph(6, 6), seed=3)
        np.testing.assert_allclose(a, b)


class TestSpectralOrder:
    def test_separates_cliques(self):
        g = two_cliques(6)
        order = spectral_bisection_order(g)
        first_half = set(order[:6].tolist())
        assert first_half in ({0, 1, 2, 3, 4, 5}, {6, 7, 8, 9, 10, 11})

    def test_is_permutation(self):
        order = spectral_bisection_order(grid_graph(4, 5))
        assert sorted(order.tolist()) == list(range(20))
