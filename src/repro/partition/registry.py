"""Partitioner registry: uniformly-interfaced, pluggable partitioners.

Every partitioning method the repo knows — the paper's SFC partitioner,
the three METIS-style multilevel algorithms, and the geometric/naive
baselines — is registered here as a :class:`Partitioner`: a name, a
builder over a :class:`PartitionProblem`, and capability flags (weight
support, seed contract, ``ne`` constraints).  Everything that needs to
resolve a method name — the service request validation, the pipeline's
partition stage, the figure/table sweeps, the CLI ``--method`` choices
and ``repro methods`` listing — consumes this registry, so the method
set has a single source of truth and third-party methods plug in with
one :func:`register` call.

Registering a new method::

    from repro.partition.registry import Partitioner, register

    def _build_hybrid(problem):
        part = ...  # use problem.ne/nparts/seed, problem.graph(), ...
        return part.with_method("hybrid")

    register(Partitioner(
        name="hybrid",
        build=_build_hybrid,
        description="SFC seed + FM refinement",
        family="hybrid",
        uses_seed=True,
    ))

The capability flags are enforced *at request-validation time* (see
:meth:`Partitioner.validate`): an inadmissible ``ne`` for the SFC, a
refinement schedule passed to a method that ignores it, or per-element
weights for an unweighted method all fail with a clear message before
any compute starts.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .base import Partition

__all__ = [
    "CapabilityError",
    "DuplicatePartitionerError",
    "PartitionProblem",
    "Partitioner",
    "UnknownPartitionerError",
    "available",
    "get",
    "register",
    "specs",
    "unregister",
    "validate_weights",
    "weighted_methods",
]


def validate_weights(weights, k: int | None = None) -> np.ndarray:
    """Normalize and validate a per-element weight array.

    The single weight-sanity gate shared by every boundary — request
    parsing, :class:`PartitionProblem` construction, the repartition
    planner — so a bad weight vector fails the same way everywhere
    (and maps to HTTP 422 at the server) instead of silently producing
    garbage cuts.

    Args:
        weights: Array-like of per-element weights.
        k: Required length (``6 ne^2``), or ``None`` to skip the check.

    Returns:
        A contiguous 1-D float64 copy-if-needed view of ``weights``.

    Raises:
        ValueError: Non-1-D, wrong length, non-finite (NaN/inf), or
            non-positive entries — each with a message naming the
            offending property.
    """
    arr = np.asarray(weights, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"weights must be a 1-D array, got shape {arr.shape}")
    if k is not None and len(arr) != k:
        raise ValueError(
            f"weights must have one entry per element: expected {k}, "
            f"got {len(arr)}"
        )
    if not np.isfinite(arr).all():
        bad = int(np.flatnonzero(~np.isfinite(arr))[0])
        raise ValueError(
            f"weights must be finite; entry {bad} is {arr[bad]}"
        )
    if (arr <= 0).any():
        bad = int(np.flatnonzero(arr <= 0)[0])
        raise ValueError(
            f"weights must be positive; entry {bad} is {arr[bad]}"
        )
    return np.ascontiguousarray(arr)


class UnknownPartitionerError(ValueError):
    """No partitioner registered under the requested name."""


class DuplicatePartitionerError(ValueError):
    """A partitioner with this name is already registered."""


class CapabilityError(ValueError):
    """The problem violates the partitioner's capability contract."""


@dataclass(frozen=True)
class PartitionProblem:
    """One partitioning problem, as handed to a partitioner's builder.

    Attributes:
        ne: Elements per cube-face edge (``K = 6 ne^2`` elements).
        nparts: Number of parts (processors).
        seed: Determinism seed (ignored by seedless methods).
        schedule: Optional face-local refinement schedule (methods with
            ``supports_schedule`` only).
        weights: Optional per-element (gid-indexed) weights (methods
            with ``weighted`` only).

    ``mesh()`` and ``graph()`` resolve through the staged pipeline's
    caches (:mod:`repro.partition.pipeline`), so builders that need the
    mesh or the element graph share one copy per ``ne`` with every
    other method, and builders that need neither (block, strided,
    random) never pay for them.
    """

    ne: int
    nparts: int
    seed: int = 0
    schedule: str | None = None
    weights: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.weights is not None:
            object.__setattr__(
                self, "weights", validate_weights(self.weights, self.k)
            )

    @property
    def k(self) -> int:
        """Total element count ``K = 6 ne^2``."""
        return 6 * self.ne * self.ne

    def mesh(self):
        """The cubed-sphere mesh at ``ne`` (stage-cached)."""
        from .pipeline import mesh_stage

        return mesh_stage(self.ne)

    def graph(self):
        """The weighted element graph at ``ne`` (stage-cached)."""
        from .pipeline import graph_stage

        return graph_stage(self.ne)


@dataclass(frozen=True)
class Partitioner:
    """A registered partitioning method and its capability contract.

    Attributes:
        name: Registry key; also stamped on produced partitions.
        build: ``PartitionProblem -> Partition`` builder.
        description: One-line summary for ``repro methods``.
        family: Coarse grouping (``"sfc"``, ``"metis"``,
            ``"geometric"``, ``"baseline"``, ...).
        weighted: Accepts per-element weights.
        uses_seed: Output depends on ``seed`` (the determinism
            contract: seedless methods are pure functions of
            ``(ne, nparts, schedule)``; seeded methods are pure
            functions of those plus ``seed``).
        supports_schedule: Accepts a refinement schedule.
        continuous: The method traverses the mesh along a single
            *continuous* curve (consecutive elements are edge
            neighbors), the property that lets the paper's SFC chain
            all six cube faces and keep segments connected.  Morton /
            Z-order is the flagged counterexample: its jumps cannot be
            chained, so it is registered ``continuous=False``.
        ne_constraint: Human-readable admissible-``ne`` description.
        check_ne: Predicate for admissible ``ne`` (``None``: any).
    """

    name: str
    build: Callable[[PartitionProblem], Partition]
    description: str = ""
    family: str = "baseline"
    weighted: bool = False
    uses_seed: bool = False
    supports_schedule: bool = False
    continuous: bool = False
    ne_constraint: str | None = None
    check_ne: Callable[[int], bool] | None = None

    def validate(
        self,
        *,
        ne: int,
        nparts: int,
        schedule: str | None = None,
        weighted: bool = False,
    ) -> None:
        """Raise :class:`CapabilityError` on a contract violation.

        Called at request-validation time so violations surface before
        any mesh/graph/partition compute starts.
        """
        if ne < 1:
            raise CapabilityError(f"ne must be >= 1, got {ne}")
        if self.check_ne is not None and not self.check_ne(ne):
            raise CapabilityError(
                f"method {self.name!r} requires {self.ne_constraint}; "
                f"ne={ne} is not admissible"
            )
        k = 6 * ne * ne
        if not 1 <= nparts <= k:
            raise CapabilityError(
                f"nparts must be in [1, K={k}] for method {self.name!r}, "
                f"got {nparts}"
            )
        if schedule is not None and not self.supports_schedule:
            if self.family == "sfc" and not self.continuous:
                raise CapabilityError(
                    f"method {self.name!r} is discontinuous (its key "
                    f"order jumps, so it cannot chain cube faces into "
                    f"a single refined curve) and does not accept a "
                    f"refinement schedule (schedule={schedule!r})"
                )
            raise CapabilityError(
                f"method {self.name!r} does not accept a refinement "
                f"schedule (schedule={schedule!r}); only methods with "
                f"supports_schedule do"
            )
        if weighted and not self.weighted:
            raise CapabilityError(
                f"method {self.name!r} does not support per-element "
                f"weights; weighted methods: {weighted_methods()}"
            )

    def __call__(self, problem: PartitionProblem) -> Partition:
        """Validate the problem against the contract, then build."""
        self.validate(
            ne=problem.ne,
            nparts=problem.nparts,
            schedule=problem.schedule,
            weighted=problem.weights is not None,
        )
        return self.build(problem)


_REGISTRY: dict[str, Partitioner] = {}


def register(spec: Partitioner, *, replace: bool = False) -> Partitioner:
    """Add a partitioner to the registry.

    Args:
        spec: The partitioner to register.
        replace: Permit replacing an existing entry of the same name.

    Raises:
        DuplicatePartitionerError: Name taken and ``replace`` is false.
    """
    if not spec.name or not spec.name.isidentifier():
        raise ValueError(f"partitioner name must be an identifier, got {spec.name!r}")
    if spec.name in _REGISTRY and not replace:
        raise DuplicatePartitionerError(
            f"partitioner {spec.name!r} is already registered; "
            f"pass replace=True to override it"
        )
    _REGISTRY[spec.name] = spec
    return spec


def unregister(name: str) -> None:
    """Remove a registered partitioner (no-op if absent)."""
    _REGISTRY.pop(name, None)


def get(name: str) -> Partitioner:
    """Resolve a method name, with a did-you-mean on typos.

    Raises:
        UnknownPartitionerError: Unregistered name; the message lists
            the registered methods and suggests the closest match.
    """
    spec = _REGISTRY.get(name)
    if spec is not None:
        return spec
    close = difflib.get_close_matches(str(name), _REGISTRY, n=1, cutoff=0.5)
    hint = f"; did you mean {close[0]!r}?" if close else ""
    raise UnknownPartitionerError(
        f"unknown method {name!r}; choose from {available()}{hint}"
    )


def available() -> tuple[str, ...]:
    """Registered method names, in registration order."""
    return tuple(_REGISTRY)


def specs() -> tuple[Partitioner, ...]:
    """Registered partitioners, in registration order."""
    return tuple(_REGISTRY.values())


def weighted_methods() -> tuple[str, ...]:
    """Names of the methods that accept per-element weights."""
    return tuple(s.name for s in _REGISTRY.values() if s.weighted)


# -- built-in methods --------------------------------------------------------
#
# Builders import their implementation lazily so that loading the
# registry (e.g. for CLI --method choices or request validation) stays
# cheap and free of import cycles.


def _build_sfc(p: PartitionProblem) -> Partition:
    from .sfc import sfc_partition

    return sfc_partition(p.ne, p.nparts, schedule=p.schedule, weights=p.weights)


def _metis_builder(method: str) -> Callable[[PartitionProblem], Partition]:
    def build(p: PartitionProblem) -> Partition:
        from ..metis.api import part_graph

        return part_graph(p.graph(), p.nparts, method, seed=p.seed)

    return build


def _build_morton(p: PartitionProblem) -> Partition:
    from .sfc import morton_partition

    return morton_partition(p.ne, p.nparts, weights=p.weights)


def _morton_admissible(ne: int) -> bool:
    return ne >= 1 and ne & (ne - 1) == 0


def _build_rcb(p: PartitionProblem) -> Partition:
    from .geometric import rcb_partition

    return rcb_partition(p.mesh().centers_xyz, p.nparts)


def _build_block(p: PartitionProblem) -> Partition:
    from .block import block_partition

    return block_partition(p.k, p.nparts)


def _build_random(p: PartitionProblem) -> Partition:
    from .block import random_partition

    return random_partition(p.k, p.nparts, seed=p.seed)


def _build_strided(p: PartitionProblem) -> Partition:
    from .block import strided_partition

    return strided_partition(p.k, p.nparts)


def _sfc_admissible(ne: int) -> bool:
    from ..sfc.factorization import is_admissible_size

    return is_admissible_size(ne)


register(Partitioner(
    name="sfc",
    build=_build_sfc,
    description="space-filling curve cut into equal segments (the paper)",
    family="sfc",
    weighted=True,
    supports_schedule=True,
    continuous=True,
    ne_constraint="ne = 2^n * 3^m",
    check_ne=_sfc_admissible,
))
register(Partitioner(
    name="morton",
    build=_build_morton,
    description="Morton (Z-order) key cut; discontinuous, cannot chain faces",
    family="sfc",
    weighted=True,
    ne_constraint="ne = 2^n",
    check_ne=_morton_admissible,
))
register(Partitioner(
    name="rb",
    build=_metis_builder("rb"),
    description="multilevel recursive bisection (METIS pmetis)",
    family="metis",
    uses_seed=True,
))
register(Partitioner(
    name="kway",
    build=_metis_builder("kway"),
    description="multilevel K-way minimizing edgecut (METIS kmetis)",
    family="metis",
    uses_seed=True,
))
register(Partitioner(
    name="tv",
    build=_metis_builder("tv"),
    description="multilevel K-way minimizing total communication volume",
    family="metis",
    uses_seed=True,
))
register(Partitioner(
    name="rcb",
    build=_build_rcb,
    description="recursive coordinate bisection of element centers",
    family="geometric",
))
register(Partitioner(
    name="block",
    build=_build_block,
    description="contiguous blocks of the storage (gid) order",
))
register(Partitioner(
    name="random",
    build=_build_random,
    description="balanced random assignment (communication worst case)",
    uses_seed=True,
))
register(Partitioner(
    name="strided",
    build=_build_strided,
    description="round-robin (cyclic) assignment, worst-case locality",
))
