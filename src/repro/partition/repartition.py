"""Dynamic repartitioning: the adaptive-workload case for SFCs.

The paper's introduction points at the AMR literature (Behrens &
Zimmermann; Griebel & Zumbusch; Parashar; Pilkington & Baden), where
SFC partitioning shines because re-balancing a *changed* load is just
re-cutting the same one-dimensional curve: elements only migrate to
*adjacent* curve segments, so migration volume is small and no global
graph computation is needed.  This module implements that story for
the cubed-sphere:

* :func:`repartition_curve` — cut the existing global curve under new
  weights;
* :func:`migration_cost` — how many elements (and how much weight)
  change owners between two partitions;
* :class:`LoadTracker` — convenience driver for a time series of
  weights (e.g. a storm moving around the sphere), recording balance
  and migration per rebalancing step.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cubesphere.curve import CubedSphereCurve
from .base import Partition
from .metrics import load_balance
from .sfc import partition_curve

__all__ = ["MigrationCost", "migration_cost", "repartition_curve", "LoadTracker"]


@dataclass(frozen=True)
class MigrationCost:
    """Cost of moving from one partition to another.

    Attributes:
        elements_moved: Count of vertices whose owner changed.
        weight_moved: Total weight of moved vertices.
        fraction_moved: ``elements_moved / n``.
    """

    elements_moved: int
    weight_moved: float
    fraction_moved: float


def migration_cost(
    old: Partition,
    new: Partition,
    weights: np.ndarray | None = None,
) -> MigrationCost:
    """Measure the element migration between two partitions.

    Args:
        old: Previous assignment.
        new: New assignment (same vertex count; part counts may
            differ).
        weights: Optional per-vertex weights (default 1).
    """
    if old.nvertices != new.nvertices:
        raise ValueError("partitions cover different vertex sets")
    moved = old.assignment != new.assignment
    n = old.nvertices
    if weights is None:
        w_moved = float(moved.sum())
    else:
        weights = np.asarray(weights, dtype=np.float64)
        if len(weights) != n:
            raise ValueError("weights length mismatch")
        w_moved = float(weights[moved].sum())
    return MigrationCost(
        elements_moved=int(moved.sum()),
        weight_moved=w_moved,
        fraction_moved=float(moved.sum()) / n if n else 0.0,
    )


def repartition_curve(
    curve: CubedSphereCurve,
    weights: np.ndarray,
    nparts: int,
) -> Partition:
    """Re-cut the global curve for new element weights.

    Because the curve ordering is fixed, successive repartitions only
    shift the cut points, so elements migrate between *neighboring*
    ranks — the property that makes SFC rebalancing cheap in adaptive
    codes (tested: migration stays far below a fresh graph partition's).
    """
    return partition_curve(curve, nparts, weights=weights).with_method("sfc-rebal")


@dataclass
class LoadTracker:
    """Drive a sequence of rebalancing steps over changing weights.

    Args:
        curve: The fixed global SFC over the mesh.
        nparts: Processor count.
    """

    curve: CubedSphereCurve
    nparts: int

    def __post_init__(self) -> None:
        self.current: Partition | None = None
        self.history: list[dict[str, float]] = []

    def update(self, weights: np.ndarray) -> Partition:
        """Rebalance for new weights; record balance and migration.

        Returns:
            The new partition.
        """
        new = repartition_curve(self.curve, weights, self.nparts)
        loads = np.bincount(
            new.assignment, weights=weights, minlength=self.nparts
        )
        entry = {
            "lb": load_balance(loads),
            "max_load": float(loads.max()),
            "mean_load": float(loads.mean()),
        }
        if self.current is not None:
            cost = migration_cost(self.current, new, weights)
            entry["elements_moved"] = float(cost.elements_moved)
            entry["fraction_moved"] = cost.fraction_moved
        else:
            entry["elements_moved"] = 0.0
            entry["fraction_moved"] = 0.0
        self.history.append(entry)
        self.current = new
        return new
