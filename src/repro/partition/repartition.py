"""Dynamic repartitioning: the adaptive-workload case for SFCs.

The paper's introduction points at the AMR literature (Behrens &
Zimmermann; Griebel & Zumbusch; Parashar; Pilkington & Baden), where
SFC partitioning shines because re-balancing a *changed* load is just
re-cutting the same one-dimensional curve: elements only migrate to
*adjacent* curve segments, so migration volume is small and no global
graph computation is needed.  This module implements that story for
the cubed-sphere:

* :func:`repartition_curve` — re-cut the curve under new weights, on
  the streaming key path (the curve is never materialized when you
  pass ``ne``; a prebuilt :class:`CubedSphereCurve` also works);
* :func:`migration_cost` — how many elements (and how much weight)
  change owners between two partitions;
* :func:`plan_repartition` — the service-facing verb: given an old
  assignment and new weights, produce a :class:`RepartitionPlan`
  (moved gids per destination rank, elements/weight moved, LB before
  and after) without touching elements that stay put;
* :class:`LoadTracker` — convenience driver for a time series of
  weights (e.g. a storm moving around the sphere), recording balance
  and migration per rebalancing step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..cubesphere.curve import CubedSphereCurve, element_keys
from .base import Partition
from .metrics import load_balance
from .registry import PartitionProblem, get as get_partitioner, validate_weights
from .sfc import keyed_cut

__all__ = [
    "LoadTracker",
    "MigrationCost",
    "RepartitionPlan",
    "migration_cost",
    "plan_repartition",
    "repartition_curve",
]


@dataclass(frozen=True)
class MigrationCost:
    """Cost of moving from one partition to another.

    Attributes:
        elements_moved: Count of vertices whose owner changed.
        weight_moved: Total weight of moved vertices.
        fraction_moved: ``elements_moved / n``.
    """

    elements_moved: int
    weight_moved: float
    fraction_moved: float


def migration_cost(
    old: Partition,
    new: Partition,
    weights: np.ndarray | None = None,
) -> MigrationCost:
    """Measure the element migration between two partitions.

    Args:
        old: Previous assignment.
        new: New assignment (same vertex count; part counts may
            differ).
        weights: Optional per-vertex weights (default 1).
    """
    if old.nvertices != new.nvertices:
        raise ValueError("partitions cover different vertex sets")
    moved = old.assignment != new.assignment
    n = old.nvertices
    if weights is None:
        w_moved = float(moved.sum())
    else:
        weights = np.asarray(weights, dtype=np.float64)
        if len(weights) != n:
            raise ValueError("weights length mismatch")
        w_moved = float(weights[moved].sum())
    return MigrationCost(
        elements_moved=int(moved.sum()),
        weight_moved=w_moved,
        fraction_moved=float(moved.sum()) / n if n else 0.0,
    )


def _curve_keys(
    curve: CubedSphereCurve | int,
    schedule: str | None,
) -> tuple[Callable[[np.ndarray], np.ndarray], int]:
    """Key function + cell count for a curve given by ``ne`` or object.

    Passing ``ne`` (the fast path) streams keys through
    :func:`repro.cubesphere.curve.element_keys`, so trajectories at
    Ne >= 256 never materialize — or rebuild — the curve per step.
    """
    if isinstance(curve, (int, np.integer)):
        ne = int(curve)
        return (lambda ids: element_keys(ne, schedule, gids=ids)), 6 * ne * ne
    if schedule is not None and schedule != curve.schedule:
        raise ValueError(
            f"schedule {schedule!r} conflicts with the curve's "
            f"({curve.schedule!r}); pass ne instead of a curve to rekey"
        )
    return (lambda ids: curve.position[ids]), len(curve)


def repartition_curve(
    curve: CubedSphereCurve | int,
    weights: np.ndarray,
    nparts: int,
    schedule: str | None = None,
    chunk: int | None = None,
) -> Partition:
    """Re-cut the global curve for new element weights.

    Because the curve ordering is fixed, successive repartitions only
    shift the cut points, so elements migrate between *neighboring*
    ranks — the property that makes SFC rebalancing cheap in adaptive
    codes (tested: migration stays far below a fresh graph partition's).

    Args:
        curve: The global SFC — either a materialized
            :class:`CubedSphereCurve` or just ``ne`` (streams uint64
            keys; nothing is materialized or rebuilt per step).
        weights: Per-element (gid-indexed) positive weights.
        nparts: Number of processors.
        schedule: Refinement schedule (only with ``curve`` given as
            ``ne``; a curve object carries its own).
        chunk: Elements keyed per streaming pass.

    Returns:
        A :class:`Partition` labeled ``"sfc-rebal"``.
    """
    key_fn, ncells = _curve_keys(curve, schedule)
    weights = validate_weights(weights, ncells)
    return keyed_cut(
        key_fn, ncells, nparts, weights=weights, chunk=chunk, method="sfc-rebal"
    )


@dataclass(frozen=True)
class RepartitionPlan:
    """A migration-minimizing diff plan between two assignments.

    Attributes:
        nparts: Processor count of the new assignment.
        method: Partitioner that produced the new assignment.
        new_assignment: ``(K,)`` int64 owner per element.
        moves: Destination rank -> gids that *arrive* there (elements
            whose owner changed; stationary elements never appear).
        elements_moved: Total count of elements changing owner.
        weight_moved: Total new-weight of the moved elements.
        fraction_moved: ``elements_moved / K``.
        lb_before: Load imbalance of the *new* weights under the old
            assignment (what you'd suffer by not rebalancing).
        lb_after: Load imbalance of the new weights under the new
            assignment.
    """

    nparts: int
    method: str
    new_assignment: np.ndarray = field(repr=False)
    moves: dict[int, np.ndarray] = field(repr=False)
    elements_moved: int = 0
    weight_moved: float = 0.0
    fraction_moved: float = 0.0
    lb_before: float = 0.0
    lb_after: float = 0.0

    def to_dict(self, include_assignment: bool = False) -> dict:
        """JSON-able form (gid lists per destination rank)."""
        out = {
            "nparts": int(self.nparts),
            "method": self.method,
            "moves": {
                str(rank): np.asarray(gids).tolist()
                for rank, gids in self.moves.items()
            },
            "elements_moved": int(self.elements_moved),
            "weight_moved": float(self.weight_moved),
            "fraction_moved": float(self.fraction_moved),
            "lb_before": float(self.lb_before),
            "lb_after": float(self.lb_after),
        }
        if include_assignment:
            out["assignment"] = np.asarray(self.new_assignment).tolist()
        return out


def plan_repartition(
    old_assignment: np.ndarray,
    weights: np.ndarray,
    *,
    ne: int,
    nparts: int | None = None,
    method: str = "sfc",
    seed: int = 0,
    schedule: str | None = None,
) -> RepartitionPlan:
    """Plan the migration from an old assignment to freshly cut parts.

    Builds the new partition for ``weights`` via the registry (so
    capability contracts — weight support, admissible ``ne`` — are
    enforced exactly as for a fresh partition request), then diffs it
    against ``old_assignment``: only elements whose owner changes
    appear in the plan, grouped by destination rank.

    Args:
        old_assignment: ``(6 ne^2,)`` current owner per element.
        weights: New per-element positive weights.
        ne: Elements per cube-face edge.
        nparts: New processor count (default: inferred from the old
            assignment; may differ to grow/shrink the job).
        method: Registered weighted method cutting the new partition.
        seed: Determinism seed (seeded methods only).
        schedule: Optional refinement schedule.

    Returns:
        The :class:`RepartitionPlan`.

    Raises:
        ValueError: Malformed old assignment or weights.
        CapabilityError: ``method`` cannot honor the problem (e.g. it
            does not support weights).
    """
    k = 6 * int(ne) * int(ne)
    old = np.asarray(old_assignment, dtype=np.int64)
    if old.ndim != 1 or len(old) != k:
        raise ValueError(
            f"old_assignment must have one owner per element: expected "
            f"{k} entries for ne={ne}, got shape {old.shape}"
        )
    if len(old) and old.min() < 0:
        raise ValueError("old_assignment owners must be >= 0")
    if nparts is None:
        nparts = int(old.max()) + 1 if len(old) else 1
    weights = validate_weights(weights, k)
    spec = get_partitioner(method)
    new = spec(PartitionProblem(
        ne=int(ne), nparts=int(nparts), seed=int(seed),
        schedule=schedule, weights=weights,
    ))
    if method == "sfc":
        new = new.with_method("sfc-rebal")
    moved = np.flatnonzero(new.assignment != old)
    dests = new.assignment[moved]
    moves = {
        int(rank): moved[dests == rank]
        for rank in np.unique(dests)
    }
    # LB-before bins every *old* owner even when shrinking nparts.
    old_nparts = (int(old.max()) + 1) if len(old) else 1
    before = np.bincount(old, weights=weights, minlength=old_nparts)
    after = np.bincount(new.assignment, weights=weights, minlength=int(nparts))
    return RepartitionPlan(
        nparts=int(nparts),
        method=new.method,
        new_assignment=new.assignment,
        moves=moves,
        elements_moved=int(len(moved)),
        weight_moved=float(weights[moved].sum()),
        fraction_moved=float(len(moved)) / k if k else 0.0,
        lb_before=load_balance(before),
        lb_after=load_balance(after),
    )


@dataclass
class LoadTracker:
    """Drive a sequence of rebalancing steps over changing weights.

    Args:
        curve: The fixed global SFC — a :class:`CubedSphereCurve`, or
            just ``ne`` to use the streaming key path (preferred at
            Ne >= 256: nothing is rebuilt per step).
        nparts: Processor count.
        schedule: Refinement schedule (with ``curve`` given as ``ne``).
    """

    curve: CubedSphereCurve | int
    nparts: int
    schedule: str | None = None

    def __post_init__(self) -> None:
        self.current: Partition | None = None
        self.history: list[dict[str, float]] = []

    def update(self, weights: np.ndarray) -> Partition:
        """Rebalance for new weights; record balance and migration.

        Returns:
            The new partition.
        """
        new = repartition_curve(
            self.curve, weights, self.nparts, schedule=self.schedule
        )
        loads = np.bincount(
            new.assignment, weights=weights, minlength=self.nparts
        )
        entry = {
            "lb": load_balance(loads),
            "max_load": float(loads.max()),
            "mean_load": float(loads.mean()),
        }
        if self.current is not None:
            cost = migration_cost(self.current, new, weights)
            entry["elements_moved"] = float(cost.elements_moved)
            entry["fraction_moved"] = cost.fraction_moved
        else:
            entry["elements_moved"] = 0.0
            entry["fraction_moved"] = 0.0
        self.history.append(entry)
        self.current = new
        return new
