"""Space-filling-curve partitioning (the paper's contribution).

"The space-filling curve is then subdivided into equal sized segments
to achieve the partitioning" (paper Sec. 3).  With uniform element
weights and ``Nproc`` dividing ``K`` this produces *perfectly balanced*
partitions — ``LB(nelemd) = 0`` — which is exactly the property that
lets SFC partitions beat METIS at ``O(1)`` elements per processor.

Two cutting rules are provided:

* :func:`cut_positions_uniform` — equal-count segments (ties broken by
  giving earlier segments the extra element), the paper's rule;
* :func:`cut_positions_weighted` — greedy prefix-sum cuts for weighted
  elements, the standard SFC generalization used by adaptive codes
  (Pilkington & Baden), exposed for the weighted-load extension.
"""

from __future__ import annotations

import numpy as np

from ..cubesphere.curve import CubedSphereCurve, cubed_sphere_curve
from .base import Partition

__all__ = [
    "cut_positions_uniform",
    "cut_positions_weighted",
    "partition_curve",
    "sfc_partition",
]


def cut_positions_uniform(ncells: int, nparts: int) -> np.ndarray:
    """Segment boundaries for equal-count cutting.

    Returns:
        ``(nparts + 1,)`` int array ``b`` with segment ``p`` covering
        curve positions ``[b[p], b[p + 1])``; segment sizes differ by
        at most one, larger segments first.
    """
    if nparts < 1:
        raise ValueError("nparts must be >= 1")
    if nparts > ncells:
        raise ValueError(f"more parts ({nparts}) than cells ({ncells})")
    base, extra = divmod(ncells, nparts)
    sizes = np.full(nparts, base, dtype=np.int64)
    sizes[:extra] += 1
    bounds = np.zeros(nparts + 1, dtype=np.int64)
    np.cumsum(sizes, out=bounds[1:])
    return bounds


def cut_positions_weighted(weights: np.ndarray, nparts: int) -> np.ndarray:
    """Segment boundaries balancing the weight prefix sums.

    Cuts the curve where the running weight crosses multiples of
    ``total / nparts`` — the classical 1-D chains-on-chains heuristic.
    Every segment is non-empty provided ``nparts <= len(weights)``.

    Args:
        weights: Positive weight of each cell *in curve order*.
        nparts: Number of segments.
    """
    weights = np.asarray(weights, dtype=np.float64)
    ncells = len(weights)
    if nparts < 1:
        raise ValueError("nparts must be >= 1")
    if nparts > ncells:
        raise ValueError(f"more parts ({nparts}) than cells ({ncells})")
    if (weights <= 0).any():
        raise ValueError("weights must be positive")
    prefix = np.cumsum(weights)
    total = prefix[-1]
    targets = total * np.arange(1, nparts) / nparts
    cuts = np.searchsorted(prefix - 0.5 * weights, targets, side="left")
    bounds = np.concatenate([[0], cuts, [ncells]]).astype(np.int64)
    # Enforce non-empty segments (strictly increasing interior bounds;
    # the endpoints 0 and ncells are fixed).
    for p in range(1, nparts):
        if bounds[p] <= bounds[p - 1]:
            bounds[p] = bounds[p - 1] + 1
    for p in range(nparts - 1, 0, -1):
        if bounds[p] >= bounds[p + 1]:
            bounds[p] = bounds[p + 1] - 1
    if bounds[0] != 0 or bounds[-1] != ncells or (np.diff(bounds) < 1).any():
        raise ValueError("cannot produce non-empty segments")
    return bounds


def partition_curve(
    curve: CubedSphereCurve,
    nparts: int,
    weights: np.ndarray | None = None,
) -> Partition:
    """Partition a cubed-sphere mesh by cutting its global curve.

    Args:
        curve: Global SFC over the mesh (:func:`cubed_sphere_curve`).
        nparts: Number of processors.
        weights: Optional per-*element* (gid-indexed) weights; when
            given, cuts balance weight rather than element count.

    Returns:
        A :class:`Partition` labeled ``"sfc"``.
    """
    ncells = len(curve)
    if weights is None:
        bounds = cut_positions_uniform(ncells, nparts)
    else:
        weights = np.asarray(weights, dtype=np.float64)
        if len(weights) != ncells:
            raise ValueError("weights must have one entry per element")
        bounds = cut_positions_weighted(weights[curve.order], nparts)
    owner_along_curve = np.empty(ncells, dtype=np.int64)
    for p in range(nparts):
        owner_along_curve[bounds[p] : bounds[p + 1]] = p
    assignment = np.empty(ncells, dtype=np.int64)
    assignment[curve.order] = owner_along_curve
    return Partition(assignment, nparts=nparts, method="sfc")


def sfc_partition(
    ne: int,
    nparts: int,
    schedule: str | None = None,
    weights: np.ndarray | None = None,
) -> Partition:
    """Convenience wrapper: SFC-partition the cubed-sphere at ``ne``.

    Args:
        ne: Elements per cube-face edge (must be ``2^n * 3^m``).
        nparts: Number of processors.
        schedule: Optional face-local refinement schedule (for the
            refinement-order ablation).
        weights: Optional per-element weights.
    """
    curve = cubed_sphere_curve(ne, schedule)
    return partition_curve(curve, nparts, weights)
