"""Space-filling-curve partitioning (the paper's contribution).

"The space-filling curve is then subdivided into equal sized segments
to achieve the partitioning" (paper Sec. 3).  With uniform element
weights and ``Nproc`` dividing ``K`` this produces *perfectly balanced*
partitions — ``LB(nelemd) = 0`` — which is exactly the property that
lets SFC partitions beat METIS at ``O(1)`` elements per processor.

Two cutting rules are provided:

* :func:`cut_positions_uniform` — equal-count segments (ties broken by
  giving earlier segments the extra element), the paper's rule;
* :func:`cut_positions_weighted` — greedy prefix-sum cuts for weighted
  elements, the standard SFC generalization used by adaptive codes
  (Pilkington & Baden), followed by the iterative correction pass of
  Borrell et al. (:func:`refine_cut_positions`): single-element
  boundary shifts accepted only when they strictly reduce the larger
  of the two adjacent segment loads, so the refined cuts are provably
  never worse than the greedy ones.  Under uniform weights the rule
  short-circuits to :func:`cut_positions_uniform` exactly.

Two cutting *paths* apply the rules:

* :func:`partition_curve` — cut a materialized
  :class:`~repro.cubesphere.curve.CubedSphereCurve` (the paper's
  construction, O(K) curve arrays);
* :func:`keyed_cut` / :func:`sfc_partition` — the scalable path per
  Borrell et al.: stream element ids in chunks, map each chunk straight
  to uint64 curve keys (:func:`repro.cubesphere.curve.element_keys`),
  and bucket the keys against the prefix-sum cut bounds.  Peak memory
  is O(chunk) beyond the assignment itself, and the result is
  bit-identical to cutting the materialized curve (golden-tested).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..cubesphere.curve import CubedSphereCurve, cubed_sphere_curve, element_keys
from ..sfc.factorization import factorize_2_3
from ..sfc.keys import morton_keys
from ..telemetry import span
from .base import Partition

__all__ = [
    "DEFAULT_CHUNK",
    "cut_positions_uniform",
    "cut_positions_weighted",
    "keyed_cut",
    "morton_partition",
    "partition_curve",
    "refine_cut_positions",
    "sfc_partition",
]

#: Elements keyed per chunk on the streaming cut path (~24 MB of
#: transient arrays per chunk at int64/uint64 widths).
DEFAULT_CHUNK = 1 << 20


def cut_positions_uniform(ncells: int, nparts: int) -> np.ndarray:
    """Segment boundaries for equal-count cutting.

    Returns:
        ``(nparts + 1,)`` int array ``b`` with segment ``p`` covering
        curve positions ``[b[p], b[p + 1])``; segment sizes differ by
        at most one, larger segments first.
    """
    if nparts < 1:
        raise ValueError("nparts must be >= 1")
    if nparts > ncells:
        raise ValueError(f"more parts ({nparts}) than cells ({ncells})")
    base, extra = divmod(ncells, nparts)
    sizes = np.full(nparts, base, dtype=np.int64)
    sizes[:extra] += 1
    bounds = np.zeros(nparts + 1, dtype=np.int64)
    np.cumsum(sizes, out=bounds[1:])
    return bounds


def cut_positions_weighted(
    weights: np.ndarray, nparts: int, refine: bool = True
) -> np.ndarray:
    """Segment boundaries balancing the weight prefix sums.

    Cuts the curve where the running weight crosses multiples of
    ``total / nparts`` — the classical 1-D chains-on-chains heuristic —
    then (by default) applies the iterative correction pass of Borrell
    et al. (:func:`refine_cut_positions`), which can only improve the
    load balance.  Every segment is non-empty provided
    ``nparts <= len(weights)``.  Uniform weights reduce *exactly* to
    :func:`cut_positions_uniform` (equal counts, larger segments
    first), so weighted and unweighted requests with trivial weights
    produce identical partitions.

    Args:
        weights: Positive weight of each cell *in curve order*.
        nparts: Number of segments.
        refine: Apply the correction pass after the greedy cuts.
    """
    weights = np.asarray(weights, dtype=np.float64)
    ncells = len(weights)
    if nparts < 1:
        raise ValueError("nparts must be >= 1")
    if nparts > ncells:
        raise ValueError(f"more parts ({nparts}) than cells ({ncells})")
    if (weights <= 0).any():
        raise ValueError("weights must be positive")
    if ncells and (weights == weights[0]).all():
        return cut_positions_uniform(ncells, nparts)
    prefix = np.cumsum(weights)
    total = prefix[-1]
    targets = total * np.arange(1, nparts) / nparts
    cuts = np.searchsorted(prefix - 0.5 * weights, targets, side="left")
    bounds = np.concatenate([[0], cuts, [ncells]]).astype(np.int64)
    # Enforce non-empty segments (strictly increasing interior bounds;
    # the endpoints 0 and ncells are fixed).
    for p in range(1, nparts):
        if bounds[p] <= bounds[p - 1]:
            bounds[p] = bounds[p - 1] + 1
    for p in range(nparts - 1, 0, -1):
        if bounds[p] >= bounds[p + 1]:
            bounds[p] = bounds[p + 1] - 1
    if bounds[0] != 0 or bounds[-1] != ncells or (np.diff(bounds) < 1).any():
        raise ValueError("cannot produce non-empty segments")
    if refine:
        bounds = refine_cut_positions(weights, bounds)
    return bounds


def refine_cut_positions(
    weights: np.ndarray,
    bounds: np.ndarray,
    max_sweeps: int | None = None,
) -> np.ndarray:
    """Iterative correction pass over segment boundaries (Borrell et al.).

    Sweeps the interior cut positions, shifting one element at a time
    across a boundary whenever that *strictly reduces the larger* of
    the two adjacent segment loads (and keeps both segments non-empty).
    Segment loads are always recomputed from one fixed prefix-sum
    array, so they are a pure function of the bounds: each accepted
    shift strictly decreases the sorted load vector lexicographically,
    which guarantees termination and that the final maximum load —
    hence LB — is never worse than the input cuts'.

    Args:
        weights: Positive weight of each cell in curve order.
        bounds: ``(nparts + 1,)`` cut positions (not modified).
        max_sweeps: Optional safety cap on full sweeps; by default the
            pass runs to its (guaranteed) fixpoint.

    Returns:
        A new bounds array of the same shape.
    """
    weights = np.asarray(weights, dtype=np.float64)
    bounds = np.array(bounds, dtype=np.int64)
    nparts = len(bounds) - 1
    prefix = np.concatenate([[0.0], np.cumsum(weights)])

    def load(p: int) -> float:
        return prefix[bounds[p + 1]] - prefix[bounds[p]]

    sweeps = 0
    moved = True
    while moved and (max_sweeps is None or sweeps < max_sweeps):
        moved = False
        sweeps += 1
        for p in range(1, nparts):
            while True:
                left, right = load(p - 1), load(p)
                worse = max(left, right)
                b = bounds[p]
                # Shift the left segment's last element rightward.
                if b - bounds[p - 1] >= 2:
                    w = weights[b - 1]
                    if max(left - w, right + w) < worse:
                        bounds[p] = b - 1
                        moved = True
                        continue
                # Shift the right segment's first element leftward.
                if bounds[p + 1] - b >= 2:
                    w = weights[b]
                    if max(left + w, right - w) < worse:
                        bounds[p] = b + 1
                        moved = True
                        continue
                break
    return bounds


def partition_curve(
    curve: CubedSphereCurve,
    nparts: int,
    weights: np.ndarray | None = None,
) -> Partition:
    """Partition a cubed-sphere mesh by cutting its global curve.

    Args:
        curve: Global SFC over the mesh (:func:`cubed_sphere_curve`).
        nparts: Number of processors.
        weights: Optional per-*element* (gid-indexed) weights; when
            given, cuts balance weight rather than element count.

    Returns:
        A :class:`Partition` labeled ``"sfc"``.
    """
    ncells = len(curve)
    if weights is None:
        bounds = cut_positions_uniform(ncells, nparts)
    else:
        weights = np.asarray(weights, dtype=np.float64)
        if len(weights) != ncells:
            raise ValueError("weights must have one entry per element")
        bounds = cut_positions_weighted(weights[curve.order], nparts)
    owner_along_curve = np.empty(ncells, dtype=np.int64)
    for p in range(nparts):
        owner_along_curve[bounds[p] : bounds[p + 1]] = p
    assignment = np.empty(ncells, dtype=np.int64)
    assignment[curve.order] = owner_along_curve
    return Partition(assignment, nparts=nparts, method="sfc")


def keyed_cut(
    key_fn: Callable[[np.ndarray], np.ndarray],
    ncells: int,
    nparts: int,
    weights: np.ndarray | None = None,
    chunk: int | None = None,
    method: str = "sfc",
) -> Partition:
    """Cut a curve by streaming its keys — never materializing it.

    The keys of ``[0, ncells)`` must be a bijection onto ``[0, ncells)``
    (each element's position along the traversal).  Elements are keyed
    in chunks and bucketed against the cut bounds with a binary search,
    so peak memory is O(chunk) beyond the assignment array itself —
    the chunked keying + prefix-sum cutting pass of Borrell et al.

    Args:
        key_fn: Maps an array of element ids to their uint64 keys.
        ncells: Total element count.
        nparts: Number of segments.
        weights: Optional per-element (id-indexed) weights; cuts then
            balance weight instead of element count (one extra chunked
            pass scatters the weights into key order first).
        chunk: Elements keyed per pass (default :data:`DEFAULT_CHUNK`).
        method: Label stamped on the produced partition.

    Returns:
        The :class:`Partition`; bit-identical to cutting the
        materialized traversal with the same rule.
    """
    chunk = DEFAULT_CHUNK if chunk is None else int(chunk)
    if chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk}")
    with span("keyed_cut", "sfc", ncells=ncells, nparts=nparts, method=method):
        if weights is None:
            bounds = cut_positions_uniform(ncells, nparts)
        else:
            weights = np.asarray(weights, dtype=np.float64)
            if len(weights) != ncells:
                raise ValueError("weights must have one entry per element")
            along_curve = np.empty(ncells, dtype=np.float64)
            for lo in range(0, ncells, chunk):
                ids = np.arange(lo, min(lo + chunk, ncells), dtype=np.int64)
                along_curve[key_fn(ids)] = weights[ids]
            bounds = cut_positions_weighted(along_curve, nparts)
        assignment = np.empty(ncells, dtype=np.int64)
        for lo in range(0, ncells, chunk):
            ids = np.arange(lo, min(lo + chunk, ncells), dtype=np.int64)
            keys = key_fn(ids).astype(np.int64, copy=False)
            assignment[lo : lo + len(ids)] = (
                np.searchsorted(bounds, keys, side="right") - 1
            )
        return Partition(assignment, nparts=nparts, method=method)


def sfc_partition(
    ne: int,
    nparts: int,
    schedule: str | None = None,
    weights: np.ndarray | None = None,
    chunk: int | None = None,
) -> Partition:
    """Convenience wrapper: SFC-partition the cubed-sphere at ``ne``.

    Uses the streaming key path (:func:`keyed_cut`): the global curve
    is never materialized, so resolutions far beyond the paper's
    (Ne >= 1024, K in the millions) partition in O(chunk) peak memory.
    Bit-identical to ``partition_curve(cubed_sphere_curve(ne), ...)``.

    Args:
        ne: Elements per cube-face edge (must be ``2^n * 3^m``).
        nparts: Number of processors.
        schedule: Optional face-local refinement schedule (for the
            refinement-order ablation).
        weights: Optional per-element weights.
        chunk: Elements keyed per streaming pass.
    """
    factorize_2_3(ne)  # surface inadmissible sizes before any work
    return keyed_cut(
        lambda ids: element_keys(ne, schedule, gids=ids),
        6 * ne * ne,
        nparts,
        weights=weights,
        chunk=chunk,
        method="sfc",
    )


def morton_partition(
    ne: int,
    nparts: int,
    weights: np.ndarray | None = None,
    chunk: int | None = None,
) -> Partition:
    """Partition by cutting the per-face Morton (Z-order) traversal.

    Faces are visited in storage order with the identity orientation —
    Morton's "Z" jumps make it *discontinuous*, so no face chaining can
    produce a single continuous curve (the curve-baselines ablation
    demonstrates this), and segments may straddle distant blocks.
    Registered as the ``morton`` method for exactly that comparison.

    Args:
        ne: Elements per cube-face edge; must be a power of two.
        nparts: Number of processors.
        weights: Optional per-element weights.
        chunk: Elements keyed per streaming pass.
    """
    if ne < 1 or ne & (ne - 1):
        raise ValueError(
            f"morton partitioning needs ne = 2^n (bit interleave), got {ne}"
        )
    n2 = ne * ne

    def key_fn(ids: np.ndarray) -> np.ndarray:
        face, rem = np.divmod(ids, n2)
        iy, ix = np.divmod(rem, ne)
        keys = morton_keys(ix, iy, ne, check=False)
        keys += face.astype(np.uint64) * np.uint64(n2)
        return keys

    return keyed_cut(
        key_fn, 6 * n2, nparts, weights=weights, chunk=chunk, method="morton"
    )
