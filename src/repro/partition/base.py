"""Partition representation and validation.

A *graph partition* (paper Sec. 2) is the set of sub-graphs produced by
assigning every vertex (spectral element) to one of ``nparts``
processors.  We represent it as a dense assignment vector; everything
else (sizes, cuts, volumes) is derived.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Partition"]


@dataclass(frozen=True)
class Partition:
    """An assignment of ``n`` vertices to ``nparts`` parts.

    Attributes:
        assignment: ``(n,)`` int64 array; ``assignment[v]`` is the part
            (processor) owning vertex ``v``.
        nparts: Number of parts.  Parts may be empty in a *candidate*
            partition, but :meth:`validate` flags that because an empty
            processor is always a defect in this application.
        method: Label of the algorithm that produced the partition
            (``"sfc"``, ``"kway"``, ...); carried along for reporting.
    """

    assignment: np.ndarray
    nparts: int
    method: str = "unknown"

    def __post_init__(self) -> None:
        arr = np.asarray(self.assignment, dtype=np.int64)
        if arr.ndim != 1:
            raise ValueError("assignment must be 1-D")
        if self.nparts < 1:
            raise ValueError("nparts must be >= 1")
        if len(arr) and (arr.min() < 0 or arr.max() >= self.nparts):
            raise ValueError("assignment contains out-of-range part ids")
        object.__setattr__(self, "assignment", arr)
        arr.setflags(write=False)

    @property
    def nvertices(self) -> int:
        return len(self.assignment)

    def part_sizes(self) -> np.ndarray:
        """Vertex count of every part, ``(nparts,)``."""
        return np.bincount(self.assignment, minlength=self.nparts)

    def part_weights(self, vweights: np.ndarray) -> np.ndarray:
        """Total vertex weight of every part."""
        return np.bincount(
            self.assignment, weights=vweights, minlength=self.nparts
        ).astype(np.int64)

    def members(self, part: int) -> np.ndarray:
        """Vertices assigned to ``part`` (sorted)."""
        return np.flatnonzero(self.assignment == part)

    def validate(self, allow_empty: bool = False) -> None:
        """Raise :class:`ValueError` if the partition is malformed.

        Args:
            allow_empty: Permit empty parts (useful mid-algorithm).
        """
        if not allow_empty and (self.part_sizes() == 0).any():
            empty = np.flatnonzero(self.part_sizes() == 0)
            raise ValueError(f"empty parts: {empty.tolist()}")

    def renumbered(self) -> "Partition":
        """Relabel parts densely in order of first appearance.

        Useful after algorithms that may leave gaps in part ids.
        """
        if len(self.assignment) == 0:
            return Partition(self.assignment, nparts=self.nparts, method=self.method)
        uniq, first_index, inverse = np.unique(
            self.assignment, return_index=True, return_inverse=True
        )
        # uniq is sorted; rank each unique label by its first occurrence
        # so label k maps to "k-th label to appear", as the old
        # per-vertex loop did.
        remap = np.empty(len(uniq), dtype=np.int64)
        remap[np.argsort(first_index, kind="stable")] = np.arange(
            len(uniq), dtype=np.int64
        )
        new = remap[inverse]
        return Partition(new, nparts=len(uniq), method=self.method)

    def with_method(self, method: str) -> "Partition":
        return Partition(self.assignment, self.nparts, method)
