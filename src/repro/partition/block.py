"""Naive baseline partitioners: block, strided, and random.

These are not in the paper, but any credible partitioning study needs
trivial baselines to anchor the comparison: the block partitioner is
what a model gets "for free" from its storage order, and the random
partitioner bounds the worst case for communication volume.
"""

from __future__ import annotations

import numpy as np

from .base import Partition

__all__ = ["block_partition", "strided_partition", "random_partition"]


def block_partition(nvertices: int, nparts: int) -> Partition:
    """Contiguous blocks of the natural (gid) vertex order.

    On the cubed-sphere the gid order is face-major row-major, so this
    is "split the storage order", the default of many legacy codes.
    """
    if not 1 <= nparts <= nvertices:
        raise ValueError("need 1 <= nparts <= nvertices")
    base, extra = divmod(nvertices, nparts)
    sizes = np.full(nparts, base, dtype=np.int64)
    sizes[:extra] += 1
    assignment = np.repeat(np.arange(nparts, dtype=np.int64), sizes)
    return Partition(assignment, nparts=nparts, method="block")


def strided_partition(nvertices: int, nparts: int) -> Partition:
    """Round-robin (cyclic) assignment — perfectly balanced, terrible
    locality; the communication-volume worst case among deterministic
    schemes."""
    if not 1 <= nparts <= nvertices:
        raise ValueError("need 1 <= nparts <= nvertices")
    assignment = np.arange(nvertices, dtype=np.int64) % nparts
    return Partition(assignment, nparts=nparts, method="strided")


def random_partition(nvertices: int, nparts: int, seed: int = 0) -> Partition:
    """Balanced random assignment (a random permutation cut in blocks)."""
    if not 1 <= nparts <= nvertices:
        raise ValueError("need 1 <= nparts <= nvertices")
    rng = np.random.default_rng(seed)
    perm = rng.permutation(nvertices)
    base, extra = divmod(nvertices, nparts)
    sizes = np.full(nparts, base, dtype=np.int64)
    sizes[:extra] += 1
    assignment = np.empty(nvertices, dtype=np.int64)
    assignment[perm] = np.repeat(np.arange(nparts, dtype=np.int64), sizes)
    return Partition(assignment, nparts=nparts, method="random")
