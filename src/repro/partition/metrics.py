"""Partition-quality metrics: the quantities of the paper's Table 2.

Definitions follow Section 2 of Dennis (2003):

* ``LB(S) = (max S - avg S) / max S``  (Eq. 1) — 0 is perfect balance;
* *computational load balance* ``LB(nelemd)`` uses ``S`` = vertices
  (elements) per sub-graph;
* *edgecut* — the number of graph edges that straddle sub-graphs;
* *total communication volume* — the data sent between sub-graphs.  The
  paper counts "vertices whose edges are cut" (METIS's unit-size
  definition) but reports TCV in Mbytes for SEAM; we compute the
  physically meaningful quantity: for every element, the boundary
  points it must send to each *distinct* neighboring processor (edge
  weights encode shared points per neighbor link), converted to bytes
  with a configurable per-point size.  The unit-size METIS count is
  also exposed (:attr:`PartitionQuality.boundary_vertices`);
* *communication load balance* ``LB(spcv)`` uses ``S`` = per-processor
  communication volume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graphs.csr import CSRGraph
from .base import Partition

__all__ = [
    "load_balance",
    "edgecut",
    "weighted_edgecut",
    "CommunicationPattern",
    "communication_pattern",
    "PartitionQuality",
    "evaluate_partition",
]


def load_balance(values: np.ndarray) -> float:
    """The paper's Eq. 1: ``LB(S) = (max S - avg S) / max S``.

    Returns 0.0 for perfectly balanced (or empty/all-zero) inputs;
    approaches 1.0 as the maximum dwarfs the average.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return 0.0
    mx = values.max()
    if mx <= 0:
        return 0.0
    return float((mx - values.mean()) / mx)


def edgecut(graph: CSRGraph, partition: Partition) -> int:
    """Number of graph edges with endpoints in different parts."""
    u, v, _ = graph.edge_array()
    a = partition.assignment
    return int((a[u] != a[v]).sum())


def weighted_edgecut(graph: CSRGraph, partition: Partition) -> int:
    """Total weight of cut edges (METIS's KWAY objective)."""
    u, v, w = graph.edge_array()
    a = partition.assignment
    return int(w[(a[u] != a[v])].sum())


@dataclass(frozen=True)
class CommunicationPattern:
    """Who sends how much to whom, derived from a partition.

    The exchange model matches a spectral-element halo exchange: each
    element sends, to every *distinct* neighboring processor, the
    boundary points it shares with that processor's elements (edge
    weight = shared points of one neighbor link; points shared with
    several elements of the same destination part are sent once, so
    per-destination volume is capped at the element's perimeter point
    budget implied by its incident edge weights).

    Attributes:
        nparts: Number of processors.
        send_points: ``(nparts,)`` points sent by each processor
            (the paper's ``spcv`` in point units).
        pair_points: Dict ``(src, dst) -> points`` for every directed
            communicating pair.
        message_counts: ``(nparts,)`` number of distinct destination
            processors of each processor.
        boundary_vertices: ``(nparts,)`` count of vertices with at
            least one cut edge (METIS's unit-size volume per part).
    """

    nparts: int
    send_points: np.ndarray
    pair_points: dict[tuple[int, int], int]
    message_counts: np.ndarray
    boundary_vertices: np.ndarray

    def total_points(self) -> int:
        """Total communication volume in points (sum of ``spcv``)."""
        return int(self.send_points.sum())

    def total_bytes(self, bytes_per_point: int) -> int:
        return self.total_points() * bytes_per_point

    def pair_bytes(self, bytes_per_point: int) -> dict[tuple[int, int], int]:
        return {k: v * bytes_per_point for k, v in self.pair_points.items()}


def communication_pattern(
    graph: CSRGraph, partition: Partition
) -> CommunicationPattern:
    """Compute the full :class:`CommunicationPattern` of a partition.

    Vectorized over the directed edge list: every directed cut edge
    ``v -> u`` contributes its weight to the ``(part[v], part[u])``
    pair and to ``send_points[part[v]]``.
    """
    a = partition.assignment
    nparts = partition.nparts
    src = np.repeat(np.arange(graph.nvertices), graph.degrees())
    dst = graph.indices
    w = graph.eweights
    cut = a[src] != a[dst]
    csrc, cdst, cw = src[cut], dst[cut], w[cut]
    psrc, pdst = a[csrc], a[cdst]
    # Per-processor send volume.
    send_points = np.zeros(nparts, dtype=np.int64)
    np.add.at(send_points, psrc, cw)
    # Pair volumes via flat keys.
    keys = psrc * nparts + pdst
    uniq, inv = np.unique(keys, return_inverse=True)
    sums = np.zeros(len(uniq), dtype=np.int64)
    np.add.at(sums, inv, cw)
    pair_points = {
        (int(k // nparts), int(k % nparts)): int(s) for k, s in zip(uniq, sums)
    }
    message_counts = np.zeros(nparts, dtype=np.int64)
    for s, _ in pair_points:
        message_counts[s] += 1
    # Boundary vertices per part (unit-size METIS volume).
    is_boundary = np.zeros(graph.nvertices, dtype=bool)
    is_boundary[csrc] = True
    boundary_vertices = np.bincount(
        a[is_boundary], minlength=nparts
    ).astype(np.int64)
    return CommunicationPattern(
        nparts=nparts,
        send_points=send_points,
        pair_points=pair_points,
        message_counts=message_counts,
        boundary_vertices=boundary_vertices,
    )


@dataclass(frozen=True)
class PartitionQuality:
    """All Table-2 metrics of one partition.

    Attributes:
        method: Partitioner label.
        nparts: Processor count.
        lb_nelemd: Computational load balance ``LB(nelemd)`` (Eq. 1
            over per-processor element counts; weighted variant in
            :attr:`lb_weight` when vertex weights are non-uniform).
        lb_weight: ``LB`` over per-processor vertex *weight*.
        lb_spcv: Communication load balance ``LB(spcv)``.
        edgecut: Unweighted cut-edge count.
        weighted_edgecut: Cut weight (shared points across cuts).
        total_volume_points: TCV in point units.
        boundary_vertices: METIS unit-size total volume (count of
            vertices with a cut edge).
        nelemd: Per-processor element counts.
        spcv: Per-processor send volumes (points).
    """

    method: str
    nparts: int
    lb_nelemd: float
    lb_weight: float
    lb_spcv: float
    edgecut: int
    weighted_edgecut: int
    total_volume_points: int
    boundary_vertices: int
    nelemd: np.ndarray = field(repr=False)
    spcv: np.ndarray = field(repr=False)

    def total_volume_bytes(self, bytes_per_point: int) -> int:
        return self.total_volume_points * bytes_per_point

    def total_volume_mbytes(self, bytes_per_point: int) -> float:
        return self.total_volume_bytes(bytes_per_point) / 1.0e6


def evaluate_partition(
    graph: CSRGraph, partition: Partition
) -> PartitionQuality:
    """Compute every partition metric in one pass."""
    partition.validate(allow_empty=True)
    sizes = partition.part_sizes()
    weights = partition.part_weights(graph.vweights)
    comm = communication_pattern(graph, partition)
    u, v, w = graph.edge_array()
    a = partition.assignment
    cutmask = a[u] != a[v]
    return PartitionQuality(
        method=partition.method,
        nparts=partition.nparts,
        lb_nelemd=load_balance(sizes),
        lb_weight=load_balance(weights),
        lb_spcv=load_balance(comm.send_points),
        edgecut=int(cutmask.sum()),
        weighted_edgecut=int(w[cutmask].sum()),
        total_volume_points=comm.total_points(),
        boundary_vertices=int(comm.boundary_vertices.sum()),
        nelemd=sizes,
        spcv=comm.send_points,
    )
