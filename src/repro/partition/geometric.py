"""Recursive coordinate bisection (RCB) — the geometric baseline.

RCB partitions by recursively splitting the point set at the median of
its widest coordinate axis.  It is the classical geometric competitor
to both graph partitioning and SFC partitioning (and, like the SFC, is
what Zoltan-era libraries shipped for mesh repartitioning), so it
rounds out the method comparison in the ablation benches.

On the cubed-sphere the coordinates are the 3-D unit-sphere element
centers; splitting in 3-D avoids the pole artifacts a lon/lat split
would suffer.
"""

from __future__ import annotations

import numpy as np

from .base import Partition

__all__ = ["rcb_partition"]


def _split_counts(total: int, nparts: int) -> tuple[int, int]:
    """Split ``nparts`` into halves and give each its share of vertices."""
    left_parts = nparts // 2
    right_parts = nparts - left_parts
    left_count = int(round(total * left_parts / nparts))
    left_count = min(max(left_count, left_parts), total - right_parts)
    return left_parts, left_count


def rcb_partition(points: np.ndarray, nparts: int) -> Partition:
    """Partition points with recursive coordinate bisection.

    Args:
        points: ``(n, d)`` float coordinates.
        nparts: Number of parts (any positive integer; non-powers of
            two are handled by proportional splits).

    Returns:
        A :class:`Partition` labeled ``"rcb"``.
    """
    points = np.asarray(points, dtype=np.float64)
    n = len(points)
    if not 1 <= nparts <= n:
        raise ValueError("need 1 <= nparts <= npoints")
    assignment = np.empty(n, dtype=np.int64)
    # Work queue of (vertex ids, first part id, part count).
    stack: list[tuple[np.ndarray, int, int]] = [
        (np.arange(n, dtype=np.int64), 0, nparts)
    ]
    while stack:
        ids, first, parts = stack.pop()
        if parts == 1:
            assignment[ids] = first
            continue
        pts = points[ids]
        spans = pts.max(axis=0) - pts.min(axis=0)
        axis = int(np.argmax(spans))
        left_parts, left_count = _split_counts(len(ids), parts)
        order = np.argsort(pts[:, axis], kind="stable")
        left_ids = ids[order[:left_count]]
        right_ids = ids[order[left_count:]]
        stack.append((left_ids, first, left_parts))
        stack.append((right_ids, first + left_parts, parts - left_parts))
    return Partition(assignment, nparts=nparts, method="rcb")
