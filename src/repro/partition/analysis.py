"""Structural analysis of a partition: shape, connectivity, interfaces.

The scalar metrics of :mod:`repro.partition.metrics` say *how good* a
partition is; this module says *why*: whether each processor's patch is
connected, how its communication splits between edge and corner
interfaces, and how far apart its elements sit.  These are the
quantities one inspects when a partitioner underperforms (e.g. METIS
parts that look balanced but are fragmented into islands).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.csr import CSRGraph
from ..graphs.traversal import bfs_levels, connected_components
from .base import Partition

__all__ = ["PartShape", "PartitionStructure", "analyze_structure"]


@dataclass(frozen=True)
class PartShape:
    """Shape statistics of one part.

    Attributes:
        part: Part id.
        size: Element count.
        components: Connected components of the induced subgraph
            (1 = a single patch; more = fragmented).
        diameter: Hop diameter of the largest component (0 for
            singleton parts).
        boundary_elements: Elements with at least one cut edge.
    """

    part: int
    size: int
    components: int
    diameter: int
    boundary_elements: int

    @property
    def is_connected(self) -> bool:
        return self.components <= 1

    @property
    def boundary_fraction(self) -> float:
        return self.boundary_elements / self.size if self.size else 0.0


@dataclass(frozen=True)
class PartitionStructure:
    """Whole-partition structural summary.

    Attributes:
        shapes: Per-part shapes.
        fragmented_parts: Count of parts with more than one component.
        max_diameter: Largest part diameter.
        mean_boundary_fraction: Mean fraction of boundary elements.
        cut_weight_by_kind: Cut weight split by edge weight value
            (for mesh graphs: full-edge vs corner interfaces).
    """

    shapes: tuple[PartShape, ...]
    fragmented_parts: int
    max_diameter: int
    mean_boundary_fraction: float
    cut_weight_by_kind: dict[int, int]

    def worst_parts(self, k: int = 5) -> list[PartShape]:
        """The ``k`` most fragmented / stretched parts."""
        return sorted(
            self.shapes, key=lambda s: (-s.components, -s.diameter)
        )[:k]


def _diameter_of(graph: CSRGraph, members: np.ndarray) -> int:
    """Hop diameter of the largest component induced by ``members``."""
    if len(members) <= 1:
        return 0
    sub, _ = graph.subgraph(members)
    comp = connected_components(sub)
    # Restrict to the largest component.
    sizes = np.bincount(comp)
    main = int(np.argmax(sizes))
    mask = comp == main
    start = int(np.flatnonzero(mask)[0])
    # Double BFS gives the exact diameter on trees and a good lower
    # bound generally; adequate for diagnostics.
    lv1 = bfs_levels(sub, start, mask)
    far = int(np.argmax(lv1))
    lv2 = bfs_levels(sub, far, mask)
    return int(lv2.max())


def analyze_structure(graph: CSRGraph, partition: Partition) -> PartitionStructure:
    """Compute the structural report of a partition.

    Args:
        graph: Element-connectivity graph.
        partition: Assignment to analyze.
    """
    a = partition.assignment
    n = graph.nvertices
    src = np.repeat(np.arange(n), graph.degrees())
    cut = a[src] != a[graph.indices]
    boundary = np.zeros(n, dtype=bool)
    boundary[src[cut]] = True
    # Cut weight by interface kind (each undirected edge counted once).
    u, v, w = graph.edge_array()
    cut_mask = a[u] != a[v]
    kinds: dict[int, int] = {}
    for wv in np.unique(w[cut_mask]):
        kinds[int(wv)] = int((w[cut_mask] == wv).sum() * wv)
    shapes = []
    for part in range(partition.nparts):
        members = np.flatnonzero(a == part)
        if len(members) == 0:
            shapes.append(
                PartShape(part=part, size=0, components=0, diameter=0,
                          boundary_elements=0)
            )
            continue
        sub, _ = graph.subgraph(members)
        ncomp = int(connected_components(sub).max()) + 1
        shapes.append(
            PartShape(
                part=part,
                size=len(members),
                components=ncomp,
                diameter=_diameter_of(graph, members),
                boundary_elements=int(boundary[members].sum()),
            )
        )
    nonempty = [s for s in shapes if s.size]
    return PartitionStructure(
        shapes=tuple(shapes),
        fragmented_parts=sum(1 for s in nonempty if s.components > 1),
        max_diameter=max((s.diameter for s in nonempty), default=0),
        mean_boundary_fraction=float(
            np.mean([s.boundary_fraction for s in nonempty]) if nonempty else 0.0
        ),
        cut_weight_by_kind=kinds,
    )
