"""Staged partition pipeline: mesh → graph → partition → evaluate.

The service engine used to compute each response as one opaque call;
this module decomposes it into four explicit stages, each individually
traced (a ``stage:<name>`` telemetry span) and versioned:

* **mesh** — the cubed-sphere mesh at ``ne``;
* **graph** — the weighted element graph (edge weight = points per
  element edge from the SEAM cost model);
* **partition** — the registry-resolved method applied to the problem;
* **evaluate** — the Table-2 quality metrics of the partition.

The mesh and graph stages are memoized in small per-process LRU caches
keyed by ``(stage version, parameters)``, so a batch that sweeps many
methods at the same ``ne`` builds the mesh and graph **once** and every
other method reuses them (``stage_cache_total{stage=...,outcome=hit}``
counts the reuse).  The partition and evaluate stages are *not*
memoized here — their results are exactly what the service engine's
two-tier response cache stores, content-addressed by request.

:data:`STAGE_VERSIONS` tags every stage's implementation; bump a
stage's version whenever its output changes and :func:`cache_version`
(the composite tag stamped into on-disk cache entries) changes with
it, so stale pre-bump entries are recomputed instead of silently
served.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..telemetry import inc, span
from . import registry
from .base import Partition
from .metrics import PartitionQuality, evaluate_partition

__all__ = [
    "STAGE_VERSIONS",
    "PipelineResult",
    "cache_version",
    "clear_stage_caches",
    "evaluate_stage",
    "graph_stage",
    "mesh_stage",
    "partition_stage",
    "run_pipeline",
    "stage_cache_stats",
]

#: Implementation version of every pipeline stage.  Bump a stage when
#: its output changes for identical inputs; cached responses produced
#: under a different composite version are recomputed.
STAGE_VERSIONS: dict[str, int] = {
    "mesh": 1,
    "graph": 1,
    # v2: weighted cuts gained the iterative correction pass and the
    # exact uniform-weights reduction (weighted outputs changed).
    "partition": 2,
    "evaluate": 1,
}


def cache_version() -> str:
    """Composite stage-version tag, e.g. ``"mesh1.graph1.partition1.evaluate1"``.

    Stamped into every on-disk cache entry; entries carrying a
    different (or no) tag are treated as misses and recomputed.
    """
    return ".".join(f"{s}{STAGE_VERSIONS[s]}" for s in STAGE_VERSIONS)


class _StageCache:
    """Small LRU memoizer for one pipeline stage, with hit/miss stats."""

    def __init__(self, stage: str, maxsize: int) -> None:
        self.stage = stage
        self.maxsize = maxsize
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get_or_compute(self, key: tuple, compute):
        full_key = (STAGE_VERSIONS[self.stage], *key)
        if full_key in self._entries:
            self._entries.move_to_end(full_key)
            self.hits += 1
            inc("stage_cache_total", stage=self.stage, outcome="hit")
            return self._entries[full_key]
        self.misses += 1
        inc("stage_cache_total", stage=self.stage, outcome="miss")
        with span(
            f"stage:{self.stage}",
            "pipeline",
            version=STAGE_VERSIONS[self.stage],
            key=str(key),
        ):
            value = compute()
        self._entries[full_key] = value
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        return value

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._entries),
        }

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0


_MESH_CACHE = _StageCache("mesh", maxsize=32)
_GRAPH_CACHE = _StageCache("graph", maxsize=16)


def stage_cache_stats() -> dict[str, dict[str, int]]:
    """Hit/miss/entry counts of the memoized stages (this process)."""
    return {"mesh": _MESH_CACHE.stats(), "graph": _GRAPH_CACHE.stats()}


def clear_stage_caches() -> None:
    """Drop the mesh/graph stage caches and reset their counters."""
    _MESH_CACHE.clear()
    _GRAPH_CACHE.clear()


def _default_npts() -> int:
    # Lazy: the SEAM cost model lives above the partition layer's
    # leaf modules and is only needed to weight graph edges.
    from ..seam.cost import DEFAULT_COST_MODEL

    return DEFAULT_COST_MODEL.npts


def mesh_stage(ne: int):
    """The cubed-sphere mesh at ``ne`` (stage-cached per process)."""

    def compute():
        from ..cubesphere.mesh import cubed_sphere_mesh

        return cubed_sphere_mesh(ne)

    return _MESH_CACHE.get_or_compute((int(ne),), compute)


def graph_stage(ne: int, npts: int | None = None):
    """The weighted element graph at ``ne`` (stage-cached per process).

    Args:
        ne: Elements per cube-face edge.
        npts: Edge weight (points per element edge); defaults to the
            SEAM cost model's point count.
    """
    npts = _default_npts() if npts is None else int(npts)

    def compute():
        from ..graphs.csr import mesh_graph

        return mesh_graph(mesh_stage(ne), edge_weight=npts, corner_weight=1)

    return _GRAPH_CACHE.get_or_compute((int(ne), npts), compute)


def partition_stage(
    method: str,
    ne: int,
    nparts: int,
    seed: int = 0,
    schedule: str | None = None,
    weights: np.ndarray | None = None,
) -> Partition:
    """Resolve ``method`` through the registry and build the partition.

    Capability violations (unknown method, inadmissible ``ne``,
    schedule/weights on a method that lacks them) raise before any
    compute starts.
    """
    spec = registry.get(method)
    problem = registry.PartitionProblem(
        ne=int(ne), nparts=int(nparts), seed=int(seed),
        schedule=schedule, weights=weights,
    )
    with span(
        "stage:partition",
        "pipeline",
        partitioner=spec.name,
        ne=int(ne),
        nparts=int(nparts),
        weighted=problem.weights is not None,
        version=STAGE_VERSIONS["partition"],
    ):
        return spec(problem)


def evaluate_stage(graph, partition: Partition) -> PartitionQuality:
    """Quality metrics (Table-2 quantities) of a partition."""
    with span(
        "stage:evaluate",
        "pipeline",
        partitioner=partition.method,
        version=STAGE_VERSIONS["evaluate"],
    ):
        return evaluate_partition(graph, partition)


@dataclass(frozen=True)
class PipelineResult:
    """Output of one full pipeline run."""

    partition: Partition
    quality: PartitionQuality


def run_pipeline(
    method: str,
    ne: int,
    nparts: int,
    seed: int = 0,
    schedule: str | None = None,
    weights: np.ndarray | None = None,
    npts: int | None = None,
) -> PipelineResult:
    """Run all four stages for one partitioning problem.

    Bit-identical to calling the underlying partitioner directly; the
    stages only add tracing and mesh/graph reuse.
    """
    graph = graph_stage(ne, npts)
    partition = partition_stage(
        method, ne, nparts, seed=seed, schedule=schedule, weights=weights
    )
    quality = evaluate_stage(graph, partition)
    return PipelineResult(partition=partition, quality=quality)
