"""Partitioning algorithms and partition-quality metrics."""

from .analysis import PartitionStructure, PartShape, analyze_structure
from .base import Partition
from .block import block_partition, random_partition, strided_partition
from .geometric import rcb_partition
from .repartition import (
    LoadTracker,
    MigrationCost,
    migration_cost,
    repartition_curve,
)
from .metrics import (
    CommunicationPattern,
    PartitionQuality,
    communication_pattern,
    edgecut,
    evaluate_partition,
    load_balance,
    weighted_edgecut,
)
from .sfc import (
    cut_positions_uniform,
    cut_positions_weighted,
    partition_curve,
    sfc_partition,
)

__all__ = [
    "CommunicationPattern",
    "PartShape",
    "PartitionStructure",
    "analyze_structure",
    "LoadTracker",
    "MigrationCost",
    "Partition",
    "PartitionQuality",
    "block_partition",
    "communication_pattern",
    "cut_positions_uniform",
    "cut_positions_weighted",
    "edgecut",
    "evaluate_partition",
    "load_balance",
    "migration_cost",
    "repartition_curve",
    "partition_curve",
    "random_partition",
    "rcb_partition",
    "sfc_partition",
    "strided_partition",
    "weighted_edgecut",
]
