"""Partitioning algorithms, registry, staged pipeline, and metrics."""

from .analysis import PartitionStructure, PartShape, analyze_structure
from .base import Partition
from .block import block_partition, random_partition, strided_partition
from .geometric import rcb_partition
from .pipeline import (
    STAGE_VERSIONS,
    PipelineResult,
    cache_version,
    evaluate_stage,
    graph_stage,
    mesh_stage,
    partition_stage,
    run_pipeline,
    stage_cache_stats,
)
from .registry import (
    CapabilityError,
    DuplicatePartitionerError,
    PartitionProblem,
    Partitioner,
    UnknownPartitionerError,
)
from . import registry
from .repartition import (
    LoadTracker,
    MigrationCost,
    RepartitionPlan,
    migration_cost,
    plan_repartition,
    repartition_curve,
)
from .metrics import (
    CommunicationPattern,
    PartitionQuality,
    communication_pattern,
    edgecut,
    evaluate_partition,
    load_balance,
    weighted_edgecut,
)
from .sfc import (
    cut_positions_uniform,
    cut_positions_weighted,
    keyed_cut,
    morton_partition,
    partition_curve,
    refine_cut_positions,
    sfc_partition,
)

__all__ = [
    "CapabilityError",
    "CommunicationPattern",
    "DuplicatePartitionerError",
    "PartShape",
    "Partitioner",
    "PartitionProblem",
    "PartitionStructure",
    "PipelineResult",
    "STAGE_VERSIONS",
    "UnknownPartitionerError",
    "analyze_structure",
    "LoadTracker",
    "MigrationCost",
    "Partition",
    "PartitionQuality",
    "block_partition",
    "cache_version",
    "evaluate_stage",
    "graph_stage",
    "mesh_stage",
    "partition_stage",
    "registry",
    "run_pipeline",
    "stage_cache_stats",
    "communication_pattern",
    "cut_positions_uniform",
    "cut_positions_weighted",
    "edgecut",
    "evaluate_partition",
    "keyed_cut",
    "load_balance",
    "migration_cost",
    "morton_partition",
    "plan_repartition",
    "refine_cut_positions",
    "RepartitionPlan",
    "repartition_curve",
    "partition_curve",
    "random_partition",
    "rcb_partition",
    "sfc_partition",
    "strided_partition",
    "weighted_edgecut",
]
