"""Legacy stage profiler — a thin view over :mod:`repro.telemetry`.

The original stage profiler predates the unified telemetry layer; its
API (:func:`profiled`, :func:`stage`, :func:`counter`) and output
(``--profile`` tables, ``--profile-json``) are kept working, but the
instrumentation points now live in :mod:`repro.telemetry.runtime`:
``stage`` *is* a telemetry span and ``counter`` *is* a telemetry
counter.  Activating :func:`profiled` installs a :class:`Profiler` as
the telemetry runtime's legacy collector, so every span's duration and
every counter bump is accumulated here too — including spans recorded
inside pool worker processes, which the engine ships back and replays
(the gap the old profiler documented is closed).

    with profiled() as prof:
        part_graph(graph, 64, "rb")
    print(prof.render())
    Path("profile.json").write_text(prof.to_json())

Stages may nest (K-way's initial partition runs the whole recursive
bisection pipeline inside its ``initial`` stage), so stage times can
overlap and percentages are of elapsed wall time, not of a partition
of it.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from time import perf_counter

from .telemetry import runtime as _runtime
from .telemetry.metrics import SCHEMA_VERSION

__all__ = ["Profiler", "profiled", "stage", "counter", "active_profiler"]


class Profiler:
    """Accumulates per-stage wall time, call counts, and counters."""

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}
        self.calls: dict[str, int] = {}
        self.counters: dict[str, int] = {}
        self._start = perf_counter()
        self._elapsed: float | None = None

    def add(self, name: str, dt: float) -> None:
        self.seconds[name] = self.seconds.get(name, 0.0) + dt
        self.calls[name] = self.calls.get(name, 0) + 1

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def finish(self) -> None:
        """Freeze the elapsed wall time (called by :func:`profiled`)."""
        if self._elapsed is None:
            self._elapsed = perf_counter() - self._start

    @property
    def elapsed_s(self) -> float:
        return (
            self._elapsed
            if self._elapsed is not None
            else perf_counter() - self._start
        )

    def as_dict(self) -> dict:
        """JSON-ready summary of everything collected."""
        return {
            "schema": SCHEMA_VERSION,
            "elapsed_s": self.elapsed_s,
            "stages": {
                name: {"seconds": self.seconds[name], "calls": self.calls[name]}
                for name in self.seconds
            },
            "counters": dict(self.counters),
        }

    def to_json(self, **meta) -> str:
        """Serialize (with optional metadata keys) for the perf harness."""
        payload = dict(meta)
        payload.update(self.as_dict())
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    def render(self, title: str = "Profile") -> str:
        """Text table of stages (by time, descending) and counters."""
        elapsed = self.elapsed_s
        lines = [f"{title}  (wall {1e3 * elapsed:.1f} ms)"]
        width = max([len(n) for n in self.seconds] + [5])
        lines.append(f"{'stage':<{width}}  {'calls':>7}  {'ms':>9}  {'%wall':>6}")
        for name in sorted(self.seconds, key=self.seconds.get, reverse=True):
            sec = self.seconds[name]
            pct = 100.0 * sec / elapsed if elapsed > 0 else 0.0
            lines.append(
                f"{name:<{width}}  {self.calls[name]:>7}  "
                f"{1e3 * sec:>9.1f}  {pct:>5.1f}%"
            )
        if self.counters:
            lines.append("counters: " + "  ".join(
                f"{k}={v}" for k, v in sorted(self.counters.items())
            ))
        return "\n".join(lines)


def active_profiler() -> Profiler | None:
    """The profiler currently collecting, or ``None``."""
    return _runtime.active_profiler()


@contextmanager
def profiled():
    """Activate a fresh :class:`Profiler` for the enclosed block.

    Composes with :func:`repro.telemetry.telemetry_session`: when both
    are active, spans and counters feed both collectors.
    """
    prof = Profiler()
    try:
        with _runtime.activate(profiler=prof):
            yield prof
    finally:
        prof.finish()


def stage(name: str):
    """Time the enclosed block under ``name`` (no-op when inactive)."""
    return _runtime.span(name, "stage")


def counter(name: str, n: int = 1) -> None:
    """Bump a named counter (no-op when inactive)."""
    _runtime.inc(name, n)
