"""Batch partition execution engine.

The engine is the serving core: submit any number of
:class:`PartitionRequest`\\ s and get back one response per request, in
request order, with bit-identical assignments to serial in-process
computation.  Per batch it

1. **deduplicates** requests by content hash (a sweep that asks the
   same point twice computes it once);
2. **consults the cache** (memory LRU, then disk) for every unique
   request;
3. **fans the misses out** over a ``ProcessPoolExecutor`` — sweep
   points are embarrassingly parallel, and the heavy partitioners
   (multilevel METIS) are pure CPU-bound Python/NumPy, so processes
   are the right executor;
4. **stores** every computed response back into the cache and records
   telemetry in :class:`~repro.service.stats.ServiceStats`.

``jobs=1`` (the default) computes misses inline — no pool, no fork —
which keeps single-request CLI calls and small test batches cheap and
trivially debuggable.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Sequence
from concurrent.futures import Executor, ProcessPoolExecutor, wait
from time import perf_counter

import numpy as np

from ..partition import registry
from ..partition.pipeline import run_pipeline
from ..telemetry import (
    RequestContext,
    current_context,
    inc,
    log_event,
    observe,
    replay_payload,
    request_context,
    set_gauge,
    span,
    telemetry_active,
    worker_session,
)
from .cache import PartitionCache
from .requests import (
    PartitionRequest,
    PartitionResponse,
    RepartitionRequest,
    RepartitionResponse,
    quality_metrics,
)
from .stats import ServiceStats

__all__ = ["PartitionEngine", "compute_repartition_response", "compute_response"]


def compute_response(request: PartitionRequest) -> PartitionResponse:
    """Compute one partition + its metrics (runs in worker processes).

    Module-level (picklable) on purpose.  Deterministic for a given
    request, so parallel and serial execution agree bit-for-bit.

    Runs the staged pipeline (mesh → graph → partition → evaluate,
    :func:`repro.partition.pipeline.run_pipeline`): each stage is
    traced individually, and the mesh/graph stages are memoized per
    process, so a batch sweeping several methods at the same ``ne``
    builds the mesh and graph once.

    For weighted requests the ``lb_weight`` metric reports the load
    imbalance under the *request's* weights (the quantity a weighted
    cut balances), not the graph's uniform vertex weights.
    """
    start = perf_counter()
    with span(
        "compute",
        "service",
        key=request.cache_key()[:12],
        method=request.method,
        ne=request.ne,
        nparts=request.nparts,
    ):
        weights = request.resolve_weights()
        result = run_pipeline(
            request.method,
            request.ne,
            request.nparts,
            seed=request.seed,
            schedule=request.schedule,
            weights=weights,
        )
    metrics = quality_metrics(result.quality)
    if weights is not None:
        from ..partition.metrics import load_balance

        loads = np.bincount(
            result.partition.assignment, weights=weights,
            minlength=request.nparts,
        )
        metrics["lb_weight"] = load_balance(loads)
    return PartitionResponse(
        request=request,
        assignment=result.partition.assignment,
        metrics=metrics,
        elapsed_s=perf_counter() - start,
        source="computed",
    )


def compute_repartition_response(request: RepartitionRequest) -> RepartitionResponse:
    """Plan one rebalancing migration (runs in worker processes).

    Module-level (picklable) and deterministic, like
    :func:`compute_response`; the heavy lifting is
    :func:`repro.partition.repartition.plan_repartition` on the
    streaming key path.
    """
    from ..partition.repartition import plan_repartition

    start = perf_counter()
    with span(
        "repartition",
        "service",
        key=request.cache_key()[:12],
        method=request.method,
        ne=request.ne,
        nparts=request.nparts,
    ):
        plan = plan_repartition(
            request.old_assignment,
            request.resolve_weights(),
            ne=request.ne,
            nparts=request.nparts,
            method=request.method,
            seed=request.seed,
            schedule=request.schedule,
        )
    return RepartitionResponse(
        request=request,
        plan=plan,
        elapsed_s=perf_counter() - start,
        source="computed",
    )


def _pool_compute(item: tuple[PartitionRequest, bool, dict | None]):
    """Pool task: compute one response, optionally with telemetry.

    When the parent had a collector active, a fresh worker-local
    session records every span, metric, and log record produced by the
    computation and ships them back alongside the response (the parent
    replays the payload into its own collectors and log sinks).

    ``ctx_dict`` is the request's trace context crossing the process
    boundary: the worker re-enters it, so worker-side spans and log
    records carry the same trace id as the server-side request.

    Dispatches on the request type, so partition and repartition
    requests share one pool path (and one tuple shape on the wire).
    """
    request, collect, ctx_dict = item
    compute = (
        compute_repartition_response
        if isinstance(request, RepartitionRequest)
        else compute_response
    )
    if not collect:
        return compute(request), None
    with request_context(RequestContext.from_dict(ctx_dict)):
        with worker_session() as session:
            response = compute(request)
            log_event(
                "worker.compute",
                key=request.cache_key()[:12],
                method=request.method,
                ne=request.ne,
                nparts=request.nparts,
                elapsed_ms=round(1e3 * response.elapsed_s, 3),
            )
    return response, session.to_payload()


def _record_response_metrics(response: PartitionResponse) -> None:
    """Per-request quality metrics and source counters (no-op when idle).

    The ``partitioner`` label is the registry name (the single source
    of truth for method identity), not the free-form ``method`` string
    a ``Partition`` happens to carry.
    """
    partitioner = registry.get(response.request.method).name
    inc("service_requests_total", source=response.source, partitioner=partitioner)
    m = response.metrics
    observe("request_lb_nelemd", m["lb_nelemd"], partitioner=partitioner)
    observe("request_lb_spcv", m["lb_spcv"], partitioner=partitioner)
    observe("request_edgecut", m["edgecut"], partitioner=partitioner)
    observe("request_tcv_points", m["total_volume_points"], partitioner=partitioner)
    if response.source == "computed":
        observe(
            "request_compute_seconds", response.elapsed_s, partitioner=partitioner
        )


class PartitionEngine:
    """Cached, batched, parallel partition server.

    Args:
        cache: Response cache; ``None`` builds a default memory-only
            :class:`PartitionCache`.
        jobs: Worker processes for cache misses.  ``1`` computes
            inline in this process.
    """

    def __init__(self, cache: PartitionCache | None = None, jobs: int = 1) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.cache = cache if cache is not None else PartitionCache()
        self.jobs = jobs
        self.stats = ServiceStats(jobs=jobs)
        self._pool: ProcessPoolExecutor | None = None
        self._lock = threading.Lock()
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(
                "PartitionEngine is closed; create a new engine to serve "
                "further requests"
            )

    def _ensure_pool(self) -> ProcessPoolExecutor:
        """The persistent worker pool, created lazily and thread-safely.

        The lock matters for long-running (server) use: the engine may
        be driven from an event loop and from executor threads at once,
        and two racing first submissions must not each fork a pool.
        """
        with self._lock:
            self._check_open()
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.jobs if self.jobs > 1 else 1
                )
            return self._pool

    def executor(self) -> Executor:
        """The pool as a ``concurrent.futures.Executor`` (server path).

        Always process-backed — even at ``jobs=1`` — so an asyncio
        front-end can ``run_in_executor`` CPU-bound computes without
        ever blocking the event loop (or racing the process-global
        telemetry state from a worker thread).

        Raises:
            RuntimeError: The engine has been closed.
        """
        return self._ensure_pool()

    def warm(self) -> int:
        """Fork every worker process now; returns the worker count.

        ``ProcessPoolExecutor`` spawns workers lazily at submission
        time.  A worker forked mid-serving inherits copies of every
        file descriptor the parent has opened since the pool was
        created — including the server's listening socket and client
        connections — and those copies keep the sockets alive after
        the parent closes them.  The server therefore warms the pool
        *before* binding, so no worker can ever hold a socket fd.
        """
        pool = self._ensure_pool()
        want = getattr(pool, "_max_workers", self.jobs)
        procs = getattr(pool, "_processes", None)
        # Each submit spawns a new worker while none is idle, so rounds
        # of short sleeps (keeping existing workers busy) fork the rest.
        for _ in range(50):
            if procs is None or len(procs) >= want:
                break
            wait([pool.submit(time.sleep, 0.02) for _ in range(want)])
        return len(procs) if procs is not None else want

    def __enter__(self) -> PartitionEngine:
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def serve(self, request: PartitionRequest) -> PartitionResponse:
        """Serve a single request (batch of one)."""
        return self.run([request])[0]

    def run(
        self, requests: Sequence[PartitionRequest]
    ) -> list[PartitionResponse]:
        """Serve a batch; responses align with ``requests`` by index."""
        self._check_open()
        start = perf_counter()
        with span("engine_run", "service", requests=len(requests), jobs=self.jobs):
            responses = self._run_batch(requests)
        self.stats.record_batch_wall(perf_counter() - start)
        return responses

    def _run_batch(
        self, requests: Sequence[PartitionRequest]
    ) -> list[PartitionResponse]:
        # Dedupe by content hash, preserving first-seen order.
        order: list[str] = []
        unique: dict[str, PartitionRequest] = {}
        with span("dedup", "service"):
            for req in requests:
                key = req.cache_key()
                order.append(key)
                unique.setdefault(key, req)

        resolved: dict[str, PartitionResponse] = {}
        misses: list[PartitionRequest] = []
        with span("cache", "service"):
            for key, req in unique.items():
                hit = self.cache.get(req)
                if hit is not None:
                    resolved[key] = hit
                else:
                    misses.append(req)
        inc("cache_hits", len(resolved))
        inc("cache_misses", len(misses))

        for response in self._compute_all(misses):
            self.cache.put(response.request, response)
            resolved[response.request.cache_key()] = response
            log_event(
                "engine.compute",
                key=response.request.cache_key()[:12],
                method=response.request.method,
                ne=response.request.ne,
                nparts=response.request.nparts,
                elapsed_ms=round(1e3 * response.elapsed_s, 3),
                jobs=self.jobs,
            )

        # Duplicate requests within the batch share the first
        # occurrence's answer; label repeats ``dedup`` so telemetry
        # doesn't double-count the compute time.
        responses: list[PartitionResponse] = []
        served: set[str] = set()
        for key in order:
            response = resolved[key]
            if key in served:
                response = response.with_source("dedup")
            served.add(key)
            responses.append(response)
        for response in responses:
            self.stats.record(response)
            _record_response_metrics(response)
        return responses

    def _compute_all(
        self, misses: list[PartitionRequest]
    ) -> list[PartitionResponse]:
        if not misses:
            return []
        if self.jobs == 1 or len(misses) == 1:
            with span("compute_inline", "service"):
                return [compute_response(req) for req in misses]
        # The pool persists across run() calls: repeated sweeps pay the
        # worker fork/import cost once per engine, not once per batch.
        pool = self._ensure_pool()
        collect = telemetry_active()
        ctx = current_context()
        ctx_dict = ctx.to_dict() if ctx is not None else None
        set_gauge("pool_queue_depth", len(misses))
        responses: list[PartitionResponse] = []
        with span("pool", "service", misses=len(misses), jobs=self.jobs):
            # Replay inside the pool span so worker spans re-parent
            # under it in the trace.
            for response, payload in pool.map(
                _pool_compute, [(req, collect, ctx_dict) for req in misses]
            ):
                if payload is not None:
                    replay_payload(payload)
                    inc("worker_payloads_merged")
                responses.append(response)
        set_gauge("pool_queue_depth", 0)
        return responses
