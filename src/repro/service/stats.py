"""Service instrumentation: per-request timing and utilization.

The engine records one :class:`RequestRecord` per served request and
one wall-clock sample per batch.  :class:`ServiceStats` aggregates
them into the numbers an operator cares about — hit rate, throughput,
worker utilization — and renders both a per-source summary and a
per-request breakdown via :func:`~repro.report.format_table`
so service telemetry looks like every other table in the repo.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["RequestRecord", "ServiceStats"]

SOURCES = ("computed", "memory", "disk", "dedup", "coalesced")


@dataclass(frozen=True)
class RequestRecord:
    """One served request.

    Attributes:
        key: Short prefix of the request's content hash.
        ne, nparts, method, seed: The request tuple.
        source: ``"computed"``, ``"memory"``, ``"disk"``, ``"dedup"``
            (a within-batch duplicate sharing another request's answer)
            or ``"coalesced"`` (a concurrent server request that joined
            another request's in-flight compute).
        elapsed_s: Compute time (0 for cache hits).
    """

    key: str
    ne: int
    nparts: int
    method: str
    seed: int
    source: str
    elapsed_s: float


@dataclass
class ServiceStats:
    """Aggregated engine telemetry across one or more batches.

    Attributes:
        jobs: Worker count of the owning engine.
        records: Per-request records, in service order.
        batch_walls: Wall-clock seconds of each ``run()`` call.
    """

    jobs: int = 1
    records: list[RequestRecord] = field(default_factory=list)
    batch_walls: list[float] = field(default_factory=list)

    def record(self, response) -> None:
        """Append one served response."""
        req = response.request
        self.records.append(
            RequestRecord(
                key=req.cache_key()[:12],
                ne=req.ne,
                nparts=req.nparts,
                method=req.method,
                seed=req.seed,
                source=response.source,
                elapsed_s=response.elapsed_s,
            )
        )

    def record_batch_wall(self, wall_s: float) -> None:
        self.batch_walls.append(wall_s)

    # -- aggregates -----------------------------------------------------

    @property
    def total_requests(self) -> int:
        return len(self.records)

    def count(self, source: str) -> int:
        return sum(1 for r in self.records if r.source == source)

    @property
    def hits(self) -> int:
        """Requests answered without computing (memory or disk)."""
        return self.total_requests - self.count("computed")

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total_requests if self.records else 0.0

    @property
    def wall_s(self) -> float:
        return sum(self.batch_walls)

    @property
    def compute_s(self) -> float:
        """Total worker compute time (sums across parallel workers)."""
        return sum(r.elapsed_s for r in self.records if r.source == "computed")

    @property
    def throughput(self) -> float:
        """Requests served per wall-clock second."""
        return self.total_requests / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def worker_utilization(self) -> float:
        """Fraction of the worker pool kept busy, in [0, 1]."""
        if self.wall_s <= 0 or self.jobs < 1:
            return 0.0
        return min(1.0, self.compute_s / (self.wall_s * self.jobs))

    # -- rendering ------------------------------------------------------

    def summary(self) -> dict[str, float | int]:
        return {
            "requests": self.total_requests,
            "computed": self.count("computed"),
            "memory_hits": self.count("memory"),
            "disk_hits": self.count("disk"),
            "dedup_hits": self.count("dedup"),
            "coalesced": self.count("coalesced"),
            "hit_rate": self.hit_rate,
            "wall_s": self.wall_s,
            "compute_s": self.compute_s,
            "throughput_rps": self.throughput,
            "worker_utilization": self.worker_utilization,
            "jobs": self.jobs,
        }

    def render(self, per_request: bool = False) -> str:
        """Render the telemetry as aligned text tables."""
        from ..report import format_table

        summary = self.summary()
        blocks = [
            format_table(
                ["metric", "value"],
                [[k, v] for k, v in summary.items()],
                title="Partition service stats",
            )
        ]
        if per_request:
            rows = [
                [r.key, r.ne, r.nparts, r.method, r.seed, r.source,
                 f"{1e3 * r.elapsed_s:.1f}"]
                for r in self.records
            ]
            blocks.append(
                format_table(
                    ["key", "ne", "nparts", "method", "seed", "source", "ms"],
                    rows,
                    title="Requests",
                )
            )
        return "\n\n".join(blocks)
