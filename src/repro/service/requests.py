"""Request/response schema of the partition service.

A :class:`PartitionRequest` names one partitioning problem — the same
``(ne, nparts, method, seed, options)`` tuple the CLI and the sweeps
pass around — as a validated frozen dataclass with a *canonical JSON
form*.  The canonical form is what the cache hashes: two requests that
mean the same partition always hash identically, regardless of how
they were constructed (CLI flags, a JSON batch file, or a sweep loop).

A :class:`PartitionResponse` carries everything a client needs: the
dense assignment vector, the full Table-2 metric set (scalars of
:class:`~repro.partition.metrics.PartitionQuality`), the compute time,
and where the answer came from (``computed`` / ``memory`` / ``disk``).
Both types round-trip through JSON so batch files and on-disk cache
entries share one serialization.
"""

from __future__ import annotations

import csv
import hashlib
import json
from dataclasses import dataclass, field, replace
from pathlib import Path

import numpy as np

__all__ = [
    "METRIC_FIELDS",
    "PartitionRequest",
    "PartitionResponse",
    "RepartitionRequest",
    "RepartitionResponse",
    "WeightSpec",
    "quality_metrics",
    "load_request_file",
]

#: Scalar metrics copied off a ``PartitionQuality`` into responses.
METRIC_FIELDS = (
    "lb_nelemd",
    "lb_weight",
    "lb_spcv",
    "edgecut",
    "weighted_edgecut",
    "total_volume_points",
    "boundary_vertices",
)


def quality_metrics(quality) -> dict[str, float | int]:
    """Extract the scalar Table-2 metrics of a ``PartitionQuality``."""
    return {name: getattr(quality, name) for name in METRIC_FIELDS}


def _sha256_json(payload: dict) -> str:
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("ascii")).hexdigest()


@dataclass(frozen=True, eq=False)
class WeightSpec:
    """Per-element weights of a request: inline values OR a named scenario.

    Two mutually exclusive forms:

    * **inline** — ``values`` carries the ``(K,)`` float64 array
      itself.  On the wire it is a plain JSON list; in the *canonical*
      (hashed) form it collapses to ``{"inline": {"n": ..., "sha256":
      ...}}`` so cache keys stay O(1) regardless of K, while any
      change to any weight changes the key.
    * **scenario** — ``scenario``/``step``/``params`` name a generator
      from :mod:`repro.scenarios`; the weights are regenerated
      deterministically wherever the request is resolved (server
      worker, CLI, cache validation), so the wire form stays tiny even
      for huge meshes.

    Both forms JSON round-trip (:meth:`to_wire` / :meth:`coerce`).
    """

    scenario: str | None = None
    step: int = 0
    params: tuple[tuple[str, float], ...] = ()
    values: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if (self.scenario is None) == (self.values is None):
            raise ValueError(
                "weights must be either inline values or a named scenario"
            )
        if self.scenario is not None:
            from .. import scenarios

            spec = scenarios.get_scenario(self.scenario)
            step = self.step
            if not isinstance(step, (int, np.integer)) or isinstance(step, bool):
                raise ValueError(f"scenario step must be an integer, got {step!r}")
            object.__setattr__(self, "step", int(step))
            params = self.params
            if isinstance(params, dict):
                params = params.items()
            try:
                params = tuple(sorted((str(k), float(v)) for k, v in params))
            except (TypeError, ValueError) as exc:
                raise ValueError(
                    f"scenario params must map names to numbers: {exc}"
                ) from None
            known = {name for name, _ in spec.params}
            unknown = sorted(set(name for name, _ in params) - known)
            if unknown:
                raise ValueError(
                    f"scenario {self.scenario!r} does not accept parameters "
                    f"{unknown}; accepted: {sorted(known)}"
                )
            object.__setattr__(self, "params", params)
        else:
            from ..partition.registry import validate_weights

            arr = validate_weights(self.values)
            arr.setflags(write=False)
            object.__setattr__(self, "values", arr)

    @classmethod
    def coerce(cls, obj, k: int | None = None) -> "WeightSpec | None":
        """Normalize any accepted weights form (or ``None``).

        Accepts an existing :class:`WeightSpec`, a numeric list/array
        (inline), or a wire object: ``{"scenario": name, "step": ...,
        "params": {...}}`` / ``{"inline": [...]}``.

        Args:
            obj: The weights payload (``None`` passes through).
            k: Required inline length (``6 ne^2``) when known.
        """
        if obj is None:
            return None
        if isinstance(obj, cls):
            spec = obj
        elif isinstance(obj, dict):
            if "scenario" in obj:
                extra = sorted(set(obj) - {"scenario", "step", "params"})
                if extra:
                    raise ValueError(f"unknown scenario weight fields: {extra}")
                params = obj.get("params") or {}
                if not isinstance(params, dict):
                    raise ValueError("scenario params must be an object")
                spec = cls(
                    scenario=str(obj["scenario"]),
                    step=obj.get("step", 0),
                    params=tuple(sorted(params.items())),
                )
            elif "inline" in obj:
                extra = sorted(set(obj) - {"inline"})
                if extra:
                    raise ValueError(f"unknown inline weight fields: {extra}")
                spec = cls(values=np.asarray(obj["inline"], dtype=np.float64))
            else:
                raise ValueError(
                    "weights object needs a 'scenario' name or 'inline' values"
                )
        elif isinstance(obj, (list, tuple, np.ndarray)):
            spec = cls(values=np.asarray(obj, dtype=np.float64))
        else:
            raise ValueError(
                "weights must be a numeric list, an array, or a scenario "
                f"object, got {type(obj).__name__}"
            )
        if k is not None and spec.values is not None and len(spec.values) != k:
            raise ValueError(
                f"weights must have one entry per element: expected {k}, "
                f"got {len(spec.values)}"
            )
        return spec

    def canonical(self) -> dict:
        """Hashed form: scenario spec verbatim, inline as a digest."""
        if self.scenario is not None:
            return {
                "scenario": self.scenario,
                "step": self.step,
                "params": dict(self.params),
            }
        return {
            "inline": {
                "n": int(len(self.values)),
                "sha256": hashlib.sha256(self.values.tobytes()).hexdigest(),
            }
        }

    def to_wire(self):
        """Round-trippable JSON form (full values for inline weights)."""
        if self.scenario is None:
            return self.values.tolist()
        out: dict = {"scenario": self.scenario}
        if self.step:
            out["step"] = self.step
        if self.params:
            out["params"] = dict(self.params)
        return out

    def resolve(self, ne: int) -> np.ndarray:
        """The concrete ``(6 ne^2,)`` weight array at resolution ``ne``."""
        if self.values is not None:
            return self.values
        from .. import scenarios

        return scenarios.scenario_weights(
            self.scenario, ne, self.step, **dict(self.params)
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, WeightSpec):
            return NotImplemented
        if self.scenario is not None or other.scenario is not None:
            return (self.scenario, self.step, self.params) == (
                other.scenario, other.step, other.params
            )
        return self.values.shape == other.values.shape and bool(
            (self.values == other.values).all()
        )

    def __hash__(self) -> int:
        return hash(_sha256_json(self.canonical()))


@dataclass(frozen=True)
class PartitionRequest:
    """One partitioning problem, in canonical form.

    Attributes:
        ne: Elements per cube-face edge (``K = 6 ne^2``).
        nparts: Processor count, ``1 <= nparts <= K``.
        method: Partitioner name (see
            :func:`repro.partition.registry.available`).
        seed: Seed for randomized partitioners.
        schedule: Optional face-local refinement schedule (methods
            with schedule support only).
        weights: Optional per-element weights — a :class:`WeightSpec`
            (inline values or named scenario); plain lists/arrays and
            wire objects are coerced.

    The method name and the request's capability profile (``ne``
    admissibility, schedule support, weight support) are validated
    against the partitioner registry at construction time, so
    violations fail here — with the registry's did-you-mean /
    capability messages — rather than mid-compute.
    """

    ne: int
    nparts: int
    method: str = "sfc"
    seed: int = 0
    schedule: str | None = None
    weights: WeightSpec | None = None

    def __post_init__(self) -> None:
        from ..partition import registry

        for name in ("ne", "nparts", "seed"):
            value = getattr(self, name)
            if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
                raise ValueError(f"{name} must be an integer, got {value!r}")
            object.__setattr__(self, name, int(value))
        if self.ne < 1:
            raise ValueError(f"ne must be >= 1, got {self.ne}")
        if not 1 <= self.nparts <= self.k:
            raise ValueError(
                f"nparts must be in [1, K={self.k}], got {self.nparts}"
            )
        if self.schedule is not None and not isinstance(self.schedule, str):
            raise ValueError("schedule must be a string or None")
        object.__setattr__(self, "weights", WeightSpec.coerce(self.weights, self.k))
        # Raises UnknownPartitionerError (with a did-you-mean) for a
        # bad name, CapabilityError for a contract violation.
        registry.get(self.method).validate(
            ne=self.ne,
            nparts=self.nparts,
            schedule=self.schedule,
            weighted=self.weights is not None,
        )

    @property
    def k(self) -> int:
        """Total element count ``K = 6 ne^2``."""
        return 6 * self.ne * self.ne

    def canonical(self) -> dict:
        """Key-sorted plain dict — the hashed canonical form.

        Inline weights appear as an O(1) content digest, scenarios as
        their spec; unweighted requests omit the key entirely, so
        every pre-weights cache key is preserved and a weighted
        request can never collide with its unweighted twin.
        """
        out = {
            "method": self.method,
            "ne": self.ne,
            "nparts": self.nparts,
            "schedule": self.schedule,
            "seed": self.seed,
        }
        if self.weights is not None:
            out["weights"] = self.weights.canonical()
        return out

    def cache_key(self) -> str:
        """Content address: SHA-256 of the canonical JSON form."""
        return _sha256_json(self.canonical())

    def to_wire(self) -> dict:
        """Round-trippable plain-dict form (full inline weights)."""
        out = self.canonical()
        if self.weights is not None:
            out["weights"] = self.weights.to_wire()
        return out

    def resolve_weights(self) -> np.ndarray | None:
        """The concrete weight array (generating scenario weights)."""
        return None if self.weights is None else self.weights.resolve(self.ne)

    def to_json(self) -> str:
        return json.dumps(self.to_wire(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "PartitionRequest":
        known = {"ne", "nparts", "method", "seed", "schedule", "weights"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown request fields: {sorted(unknown)}")
        if "ne" not in data or "nparts" not in data:
            raise ValueError("request needs at least 'ne' and 'nparts'")
        return cls(
            ne=int(data["ne"]),
            nparts=int(data["nparts"]),
            method=str(data.get("method", "sfc")),
            seed=int(data.get("seed", 0)),
            schedule=data.get("schedule") or None,
            weights=data.get("weights"),
        )

    @classmethod
    def from_json(cls, text: str) -> "PartitionRequest":
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class PartitionResponse:
    """The service's answer to one :class:`PartitionRequest`.

    Attributes:
        request: The request answered.
        assignment: ``(K,)`` int64 gid -> part vector.
        metrics: Scalar Table-2 metrics (:data:`METRIC_FIELDS`).
        elapsed_s: Compute time of the underlying partition run (0 is
            legal for cache hits loaded without recomputation).
        source: Where the answer came from: ``"computed"``,
            ``"memory"``, ``"disk"``, ``"dedup"`` (a within-batch
            duplicate of another request), or ``"coalesced"`` (a
            concurrent server request that shared another request's
            in-flight compute).
    """

    request: PartitionRequest
    assignment: np.ndarray = field(repr=False)
    metrics: dict[str, float | int]
    elapsed_s: float = 0.0
    source: str = "computed"

    def __post_init__(self) -> None:
        arr = np.asarray(self.assignment, dtype=np.int64)
        if arr.shape != (self.request.k,):
            raise ValueError(
                f"assignment has shape {arr.shape}, expected ({self.request.k},)"
            )
        if len(arr) and (arr.min() < 0 or arr.max() >= self.request.nparts):
            raise ValueError("assignment contains out-of-range part ids")
        object.__setattr__(self, "assignment", arr)
        arr.setflags(write=False)
        missing = set(METRIC_FIELDS) - set(self.metrics)
        if missing:
            raise ValueError(f"metrics missing fields: {sorted(missing)}")

    def to_partition(self):
        """Reconstruct the :class:`~repro.partition.base.Partition`."""
        from ..partition.base import Partition

        return Partition(
            self.assignment, nparts=self.request.nparts, method=self.request.method
        )

    def with_source(self, source: str) -> "PartitionResponse":
        return replace(self, source=source)

    def to_dict(self) -> dict:
        """JSON-ready plain-dict form (shared by files and the server)."""
        return {
            "schema": 1,
            "request": self.request.to_wire(),
            "assignment": self.assignment.tolist(),
            "metrics": self.metrics,
            "elapsed_s": self.elapsed_s,
            "source": self.source,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "PartitionResponse":
        data = json.loads(text)
        return cls(
            request=PartitionRequest.from_dict(data["request"]),
            assignment=np.asarray(data["assignment"], dtype=np.int64),
            metrics=data["metrics"],
            elapsed_s=float(data.get("elapsed_s", 0.0)),
            source=str(data.get("source", "computed")),
        )


@dataclass(frozen=True, eq=False)
class RepartitionRequest:
    """One rebalancing problem: re-cut under new weights, diff vs old.

    Attributes:
        ne: Elements per cube-face edge.
        old_assignment: ``(6 ne^2,)`` current owner per element.
        weights: New per-element weights (required) — inline values or
            a named scenario, as for :class:`PartitionRequest`.
        nparts: New processor count (default: inferred from
            ``old_assignment``; may differ to grow/shrink the job).
        method: Weighted method cutting the new partition.
        seed: Determinism seed.
        schedule: Optional refinement schedule.

    The canonical form carries a ``"kind": "repartition"`` marker plus
    a digest of the old assignment, so repartition cache keys can
    never collide with partition keys even for identical parameters.
    """

    ne: int
    old_assignment: np.ndarray = field(repr=False)
    weights: WeightSpec = None
    nparts: int | None = None
    method: str = "sfc"
    seed: int = 0
    schedule: str | None = None

    def __post_init__(self) -> None:
        from ..partition import registry

        for name in ("ne", "seed"):
            value = getattr(self, name)
            if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
                raise ValueError(f"{name} must be an integer, got {value!r}")
            object.__setattr__(self, name, int(value))
        if self.ne < 1:
            raise ValueError(f"ne must be >= 1, got {self.ne}")
        try:
            old = np.asarray(self.old_assignment, dtype=np.int64)
        except (TypeError, ValueError):
            raise ValueError("old_assignment must be an integer array") from None
        if old.ndim != 1 or len(old) != self.k:
            raise ValueError(
                f"old_assignment must have one owner per element: expected "
                f"{self.k} entries for ne={self.ne}, got shape {old.shape}"
            )
        if len(old) and (old.min() < 0 or old.max() >= self.k):
            raise ValueError("old_assignment owners must be in [0, K)")
        old.setflags(write=False)
        object.__setattr__(self, "old_assignment", old)
        nparts = self.nparts
        if nparts is None:
            nparts = int(old.max()) + 1 if len(old) else 1
        if not isinstance(nparts, (int, np.integer)) or isinstance(nparts, bool):
            raise ValueError(f"nparts must be an integer, got {nparts!r}")
        if not 1 <= int(nparts) <= self.k:
            raise ValueError(f"nparts must be in [1, K={self.k}], got {nparts}")
        object.__setattr__(self, "nparts", int(nparts))
        if self.schedule is not None and not isinstance(self.schedule, str):
            raise ValueError("schedule must be a string or None")
        weights = WeightSpec.coerce(self.weights, self.k)
        if weights is None:
            raise ValueError("repartition requires weights (the new load)")
        object.__setattr__(self, "weights", weights)
        registry.get(self.method).validate(
            ne=self.ne,
            nparts=self.nparts,
            schedule=self.schedule,
            weighted=True,
        )

    @property
    def k(self) -> int:
        """Total element count ``K = 6 ne^2``."""
        return 6 * self.ne * self.ne

    def canonical(self) -> dict:
        """Hashed canonical form (old assignment as an O(1) digest)."""
        return {
            "kind": "repartition",
            "method": self.method,
            "ne": self.ne,
            "nparts": self.nparts,
            "old_sha256": hashlib.sha256(self.old_assignment.tobytes()).hexdigest(),
            "schedule": self.schedule,
            "seed": self.seed,
            "weights": self.weights.canonical(),
        }

    def cache_key(self) -> str:
        """Content address: SHA-256 of the canonical JSON form."""
        return _sha256_json(self.canonical())

    def to_wire(self) -> dict:
        """Round-trippable plain-dict form (full old assignment)."""
        return {
            "ne": self.ne,
            "nparts": self.nparts,
            "method": self.method,
            "seed": self.seed,
            "schedule": self.schedule,
            "old_assignment": self.old_assignment.tolist(),
            "weights": self.weights.to_wire(),
        }

    def resolve_weights(self) -> np.ndarray:
        """The concrete new-weight array."""
        return self.weights.resolve(self.ne)

    def to_json(self) -> str:
        return json.dumps(self.to_wire(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "RepartitionRequest":
        known = {
            "ne", "nparts", "method", "seed", "schedule",
            "old_assignment", "weights",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown repartition fields: {sorted(unknown)}")
        missing = {"ne", "old_assignment", "weights"} - set(data)
        if missing:
            raise ValueError(
                f"repartition needs 'ne', 'old_assignment' and 'weights' "
                f"(missing: {sorted(missing)})"
            )
        nparts = data.get("nparts")
        return cls(
            ne=int(data["ne"]),
            old_assignment=data["old_assignment"],
            weights=data["weights"],
            nparts=None if nparts is None else int(nparts),
            method=str(data.get("method", "sfc")),
            seed=int(data.get("seed", 0)),
            schedule=data.get("schedule") or None,
        )

    @classmethod
    def from_json(cls, text: str) -> "RepartitionRequest":
        return cls.from_dict(json.loads(text))

    def __eq__(self, other) -> bool:
        if not isinstance(other, RepartitionRequest):
            return NotImplemented
        return self.canonical() == other.canonical()

    def __hash__(self) -> int:
        return hash(self.cache_key())


@dataclass(frozen=True)
class RepartitionResponse:
    """The service's answer to one :class:`RepartitionRequest`.

    Attributes:
        request: The request answered.
        plan: The migration plan
            (:class:`~repro.partition.repartition.RepartitionPlan`).
        elapsed_s: Compute time of the underlying planning run.
        source: ``"computed"``, ``"memory"`` (served from the plan
            LRU), or ``"coalesced"``.
    """

    request: RepartitionRequest
    plan: object = field(repr=False)
    elapsed_s: float = 0.0
    source: str = "computed"

    def with_source(self, source: str) -> "RepartitionResponse":
        return replace(self, source=source)

    def to_dict(self) -> dict:
        """JSON-ready plain-dict form (shared by files and the server)."""
        return {
            "schema": 1,
            "request": self.request.to_wire(),
            "plan": self.plan.to_dict(include_assignment=True),
            "elapsed_s": self.elapsed_s,
            "source": self.source,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RepartitionResponse":
        from ..partition.repartition import RepartitionPlan

        data = json.loads(text)
        p = data["plan"]
        plan = RepartitionPlan(
            nparts=int(p["nparts"]),
            method=str(p["method"]),
            new_assignment=np.asarray(p["assignment"], dtype=np.int64),
            moves={
                int(rank): np.asarray(gids, dtype=np.int64)
                for rank, gids in p["moves"].items()
            },
            elements_moved=int(p["elements_moved"]),
            weight_moved=float(p["weight_moved"]),
            fraction_moved=float(p["fraction_moved"]),
            lb_before=float(p["lb_before"]),
            lb_after=float(p["lb_after"]),
        )
        return cls(
            request=RepartitionRequest.from_dict(data["request"]),
            plan=plan,
            elapsed_s=float(data.get("elapsed_s", 0.0)),
            source=str(data.get("source", "computed")),
        )


def load_request_file(path: Path | str) -> list[PartitionRequest]:
    """Parse a batch request file (JSON or CSV by extension).

    JSON accepts either a list of request objects or a wrapper
    ``{"requests": [...]}``.  CSV needs a header with at least
    ``ne,nparts``; ``method``, ``seed`` and ``schedule`` columns are
    optional (empty cells fall back to defaults).
    """
    path = Path(path)
    text = path.read_text()
    if path.suffix.lower() == ".csv":
        rows = []
        for row in csv.DictReader(text.splitlines()):
            cleaned = {k: v for k, v in row.items() if k and v not in (None, "")}
            rows.append(cleaned)
    else:
        data = json.loads(text)
        if isinstance(data, dict):
            data = data.get("requests")
        if not isinstance(data, list):
            raise ValueError(
                f"{path}: expected a JSON list of requests "
                "(or {'requests': [...]})"
            )
        rows = data
    if not rows:
        raise ValueError(f"{path}: no requests found")
    return [PartitionRequest.from_dict(row) for row in rows]
