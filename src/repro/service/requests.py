"""Request/response schema of the partition service.

A :class:`PartitionRequest` names one partitioning problem — the same
``(ne, nparts, method, seed, options)`` tuple the CLI and the sweeps
pass around — as a validated frozen dataclass with a *canonical JSON
form*.  The canonical form is what the cache hashes: two requests that
mean the same partition always hash identically, regardless of how
they were constructed (CLI flags, a JSON batch file, or a sweep loop).

A :class:`PartitionResponse` carries everything a client needs: the
dense assignment vector, the full Table-2 metric set (scalars of
:class:`~repro.partition.metrics.PartitionQuality`), the compute time,
and where the answer came from (``computed`` / ``memory`` / ``disk``).
Both types round-trip through JSON so batch files and on-disk cache
entries share one serialization.
"""

from __future__ import annotations

import csv
import hashlib
import json
from dataclasses import dataclass, field, replace
from pathlib import Path

import numpy as np

__all__ = [
    "METRIC_FIELDS",
    "PartitionRequest",
    "PartitionResponse",
    "quality_metrics",
    "load_request_file",
]

#: Scalar metrics copied off a ``PartitionQuality`` into responses.
METRIC_FIELDS = (
    "lb_nelemd",
    "lb_weight",
    "lb_spcv",
    "edgecut",
    "weighted_edgecut",
    "total_volume_points",
    "boundary_vertices",
)


def quality_metrics(quality) -> dict[str, float | int]:
    """Extract the scalar Table-2 metrics of a ``PartitionQuality``."""
    return {name: getattr(quality, name) for name in METRIC_FIELDS}


@dataclass(frozen=True)
class PartitionRequest:
    """One partitioning problem, in canonical form.

    Attributes:
        ne: Elements per cube-face edge (``K = 6 ne^2``).
        nparts: Processor count, ``1 <= nparts <= K``.
        method: Partitioner name (see
            :func:`repro.partition.registry.available`).
        seed: Seed for randomized partitioners.
        schedule: Optional face-local refinement schedule (methods
            with schedule support only).

    The method name and the request's capability profile (``ne``
    admissibility, schedule support) are validated against the
    partitioner registry at construction time, so violations fail
    here — with the registry's did-you-mean / capability messages —
    rather than mid-compute.
    """

    ne: int
    nparts: int
    method: str = "sfc"
    seed: int = 0
    schedule: str | None = None

    def __post_init__(self) -> None:
        from ..partition import registry

        for name in ("ne", "nparts", "seed"):
            value = getattr(self, name)
            if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
                raise ValueError(f"{name} must be an integer, got {value!r}")
            object.__setattr__(self, name, int(value))
        if self.ne < 1:
            raise ValueError(f"ne must be >= 1, got {self.ne}")
        if not 1 <= self.nparts <= self.k:
            raise ValueError(
                f"nparts must be in [1, K={self.k}], got {self.nparts}"
            )
        if self.schedule is not None and not isinstance(self.schedule, str):
            raise ValueError("schedule must be a string or None")
        # Raises UnknownPartitionerError (with a did-you-mean) for a
        # bad name, CapabilityError for a contract violation.
        registry.get(self.method).validate(
            ne=self.ne, nparts=self.nparts, schedule=self.schedule
        )

    @property
    def k(self) -> int:
        """Total element count ``K = 6 ne^2``."""
        return 6 * self.ne * self.ne

    def canonical(self) -> dict:
        """Key-sorted plain dict — the hashed canonical form."""
        return {
            "method": self.method,
            "ne": self.ne,
            "nparts": self.nparts,
            "schedule": self.schedule,
            "seed": self.seed,
        }

    def cache_key(self) -> str:
        """Content address: SHA-256 of the canonical JSON form."""
        payload = json.dumps(self.canonical(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("ascii")).hexdigest()

    def to_json(self) -> str:
        return json.dumps(self.canonical(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "PartitionRequest":
        known = {"ne", "nparts", "method", "seed", "schedule"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown request fields: {sorted(unknown)}")
        if "ne" not in data or "nparts" not in data:
            raise ValueError("request needs at least 'ne' and 'nparts'")
        return cls(
            ne=int(data["ne"]),
            nparts=int(data["nparts"]),
            method=str(data.get("method", "sfc")),
            seed=int(data.get("seed", 0)),
            schedule=data.get("schedule") or None,
        )

    @classmethod
    def from_json(cls, text: str) -> "PartitionRequest":
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class PartitionResponse:
    """The service's answer to one :class:`PartitionRequest`.

    Attributes:
        request: The request answered.
        assignment: ``(K,)`` int64 gid -> part vector.
        metrics: Scalar Table-2 metrics (:data:`METRIC_FIELDS`).
        elapsed_s: Compute time of the underlying partition run (0 is
            legal for cache hits loaded without recomputation).
        source: Where the answer came from: ``"computed"``,
            ``"memory"``, ``"disk"``, ``"dedup"`` (a within-batch
            duplicate of another request), or ``"coalesced"`` (a
            concurrent server request that shared another request's
            in-flight compute).
    """

    request: PartitionRequest
    assignment: np.ndarray = field(repr=False)
    metrics: dict[str, float | int]
    elapsed_s: float = 0.0
    source: str = "computed"

    def __post_init__(self) -> None:
        arr = np.asarray(self.assignment, dtype=np.int64)
        if arr.shape != (self.request.k,):
            raise ValueError(
                f"assignment has shape {arr.shape}, expected ({self.request.k},)"
            )
        if len(arr) and (arr.min() < 0 or arr.max() >= self.request.nparts):
            raise ValueError("assignment contains out-of-range part ids")
        object.__setattr__(self, "assignment", arr)
        arr.setflags(write=False)
        missing = set(METRIC_FIELDS) - set(self.metrics)
        if missing:
            raise ValueError(f"metrics missing fields: {sorted(missing)}")

    def to_partition(self):
        """Reconstruct the :class:`~repro.partition.base.Partition`."""
        from ..partition.base import Partition

        return Partition(
            self.assignment, nparts=self.request.nparts, method=self.request.method
        )

    def with_source(self, source: str) -> "PartitionResponse":
        return replace(self, source=source)

    def to_dict(self) -> dict:
        """JSON-ready plain-dict form (shared by files and the server)."""
        return {
            "schema": 1,
            "request": self.request.canonical(),
            "assignment": self.assignment.tolist(),
            "metrics": self.metrics,
            "elapsed_s": self.elapsed_s,
            "source": self.source,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "PartitionResponse":
        data = json.loads(text)
        return cls(
            request=PartitionRequest.from_dict(data["request"]),
            assignment=np.asarray(data["assignment"], dtype=np.int64),
            metrics=data["metrics"],
            elapsed_s=float(data.get("elapsed_s", 0.0)),
            source=str(data.get("source", "computed")),
        )


def load_request_file(path: Path | str) -> list[PartitionRequest]:
    """Parse a batch request file (JSON or CSV by extension).

    JSON accepts either a list of request objects or a wrapper
    ``{"requests": [...]}``.  CSV needs a header with at least
    ``ne,nparts``; ``method``, ``seed`` and ``schedule`` columns are
    optional (empty cells fall back to defaults).
    """
    path = Path(path)
    text = path.read_text()
    if path.suffix.lower() == ".csv":
        rows = []
        for row in csv.DictReader(text.splitlines()):
            cleaned = {k: v for k, v in row.items() if k and v not in (None, "")}
            rows.append(cleaned)
    else:
        data = json.loads(text)
        if isinstance(data, dict):
            data = data.get("requests")
        if not isinstance(data, list):
            raise ValueError(
                f"{path}: expected a JSON list of requests "
                "(or {'requests': [...]})"
            )
        rows = data
    if not rows:
        raise ValueError(f"{path}: no requests found")
    return [PartitionRequest.from_dict(row) for row in rows]
