"""Partition service: cached, batched, parallel partition serving.

The repo's first *serving* subsystem.  Everything below the service
layer computes one partition at a time, in-process, from scratch; this
package turns that into a request/response engine:

* :mod:`~repro.service.requests` — validated, JSON-round-tripping
  request/response schema with a canonical hashed form;
* :mod:`~repro.service.cache` — content-addressed two-tier cache
  (in-memory LRU + on-disk NPZ store);
* :mod:`~repro.service.engine` — batch engine: dedupe, cache lookup,
  process-pool fan-out for misses;
* :mod:`~repro.service.stats` — hit/miss counters, timings, worker
  utilization, rendered as the repo's standard text tables.

Quickstart::

    from repro.service import PartitionCache, PartitionEngine, PartitionRequest

    engine = PartitionEngine(PartitionCache(cache_dir=".repro-cache"), jobs=4)
    reqs = [PartitionRequest(ne=8, nparts=n) for n in (24, 48, 96, 192, 384)]
    for resp in engine.run(reqs):
        print(resp.request.nparts, resp.source, resp.metrics["lb_nelemd"])
    print(engine.stats.render())
    engine.close()  # or use the engine as a context manager
"""

from .cache import PartitionCache
from .engine import PartitionEngine, compute_repartition_response, compute_response
from .requests import (
    METRIC_FIELDS,
    PartitionRequest,
    PartitionResponse,
    RepartitionRequest,
    RepartitionResponse,
    WeightSpec,
    load_request_file,
    quality_metrics,
)
from .stats import RequestRecord, ServiceStats

__all__ = [
    "METRIC_FIELDS",
    "PartitionCache",
    "PartitionEngine",
    "PartitionRequest",
    "PartitionResponse",
    "RepartitionRequest",
    "RepartitionResponse",
    "RequestRecord",
    "ServiceStats",
    "WeightSpec",
    "compute_repartition_response",
    "compute_response",
    "load_request_file",
    "quality_metrics",
]
