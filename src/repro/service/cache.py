"""Content-addressed partition cache: in-memory LRU + on-disk store.

Partitions are pure functions of their request's canonical form, so
the cache is content-addressed: the key is the SHA-256 of the request's
canonical JSON (:meth:`PartitionRequest.cache_key`).  Per-element
weights are part of that form — inline weights as an O(1) content
digest, scenario weights as their ``(name, step, params)`` spec — so
weighted, unweighted, and differently-weighted requests can never
collide, with no cache-layer special-casing.  Two tiers:

* an in-memory LRU (bounded by ``capacity`` responses) that makes
  repeated requests inside one process near-free;
* an optional on-disk store (one ``<key>.npz`` per entry holding the
  assignment array plus the response JSON metadata) so repeated CLI or
  benchmark invocations skip partitioning entirely.

Disk writes are atomic (temp file + ``os.replace``) so concurrent
engines sharing a cache directory can only ever observe complete
entries.  Disk hits are promoted into the memory tier.

Every disk entry is stamped with the partition pipeline's composite
stage-version tag (:func:`repro.partition.pipeline.cache_version`).
An entry whose tag differs from the running code's — including
pre-refactor entries written before the tag existed — is treated as a
miss and recomputed (and overwritten), so a stage-implementation bump
can never silently serve stale assignments.
"""

from __future__ import annotations

import json
import os
from collections import OrderedDict
from pathlib import Path

import numpy as np

from ..partition.pipeline import cache_version
from .requests import PartitionRequest, PartitionResponse

__all__ = ["PartitionCache", "scan_cache_dir"]


def scan_cache_dir(cache_dir: Path | str) -> dict[str, int | str]:
    """Summarize a persistent cache directory (for ``repro cache info``).

    Returns entry counts split by freshness against the running
    composite stage version: ``current`` entries would be served,
    ``stale`` (version mismatch or pre-version entries) and
    ``unreadable`` ones would be recomputed on the next request.
    """
    cache_dir = Path(cache_dir)
    current = stale = unreadable = total_bytes = 0
    version = cache_version()
    for path in sorted(cache_dir.glob("*.npz")) if cache_dir.is_dir() else []:
        total_bytes += path.stat().st_size
        try:
            with np.load(path) as data:
                meta = json.loads(bytes(data["meta"]).decode())
        except (OSError, KeyError, ValueError, json.JSONDecodeError):
            unreadable += 1
            continue
        if meta.get("cache_version") == version:
            current += 1
        else:
            stale += 1
    return {
        "cache_version": version,
        "entries": current + stale + unreadable,
        "current": current,
        "stale": stale,
        "unreadable": unreadable,
        "bytes": total_bytes,
    }


class PartitionCache:
    """Two-tier (memory LRU + disk) content-addressed response cache.

    Args:
        capacity: Maximum responses held in memory (LRU eviction).
        cache_dir: Optional directory for the persistent tier; created
            on first use.  ``None`` keeps the cache memory-only.
    """

    def __init__(
        self, capacity: int = 256, cache_dir: Path | str | None = None
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._memory: OrderedDict[str, PartitionResponse] = OrderedDict()
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.stores = 0
        self.stale = 0  # disk entries rejected for a cache-version mismatch

    # -- lookup ---------------------------------------------------------

    def get(self, request: PartitionRequest) -> PartitionResponse | None:
        """Return the cached response for ``request``, or ``None``.

        The returned response's ``source`` reflects the tier that
        answered (``"memory"`` or ``"disk"``).
        """
        key = request.cache_key()
        hit = self._memory.get(key)
        if hit is not None:
            self._memory.move_to_end(key)
            self.memory_hits += 1
            return hit.with_source("memory")
        hit = self._load_disk(key, request)
        if hit is not None:
            self.disk_hits += 1
            self._remember(key, hit)
            return hit
        self.misses += 1
        return None

    def put(self, request: PartitionRequest, response: PartitionResponse) -> None:
        """Insert a computed response into both tiers."""
        key = request.cache_key()
        self._remember(key, response)
        if self.cache_dir is not None:
            self._store_disk(key, response)
        self.stores += 1

    def __contains__(self, request: PartitionRequest) -> bool:
        key = request.cache_key()
        return key in self._memory or (
            self.cache_dir is not None and self._path(key).exists()
        )

    def __len__(self) -> int:
        return len(self._memory)

    def clear_memory(self) -> None:
        """Drop the memory tier (the disk tier survives)."""
        self._memory.clear()

    # -- stats ----------------------------------------------------------

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, float | int]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stale": self.stale,
            "stores": self.stores,
            "hit_rate": self.hit_rate,
            "memory_entries": len(self._memory),
        }

    # -- internals ------------------------------------------------------

    def _remember(self, key: str, response: PartitionResponse) -> None:
        self._memory[key] = response
        self._memory.move_to_end(key)
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)

    def _path(self, key: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / f"{key}.npz"

    def _store_disk(self, key: str, response: PartitionResponse) -> None:
        assert self.cache_dir is not None
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
        meta = {
            "cache_version": cache_version(),
            "request": response.request.canonical(),
            "metrics": response.metrics,
            "elapsed_s": response.elapsed_s,
        }
        try:
            with open(tmp, "wb") as fh:
                np.savez_compressed(
                    fh,
                    assignment=response.assignment,
                    meta=np.frombuffer(
                        json.dumps(meta, sort_keys=True).encode(), dtype=np.uint8
                    ),
                )
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)

    def _load_disk(
        self, key: str, request: PartitionRequest
    ) -> PartitionResponse | None:
        if self.cache_dir is None:
            return None
        path = self._path(key)
        if not path.exists():
            return None
        try:
            with np.load(path) as data:
                assignment = data["assignment"]
                meta = json.loads(bytes(data["meta"]).decode())
        except (OSError, KeyError, ValueError, json.JSONDecodeError):
            return None  # truncated/foreign file: treat as a miss
        # A pre-refactor entry (no tag) or one written by a different
        # stage-version combination must be recomputed, not served.
        if meta.get("cache_version") != cache_version():
            self.stale += 1
            return None
        # Paranoia against hash collisions and stale schemas: the stored
        # request must match the one asked for.
        if meta.get("request") != request.canonical():
            return None
        return PartitionResponse(
            request=request,
            assignment=assignment,
            metrics=meta["metrics"],
            elapsed_s=float(meta.get("elapsed_s", 0.0)),
            source="disk",
        )
