"""Content-addressed partition cache: in-memory LRU + on-disk store.

Partitions are pure functions of their request's canonical form, so
the cache is content-addressed: the key is the SHA-256 of the request's
canonical JSON (:meth:`PartitionRequest.cache_key`).  Two tiers:

* an in-memory LRU (bounded by ``capacity`` responses) that makes
  repeated requests inside one process near-free;
* an optional on-disk store (one ``<key>.npz`` per entry holding the
  assignment array plus the response JSON metadata) so repeated CLI or
  benchmark invocations skip partitioning entirely.

Disk writes are atomic (temp file + ``os.replace``) so concurrent
engines sharing a cache directory can only ever observe complete
entries.  Disk hits are promoted into the memory tier.
"""

from __future__ import annotations

import json
import os
from collections import OrderedDict
from pathlib import Path

import numpy as np

from .requests import PartitionRequest, PartitionResponse

__all__ = ["PartitionCache"]


class PartitionCache:
    """Two-tier (memory LRU + disk) content-addressed response cache.

    Args:
        capacity: Maximum responses held in memory (LRU eviction).
        cache_dir: Optional directory for the persistent tier; created
            on first use.  ``None`` keeps the cache memory-only.
    """

    def __init__(
        self, capacity: int = 256, cache_dir: Path | str | None = None
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._memory: OrderedDict[str, PartitionResponse] = OrderedDict()
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.stores = 0

    # -- lookup ---------------------------------------------------------

    def get(self, request: PartitionRequest) -> PartitionResponse | None:
        """Return the cached response for ``request``, or ``None``.

        The returned response's ``source`` reflects the tier that
        answered (``"memory"`` or ``"disk"``).
        """
        key = request.cache_key()
        hit = self._memory.get(key)
        if hit is not None:
            self._memory.move_to_end(key)
            self.memory_hits += 1
            return hit.with_source("memory")
        hit = self._load_disk(key, request)
        if hit is not None:
            self.disk_hits += 1
            self._remember(key, hit)
            return hit
        self.misses += 1
        return None

    def put(self, request: PartitionRequest, response: PartitionResponse) -> None:
        """Insert a computed response into both tiers."""
        key = request.cache_key()
        self._remember(key, response)
        if self.cache_dir is not None:
            self._store_disk(key, response)
        self.stores += 1

    def __contains__(self, request: PartitionRequest) -> bool:
        key = request.cache_key()
        return key in self._memory or (
            self.cache_dir is not None and self._path(key).exists()
        )

    def __len__(self) -> int:
        return len(self._memory)

    def clear_memory(self) -> None:
        """Drop the memory tier (the disk tier survives)."""
        self._memory.clear()

    # -- stats ----------------------------------------------------------

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, float | int]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "hit_rate": self.hit_rate,
            "memory_entries": len(self._memory),
        }

    # -- internals ------------------------------------------------------

    def _remember(self, key: str, response: PartitionResponse) -> None:
        self._memory[key] = response
        self._memory.move_to_end(key)
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)

    def _path(self, key: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / f"{key}.npz"

    def _store_disk(self, key: str, response: PartitionResponse) -> None:
        assert self.cache_dir is not None
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
        meta = {
            "request": response.request.canonical(),
            "metrics": response.metrics,
            "elapsed_s": response.elapsed_s,
        }
        try:
            with open(tmp, "wb") as fh:
                np.savez_compressed(
                    fh,
                    assignment=response.assignment,
                    meta=np.frombuffer(
                        json.dumps(meta, sort_keys=True).encode(), dtype=np.uint8
                    ),
                )
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)

    def _load_disk(
        self, key: str, request: PartitionRequest
    ) -> PartitionResponse | None:
        if self.cache_dir is None:
            return None
        path = self._path(key)
        if not path.exists():
            return None
        try:
            with np.load(path) as data:
                assignment = data["assignment"]
                meta = json.loads(bytes(data["meta"]).decode())
        except (OSError, KeyError, ValueError, json.JSONDecodeError):
            return None  # truncated/foreign file: treat as a miss
        # Paranoia against hash collisions and stale schemas: the stored
        # request must match the one asked for.
        if meta.get("request") != request.canonical():
            return None
        return PartitionResponse(
            request=request,
            assignment=assignment,
            metrics=meta["metrics"],
            elapsed_s=float(meta.get("elapsed_s", 0.0)),
            source="disk",
        )
