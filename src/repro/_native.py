"""Build-and-load shim for the compiled hot-path kernels.

``_kernels.c`` holds exact C restatements of the FM-refinement and
greedy-graph-growing kernels (see that file for the bit-identity
contract).  This module compiles it once with the system C compiler
into a content-addressed cache directory and loads it through
:mod:`ctypes` — no third-party build machinery, no install step.

Everything degrades gracefully: if there is no compiler, the build
fails, or ``REPRO_NO_CKERNELS`` is set in the environment, ``LIB`` is
``None`` and every caller falls back to the pure-Python kernels (which
produce bit-identical results, just slower).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

__all__ = ["LIB", "load"]

_SOURCE = Path(__file__).with_name("_kernels.c")
_I64P = ctypes.POINTER(ctypes.c_int64)
_F64P = ctypes.POINTER(ctypes.c_double)

# -ffp-contract=off: the float kernels (dss_apply) promise bit-identity
# with the numpy fallbacks, which never fuse a multiply-add into an FMA.
_CFLAGS = ["-O2", "-ffp-contract=off", "-shared", "-fPIC"]

# Gain bounds above this make the bucket arrays unreasonably large;
# such graphs (enormous edge weights) take the Python heap path.
MAX_BOUND = 1 << 22


def _cache_dir() -> Path:
    base = os.environ.get("XDG_CACHE_HOME")
    if base:
        return Path(base) / "repro-kernels"
    home = Path.home()
    if os.access(home, os.W_OK):
        return home / ".cache" / "repro-kernels"
    return Path(tempfile.gettempdir()) / f"repro-kernels-{os.getuid()}"


def _compile(source: Path, out: Path) -> bool:
    cc = os.environ.get("CC") or shutil.which("cc") or shutil.which("gcc")
    if cc is None:
        return False
    tmp = out.with_name(f"{out.stem}.{os.getpid()}.tmp{out.suffix}")
    try:
        subprocess.run(
            [cc, *_CFLAGS, "-o", str(tmp), str(source)],
            check=True,
            capture_output=True,
            timeout=120,
        )
        os.replace(tmp, out)
        return True
    except (OSError, subprocess.SubprocessError):
        tmp.unlink(missing_ok=True)
        return False


def load() -> ctypes.CDLL | None:
    """Compile (if needed) and load the kernel library, or ``None``."""
    if os.environ.get("REPRO_NO_CKERNELS"):
        return None
    try:
        source_text = _SOURCE.read_bytes()
    except OSError:
        return None
    tag = hashlib.sha256(source_text + " ".join(_CFLAGS).encode()).hexdigest()[:16]
    cache = _cache_dir()
    lib_path = cache / f"kernels-{tag}.so"
    if not lib_path.exists():
        try:
            cache.mkdir(parents=True, exist_ok=True)
        except OSError:
            return None
        if not _compile(_SOURCE, lib_path):
            return None
    try:
        lib = ctypes.CDLL(str(lib_path))
    except OSError:
        return None
    try:
        lib.fm_refine.restype = ctypes.c_int64
        lib.fm_refine.argtypes = [
            ctypes.c_int64,  # n
            _I64P, _I64P, _I64P, _I64P,  # indptr, indices, eweights, vweights
            _I64P,  # side (inout)
            ctypes.c_int64, ctypes.c_int64,  # cap0, cap1
            ctypes.c_int64, ctypes.c_int64,  # pcap0, pcap1
            ctypes.c_int64,  # max_passes
            ctypes.c_int64,  # bound
            ctypes.c_int64, ctypes.c_int64,  # w0, w1
        ]
        lib.hem_claim.restype = ctypes.c_int64
        lib.hem_claim.argtypes = [
            ctypes.c_int64,  # n
            _I64P, _I64P, _I64P,  # indptr, indices, eweights
            _I64P,  # order
            _I64P,  # match (out)
        ]
        lib.subgraph_extract.restype = ctypes.c_int64
        lib.subgraph_extract.argtypes = [
            ctypes.c_int64,  # n_parent
            _I64P, _I64P, _I64P, _I64P,  # indptr, indices, eweights, vweights
            _I64P,  # verts
            ctypes.c_int64,  # k
            _I64P, _I64P, _I64P, _I64P,  # out csr arrays
            _I64P,  # out_scalars
        ]
        lib.ggg_partition.restype = ctypes.c_int64
        lib.ggg_partition.argtypes = [
            ctypes.c_int64,  # n
            _I64P, _I64P, _I64P, _I64P,  # indptr, indices, eweights, vweights
            _I64P,  # starts
            ctypes.c_int64,  # ntrials
            ctypes.c_int64,  # target_left
            ctypes.c_int64,  # bound
            _I64P,  # best_side (out)
        ]
        # Pointer params are void*: callers pass raw addresses (ints),
        # skipping ctypes' per-call POINTER conversion on the hot path.
        # The operator constants travel in a 7-slot int64 "plan" array
        # (see _kernels.c) to keep per-call marshalling at 5 arguments.
        lib.dss_apply.restype = ctypes.c_int64
        lib.dss_apply.argtypes = [
            ctypes.c_void_p,  # plan
            ctypes.c_int64,  # ncomp
            ctypes.c_void_p,  # field
            ctypes.c_void_p, ctypes.c_void_p,  # num scratch, out
        ]
        lib.sfc_keys.restype = ctypes.c_int64
        lib.sfc_keys.argtypes = [
            ctypes.c_int64,  # npts
            ctypes.c_int64,  # nlevels
            _I64P,  # packed level tables (nlevels x 66)
            ctypes.c_int64,  # domain side n
            _I64P, _I64P,  # x, y coordinates
            ctypes.POINTER(ctypes.c_uint64),  # keys (out)
        ]
        lib.sfc_face_keys.restype = ctypes.c_int64
        lib.sfc_face_keys.argtypes = [
            ctypes.c_int64,  # npts
            ctypes.c_int64,  # nlevels
            _I64P,  # packed level tables (nlevels x 66)
            ctypes.c_int64,  # ne (face side length)
            _I64P, _I64P,  # chain rank (6), chain coef (6 x 6)
            _I64P,  # gids
            ctypes.POINTER(ctypes.c_uint64),  # keys (out)
        ]
    except AttributeError:
        return None
    return lib


def as_i64p(arr) -> ctypes.POINTER(ctypes.c_int64):  # type: ignore[valid-type]
    """C pointer to a contiguous int64 NumPy array's data."""
    return arr.ctypes.data_as(_I64P)


def as_f64p(arr) -> ctypes.POINTER(ctypes.c_double):  # type: ignore[valid-type]
    """C pointer to a contiguous float64 NumPy array's data."""
    return arr.ctypes.data_as(_F64P)


LIB = load()
