"""Per-element geometry of the spectral-element cubed-sphere grid.

Each element carries an ``np x np`` tensor grid of GLL points mapped to
the sphere by the (equiangular) gnomonic projection.  This module
computes, per GLL point:

* the physical position on the unit sphere;
* the covariant tangent basis ``e_i = dr/dxi_i`` of the element's
  reference coordinates (chain rule: reference ``xi in [-1, 1]`` →
  face angle ``alpha in [-pi/4, pi/4]`` → sphere);
* the metric tensor ``g_ij = e_i . e_j``, its inverse, and the area
  Jacobian ``J = sqrt(det g)``;

which is everything the transport solver needs: contravariant wind
components come from solving ``g u^ = e . u``, and quadrature uses
``J w_i w_j``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..cubesphere.mesh import CubedSphereMesh
from ..cubesphere.topology import FACES
from .gll import GLLBasis, gll_basis

__all__ = ["ElementGeometry", "GridGeometry", "build_geometry"]


@dataclass(frozen=True)
class ElementGeometry:
    """Geometry of one spectral element at its GLL points.

    All arrays are indexed ``[i, j]`` over the tensor GLL grid (``i``
    along the local x/alpha axis).

    Attributes:
        gid: Global element id.
        xyz: ``(np, np, 3)`` unit-sphere positions.
        basis_a: ``(np, np, 3)`` covariant basis ``dr/dxi_1``.
        basis_b: ``(np, np, 3)`` covariant basis ``dr/dxi_2``.
        jac: ``(np, np)`` area Jacobian ``sqrt(det g)``.
        ginv: ``(np, np, 2, 2)`` inverse metric tensor.
    """

    gid: int
    xyz: np.ndarray
    basis_a: np.ndarray
    basis_b: np.ndarray
    jac: np.ndarray
    ginv: np.ndarray

    def contravariant_wind(self, u_cart: np.ndarray) -> np.ndarray:
        """Contravariant components of a Cartesian tangent wind field.

        Args:
            u_cart: ``(np, np, 3)`` tangent vectors at the GLL points.

        Returns:
            ``(np, np, 2)`` contravariant components ``(u^1, u^2)`` in
            reference coordinates.
        """
        cov1 = np.einsum("ijk,ijk->ij", u_cart, self.basis_a)
        cov2 = np.einsum("ijk,ijk->ij", u_cart, self.basis_b)
        cov = np.stack([cov1, cov2], axis=-1)
        return np.einsum("ijab,ijb->ija", self.ginv, cov)


@dataclass(frozen=True)
class GridGeometry:
    """Geometry of every element of a cubed-sphere SE grid.

    Attributes:
        mesh: The element mesh.
        basis: The 1-D GLL basis shared by both directions.
        elements: Per-element geometry, indexed by gid.
    """

    mesh: CubedSphereMesh
    basis: GLLBasis
    elements: tuple[ElementGeometry, ...]

    @property
    def npts(self) -> int:
        return self.basis.npts

    def total_area(self) -> float:
        """Quadrature surface area (should be ``4 pi``; tested)."""
        w = self.basis.weights
        w2 = w[:, None] * w[None, :]
        return float(sum((e.jac * w2).sum() for e in self.elements))


def _element_geometry(
    mesh: CubedSphereMesh, basis: GLLBasis, gid: int
) -> ElementGeometry:
    face, ix, iy = mesh.locate(gid)
    ne = mesh.ne
    f = FACES[face]
    n = np.array(f.normal, dtype=np.float64)
    ex = np.array(f.ex, dtype=np.float64)
    ey = np.array(f.ey, dtype=np.float64)
    # Abstract local coordinate of each GLL node: a = 2*(ix + t)/ne - 1
    # with t in [0, 1]; the same expression on both sides of an
    # element interface makes shared points bit-identical.
    t = (basis.nodes + 1.0) / 2.0
    a = 2.0 * (ix + t) / ne - 1.0  # (np,)
    b = 2.0 * (iy + t) / ne - 1.0
    alpha = a * (np.pi / 4.0)
    beta = b * (np.pi / 4.0)
    x_ = np.tan(alpha)[:, None]  # X(alpha), broadcast over j
    y_ = np.tan(beta)[None, :]
    p = (
        n[None, None, :]
        + x_[..., None] * ex[None, None, :]
        + y_[..., None] * ey[None, None, :]
    )
    delta = np.linalg.norm(p, axis=-1)
    r = p / delta[..., None]
    # d r / d alpha = (1 + X^2) * (ex - r (r . ex)) / delta, then chain
    # rule to reference coords: d alpha / d xi = (pi/4) * (1/ne) * ...
    # a = 2 (ix + (xi+1)/2)/ne - 1  =>  da/dxi = 1/ne.
    dalpha_dxi = (np.pi / 4.0) / ne
    sec2a = 1.0 + x_**2  # sec^2(alpha) = 1 + tan^2
    sec2b = 1.0 + y_**2
    r_dot_ex = np.einsum("ijk,k->ij", r, ex)
    r_dot_ey = np.einsum("ijk,k->ij", r, ey)
    dra = (sec2a[..., None] * (ex[None, None, :] - r * r_dot_ex[..., None])) / delta[
        ..., None
    ]
    drb = (sec2b[..., None] * (ey[None, None, :] - r * r_dot_ey[..., None])) / delta[
        ..., None
    ]
    basis_a = dra * dalpha_dxi
    basis_b = drb * dalpha_dxi
    g11 = np.einsum("ijk,ijk->ij", basis_a, basis_a)
    g12 = np.einsum("ijk,ijk->ij", basis_a, basis_b)
    g22 = np.einsum("ijk,ijk->ij", basis_b, basis_b)
    det = g11 * g22 - g12 * g12
    jac = np.sqrt(det)
    ginv = np.empty(g11.shape + (2, 2))
    ginv[..., 0, 0] = g22 / det
    ginv[..., 1, 1] = g11 / det
    ginv[..., 0, 1] = -g12 / det
    ginv[..., 1, 0] = -g12 / det
    return ElementGeometry(
        gid=gid, xyz=r, basis_a=basis_a, basis_b=basis_b, jac=jac, ginv=ginv
    )


@lru_cache(maxsize=8)
def build_geometry(ne: int, npts: int = 8) -> GridGeometry:
    """Build (and cache) the SE grid geometry for resolution ``ne``.

    Args:
        ne: Elements per cube-face edge.
        npts: GLL points per element edge (SEAM default 8).
    """
    from ..cubesphere.mesh import cubed_sphere_mesh

    mesh = cubed_sphere_mesh(ne)
    basis = gll_basis(npts)
    elements = tuple(
        _element_geometry(mesh, basis, gid) for gid in range(mesh.nelem)
    )
    return GridGeometry(mesh=mesh, basis=basis, elements=elements)
