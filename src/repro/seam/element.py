"""Per-element geometry of the spectral-element cubed-sphere grid.

Each element carries an ``np x np`` tensor grid of GLL points mapped to
the sphere by the (equiangular) gnomonic projection.  This module
computes, per GLL point:

* the physical position on the unit sphere;
* the covariant tangent basis ``e_i = dr/dxi_i`` of the element's
  reference coordinates (chain rule: reference ``xi in [-1, 1]`` →
  face angle ``alpha in [-pi/4, pi/4]`` → sphere);
* the metric tensor ``g_ij = e_i . e_j``, its inverse, and the area
  Jacobian ``J = sqrt(det g)``;

which is everything the transport solver needs: contravariant wind
components come from solving ``g u^ = e . u``, and quadrature uses
``J w_i w_j``.

Batched layout: the **primary representation** is a set of stacked
``(nelem, np, np, ...)`` arrays on :class:`GridGeometry` (``xyz``,
``basis_a``, ``basis_b``, ``jac``, ``ginv``, ``local_mass``), built in
one vectorized pass over all elements of all faces at once.  The
per-element :class:`ElementGeometry` objects are cheap read-only views
into those stacks, kept for element-local callers; solvers and the DSS
consume the stacks directly instead of re-stacking ``[e.x for e in
elements]`` on every construction.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..cubesphere.mesh import CubedSphereMesh
from ..cubesphere.topology import FACES
from ..telemetry import inc, span
from .gll import GLLBasis, gll_basis

__all__ = [
    "ElementGeometry",
    "GridGeometry",
    "build_geometry",
    "clear_geometry_cache",
    "geometry_cache_stats",
]


@dataclass(frozen=True)
class ElementGeometry:
    """Geometry of one spectral element at its GLL points.

    All arrays are indexed ``[i, j]`` over the tensor GLL grid (``i``
    along the local x/alpha axis) and are read-only views into the
    grid-wide stacks of :class:`GridGeometry`.

    Attributes:
        gid: Global element id.
        xyz: ``(np, np, 3)`` unit-sphere positions.
        basis_a: ``(np, np, 3)`` covariant basis ``dr/dxi_1``.
        basis_b: ``(np, np, 3)`` covariant basis ``dr/dxi_2``.
        jac: ``(np, np)`` area Jacobian ``sqrt(det g)``.
        ginv: ``(np, np, 2, 2)`` inverse metric tensor.
    """

    gid: int
    xyz: np.ndarray
    basis_a: np.ndarray
    basis_b: np.ndarray
    jac: np.ndarray
    ginv: np.ndarray

    def contravariant_wind(self, u_cart: np.ndarray) -> np.ndarray:
        """Contravariant components of a Cartesian tangent wind field.

        Args:
            u_cart: ``(np, np, 3)`` tangent vectors at the GLL points.

        Returns:
            ``(np, np, 2)`` contravariant components ``(u^1, u^2)`` in
            reference coordinates.
        """
        cov1 = np.einsum("ijk,ijk->ij", u_cart, self.basis_a)
        cov2 = np.einsum("ijk,ijk->ij", u_cart, self.basis_b)
        cov = np.stack([cov1, cov2], axis=-1)
        return np.einsum("ijab,ijb->ija", self.ginv, cov)


class GridGeometry:
    """Geometry of every element of a cubed-sphere SE grid.

    The stacked arrays are the primary representation (read-only, safe
    to share between solvers); the lazy ``elements`` tuple holds
    per-element views for element-local callers.

    Attributes:
        mesh: The element mesh.
        basis: The 1-D GLL basis shared by both directions.
        xyz: ``(nelem, np, np, 3)`` unit-sphere positions.
        basis_a: ``(nelem, np, np, 3)`` covariant basis ``dr/dxi_1``.
        basis_b: ``(nelem, np, np, 3)`` covariant basis ``dr/dxi_2``.
        jac: ``(nelem, np, np)`` area Jacobian.
        ginv: ``(nelem, np, np, 2, 2)`` inverse metric tensor.
        local_mass: ``(nelem, np, np)`` J-weighted quadrature mass
            ``J w_i w_j`` at each local point.
    """

    def __init__(
        self,
        mesh: CubedSphereMesh,
        basis: GLLBasis,
        xyz: np.ndarray,
        basis_a: np.ndarray,
        basis_b: np.ndarray,
        jac: np.ndarray,
        ginv: np.ndarray,
        local_mass: np.ndarray,
    ) -> None:
        self.mesh = mesh
        self.basis = basis
        self.xyz = xyz
        self.basis_a = basis_a
        self.basis_b = basis_b
        self.jac = jac
        self.ginv = ginv
        self.local_mass = local_mass
        self._elements: tuple[ElementGeometry, ...] | None = None

    @property
    def elements(self) -> tuple[ElementGeometry, ...]:
        """Per-element read-only views into the stacks (built lazily)."""
        if self._elements is None:
            self._elements = tuple(
                ElementGeometry(
                    gid=g, xyz=self.xyz[g], basis_a=self.basis_a[g],
                    basis_b=self.basis_b[g], jac=self.jac[g],
                    ginv=self.ginv[g],
                )
                for g in range(self.mesh.nelem)
            )
        return self._elements

    @property
    def npts(self) -> int:
        return self.basis.npts

    @property
    def nelem(self) -> int:
        return self.mesh.nelem

    def nbytes(self) -> int:
        """Memory footprint of the stacked arrays."""
        return sum(
            a.nbytes
            for a in (
                self.xyz, self.basis_a, self.basis_b,
                self.jac, self.ginv, self.local_mass,
            )
        )

    def total_area(self) -> float:
        """Quadrature surface area (should be ``4 pi``; tested)."""
        return float(self.local_mass.sum())


def _element_geometry(
    mesh: CubedSphereMesh, basis: GLLBasis, gid: int
) -> ElementGeometry:
    """Reference per-element construction (the historical scalar loop).

    Kept as the golden reference for the vectorized stack builder:
    :func:`_build_stacks` must reproduce these arrays bit-for-bit
    (tested in ``tests/seam/test_batched_golden.py``).
    """
    face, ix, iy = mesh.locate(gid)
    ne = mesh.ne
    f = FACES[face]
    n = np.array(f.normal, dtype=np.float64)
    ex = np.array(f.ex, dtype=np.float64)
    ey = np.array(f.ey, dtype=np.float64)
    # Abstract local coordinate of each GLL node: a = 2*(ix + t)/ne - 1
    # with t in [0, 1]; the same expression on both sides of an
    # element interface makes shared points bit-identical.
    t = (basis.nodes + 1.0) / 2.0
    a = 2.0 * (ix + t) / ne - 1.0  # (np,)
    b = 2.0 * (iy + t) / ne - 1.0
    alpha = a * (np.pi / 4.0)
    beta = b * (np.pi / 4.0)
    x_ = np.tan(alpha)[:, None]  # X(alpha), broadcast over j
    y_ = np.tan(beta)[None, :]
    p = (
        n[None, None, :]
        + x_[..., None] * ex[None, None, :]
        + y_[..., None] * ey[None, None, :]
    )
    delta = np.linalg.norm(p, axis=-1)
    r = p / delta[..., None]
    # d r / d alpha = (1 + X^2) * (ex - r (r . ex)) / delta, then chain
    # rule to reference coords: d alpha / d xi = (pi/4) * (1/ne) * ...
    # a = 2 (ix + (xi+1)/2)/ne - 1  =>  da/dxi = 1/ne.
    dalpha_dxi = (np.pi / 4.0) / ne
    sec2a = 1.0 + x_**2  # sec^2(alpha) = 1 + tan^2
    sec2b = 1.0 + y_**2
    r_dot_ex = np.einsum("ijk,k->ij", r, ex)
    r_dot_ey = np.einsum("ijk,k->ij", r, ey)
    dra = (sec2a[..., None] * (ex[None, None, :] - r * r_dot_ex[..., None])) / delta[
        ..., None
    ]
    drb = (sec2b[..., None] * (ey[None, None, :] - r * r_dot_ey[..., None])) / delta[
        ..., None
    ]
    basis_a = dra * dalpha_dxi
    basis_b = drb * dalpha_dxi
    g11 = np.einsum("ijk,ijk->ij", basis_a, basis_a)
    g12 = np.einsum("ijk,ijk->ij", basis_a, basis_b)
    g22 = np.einsum("ijk,ijk->ij", basis_b, basis_b)
    det = g11 * g22 - g12 * g12
    jac = np.sqrt(det)
    ginv = np.empty(g11.shape + (2, 2))
    ginv[..., 0, 0] = g22 / det
    ginv[..., 1, 1] = g11 / det
    ginv[..., 0, 1] = -g12 / det
    ginv[..., 1, 0] = -g12 / det
    return ElementGeometry(
        gid=gid, xyz=r, basis_a=basis_a, basis_b=basis_b, jac=jac, ginv=ginv
    )


def _axis_of(v: tuple[int, int, int]) -> int:
    """Index of the single nonzero component of a signed unit vector."""
    return next(c for c in range(3) if v[c] != 0)


def _build_stacks(
    mesh: CubedSphereMesh, basis: GLLBasis
) -> tuple[np.ndarray, ...]:
    """All element geometries at once, as ``(nelem, np, np, ...)`` stacks.

    One vectorized pass over every element of every face.  The
    floating-point expressions (and their evaluation order) are the
    element-wise transcription of :func:`_element_geometry`, evaluated
    in-place into the preallocated output stacks with a small set of
    reused scratch buffers — the stacks are bit-identical to the
    per-element loop (tested), without the loop's per-element Python
    overhead or the naive broadcast version's temporary-array churn.
    """
    ne = mesh.ne
    npts = basis.npts
    nelem = mesh.nelem
    E = ne * ne  # elements per face
    t = (basis.nodes + 1.0) / 2.0
    idx = np.arange(ne)
    # a depends only on ix (b only on iy) and both run over the same
    # per-face index range, so one (ne, np) table serves both axes:
    # a = 2*(ix + t)/ne - 1, elementwise as in _element_geometry.
    a = 2.0 * (idx[:, None] + t[None, :]) / ne - 1.0
    tan_a = np.tan(a * (np.pi / 4.0))  # (ne, np)
    # Face-local element e = iy*ne + ix  =>  ix = e % ne, iy = e // ne.
    x_ = tan_a[np.tile(idx, ne)]  # (E, np): X(alpha) per (elem, i)
    y_ = tan_a[np.repeat(idx, ne)]  # (E, np): Y(beta) per (elem, j)
    # Materialized (E, np, np) grids: every op below is then either
    # contiguous or simply strided — no broadcasting along a length-3
    # axis, which is what made the naive batched version slow.
    xg = np.broadcast_to(x_[:, :, None], (E, npts, npts)).copy()
    yg = np.broadcast_to(y_[:, None, :], (E, npts, npts)).copy()
    s2ag = 1.0 + xg**2  # sec^2(alpha) = 1 + tan^2
    s2bg = 1.0 + yg**2
    dalpha_dxi = (np.pi / 4.0) / ne
    w2 = basis.weights[:, None] * basis.weights[None, :]

    xyz = np.empty((nelem, npts, npts, 3))
    basis_a = np.empty((nelem, npts, npts, 3))
    basis_b = np.empty((nelem, npts, npts, 3))
    jac = np.empty((nelem, npts, npts))
    ginv = np.empty((nelem, npts, npts, 2, 2))
    local_mass = np.empty((nelem, npts, npts))

    # Per-face scratch, reused across the 6 faces: small enough to stay
    # cache-resident, so intermediate passes cost cache bandwidth while
    # only the final output stacks touch main memory.  Vector scratch is
    # component-major (3, E, np, np): slab ops broadcast over the first
    # axis with contiguous inner loops, where a trailing length-3 axis
    # would force numpy into tiny strided inner loops.
    p = np.empty((3, E, npts, npts))
    rc = np.empty((3, E, npts, npts))  # r components
    q = np.empty((3, E, npts, npts))
    tmp = np.empty((E, npts, npts))
    acc = np.empty((E, npts, npts))  # |p|^2 -> delta, then det
    rd = np.empty((E, npts, npts))
    G11 = np.empty((nelem, npts, npts))
    G12 = np.empty((nelem, npts, npts))
    G22 = np.empty((nelem, npts, npts))

    for f, face in enumerate(FACES):
        sl = slice(f * E, (f + 1) * E)
        r = xyz[sl]
        ba = basis_a[sl]
        bb = basis_b[sl]
        # p = (n + x*ex) + y*ey.  n, ex, ey are orthonormal signed unit
        # vectors, so each Cartesian component of p is exactly one of
        # {n_c, x*ex_c, y*ey_c} — the other two terms are exact zeros
        # in the reference expression, and multiplying by the one
        # nonzero +-1 entry is IEEE-exact.  (Zero signs may differ from
        # the reference; they compare equal and never reach a result.)
        p[_axis_of(face.normal)].fill(float(sum(face.normal)))
        np.multiply(xg, float(sum(face.ex)), out=p[_axis_of(face.ex)])
        np.multiply(yg, float(sum(face.ey)), out=p[_axis_of(face.ey)])
        # delta = |p|: square, reduce in component order, sqrt — the
        # exact op sequence (and summation order) of np.linalg.norm.
        np.multiply(p, p, out=q)
        np.add.reduce(q, axis=0, out=acc)
        np.sqrt(acc, out=acc)
        np.divide(p, acc, out=rc)
        np.copyto(r.transpose(3, 0, 1, 2), rc)
        # dra = sec2a * (ex - r (r . ex)) / delta, chain-ruled to
        # reference coords: basis_a = dra * dalpha/dxi (likewise b).
        # r . ex is exactly +-r[axis(ex)] (dot with a signed unit
        # vector), matching the reference einsum term by term.
        for e_axis, sec2, out in ((face.ex, s2ag, ba), (face.ey, s2bg, bb)):
            np.multiply(rc[_axis_of(e_axis)], float(sum(e_axis)), out=rd)
            for c in range(3):
                np.multiply(rc[c], rd, out=tmp)
                np.subtract(float(e_axis[c]), tmp, out=tmp)
                np.multiply(sec2, tmp, out=tmp)
                np.divide(tmp, acc, out=tmp)
                np.multiply(tmp, dalpha_dxi, out=out[..., c])
        # Metric dots while ba/bb are cache-hot.  The contraction stays
        # einsum: the reference fuses multiply-add (FMA) in it, so a
        # mul/add chain would be 1 ulp off.
        np.einsum("eijk,eijk->eij", ba, ba, out=G11[sl])
        np.einsum("eijk,eijk->eij", ba, bb, out=G12[sl])
        np.einsum("eijk,eijk->eij", bb, bb, out=G22[sl])

    for f in range(6):
        sl = slice(f * E, (f + 1) * E)
        g11 = G11[sl]
        g12 = G12[sl]
        g22 = G22[sl]
        # det = g11*g22 - g12*g12; jac = sqrt(det).
        det = np.multiply(g11, g22, out=acc)
        np.multiply(g12, g12, out=tmp)
        np.subtract(det, tmp, out=det)
        np.sqrt(det, out=jac[sl])
        gi = ginv[sl]
        np.divide(g22, det, out=gi[..., 0, 0])
        np.divide(g11, det, out=gi[..., 1, 1])
        # (-g12)/det == -(g12/det) exactly in IEEE arithmetic.
        off = np.divide(g12, det, out=tmp)
        np.negative(off, out=off)
        gi[..., 0, 1] = off
        gi[..., 1, 0] = off
        np.multiply(jac[sl], w2, out=local_mass[sl])
    return xyz, basis_a, basis_b, jac, ginv, local_mass


def _build_grid_geometry(ne: int, npts: int) -> GridGeometry:
    """Uncached geometry construction (the geometry-cache miss path)."""
    from ..cubesphere.mesh import cubed_sphere_mesh

    mesh = cubed_sphere_mesh(ne)
    basis = gll_basis(npts)
    stacks = _build_stacks(mesh, basis)
    for arr in stacks:
        arr.setflags(write=False)
    return GridGeometry(mesh, basis, *stacks)


class GeometryCache:
    """Documented LRU cache of built grid geometries.

    Replaces the historical opaque ``lru_cache(maxsize=8)`` on
    :func:`build_geometry`: same eviction policy (least recently used
    beyond ``maxsize`` entries), but with hit/miss counters published
    to the metrics registry (``geometry_cache_total{outcome=...}``), a
    traced build span (``geometry_build``), and per-entry stats
    surfaced by ``repro cache info``.  The eviction hazard is now
    observable: a workload cycling through more than ``maxsize``
    distinct ``(ne, npts)`` resolutions shows up as a rising miss
    count, not silent rebuild latency.
    """

    def __init__(self, maxsize: int = 8) -> None:
        self.maxsize = maxsize
        self._entries: OrderedDict[tuple[int, int], GridGeometry] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get_or_build(self, ne: int, npts: int) -> GridGeometry:
        key = (ne, npts)
        geom = self._entries.get(key)
        if geom is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            inc("geometry_cache_total", outcome="hit")
            return geom
        self.misses += 1
        inc("geometry_cache_total", outcome="miss")
        with span("geometry_build", "seam", ne=ne, npts=npts):
            geom = _build_grid_geometry(ne, npts)
        self._entries[key] = geom
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1
        return geom

    def stats(self) -> dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._entries),
            "maxsize": self.maxsize,
            "keys": [
                {"ne": ne, "npts": npts, "bytes": geom.nbytes()}
                for (ne, npts), geom in self._entries.items()
            ],
        }

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0


_GEOMETRY_CACHE = GeometryCache(maxsize=8)


def geometry_cache_stats() -> dict[str, object]:
    """Hit/miss/eviction counts and entries of the geometry cache."""
    return _GEOMETRY_CACHE.stats()


def clear_geometry_cache() -> None:
    """Drop all cached geometries and reset the counters."""
    _GEOMETRY_CACHE.clear()


def build_geometry(ne: int, npts: int = 8) -> GridGeometry:
    """Build (and cache) the SE grid geometry for resolution ``ne``.

    Cached in a process-wide :class:`GeometryCache` (LRU, 8 entries,
    hit/miss counters under ``geometry_cache_total``); repeated calls
    at the same resolution return the same object.

    Args:
        ne: Elements per cube-face edge.
        npts: GLL points per element edge (SEAM default 8).
    """
    return _GEOMETRY_CACHE.get_or_build(int(ne), int(npts))
