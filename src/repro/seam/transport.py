"""Spectral-element transport on the cubed-sphere (the SEAM analog).

A conservative flux-form advection solver with the exact computational
structure of SEAM's dynamical core: per-element tensor-product spectral
derivatives (dense ``np x np`` matrix applications — the flops) and a
DSS boundary exchange per right-hand-side evaluation (the
communication).  The equation solved is

    d(q)/dt + (1/J) [ d(J u^1 q)/dxi_1 + d(J u^2 q)/dxi_2 ] = 0

with ``u^i`` the contravariant wind components, integrated with SSP
RK3 and a DSS projection after every stage.  Solid-body rotation of a
cosine bell — the standard Williamson test case 1 — gives an analytic
solution to validate against (tests assert the error is small and
decreases with ``np``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .dss import DSSOperator, shared_dss_operator
from .element import GridGeometry

__all__ = [
    "solid_body_wind",
    "cosine_bell",
    "rotate_about_axis",
    "TransportSolver",
    "advect",
]


def rotate_about_axis(xyz: np.ndarray, axis: np.ndarray, angle: float) -> np.ndarray:
    """Rotate points about a unit axis by ``angle`` (Rodrigues)."""
    axis = np.asarray(axis, dtype=np.float64)
    axis = axis / np.linalg.norm(axis)
    c, s = np.cos(angle), np.sin(angle)
    cross = np.cross(np.broadcast_to(axis, xyz.shape), xyz)
    dot = np.einsum("...k,k->...", xyz, axis)
    return c * xyz + s * cross + (1.0 - c) * dot[..., None] * axis


def solid_body_wind(xyz: np.ndarray, axis: np.ndarray, omega: float) -> np.ndarray:
    """Velocity ``Omega x r`` of rigid rotation about ``axis``.

    Args:
        xyz: ``(..., 3)`` unit-sphere positions.
        axis: Rotation axis (normalized internally).
        omega: Angular speed (radians per time unit).

    Returns:
        ``(..., 3)`` Cartesian tangent velocities.
    """
    axis = np.asarray(axis, dtype=np.float64)
    axis = omega * axis / np.linalg.norm(axis)
    return np.cross(np.broadcast_to(axis, xyz.shape), xyz)


def cosine_bell(
    xyz: np.ndarray, center: np.ndarray, radius: float = 1.0 / 3.0
) -> np.ndarray:
    """Williamson cosine-bell initial condition.

    Args:
        xyz: ``(..., 3)`` unit-sphere positions.
        center: Bell center (unit vector).
        radius: Bell radius in radians of great-circle distance.

    Returns:
        Field values in ``[0, 1]``.
    """
    center = np.asarray(center, dtype=np.float64)
    center = center / np.linalg.norm(center)
    dist = np.arccos(np.clip(np.einsum("...k,k->...", xyz, center), -1.0, 1.0))
    return np.where(dist < radius, 0.5 * (1.0 + np.cos(np.pi * dist / radius)), 0.0)


@dataclass
class TransportSolver:
    """Flux-form SE advection with a frozen wind field.

    Args:
        geom: Grid geometry.
        wind_cart: ``(nelem, np, np, 3)`` Cartesian tangent wind.
        dss: Optional pre-built DSS operator (rebuilt otherwise).
    """

    geom: GridGeometry
    wind_cart: np.ndarray
    dss: DSSOperator | None = None

    def __post_init__(self) -> None:
        if self.dss is None:
            self.dss = shared_dss_operator(self.geom)
        geom = self.geom
        nelem = geom.nelem
        npts = geom.npts
        if self.wind_cart.shape != (nelem, npts, npts, 3):
            raise ValueError("wind_cart has wrong shape")
        # Precompute J and the J-weighted contravariant wind from the
        # grid-wide geometry stacks (no per-element Python loop).
        self.jac = geom.jac
        w = self.wind_cart
        cov1 = (
            w[..., 0] * geom.basis_a[..., 0]
            + w[..., 1] * geom.basis_a[..., 1]
            + w[..., 2] * geom.basis_a[..., 2]
        )
        cov2 = (
            w[..., 0] * geom.basis_b[..., 0]
            + w[..., 1] * geom.basis_b[..., 1]
            + w[..., 2] * geom.basis_b[..., 2]
        )
        ginv = geom.ginv
        contra1 = ginv[..., 0, 0] * cov1 + ginv[..., 0, 1] * cov2
        contra2 = ginv[..., 1, 0] * cov1 + ginv[..., 1, 1] * cov2
        self.flux_u = self.jac * contra1
        self.flux_v = self.jac * contra2
        self.diff = np.ascontiguousarray(geom.basis.diff)
        self._diff_t = np.ascontiguousarray(self.diff.T)
        self._neg_inv_jac = -1.0 / self.jac
        # CFL constants for the frozen wind, hoisted out of stable_dt.
        self._min_dxi = float(np.min(np.diff(geom.basis.nodes)))
        speed = np.abs(self.flux_u / self.jac) + np.abs(self.flux_v / self.jac)
        self._max_speed = float(speed.max())
        # RHS workspace (flux products and their derivatives).
        shape = (nelem, npts, npts)
        self._fu = np.empty(shape)
        self._fv = np.empty(shape)
        self._dfu = np.empty(shape)
        self._dfv = np.empty(shape)
        self.rhs_evals = 0  # instrumentation for the cost model

    def rhs(self, q: np.ndarray) -> np.ndarray:
        """Right-hand side ``-(1/J) div(J u q)`` (element-wise).

        The two reference-axis derivatives are BLAS matmuls: the
        ``dxi_1`` derivative broadcasts ``diff`` over the element
        stack, the ``dxi_2`` derivative is one ``(nelem*np, np)``
        GEMM against ``diff.T``.
        """
        self.rhs_evals += 1
        fu, fv, dfu, dfv = self._fu, self._fv, self._dfu, self._dfv
        np.multiply(self.flux_u, q, out=fu)
        np.multiply(self.flux_v, q, out=fv)
        # d/dxi_1 acts on the first tensor index, d/dxi_2 on the second.
        np.matmul(self.diff, fu, out=dfu)
        npts = fv.shape[-1]
        np.matmul(fv.reshape(-1, npts), self._diff_t, out=dfv.reshape(-1, npts))
        np.add(dfu, dfv, out=dfu)
        return dfu * self._neg_inv_jac

    def stable_dt(self, cfl: float = 0.5) -> float:
        """CFL-limited timestep for the frozen wind."""
        if self._max_speed == 0.0:
            return np.inf
        return cfl * self._min_dxi / self._max_speed

    def step(self, q: np.ndarray, dt: float) -> np.ndarray:
        """One SSP RK3 step with DSS projection after every stage."""
        dss = self.dss
        assert dss is not None
        q1 = dss.apply(q + dt * self.rhs(q))
        q2 = dss.apply(0.75 * q + 0.25 * (q1 + dt * self.rhs(q1)))
        return dss.apply(q / 3.0 + 2.0 / 3.0 * (q2 + dt * self.rhs(q2)))

    def run(self, q0: np.ndarray, t_end: float, cfl: float = 0.5) -> np.ndarray:
        """Integrate from ``q0`` to ``t_end``; returns the final field."""
        dt = self.stable_dt(cfl)
        nsteps = max(1, int(np.ceil(t_end / dt)))
        dt = t_end / nsteps
        q = self.dss.apply(q0) if self.dss else q0
        for _ in range(nsteps):
            q = self.step(q, dt)
        return q


def advect(
    geom: GridGeometry,
    axis: np.ndarray,
    angle: float,
    q0: np.ndarray,
    cfl: float = 0.5,
) -> tuple[np.ndarray, np.ndarray]:
    """Advect a field by solid-body rotation and return (final, exact).

    The exact solution rotates the initial field rigidly, so it is
    evaluated by sampling ``q0``'s analytic generator at back-rotated
    positions — the caller passes ``q0`` as *values*, so this helper
    instead returns the rotated-sample reference computed from the
    positions (valid when ``q0`` came from :func:`cosine_bell`; for
    general fields compute your own reference).

    Args:
        geom: Grid geometry.
        axis: Rotation axis.
        angle: Total rotation angle (time with unit angular speed).
        q0: Initial field ``(nelem, np, np)``.
        cfl: CFL number.

    Returns:
        ``(q_final, positions_back_rotated)`` — the second output lets
        callers evaluate the analytic field at departure points.
    """
    xyz = geom.xyz
    wind = solid_body_wind(xyz, axis, omega=1.0)
    solver = TransportSolver(geom, wind)
    q = solver.run(q0, t_end=angle, cfl=cfl)
    departed = rotate_about_axis(xyz, np.asarray(axis, dtype=np.float64), -angle)
    return q, departed
