"""Simulated distributed execution of the spectral-element solver.

SEAM runs as one MPI rank per processor, each owning the elements its
partition assigned, exchanging boundary-point partial sums at every
DSS.  This module executes the *same decomposition* deterministically
in one process: per-rank state, explicit message buffers keyed by the
exchange schedule, and byte accounting — so a partitioned run can be

* verified against the serial solver (they agree to summation
  rounding; tested), and
* measured: the messages it sends are exactly what the machine model
  prices, closing the loop between the numerical substrate and the
  performance study.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..partition.base import Partition
from ..telemetry import inc, span
from .dss import PointMap, build_point_map
from .element import GridGeometry
from .transport import TransportSolver

__all__ = ["ExchangeAccounting", "PartitionedDSS", "PartitionedTransportRun"]


@dataclass
class ExchangeAccounting:
    """Message statistics of a partitioned run.

    Attributes:
        exchanges: Number of DSS exchanges performed.
        messages: Total point-to-point messages sent.
        values: Total floating-point values moved.
        per_rank_sent: ``(nranks,)`` values sent by each rank.
    """

    nranks: int
    exchanges: int = 0
    messages: int = 0
    values: int = 0
    per_rank_sent: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.per_rank_sent is None:
            self.per_rank_sent = np.zeros(self.nranks, dtype=np.int64)

    def bytes_moved(self, bytes_per_value: int = 8) -> int:
        return self.values * bytes_per_value


class PartitionedDSS:
    """Direct stiffness summation executed rank-by-rank.

    Each rank holds partial J-weighted sums for the global points its
    elements touch; shared points are completed by explicit messages
    between the ranks that co-own them (determined once, from the
    point map and the partition).

    Args:
        geom: Grid geometry.
        partition: Element-to-rank assignment.
        point_map: Optional pre-built global point identification.
    """

    def __init__(
        self,
        geom: GridGeometry,
        partition: Partition,
        point_map: PointMap | None = None,
    ):
        if partition.nvertices != geom.nelem:
            raise ValueError("partition does not match the grid")
        self.geom = geom
        self.partition = partition
        self.point_map = point_map if point_map is not None else build_point_map(geom)
        self.nranks = partition.nparts
        self.local_mass = geom.local_mass
        self._build_rank_structures()
        self.accounting = ExchangeAccounting(nranks=self.nranks)

    def _build_rank_structures(self) -> None:
        ids = self.point_map.point_ids
        owner = self.partition.assignment
        # Points touched by each rank (sort + run-mask dedup).
        self.rank_elements = [
            np.flatnonzero(owner == r) for r in range(self.nranks)
        ]
        rank_points: list[np.ndarray] = []
        for r in range(self.nranks):
            touched = np.sort(ids[self.rank_elements[r]].ravel())
            rank_points.append(
                touched[np.r_[True, touched[1:] != touched[:-1]]]
                if len(touched)
                else touched
            )
        self.rank_points = rank_points
        # Every element-local point's dense local id on its owning rank,
        # one flat index array per rank.  These drive both gather
        # (weighted np.bincount, which accumulates in index order — the
        # same element-by-element order as the historical np.add.at and
        # per-element loop, so float sums are bit-identical) and scatter.
        self._rank_idx = [
            np.searchsorted(rank_points[r], ids[self.rank_elements[r]].ravel())
            for r in range(self.nranks)
        ]
        self._build_shared_lists()
        # Precompute each rank's assembled mass (numerically identical
        # on every co-owning rank after exchange).
        self.rank_mass = []
        for r in range(self.nranks):
            m = self._gather_rank(r, self.local_mass)
            self.rank_mass.append(m)
        # Complete the mass with one exchange (not counted in stats).
        self._exchange_into(self.rank_mass, count=False)

    def _build_shared_lists(self) -> None:
        """Shared-point message layouts for every ordered rank pair.

        ``shared[(src, dst)]`` is the ascending list of global points
        co-owned by both ranks — the layout both sides agree on (like an
        MPI datatype) — with the matching local-index arrays precomputed
        on each side.  Built with the same run-length grouping and
        size-class pair expansion as the halo schedule kernel.
        """
        pnt = np.concatenate(self.rank_points + [np.empty(0, dtype=np.int64)])
        rnk = np.concatenate(
            [
                np.full(len(p), r, dtype=np.int64)
                for r, p in enumerate(self.rank_points)
            ]
            + [np.empty(0, dtype=np.int64)]
        )
        order = np.argsort(pnt, kind="stable")  # ranks ascend within a point
        pnt = pnt[order]
        rnk = rnk[order]
        starts = np.flatnonzero(np.r_[True, pnt[1:] != pnt[:-1]]) if len(pnt) else (
            np.empty(0, dtype=np.int64)
        )
        counts = np.diff(np.r_[starts, len(pnt)])
        srcs: list[np.ndarray] = []
        dsts: list[np.ndarray] = []
        pts_out: list[np.ndarray] = []
        for size in np.unique(counts).tolist():
            if size < 2:
                continue
            group_starts = starts[counts == size]
            members = rnk[group_starts[:, None] + np.arange(size)]
            a = np.repeat(members, size, axis=1)
            b = np.tile(members, (1, size))
            offdiag = a != b
            srcs.append(a[offdiag])
            dsts.append(b[offdiag])
            pts_out.append(np.repeat(pnt[group_starts], size * size - size))
        self.shared: dict[tuple[int, int], np.ndarray] = {}
        self._shared_src_idx: dict[tuple[int, int], np.ndarray] = {}
        self._shared_dst_idx: dict[tuple[int, int], np.ndarray] = {}
        if not srcs:
            return
        src = np.concatenate(srcs)
        dst = np.concatenate(dsts)
        pts = np.concatenate(pts_out)
        pair_key = src * np.int64(self.nranks) + dst
        by_pair = np.lexsort((pts, pair_key))
        pair_key = pair_key[by_pair]
        pts = pts[by_pair]
        run_starts = np.flatnonzero(np.r_[True, pair_key[1:] != pair_key[:-1]])
        run_ends = np.r_[run_starts[1:], len(pair_key)]
        for lo, hi in zip(run_starts.tolist(), run_ends.tolist()):
            a, b = divmod(int(pair_key[lo]), self.nranks)
            plist = pts[lo:hi]
            self.shared[(a, b)] = plist
            self._shared_src_idx[(a, b)] = np.searchsorted(
                self.rank_points[a], plist
            )
            self._shared_dst_idx[(a, b)] = np.searchsorted(
                self.rank_points[b], plist
            )

    def _gather_rank(self, rank: int, field_: np.ndarray) -> np.ndarray:
        """Rank-local partial sums of a per-element point field."""
        return np.bincount(
            self._rank_idx[rank],
            weights=field_[self.rank_elements[rank]].ravel(),
            minlength=len(self.rank_points[rank]),
        )

    def _exchange_into(self, partials: list[np.ndarray], count: bool = True) -> None:
        """Add every rank's shared-point partials into its neighbors."""
        # Snapshot the outgoing values first (BSP semantics: all sends
        # read the pre-exchange state).
        outbox: dict[tuple[int, int], np.ndarray] = {}
        for (src, dst), pts in self.shared.items():
            outbox[(src, dst)] = partials[src][self._shared_src_idx[(src, dst)]]
            if count:
                self.accounting.messages += 1
                self.accounting.values += len(pts)
                self.accounting.per_rank_sent[src] += len(pts)
        for (src, dst), payload in outbox.items():
            partials[dst][self._shared_dst_idx[(src, dst)]] += payload
        if count:
            self.accounting.exchanges += 1

    def apply(self, field_: np.ndarray) -> np.ndarray:
        """Partitioned DSS projection of an element-wise field.

        Numerically equal to :meth:`repro.seam.dss.DSSOperator.apply`
        up to floating-point summation order (tested to 1e-12).
        """
        with span("pdss_apply", "seam"):
            weighted = self.local_mass * field_
            partials = [
                self._gather_rank(r, weighted) for r in range(self.nranks)
            ]
            self._exchange_into(partials)
            out = np.empty_like(field_)
            for r in range(self.nranks):
                elems = self.rank_elements[r]
                if not len(elems):
                    continue
                averaged = partials[r] / self.rank_mass[r]
                out[elems] = averaged[self._rank_idx[r]].reshape(
                    len(elems), *field_.shape[1:]
                )
        inc("pdss_applies")
        return out

    def is_continuous(self, field_: np.ndarray, atol: float = 1e-12) -> bool:
        """Continuity check (delegates to the global point map)."""
        ids = self.point_map.point_ids.ravel()
        vals = field_.ravel()
        mx = np.full(self.point_map.npoints, -np.inf)
        mn = np.full(self.point_map.npoints, np.inf)
        np.maximum.at(mx, ids, vals)
        np.minimum.at(mn, ids, vals)
        return bool(np.all(mx - mn <= atol))


class PartitionedTransportRun:
    """The transport solver executed under a domain decomposition.

    Drop-in variant of :class:`repro.seam.transport.TransportSolver`
    whose DSS goes through :class:`PartitionedDSS`, so every run
    carries exact message accounting.

    Args:
        geom: Grid geometry.
        wind_cart: Cartesian tangent wind at the GLL points.
        partition: Element-to-rank assignment.
    """

    def __init__(
        self, geom: GridGeometry, wind_cart: np.ndarray, partition: Partition
    ):
        self.pdss = PartitionedDSS(geom, partition)
        # Reuse the serial solver's RHS machinery; only DSS differs.
        self._solver = TransportSolver(geom, wind_cart, dss=_NullDSS())
        self.geom = geom
        self.partition = partition

    @property
    def accounting(self) -> ExchangeAccounting:
        return self.pdss.accounting

    def stable_dt(self, cfl: float = 0.5) -> float:
        return self._solver.stable_dt(cfl)

    def step(self, q: np.ndarray, dt: float) -> np.ndarray:
        rhs = self._solver.rhs
        dss = self.pdss.apply
        q1 = dss(q + dt * rhs(q))
        q2 = dss(0.75 * q + 0.25 * (q1 + dt * rhs(q1)))
        return dss(q / 3.0 + 2.0 / 3.0 * (q2 + dt * rhs(q2)))

    def run(self, q0: np.ndarray, t_end: float, cfl: float = 0.5) -> np.ndarray:
        dt = self.stable_dt(cfl)
        nsteps = max(1, int(np.ceil(t_end / dt)))
        dt = t_end / nsteps
        q = self.pdss.apply(q0)
        for _ in range(nsteps):
            q = self.step(q, dt)
        return q


class _NullDSS:
    """Placeholder satisfying TransportSolver's dss attribute; the
    partitioned runner routes all projections through PartitionedDSS."""

    def apply(self, field_: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise RuntimeError("partitioned runs must use PartitionedDSS")
