"""Simulated distributed execution of the spectral-element solver.

SEAM runs as one MPI rank per processor, each owning the elements its
partition assigned, exchanging boundary-point partial sums at every
DSS.  This module executes the *same decomposition* deterministically
in one process: per-rank state, explicit message buffers keyed by the
exchange schedule, and byte accounting — so a partitioned run can be

* verified against the serial solver (they agree to summation
  rounding; tested), and
* measured: the messages it sends are exactly what the machine model
  prices, closing the loop between the numerical substrate and the
  performance study.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..partition.base import Partition
from .dss import PointMap, build_point_map
from .element import GridGeometry
from .transport import TransportSolver

__all__ = ["ExchangeAccounting", "PartitionedDSS", "PartitionedTransportRun"]


@dataclass
class ExchangeAccounting:
    """Message statistics of a partitioned run.

    Attributes:
        exchanges: Number of DSS exchanges performed.
        messages: Total point-to-point messages sent.
        values: Total floating-point values moved.
        per_rank_sent: ``(nranks,)`` values sent by each rank.
    """

    nranks: int
    exchanges: int = 0
    messages: int = 0
    values: int = 0
    per_rank_sent: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.per_rank_sent is None:
            self.per_rank_sent = np.zeros(self.nranks, dtype=np.int64)

    def bytes_moved(self, bytes_per_value: int = 8) -> int:
        return self.values * bytes_per_value


class PartitionedDSS:
    """Direct stiffness summation executed rank-by-rank.

    Each rank holds partial J-weighted sums for the global points its
    elements touch; shared points are completed by explicit messages
    between the ranks that co-own them (determined once, from the
    point map and the partition).

    Args:
        geom: Grid geometry.
        partition: Element-to-rank assignment.
        point_map: Optional pre-built global point identification.
    """

    def __init__(
        self,
        geom: GridGeometry,
        partition: Partition,
        point_map: PointMap | None = None,
    ):
        if partition.nvertices != len(geom.elements):
            raise ValueError("partition does not match the grid")
        self.geom = geom
        self.partition = partition
        self.point_map = point_map if point_map is not None else build_point_map(geom)
        self.nranks = partition.nparts
        basis = geom.basis
        w2 = basis.weights[:, None] * basis.weights[None, :]
        self.local_mass = np.stack([e.jac * w2 for e in geom.elements])
        self._build_rank_structures()
        self.accounting = ExchangeAccounting(nranks=self.nranks)

    def _build_rank_structures(self) -> None:
        ids = self.point_map.point_ids
        nelem = ids.shape[0]
        owner = self.partition.assignment
        # Points touched by each rank.
        self.rank_elements = [
            np.flatnonzero(owner == r) for r in range(self.nranks)
        ]
        rank_points: list[np.ndarray] = []
        for r in range(self.nranks):
            pts = np.unique(ids[self.rank_elements[r]].ravel())
            rank_points.append(pts)
        self.rank_points = rank_points
        # For every ordered rank pair, the sorted shared-point list —
        # the message layout both sides agree on (like an MPI datatype).
        owners_of_point: dict[int, list[int]] = {}
        for r in range(self.nranks):
            for p in rank_points[r]:
                owners_of_point.setdefault(int(p), []).append(r)
        self.shared: dict[tuple[int, int], np.ndarray] = {}
        for p, owners in owners_of_point.items():
            if len(owners) < 2:
                continue
            for a in owners:
                for b in owners:
                    if a != b:
                        self.shared.setdefault((a, b), []).append(p)  # type: ignore[arg-type]
        self.shared = {
            k: np.array(sorted(v), dtype=np.int64) for k, v in self.shared.items()
        }
        # Per-rank local point numbering (global id -> dense local id).
        self.local_index = []
        for r in range(self.nranks):
            idx = {int(p): i for i, p in enumerate(rank_points[r])}
            self.local_index.append(idx)
        # Precompute each rank's assembled mass (numerically identical
        # on every co-owning rank after exchange).
        self.rank_mass = []
        for r in range(self.nranks):
            m = self._gather_rank(r, self.local_mass)
            self.rank_mass.append(m)
        # Complete the mass with one exchange (not counted in stats).
        self._exchange_into(self.rank_mass, count=False)

    def _gather_rank(self, rank: int, field_: np.ndarray) -> np.ndarray:
        """Rank-local partial sums of a per-element point field."""
        pts = self.rank_points[rank]
        out = np.zeros(len(pts))
        ids = self.point_map.point_ids
        lookup = self.local_index[rank]
        for e in self.rank_elements[rank]:
            flat_ids = ids[e].ravel()
            local = np.fromiter(
                (lookup[int(p)] for p in flat_ids), dtype=np.int64, count=len(flat_ids)
            )
            np.add.at(out, local, field_[e].ravel())
        return out

    def _exchange_into(self, partials: list[np.ndarray], count: bool = True) -> None:
        """Add every rank's shared-point partials into its neighbors."""
        # Snapshot the outgoing values first (BSP semantics: all sends
        # read the pre-exchange state).
        outbox: dict[tuple[int, int], np.ndarray] = {}
        for (src, dst), pts in self.shared.items():
            lookup = self.local_index[src]
            idx = np.fromiter((lookup[int(p)] for p in pts), dtype=np.int64)
            outbox[(src, dst)] = partials[src][idx].copy()
            if count:
                self.accounting.messages += 1
                self.accounting.values += len(pts)
                self.accounting.per_rank_sent[src] += len(pts)
        for (src, dst), payload in outbox.items():
            pts = self.shared[(src, dst)]
            lookup = self.local_index[dst]
            idx = np.fromiter((lookup[int(p)] for p in pts), dtype=np.int64)
            partials[dst][idx] += payload
        if count:
            self.accounting.exchanges += 1

    def apply(self, field_: np.ndarray) -> np.ndarray:
        """Partitioned DSS projection of an element-wise field.

        Numerically equal to :meth:`repro.seam.dss.DSSOperator.apply`
        up to floating-point summation order (tested to 1e-12).
        """
        partials = [
            self._gather_rank(r, self.local_mass * field_)
            for r in range(self.nranks)
        ]
        self._exchange_into(partials)
        out = np.empty_like(field_)
        ids = self.point_map.point_ids
        for r in range(self.nranks):
            lookup = self.local_index[r]
            averaged = partials[r] / self.rank_mass[r]
            for e in self.rank_elements[r]:
                flat_ids = ids[e].ravel()
                idx = np.fromiter(
                    (lookup[int(p)] for p in flat_ids),
                    dtype=np.int64,
                    count=len(flat_ids),
                )
                out[e] = averaged[idx].reshape(field_.shape[1:])
        return out

    def is_continuous(self, field_: np.ndarray, atol: float = 1e-12) -> bool:
        """Continuity check (delegates to the global point map)."""
        ids = self.point_map.point_ids.ravel()
        vals = field_.ravel()
        mx = np.full(self.point_map.npoints, -np.inf)
        mn = np.full(self.point_map.npoints, np.inf)
        np.maximum.at(mx, ids, vals)
        np.minimum.at(mn, ids, vals)
        return bool(np.all(mx - mn <= atol))


class PartitionedTransportRun:
    """The transport solver executed under a domain decomposition.

    Drop-in variant of :class:`repro.seam.transport.TransportSolver`
    whose DSS goes through :class:`PartitionedDSS`, so every run
    carries exact message accounting.

    Args:
        geom: Grid geometry.
        wind_cart: Cartesian tangent wind at the GLL points.
        partition: Element-to-rank assignment.
    """

    def __init__(
        self, geom: GridGeometry, wind_cart: np.ndarray, partition: Partition
    ):
        self.pdss = PartitionedDSS(geom, partition)
        # Reuse the serial solver's RHS machinery; only DSS differs.
        self._solver = TransportSolver(geom, wind_cart, dss=_NullDSS())
        self.geom = geom
        self.partition = partition

    @property
    def accounting(self) -> ExchangeAccounting:
        return self.pdss.accounting

    def stable_dt(self, cfl: float = 0.5) -> float:
        return self._solver.stable_dt(cfl)

    def step(self, q: np.ndarray, dt: float) -> np.ndarray:
        rhs = self._solver.rhs
        dss = self.pdss.apply
        q1 = dss(q + dt * rhs(q))
        q2 = dss(0.75 * q + 0.25 * (q1 + dt * rhs(q1)))
        return dss(q / 3.0 + 2.0 / 3.0 * (q2 + dt * rhs(q2)))

    def run(self, q0: np.ndarray, t_end: float, cfl: float = 0.5) -> np.ndarray:
        dt = self.stable_dt(cfl)
        nsteps = max(1, int(np.ceil(t_end / dt)))
        dt = t_end / nsteps
        q = self.pdss.apply(q0)
        for _ in range(nsteps):
            q = self.step(q, dt)
        return q


class _NullDSS:
    """Placeholder satisfying TransportSolver's dss attribute; the
    partitioned runner routes all projections through PartitionedDSS."""

    def apply(self, field_: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise RuntimeError("partitioned runs must use PartitionedDSS")
