"""Gauss-Lobatto-Legendre quadrature and spectral differentiation.

The spectral element method (Taylor, Tribbia & Iskandarani 1997 — the
paper's SEAM ancestor) approximates fields inside each element by
high-order polynomials collocated at GLL points; SEAM uses ``np = 8``
points per direction.  This module provides the 1-D building blocks:
GLL nodes, quadrature weights, and the collocation differentiation
matrix, all computed to machine precision with Newton iteration on
Legendre polynomials.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

__all__ = ["GLLBasis", "gll_basis", "legendre_and_derivative"]


def legendre_and_derivative(n: int, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Evaluate ``P_n`` and ``P_n'`` by the three-term recurrence.

    Args:
        n: Legendre degree (>= 0).
        x: Evaluation points.

    Returns:
        ``(P_n(x), P_n'(x))``.
    """
    x = np.asarray(x, dtype=np.float64)
    p_prev = np.ones_like(x)
    if n == 0:
        return p_prev, np.zeros_like(x)
    p = x.copy()
    for k in range(2, n + 1):
        p_prev, p = p, ((2 * k - 1) * x * p - (k - 1) * p_prev) / k
    # P_n' from the standard identity (guarded at the endpoints).
    dp = np.where(
        np.abs(1.0 - x * x) > 1e-14,
        n * (x * p - p_prev) / np.where(np.abs(x * x - 1.0) > 1e-14, x * x - 1.0, 1.0),
        0.0,
    )
    # Endpoint derivative: P_n'(+-1) = (+-1)^{n-1} n (n+1) / 2.
    endp = n * (n + 1) / 2.0
    dp = np.where(x >= 1.0 - 1e-14, endp, dp)
    dp = np.where(x <= -1.0 + 1e-14, endp * (-1.0) ** (n - 1), dp)
    return p, dp


@dataclass(frozen=True)
class GLLBasis:
    """1-D GLL basis of ``npts`` points on ``[-1, 1]``.

    Attributes:
        npts: Number of collocation points (polynomial degree + 1).
        nodes: ``(npts,)`` GLL nodes, ascending, endpoints included.
        weights: ``(npts,)`` quadrature weights (exact for degree
            ``2 * npts - 3``).
        diff: ``(npts, npts)`` collocation derivative matrix ``D`` with
            ``(D f)[i] = f'(nodes[i])`` for polynomial ``f``.
    """

    npts: int
    nodes: np.ndarray
    weights: np.ndarray
    diff: np.ndarray

    def __post_init__(self) -> None:
        for arr in (self.nodes, self.weights, self.diff):
            arr.setflags(write=False)


def _gll_nodes(npts: int) -> np.ndarray:
    """GLL nodes: endpoints plus the roots of ``P'_{npts-1}``."""
    n = npts - 1
    if npts == 2:
        return np.array([-1.0, 1.0])
    # Chebyshev-Gauss-Lobatto initial guess, then Newton on P'_n using
    # the derivative recurrence for P''.
    x = -np.cos(np.pi * np.arange(1, n) / n)
    for _ in range(100):
        p, dp = legendre_and_derivative(n, x)
        # P_n'' from the Legendre ODE: (1-x^2) P'' - 2x P' + n(n+1) P = 0.
        d2p = (2.0 * x * dp - n * (n + 1) * p) / (1.0 - x * x)
        step = dp / d2p
        x = x - step
        if np.max(np.abs(step)) < 1e-15:
            break
    return np.concatenate([[-1.0], x, [1.0]])


@lru_cache(maxsize=16)
def gll_basis(npts: int) -> GLLBasis:
    """Construct (and cache) the GLL basis with ``npts`` points.

    Raises:
        ValueError: If ``npts < 2`` (Lobatto rules need both endpoints).
    """
    if npts < 2:
        raise ValueError("GLL basis needs at least 2 points")
    n = npts - 1
    nodes = _gll_nodes(npts)
    pn, _ = legendre_and_derivative(n, nodes)
    weights = 2.0 / (n * (n + 1) * pn**2)
    # Differentiation matrix, standard GLL formula:
    #   D[i, j] = P_n(x_i) / (P_n(x_j) (x_i - x_j))   (i != j)
    #   D[0, 0] = -n(n+1)/4, D[n, n] = +n(n+1)/4, else 0.
    diff = np.zeros((npts, npts))
    for i in range(npts):
        for j in range(npts):
            if i != j:
                diff[i, j] = pn[i] / (pn[j] * (nodes[i] - nodes[j]))
    diff[0, 0] = -n * (n + 1) / 4.0
    diff[-1, -1] = n * (n + 1) / 4.0
    return GLLBasis(npts=npts, nodes=nodes, weights=weights, diff=diff)
