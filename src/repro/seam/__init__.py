"""SEAM substrate: spectral-element machinery and cost accounting.

A runnable analog of the NCAR Spectral Element Atmospheric Model's
dynamical core: GLL collocation, gnomonic element geometry, direct
stiffness summation, a conservative transport solver, and the
flop/byte cost model that drives the performance reproduction.
"""

from .cost import DEFAULT_COST_MODEL, SEAMCostModel
from .diagnostics import ErrorNorms, conservation_drift, error_norms
from .parallel import (
    ExchangeAccounting,
    PartitionedDSS,
    PartitionedTransportRun,
)
from .shallow_water import ShallowWaterSolver, SWState, williamson_tc2
from .dss import (
    DSSOperator,
    PointMap,
    build_halo_schedule,
    build_point_map,
    exchange_schedule,
)
from .element import ElementGeometry, GridGeometry, build_geometry
from .gll import GLLBasis, gll_basis, legendre_and_derivative
from .transport import (
    TransportSolver,
    advect,
    cosine_bell,
    rotate_about_axis,
    solid_body_wind,
)

__all__ = [
    "DEFAULT_COST_MODEL",
    "DSSOperator",
    "ErrorNorms",
    "ExchangeAccounting",
    "PartitionedDSS",
    "PartitionedTransportRun",
    "SWState",
    "ShallowWaterSolver",
    "ElementGeometry",
    "GLLBasis",
    "GridGeometry",
    "PointMap",
    "SEAMCostModel",
    "TransportSolver",
    "advect",
    "build_geometry",
    "build_halo_schedule",
    "build_point_map",
    "conservation_drift",
    "cosine_bell",
    "error_norms",
    "exchange_schedule",
    "gll_basis",
    "legendre_and_derivative",
    "rotate_about_axis",
    "solid_body_wind",
    "williamson_tc2",
]
