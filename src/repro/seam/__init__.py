"""SEAM substrate: spectral-element machinery and cost accounting.

A runnable analog of the NCAR Spectral Element Atmospheric Model's
dynamical core: GLL collocation, gnomonic element geometry, direct
stiffness summation, a conservative transport solver, and the
flop/byte cost model that drives the performance reproduction.
"""

from .cost import DEFAULT_COST_MODEL, SEAMCostModel
from .diagnostics import ErrorNorms, conservation_drift, error_norms
from .parallel import (
    ExchangeAccounting,
    PartitionedDSS,
    PartitionedTransportRun,
)
from .shallow_water import ShallowWaterSolver, SWState, williamson_tc2
from .dss import (
    DSSOperator,
    PointMap,
    build_halo_schedule,
    build_point_map,
    clear_dss_memo,
    dss_memo_stats,
    exchange_schedule,
    shared_dss_operator,
)
from .element import (
    ElementGeometry,
    GridGeometry,
    build_geometry,
    clear_geometry_cache,
    geometry_cache_stats,
)
from .gll import GLLBasis, gll_basis, legendre_and_derivative
from .transport import (
    TransportSolver,
    advect,
    cosine_bell,
    rotate_about_axis,
    solid_body_wind,
)

__all__ = [
    "DEFAULT_COST_MODEL",
    "DSSOperator",
    "ErrorNorms",
    "ExchangeAccounting",
    "PartitionedDSS",
    "PartitionedTransportRun",
    "SWState",
    "ShallowWaterSolver",
    "ElementGeometry",
    "GLLBasis",
    "GridGeometry",
    "PointMap",
    "SEAMCostModel",
    "TransportSolver",
    "advect",
    "build_geometry",
    "build_halo_schedule",
    "build_point_map",
    "clear_dss_memo",
    "clear_geometry_cache",
    "conservation_drift",
    "cosine_bell",
    "dss_memo_stats",
    "error_norms",
    "exchange_schedule",
    "geometry_cache_stats",
    "gll_basis",
    "legendre_and_derivative",
    "rotate_about_axis",
    "shared_dss_operator",
    "solid_body_wind",
    "williamson_tc2",
]
