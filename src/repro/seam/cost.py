"""SEAM per-element cost model: flops computed and bytes exchanged.

The performance study (paper Sec. 4) needs exactly two numbers per
element per timestep: how many floating-point operations a processor
spends on it, and how many bytes it exchanges per shared boundary
point.  Both are *derived from the spectral-element operator itself*
rather than guessed:

* flops — counted from the tensor-product RHS of
  :mod:`repro.seam.transport` (two dense ``np x np`` derivative
  applications per variable per level plus pointwise work), times the
  RK stage count, times a documented SEAM-complexity multiplier for the
  terms a full shallow-water/primitive-equation RHS adds (metric,
  Coriolis, geopotential gradient, energy) relative to pure advection;
* bytes — 8-byte values, one per variable per level per shared point
  per DSS application.

Absolute rates are anchored to the paper's measurement: SEAM sustained
841 Mflop/s on one 1.3 GHz Power-4 (16% of peak).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SEAMCostModel", "DEFAULT_COST_MODEL"]


@dataclass(frozen=True)
class SEAMCostModel:
    """Flop/byte accounting for one SEAM timestep.

    Attributes:
        npts: GLL points per element edge (SEAM uses 8).
        nlev: Vertical levels (1 = shallow-water SEAM configuration,
            which matches the microsecond-scale per-step times of the
            paper's Table 2).
        nvars: Prognostic variables per level (u, v, h).
        rk_stages: RHS evaluations per timestep.
        seam_complexity: Ratio of SEAM's full RHS flops to the minimal
            advection operator (metric terms, Coriolis, gradients).
        bytes_per_value: Size of one exchanged floating-point value.
        pointwise_ops: Pointwise flops per grid point per variable per
            RHS in the minimal operator (multiplies, divides, adds of
            the flux form).
    """

    npts: int = 8
    nlev: int = 1
    nvars: int = 3
    rk_stages: int = 3
    seam_complexity: float = 4.0
    bytes_per_value: int = 8
    pointwise_ops: int = 12

    def flops_per_rhs_per_element(self) -> float:
        """Flops of one RHS evaluation on one element."""
        n = self.npts
        # Two tensor derivative contractions, each 2*n^3 flops per
        # variable per level, plus pointwise flux/divide work.
        derivative = 2 * (2 * n**3)
        pointwise = self.pointwise_ops * n * n
        minimal = self.nlev * self.nvars * (derivative + pointwise)
        return self.seam_complexity * minimal

    def flops_per_step_per_element(self) -> float:
        """Flops of one full timestep on one element."""
        n = self.npts
        rhs = self.rk_stages * self.flops_per_rhs_per_element()
        # RK axpy updates: ~3 flops per point per variable per stage.
        updates = self.rk_stages * 3 * self.nlev * self.nvars * n * n
        return rhs + updates

    def bytes_per_point(self) -> int:
        """Bytes exchanged per shared boundary point per DSS."""
        return self.bytes_per_value * self.nlev * self.nvars

    def exchanges_per_step(self) -> int:
        """DSS boundary exchanges per timestep (one per RK stage)."""
        return self.rk_stages

    def step_flops(self, nelem: int) -> float:
        """Total flops of one timestep over ``nelem`` elements."""
        return nelem * self.flops_per_step_per_element()


#: The configuration used throughout the paper-reproduction benches.
DEFAULT_COST_MODEL = SEAMCostModel()
