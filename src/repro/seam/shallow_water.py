"""Nonlinear shallow-water equations on the cubed-sphere.

SEAM descends from the spectral-element shallow-water model of Taylor,
Tribbia & Iskandarani (1997) — the paper's reference [9].  This module
completes the numerical substrate with that system, solved in the
3-D Cartesian vector form that keeps cross-face continuity trivial
(each Cartesian velocity component is a scalar, so the scalar DSS
applies componentwise; tangency is enforced by projection):

    dv/dt = -(v . grad) v - f (rhat x v) - g grad(h),   v tangent
    dh/dt = -div(h v)

with ``f = 2 Omega (rhat . z)`` the Coriolis parameter on the unit
sphere.  Surface gradient/divergence come from the per-element metric
machinery of :mod:`repro.seam.element`; time stepping is SSP RK3 with
DSS projection per stage, as in the transport solver.

Validation (tests): Williamson et al. (1992) test case 2 — steady
geostrophic flow — must remain steady; mass is conserved to roundoff
and total energy drifts only at discretization level.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .dss import DSSOperator
from .element import GridGeometry

__all__ = ["SWState", "ShallowWaterSolver", "williamson_tc2"]

Z_AXIS = np.array([0.0, 0.0, 1.0])


@dataclass
class SWState:
    """Prognostic shallow-water state.

    Attributes:
        v: ``(nelem, np, np, 3)`` Cartesian tangent velocity.
        h: ``(nelem, np, np)`` fluid depth.
    """

    v: np.ndarray
    h: np.ndarray

    def copy(self) -> "SWState":
        return SWState(v=self.v.copy(), h=self.h.copy())

    def axpy(self, a: float, other: "SWState") -> "SWState":
        """Return ``self + a * other`` (new state)."""
        return SWState(v=self.v + a * other.v, h=self.h + a * other.h)

    def scaled(self, a: float) -> "SWState":
        return SWState(v=a * self.v, h=a * self.h)


class ShallowWaterSolver:
    """Spectral-element shallow-water dynamical core.

    Args:
        geom: Grid geometry (unit sphere).
        gravity: Gravitational acceleration ``g`` (nondimensional by
            default; choose units consistently with ``omega``).
        omega: Planetary rotation rate for the Coriolis term.
        dss: Optional pre-built DSS operator.
    """

    def __init__(
        self,
        geom: GridGeometry,
        gravity: float = 1.0,
        omega: float = 1.0,
        dss: DSSOperator | None = None,
    ):
        self.geom = geom
        self.gravity = float(gravity)
        self.omega = float(omega)
        self.dss = dss if dss is not None else DSSOperator(geom)
        self.diff = geom.basis.diff
        self.jac = np.stack([e.jac for e in geom.elements])
        self.basis_a = np.stack([e.basis_a for e in geom.elements])
        self.basis_b = np.stack([e.basis_b for e in geom.elements])
        self.ginv = np.stack([e.ginv for e in geom.elements])
        self.rhat = np.stack([e.xyz for e in geom.elements])
        #: Coriolis parameter f = 2 Omega sin(lat) at every point.
        self.coriolis = 2.0 * self.omega * self.rhat[..., 2]
        self.rhs_evals = 0

    # -- differential operators (per element, vectorized over all) ----
    def _d1(self, s: np.ndarray) -> np.ndarray:
        """Derivative along the first reference axis."""
        return np.einsum("ij,ejb->eib", self.diff, s)

    def _d2(self, s: np.ndarray) -> np.ndarray:
        """Derivative along the second reference axis."""
        return np.einsum("ij,eaj->eai", self.diff, s)

    def gradient(self, s: np.ndarray) -> np.ndarray:
        """Surface gradient of a scalar, as a Cartesian tangent field."""
        cov1 = self._d1(s)
        cov2 = self._d2(s)
        c1 = self.ginv[..., 0, 0] * cov1 + self.ginv[..., 0, 1] * cov2
        c2 = self.ginv[..., 1, 0] * cov1 + self.ginv[..., 1, 1] * cov2
        return c1[..., None] * self.basis_a + c2[..., None] * self.basis_b

    def contravariant(self, vec: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Contravariant components of a Cartesian tangent field."""
        cov1 = np.einsum("...k,...k->...", vec, self.basis_a)
        cov2 = np.einsum("...k,...k->...", vec, self.basis_b)
        c1 = self.ginv[..., 0, 0] * cov1 + self.ginv[..., 0, 1] * cov2
        c2 = self.ginv[..., 1, 0] * cov1 + self.ginv[..., 1, 1] * cov2
        return c1, c2

    def divergence(self, vec: np.ndarray) -> np.ndarray:
        """Surface divergence of a Cartesian tangent field."""
        c1, c2 = self.contravariant(vec)
        return (self._d1(self.jac * c1) + self._d2(self.jac * c2)) / self.jac

    def advect_scalar(self, vec: np.ndarray, s: np.ndarray) -> np.ndarray:
        """Directional derivative ``(vec . grad) s``."""
        c1, c2 = self.contravariant(vec)
        return c1 * self._d1(s) + c2 * self._d2(s)

    def project_tangent(self, vec: np.ndarray) -> np.ndarray:
        """Remove the radial component of a Cartesian field."""
        radial = np.einsum("...k,...k->...", vec, self.rhat)
        return vec - radial[..., None] * self.rhat

    # -- dynamics ------------------------------------------------------
    def rhs(self, state: SWState) -> SWState:
        """Momentum and continuity tendencies (element-wise)."""
        self.rhs_evals += 1
        v, h = state.v, state.h
        adv = np.stack(
            [self.advect_scalar(v, v[..., k]) for k in range(3)], axis=-1
        )
        cor = self.coriolis[..., None] * np.cross(self.rhat, v)
        dv = -adv - cor - self.gravity * self.gradient(h)
        dv = self.project_tangent(dv)
        dh = -self.divergence(h[..., None] * v)
        return SWState(v=dv, h=dh)

    def _project_state(self, state: SWState) -> SWState:
        """DSS every prognostic component and re-tangentialize."""
        v = np.stack(
            [self.dss.apply(state.v[..., k]) for k in range(3)], axis=-1
        )
        return SWState(v=self.project_tangent(v), h=self.dss.apply(state.h))

    def stable_dt(self, state: SWState, cfl: float = 0.4) -> float:
        """CFL limit from gravity-wave + advective speeds."""
        nodes = self.geom.basis.nodes
        min_dxi = float(np.min(np.diff(nodes)))
        # Metric scale |basis| converts physical speed to reference
        # speed; the global minimum gives a conservative bound on the
        # reference-cell crossing time of the fastest signal.
        scale = np.sqrt(
            np.einsum("...k,...k->...", self.basis_a, self.basis_a)
            + np.einsum("...k,...k->...", self.basis_b, self.basis_b)
        )
        speed = np.sqrt(self.gravity * np.maximum(state.h, 0.0)) + np.linalg.norm(
            state.v, axis=-1
        )
        max_contra = float((speed / scale.min()).max())
        if max_contra == 0:
            return np.inf
        return cfl * min_dxi / max_contra

    def step(self, state: SWState, dt: float) -> SWState:
        """One SSP RK3 step with per-stage projection."""
        s1 = self._project_state(state.axpy(dt, self.rhs(state)))
        mid = s1.axpy(dt, self.rhs(s1))
        s2 = self._project_state(
            SWState(
                v=0.75 * state.v + 0.25 * mid.v,
                h=0.75 * state.h + 0.25 * mid.h,
            )
        )
        end = s2.axpy(dt, self.rhs(s2))
        return self._project_state(
            SWState(
                v=state.v / 3.0 + (2.0 / 3.0) * end.v,
                h=state.h / 3.0 + (2.0 / 3.0) * end.h,
            )
        )

    def run(self, state: SWState, t_end: float, cfl: float = 0.4) -> SWState:
        """Integrate to ``t_end``."""
        state = self._project_state(state)
        dt = self.stable_dt(state, cfl)
        nsteps = max(1, int(np.ceil(t_end / dt)))
        dt = t_end / nsteps
        for _ in range(nsteps):
            state = self.step(state, dt)
        return state

    # -- diagnostics ---------------------------------------------------
    def total_mass(self, state: SWState) -> float:
        """``\\int h dA`` (conserved to roundoff; tested)."""
        return self.dss.integrate(state.h)

    def total_energy(self, state: SWState) -> float:
        """Kinetic + potential energy."""
        ke = 0.5 * state.h * np.einsum("...k,...k->...", state.v, state.v)
        pe = 0.5 * self.gravity * state.h**2
        return self.dss.integrate(ke + pe)


def williamson_tc2(
    geom: GridGeometry,
    u0: float = 0.2,
    h0: float = 1.0,
    gravity: float = 1.0,
    omega: float = 1.0,
) -> SWState:
    """Williamson test case 2: steady zonal geostrophic flow.

    On the unit sphere with rotation axis ``z``::

        v = u0 (z x rhat)
        g h = g h0 - (Omega u0 + u0^2 / 2) (rhat . z)^2

    is an exact steady solution of the shallow-water equations; a
    correct solver must hold it (tested).

    Args:
        geom: Grid geometry.
        u0: Peak zonal wind.
        h0: Mean depth (keep ``g h0`` > the perturbation for h > 0).
        gravity: ``g``.
        omega: Planetary rotation rate (must match the solver's).
    """
    rhat = np.stack([e.xyz for e in geom.elements])
    v = u0 * np.cross(np.broadcast_to(Z_AXIS, rhat.shape), rhat)
    sin_lat = rhat[..., 2]
    h = h0 - (omega * u0 + 0.5 * u0**2) * sin_lat**2 / gravity
    if (h <= 0).any():
        raise ValueError("h0 too small: depth would go non-positive")
    return SWState(v=v, h=h)
