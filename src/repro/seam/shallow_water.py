"""Nonlinear shallow-water equations on the cubed-sphere.

SEAM descends from the spectral-element shallow-water model of Taylor,
Tribbia & Iskandarani (1997) — the paper's reference [9].  This module
completes the numerical substrate with that system, solved in the
3-D Cartesian vector form that keeps cross-face continuity trivial
(each Cartesian velocity component is a scalar, so the scalar DSS
applies componentwise; tangency is enforced by projection):

    dv/dt = -(v . grad) v - f (rhat x v) - g grad(h),   v tangent
    dh/dt = -div(h v)

with ``f = 2 Omega (rhat . z)`` the Coriolis parameter on the unit
sphere.  Surface gradient/divergence come from the stacked per-element
metric machinery of :mod:`repro.seam.element`; time stepping is SSP
RK3 with DSS projection per stage, as in the transport solver.

The dynamical core is batched: all differential operators run as BLAS
matmuls over ``(np, nelem*np)``-shaped blocks of the geometry stacks,
the RK3 stages reuse preallocated workspace buffers, and one fused
:meth:`DSSOperator.apply` call projects the whole ``(nelem, np, np,
3)`` velocity.  The historical per-element/einsum implementation is
preserved in :mod:`repro.seam._reference` and the batched core is
golden-tested against it.

Validation (tests): Williamson et al. (1992) test case 2 — steady
geostrophic flow — must remain steady; mass is conserved to roundoff
and total energy drifts only at discretization level.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .dss import DSSOperator, shared_dss_operator
from .element import GridGeometry

__all__ = ["SWState", "ShallowWaterSolver", "williamson_tc2"]

Z_AXIS = np.array([0.0, 0.0, 1.0])

# Cyclic index pairs for the cross product's k-th component.
_CROSS = ((1, 2), (2, 0), (0, 1))


@dataclass
class SWState:
    """Prognostic shallow-water state.

    Attributes:
        v: ``(nelem, np, np, 3)`` Cartesian tangent velocity.
        h: ``(nelem, np, np)`` fluid depth.
    """

    v: np.ndarray
    h: np.ndarray

    def copy(self) -> "SWState":
        return SWState(v=self.v.copy(), h=self.h.copy())

    def axpy(self, a: float, other: "SWState") -> "SWState":
        """Return ``self + a * other`` (new state)."""
        return SWState(v=self.v + a * other.v, h=self.h + a * other.h)

    def scaled(self, a: float) -> "SWState":
        return SWState(v=a * self.v, h=a * self.h)


class ShallowWaterSolver:
    """Spectral-element shallow-water dynamical core (batched).

    All hot-path fields live in two layouts: the public trailing-
    component layout ``(nelem, np, np, 3)`` that matches
    :class:`SWState` and the fused DSS projection, and an internal
    component-major workspace ``(3, nelem, np, np)`` whose slices are
    contiguous — elementwise numpy ops on a strided trailing axis are
    several times slower than on contiguous planes at these sizes.

    Args:
        geom: Grid geometry (unit sphere).
        gravity: Gravitational acceleration ``g`` (nondimensional by
            default; choose units consistently with ``omega``).
        omega: Planetary rotation rate for the Coriolis term.
        dss: Optional pre-built DSS operator.  Defaults to the shared
            per-geometry operator from
            :func:`repro.seam.dss.shared_dss_operator`, so solvers on
            the same grid reuse one point map.
    """

    def __init__(
        self,
        geom: GridGeometry,
        gravity: float = 1.0,
        omega: float = 1.0,
        dss: DSSOperator | None = None,
    ):
        self.geom = geom
        self.gravity = float(gravity)
        self.omega = float(omega)
        self.dss = dss if dss is not None else shared_dss_operator(geom)
        basis = geom.basis
        self.diff = np.ascontiguousarray(basis.diff)
        self._diff_t = np.ascontiguousarray(self.diff.T)
        self.jac = geom.jac
        self.basis_a = geom.basis_a
        self.basis_b = geom.basis_b
        self.ginv = geom.ginv
        self.rhat = geom.xyz
        #: Coriolis parameter f = 2 Omega sin(lat) at every point.
        self.coriolis = np.ascontiguousarray(2.0 * self.omega * self.rhat[..., 2])
        self.rhs_evals = 0

        nelem, npts = geom.nelem, geom.npts
        shape = (nelem, npts, npts)
        # Component-major copies of the static vector fields: each
        # [k] slice is a contiguous (nelem, np, np) plane.
        self._am = np.ascontiguousarray(np.moveaxis(self.basis_a, -1, 0))
        self._bm = np.ascontiguousarray(np.moveaxis(self.basis_b, -1, 0))
        self._rm = np.ascontiguousarray(np.moveaxis(self.rhat, -1, 0))
        #: f * rhat, the fixed factor of the Coriolis cross product.
        self._fr = self.coriolis * self._rm
        # The inverse metric is symmetric (both off-diagonal slots hold
        # the same array values), so three contiguous planes suffice.
        self._g11 = np.ascontiguousarray(self.ginv[..., 0, 0])
        self._g12 = np.ascontiguousarray(self.ginv[..., 0, 1])
        self._g22 = np.ascontiguousarray(self.ginv[..., 1, 1])
        self._inv_jac = 1.0 / self.jac

        # RHS workspace: component-major velocity + its derivatives,
        # scalar scratch planes, and the component-major tendency.
        self._vm = np.empty((3, *shape))
        self._d1v = np.empty((3, *shape))
        self._d2v = np.empty((3, *shape))
        self._dvm = np.empty((3, *shape))
        self._t = [np.empty(shape) for _ in range(7)]
        # RK3 stage buffers (state-shaped).
        self._kv = np.empty((*shape, 3))
        self._kh = np.empty(shape)
        self._sv = np.empty((*shape, 3))
        self._sh = np.empty(shape)

        # stable_dt constants, hoisted out of the per-call path: the
        # reference spacing and the global minimum of the metric scale
        # |basis_a| + |basis_b| are grid properties, not state.
        self._min_dxi = float(np.min(np.diff(basis.nodes)))
        scale = np.sqrt(
            np.einsum("...k,...k->...", self.basis_a, self.basis_a)
            + np.einsum("...k,...k->...", self.basis_b, self.basis_b)
        )
        self._min_scale = float(scale.min())

    # -- differential operators (batched over all elements) -----------
    def _d1(self, s: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Derivative along the first reference axis (batched GEMM)."""
        return np.matmul(self.diff, s, out=out)

    def _d2(self, s: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Derivative along the second reference axis (one GEMM)."""
        npts = s.shape[-1]
        if out is None:
            out = np.empty(s.shape)
        np.matmul(
            s.reshape(-1, npts), self._diff_t, out=out.reshape(-1, npts)
        )
        return out

    def gradient(self, s: np.ndarray) -> np.ndarray:
        """Surface gradient of a scalar, as a Cartesian tangent field."""
        cov1 = self._d1(s)
        cov2 = self._d2(s)
        c1 = self._g11 * cov1 + self._g12 * cov2
        c2 = self._g12 * cov1 + self._g22 * cov2
        return c1[..., None] * self.basis_a + c2[..., None] * self.basis_b

    def contravariant(self, vec: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Contravariant components of a Cartesian tangent field."""
        cov1 = (
            vec[..., 0] * self._am[0]
            + vec[..., 1] * self._am[1]
            + vec[..., 2] * self._am[2]
        )
        cov2 = (
            vec[..., 0] * self._bm[0]
            + vec[..., 1] * self._bm[1]
            + vec[..., 2] * self._bm[2]
        )
        c1 = self._g11 * cov1 + self._g12 * cov2
        c2 = self._g12 * cov1 + self._g22 * cov2
        return c1, c2

    def divergence(self, vec: np.ndarray) -> np.ndarray:
        """Surface divergence of a Cartesian tangent field."""
        c1, c2 = self.contravariant(vec)
        return (self._d1(self.jac * c1) + self._d2(self.jac * c2)) * self._inv_jac

    def advect_scalar(self, vec: np.ndarray, s: np.ndarray) -> np.ndarray:
        """Directional derivative ``(vec . grad) s``."""
        c1, c2 = self.contravariant(vec)
        return c1 * self._d1(s) + c2 * self._d2(s)

    def project_tangent(self, vec: np.ndarray) -> np.ndarray:
        """Remove the radial component of a Cartesian field."""
        radial = (
            vec[..., 0] * self._rm[0]
            + vec[..., 1] * self._rm[1]
            + vec[..., 2] * self._rm[2]
        )
        return vec - radial[..., None] * self.rhat

    # -- dynamics ------------------------------------------------------
    def rhs(self, state: SWState) -> SWState:
        """Momentum and continuity tendencies (element-wise)."""
        dv = np.empty(state.v.shape)
        dh = np.empty(state.h.shape)
        self._rhs_into(state.v, state.h, dv, dh)
        return SWState(v=dv, h=dh)

    def _rhs_into(
        self, v: np.ndarray, h: np.ndarray, dv: np.ndarray, dh: np.ndarray
    ) -> None:
        """Batched tendencies into preallocated ``dv``/``dh``.

        One pass over component-major workspace: two GEMMs produce all
        six velocity derivatives, the metric/Coriolis/gradient algebra
        runs on contiguous planes, and the continuity flux reuses the
        already-computed contravariant wind (``contra(h v) = h *
        contra(v)`` pointwise).
        """
        self.rhs_evals += 1
        vm, d1v, d2v, dvm = self._vm, self._d1v, self._d2v, self._dvm
        t0, t1, t2, t3, t4, t5, t6 = self._t
        am, bm, rm, fr = self._am, self._bm, self._rm, self._fr
        g11, g12, g22 = self._g11, self._g12, self._g22
        npts = self.geom.npts

        for k in range(3):
            np.copyto(vm[k], v[..., k])
        # All six reference-axis derivatives of velocity in two GEMMs.
        np.matmul(self.diff, vm, out=d1v)
        np.matmul(
            vm.reshape(-1, npts), self._diff_t, out=d2v.reshape(-1, npts)
        )

        # Contravariant wind: c1 (t2), c2 (t3).
        np.multiply(vm[0], am[0], out=t0)
        np.multiply(vm[1], am[1], out=t2)
        np.add(t0, t2, out=t0)
        np.multiply(vm[2], am[2], out=t2)
        np.add(t0, t2, out=t0)  # t0 = cov1
        np.multiply(vm[0], bm[0], out=t1)
        np.multiply(vm[1], bm[1], out=t2)
        np.add(t1, t2, out=t1)
        np.multiply(vm[2], bm[2], out=t2)
        np.add(t1, t2, out=t1)  # t1 = cov2
        np.multiply(g11, t0, out=t2)
        np.multiply(g12, t1, out=t4)
        np.add(t2, t4, out=t2)  # t2 = c1
        np.multiply(g12, t0, out=t3)
        np.multiply(g22, t1, out=t4)
        np.add(t3, t4, out=t3)  # t3 = c2

        # g * grad(h) contravariant components: hc1 (t4), hc2 (t5).
        self._d1(h, out=t0)
        self._d2(h, out=t1)
        np.multiply(g11, t0, out=t4)
        np.multiply(g12, t1, out=t6)
        np.add(t4, t6, out=t4)
        np.multiply(t4, self.gravity, out=t4)
        np.multiply(g12, t0, out=t5)
        np.multiply(g22, t1, out=t6)
        np.add(t5, t6, out=t5)
        np.multiply(t5, self.gravity, out=t5)

        # Momentum: dv_k = -(advection + Coriolis + g grad h).
        for k, (i, j) in enumerate(_CROSS):
            np.multiply(t2, d1v[k], out=t0)
            np.multiply(t3, d2v[k], out=t1)
            np.add(t0, t1, out=t0)
            np.multiply(fr[i], vm[j], out=t1)
            np.add(t0, t1, out=t0)
            np.multiply(fr[j], vm[i], out=t1)
            np.subtract(t0, t1, out=t0)
            np.multiply(t4, am[k], out=t1)
            np.add(t0, t1, out=t0)
            np.multiply(t5, bm[k], out=t1)
            np.add(t0, t1, out=t0)
            np.negative(t0, out=dvm[k])

        # Tangent projection of the tendency, then back to trailing.
        np.multiply(dvm[0], rm[0], out=t0)
        np.multiply(dvm[1], rm[1], out=t1)
        np.add(t0, t1, out=t0)
        np.multiply(dvm[2], rm[2], out=t1)
        np.add(t0, t1, out=t0)  # t0 = radial component
        for k in range(3):
            np.multiply(t0, rm[k], out=t1)
            np.subtract(dvm[k], t1, out=dvm[k])
            np.copyto(dv[..., k], dvm[k])

        # Continuity: dh = -div(h v); contra(h v) = h * contra(v).
        np.multiply(t2, h, out=t2)
        np.multiply(t2, self.jac, out=t2)
        np.multiply(t3, h, out=t3)
        np.multiply(t3, self.jac, out=t3)
        self._d1(t2, out=t0)
        self._d2(t3, out=t1)
        np.add(t0, t1, out=t0)
        np.multiply(t0, self._inv_jac, out=t0)
        np.negative(t0, out=dh)

    def _tangent_inplace(self, v: np.ndarray) -> None:
        """Remove the radial component of ``v`` in place."""
        t0, t1 = self._t[0], self._t[1]
        np.multiply(v[..., 0], self._rm[0], out=t0)
        np.multiply(v[..., 1], self._rm[1], out=t1)
        np.add(t0, t1, out=t0)
        np.multiply(v[..., 2], self._rm[2], out=t1)
        np.add(t0, t1, out=t0)
        for k in range(3):
            np.multiply(t0, self._rm[k], out=t1)
            np.subtract(v[..., k], t1, out=v[..., k])

    def _project_state_inplace(self, v: np.ndarray, h: np.ndarray) -> None:
        """DSS every prognostic component and re-tangentialize."""
        self.dss.apply(v, out=v)
        self._tangent_inplace(v)
        self.dss.apply(h, out=h)

    def _project_state(self, state: SWState) -> SWState:
        """DSS every prognostic component and re-tangentialize."""
        v = self.dss.apply(state.v)
        h = self.dss.apply(state.h)
        self._tangent_inplace(v)
        return SWState(v=v, h=h)

    def stable_dt(self, state: SWState, cfl: float = 0.4) -> float:
        """CFL limit from gravity-wave + advective speeds.

        The metric-scale minimum and reference spacing are grid
        constants precomputed in ``__init__``; only the state-dependent
        speeds are evaluated here.

        Raises:
            ValueError: If any depth is negative — such a state is
                unphysical and would previously have been silently
                clamped to zero.
        """
        if (state.h < 0.0).any():
            raise ValueError(
                "stable_dt: state has negative depth h "
                f"(min {float(state.h.min()):.3e}); the shallow-water "
                "system requires h >= 0"
            )
        speed = np.sqrt(self.gravity * state.h) + np.linalg.norm(
            state.v, axis=-1
        )
        max_contra = float(speed.max()) / self._min_scale
        if max_contra == 0:
            return np.inf
        return cfl * self._min_dxi / max_contra

    def step(self, state: SWState, dt: float) -> SWState:
        """One SSP RK3 step with per-stage projection.

        Stage tendencies and intermediate states live in preallocated
        buffers; only the returned state is freshly allocated.
        """
        kv, kh, sv, sh = self._kv, self._kh, self._sv, self._sh
        # Stage 1: s = P(state + dt k1).
        self._rhs_into(state.v, state.h, kv, kh)
        np.multiply(kv, dt, out=kv)
        np.add(state.v, kv, out=sv)
        np.multiply(kh, dt, out=kh)
        np.add(state.h, kh, out=sh)
        self._project_state_inplace(sv, sh)
        # Stage 2: s = P(3/4 state + 1/4 (s + dt k2)).
        self._rhs_into(sv, sh, kv, kh)
        np.multiply(kv, dt, out=kv)
        np.add(sv, kv, out=kv)
        np.multiply(kv, 0.25, out=kv)
        np.multiply(state.v, 0.75, out=sv)
        np.add(sv, kv, out=sv)
        np.multiply(kh, dt, out=kh)
        np.add(sh, kh, out=kh)
        np.multiply(kh, 0.25, out=kh)
        np.multiply(state.h, 0.75, out=sh)
        np.add(sh, kh, out=sh)
        self._project_state_inplace(sv, sh)
        # Stage 3: P(1/3 state + 2/3 (s + dt k3)), freshly allocated.
        out_v = np.empty(state.v.shape)
        out_h = np.empty(state.h.shape)
        self._rhs_into(sv, sh, kv, kh)
        np.multiply(kv, dt, out=kv)
        np.add(sv, kv, out=kv)
        np.multiply(kv, 2.0 / 3.0, out=kv)
        np.divide(state.v, 3.0, out=out_v)
        np.add(out_v, kv, out=out_v)
        np.multiply(kh, dt, out=kh)
        np.add(sh, kh, out=kh)
        np.multiply(kh, 2.0 / 3.0, out=kh)
        np.divide(state.h, 3.0, out=out_h)
        np.add(out_h, kh, out=out_h)
        self._project_state_inplace(out_v, out_h)
        return SWState(v=out_v, h=out_h)

    def run(self, state: SWState, t_end: float, cfl: float = 0.4) -> SWState:
        """Integrate to ``t_end``."""
        state = self._project_state(state)
        dt = self.stable_dt(state, cfl)
        nsteps = max(1, int(np.ceil(t_end / dt)))
        dt = t_end / nsteps
        for _ in range(nsteps):
            state = self.step(state, dt)
        return state

    # -- diagnostics ---------------------------------------------------
    def total_mass(self, state: SWState) -> float:
        """``\\int h dA`` (conserved to roundoff; tested)."""
        return self.dss.integrate(state.h)

    def total_energy(self, state: SWState) -> float:
        """Kinetic + potential energy."""
        ke = 0.5 * state.h * np.einsum("...k,...k->...", state.v, state.v)
        pe = 0.5 * self.gravity * state.h**2
        return self.dss.integrate(ke + pe)


def williamson_tc2(
    geom: GridGeometry,
    u0: float = 0.2,
    h0: float = 1.0,
    gravity: float = 1.0,
    omega: float = 1.0,
) -> SWState:
    """Williamson test case 2: steady zonal geostrophic flow.

    On the unit sphere with rotation axis ``z``::

        v = u0 (z x rhat)
        g h = g h0 - (Omega u0 + u0^2 / 2) (rhat . z)^2

    is an exact steady solution of the shallow-water equations; a
    correct solver must hold it (tested).

    Args:
        geom: Grid geometry.
        u0: Peak zonal wind.
        h0: Mean depth (keep ``g h0`` > the perturbation for h > 0).
        gravity: ``g``.
        omega: Planetary rotation rate (must match the solver's).
    """
    rhat = geom.xyz
    v = u0 * np.cross(np.broadcast_to(Z_AXIS, rhat.shape), rhat)
    sin_lat = rhat[..., 2]
    h = h0 - (omega * u0 + 0.5 * u0**2) * sin_lat**2 / gravity
    if (h <= 0).any():
        raise ValueError("h0 too small: depth would go non-positive")
    return SWState(v=v, h=h)
