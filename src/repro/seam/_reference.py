"""Historical (pre-batched) SEAM reference implementations.

These are verbatim snapshots of the per-element / einsum code paths
that :mod:`repro.seam.dss` and :mod:`repro.seam.shallow_water` used
before the batched engine landed.  They are deliberately slow and kept
only as golden oracles:

* the equivalence tests assert the batched paths reproduce these
  results bit-identically or to <= 1e-12, and
* ``benchmarks/bench_shallow_water.py`` times them for the honest
  "before" column of the speedup table.

Do not use these in production code.
"""

from __future__ import annotations

import numpy as np

from .dss import PointMap, build_point_map
from .element import GridGeometry

__all__ = ["ReferenceDSS", "ReferenceShallowWaterSolver"]

Z_AXIS = np.array([0.0, 0.0, 1.0])


class ReferenceDSS:
    """The original ``np.add.at`` scatter DSS (scalar fields only).

    Velocity projection required a Python loop over components:
    ``np.stack([dss.apply(v[..., k]) for k in range(3)], axis=-1)`` —
    which is exactly what the batched operator's trailing component
    axes replace.
    """

    def __init__(self, geom: GridGeometry, point_map: PointMap | None = None):
        self.geom = geom
        self.point_map = (
            point_map if point_map is not None else build_point_map(geom)
        )
        w = geom.basis.weights
        w2 = w[:, None] * w[None, :]
        self.local_mass = np.stack([e.jac * w2 for e in geom.elements])
        self.global_mass = np.zeros(self.point_map.npoints)
        np.add.at(
            self.global_mass,
            self.point_map.point_ids.ravel(),
            self.local_mass.ravel(),
        )

    def apply(self, field: np.ndarray) -> np.ndarray:
        ids = self.point_map.point_ids.ravel()
        num = np.zeros(self.point_map.npoints)
        np.add.at(num, ids, (self.local_mass * field).ravel())
        avg = num / self.global_mass
        return avg[ids].reshape(field.shape)

    def apply_vector(self, vec: np.ndarray) -> np.ndarray:
        return np.stack(
            [self.apply(vec[..., k]) for k in range(3)], axis=-1
        )


class ReferenceShallowWaterSolver:
    """The original einsum/per-k shallow-water solver (golden oracle)."""

    def __init__(
        self,
        geom: GridGeometry,
        gravity: float = 1.0,
        omega: float = 1.0,
        dss: ReferenceDSS | None = None,
    ):
        self.geom = geom
        self.gravity = float(gravity)
        self.omega = float(omega)
        self.dss = dss if dss is not None else ReferenceDSS(geom)
        self.diff = geom.basis.diff
        self.jac = np.stack([e.jac for e in geom.elements])
        self.basis_a = np.stack([e.basis_a for e in geom.elements])
        self.basis_b = np.stack([e.basis_b for e in geom.elements])
        self.ginv = np.stack([e.ginv for e in geom.elements])
        self.rhat = np.stack([e.xyz for e in geom.elements])
        self.coriolis = 2.0 * self.omega * self.rhat[..., 2]

    def _d1(self, s: np.ndarray) -> np.ndarray:
        return np.einsum("ij,ejb->eib", self.diff, s)

    def _d2(self, s: np.ndarray) -> np.ndarray:
        return np.einsum("ij,eaj->eai", self.diff, s)

    def gradient(self, s: np.ndarray) -> np.ndarray:
        cov1 = self._d1(s)
        cov2 = self._d2(s)
        c1 = self.ginv[..., 0, 0] * cov1 + self.ginv[..., 0, 1] * cov2
        c2 = self.ginv[..., 1, 0] * cov1 + self.ginv[..., 1, 1] * cov2
        return c1[..., None] * self.basis_a + c2[..., None] * self.basis_b

    def contravariant(self, vec: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        cov1 = np.einsum("...k,...k->...", vec, self.basis_a)
        cov2 = np.einsum("...k,...k->...", vec, self.basis_b)
        c1 = self.ginv[..., 0, 0] * cov1 + self.ginv[..., 0, 1] * cov2
        c2 = self.ginv[..., 1, 0] * cov1 + self.ginv[..., 1, 1] * cov2
        return c1, c2

    def divergence(self, vec: np.ndarray) -> np.ndarray:
        c1, c2 = self.contravariant(vec)
        return (self._d1(self.jac * c1) + self._d2(self.jac * c2)) / self.jac

    def advect_scalar(self, vec: np.ndarray, s: np.ndarray) -> np.ndarray:
        c1, c2 = self.contravariant(vec)
        return c1 * self._d1(s) + c2 * self._d2(s)

    def project_tangent(self, vec: np.ndarray) -> np.ndarray:
        radial = np.einsum("...k,...k->...", vec, self.rhat)
        return vec - radial[..., None] * self.rhat

    def rhs(self, state):
        from .shallow_water import SWState

        v, h = state.v, state.h
        adv = np.stack(
            [self.advect_scalar(v, v[..., k]) for k in range(3)], axis=-1
        )
        cor = self.coriolis[..., None] * np.cross(self.rhat, v)
        dv = -adv - cor - self.gravity * self.gradient(h)
        dv = self.project_tangent(dv)
        dh = -self.divergence(h[..., None] * v)
        return SWState(v=dv, h=dh)

    def _project_state(self, state):
        from .shallow_water import SWState

        v = self.dss.apply_vector(state.v)
        return SWState(v=self.project_tangent(v), h=self.dss.apply(state.h))

    def step(self, state, dt: float):
        from .shallow_water import SWState

        s1 = self._project_state(state.axpy(dt, self.rhs(state)))
        mid = s1.axpy(dt, self.rhs(s1))
        s2 = self._project_state(
            SWState(
                v=0.75 * state.v + 0.25 * mid.v,
                h=0.75 * state.h + 0.25 * mid.h,
            )
        )
        end = s2.axpy(dt, self.rhs(s2))
        return self._project_state(
            SWState(
                v=state.v / 3.0 + (2.0 / 3.0) * end.v,
                h=state.h / 3.0 + (2.0 / 3.0) * end.h,
            )
        )
