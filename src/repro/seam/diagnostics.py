"""Standard error norms and conservation diagnostics.

Williamson et al. (1992) define the normalized l1/l2/linf norms used
by every shallow-water test-case paper since; they are quadrature-
weighted global integrals, so they need the DSS operator's mass:

    l1 = I(|q - q_ref|) / I(|q_ref|)
    l2 = sqrt(I((q - q_ref)^2) / I(q_ref^2))
    linf = max|q - q_ref| / max|q_ref|
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .dss import DSSOperator

__all__ = ["ErrorNorms", "error_norms", "conservation_drift"]


@dataclass(frozen=True)
class ErrorNorms:
    """Normalized Williamson error norms."""

    l1: float
    l2: float
    linf: float

    def as_row(self) -> list[str]:
        return [f"{self.l1:.3e}", f"{self.l2:.3e}", f"{self.linf:.3e}"]


def error_norms(
    dss: DSSOperator, q: np.ndarray, q_ref: np.ndarray
) -> ErrorNorms:
    """Quadrature-weighted l1/l2/linf error norms of ``q`` vs ``q_ref``.

    Args:
        dss: DSS operator of the grid (provides the quadrature mass).
        q: Computed field ``(nelem, np, np)``.
        q_ref: Reference field, same shape.
    """
    if q.shape != q_ref.shape:
        raise ValueError("fields must have the same shape")
    diff = q - q_ref
    denom1 = dss.integrate(np.abs(q_ref))
    denom2 = dss.integrate(q_ref**2)
    denom_inf = float(np.abs(q_ref).max())
    if denom1 == 0 or denom2 == 0 or denom_inf == 0:
        raise ValueError("reference field must be nonzero")
    return ErrorNorms(
        l1=dss.integrate(np.abs(diff)) / denom1,
        l2=float(np.sqrt(dss.integrate(diff**2) / denom2)),
        linf=float(np.abs(diff).max()) / denom_inf,
    )


def conservation_drift(
    dss: DSSOperator, q0: np.ndarray, q1: np.ndarray
) -> float:
    """Relative drift of the global integral between two fields."""
    m0 = dss.integrate(q0)
    if m0 == 0:
        raise ValueError("initial integral is zero")
    return abs(dss.integrate(q1) - m0) / abs(m0)
