"""Direct stiffness summation (DSS): C0 continuity across elements.

SEAM imposes ``C^0`` continuity on element boundaries by summing
J-weighted point values over all elements sharing each boundary point
and redistributing the average (a Galerkin projection onto the
continuous basis).  On a parallel machine the summation *is* the
communication: every boundary point shared by elements on different
processors costs one exchanged value per neighbor, which is exactly the
communication volume the partitioners fight over.

The global point identity map is built from rounded unit-sphere
positions: element-local GLL coordinates are computed from one shared
expression so that shared points agree to machine precision, and a
1e-9 rounding collapses them to a single id (multiplicities are
validated: 1 interior, 2 edge, 3 at cube corners / 4 at regular
corners — tested).

Batched layout: :class:`DSSOperator` works on the stacked
``(nelem, np, np[, comps...])`` representation end to end.  The scatter
runs through a fused C kernel (``repro._kernels.c::dss_apply``) when
available, else a weighted ``np.bincount`` per component — both
accumulate in ascending element-local point order, so results are
bit-identical to each other.  ``apply`` accepts trailing component
axes, projecting e.g. a ``(nelem, np, np, 3)`` velocity in one call.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from .._native import LIB, as_f64p, as_i64p
from ..partition.base import Partition
from ..telemetry import inc, span
from .element import GridGeometry

__all__ = [
    "PointMap",
    "build_point_map",
    "DSSOperator",
    "shared_dss_operator",
    "clear_dss_memo",
    "dss_memo_stats",
    "build_halo_schedule",
    "exchange_schedule",
]

_ROUND_DECIMALS = 9


@dataclass(frozen=True)
class PointMap:
    """Global ids of every element-local GLL point.

    Attributes:
        point_ids: ``(nelem, np, np)`` int array of global point ids.
        npoints: Number of distinct global points.
        multiplicity: ``(npoints,)`` number of element-local copies of
            each global point.
    """

    point_ids: np.ndarray
    npoints: int
    multiplicity: np.ndarray

    def boundary_mask(self) -> np.ndarray:
        """``(nelem, np, np)`` bool mask of shared (multiplicity>1) points."""
        return self.multiplicity[self.point_ids] > 1


def build_point_map(geom: GridGeometry) -> PointMap:
    """Identify shared GLL points across the whole cubed-sphere grid."""
    flat = np.round(geom.xyz.reshape(-1, 3), _ROUND_DECIMALS)
    # Quantize to integers for exact hashing.
    quant = np.round(flat * 10**_ROUND_DECIMALS).astype(np.int64)
    uniq, inverse = np.unique(quant, axis=0, return_inverse=True)
    npts = geom.npts
    point_ids = inverse.reshape(geom.nelem, npts, npts)
    multiplicity = np.bincount(inverse, minlength=len(uniq)).astype(np.int64)
    return PointMap(
        point_ids=point_ids, npoints=int(len(uniq)), multiplicity=multiplicity
    )


class DSSOperator:
    """Weighted direct stiffness summation over a grid.

    The projection of an element-wise field ``q`` is::

        q_c = scatter( gather_sum(J w q) / gather_sum(J w) )

    which leaves element-interior points untouched and replaces shared
    points by their mass-weighted average.

    The operator is batched: index arrays, the flat mass vector, the
    reciprocal global mass, and (when the C kernels are loaded) the
    ctypes pointers are all precomputed once, and :meth:`apply` handles
    any number of trailing component axes in a single fused
    scatter-average-gather pass.

    Args:
        geom: Grid geometry.
        point_map: Global point identification (built on demand).
    """

    def __init__(self, geom: GridGeometry, point_map: PointMap | None = None):
        self.geom = geom
        with span("dss_build", "seam", nelem=int(geom.nelem)):
            self.point_map = (
                point_map if point_map is not None else build_point_map(geom)
            )
            #: (nelem, np, np) J-weighted quadrature mass at each local point.
            self.local_mass = geom.local_mass
            ids = np.ascontiguousarray(self.point_map.point_ids.ravel())
            self._ids = ids
            self._mass_flat = np.ascontiguousarray(self.local_mass.ravel())
            self.global_mass = np.bincount(
                ids, weights=self._mass_flat, minlength=self.point_map.npoints
            )
            self._n_local = int(ids.shape[0])
            # Boundary compaction: interior points (multiplicity 1) are
            # fixed points of the projection up to one rounding, so the
            # average only runs over the element-local copies of shared
            # points (~1/3 of all points at ne=3/np=8).  Copies are
            # stored segment-major — stably sorted by boundary point,
            # which keeps each point's copies in ascending element-local
            # order, i.e. the exact per-point accumulation order of the
            # historical np.add.at over all copies.
            bmask = self.point_map.multiplicity[ids] > 1
            bidx = np.flatnonzero(bmask)
            order = np.argsort(ids[bidx], kind="stable")
            self._bidx = np.ascontiguousarray(bidx[order])
            bpt, counts = np.unique(ids[self._bidx], return_counts=True)
            self._nb = int(self._bidx.shape[0])
            self._nbpoints = int(bpt.shape[0])
            self._bids = np.ascontiguousarray(
                np.repeat(np.arange(self._nbpoints), counts)
            )
            seg = np.zeros(self._nbpoints + 1, dtype=np.int64)
            np.cumsum(counts, out=seg[1:])
            self._seg = seg
            self._bmass = np.ascontiguousarray(self._mass_flat[self._bidx])
            self._inv_bgmass = 1.0 / self.global_mass[bpt]
            # Per-field-shape plan cache: (ncomp, num scratch, raw
            # scratch address), grown on demand.  Raw data addresses
            # skip ctypes pointer construction (~1us per array per
            # call) on the hot path.
            self._shapes: dict[tuple[int, ...], tuple[int, np.ndarray, int]] = {}
            self._addrs: dict[int, tuple[np.ndarray, int]] = {}
            # 7-slot kernel plan (sizes + raw data addresses, see
            # _kernels.c).  The referenced arrays are pinned by the
            # attributes above, so the addresses stay valid.
            self._plan = np.array(
                [
                    self._n_local,
                    self._nb,
                    self._nbpoints,
                    self._bidx.ctypes.data,
                    self._seg.ctypes.data,
                    self._bmass.ctypes.data,
                    self._inv_bgmass.ctypes.data,
                ],
                dtype=np.int64,
            )
            self._plan_a = int(self._plan.ctypes.data)

    def _prepare_shape(self, shape: tuple[int, ...]) -> tuple[int, np.ndarray, int]:
        shape3 = self.point_map.point_ids.shape
        if shape[:3] != shape3:
            raise ValueError(f"field shape {shape} does not start with {shape3}")
        ncomp = 1
        for extent in shape[3:]:
            ncomp *= int(extent)
        num = np.empty(self._nbpoints * ncomp)
        entry = (ncomp, num, int(num.ctypes.data))
        self._shapes[shape] = entry
        return entry

    def _addr(self, arr: np.ndarray) -> int:
        """Raw data address of ``arr``, memoized by object identity.

        The cached strong reference keeps the array (and thus its
        ``id``) alive, so a hit can never alias a different array.
        Solver buffers are reused every step, making this ~8x cheaper
        than ``arr.ctypes.data`` per call.
        """
        key = id(arr)
        entry = self._addrs.get(key)
        if entry is not None and entry[0] is arr:
            return entry[1]
        if len(self._addrs) > 16:
            self._addrs.clear()
        addr = int(arr.ctypes.data)
        self._addrs[key] = (arr, addr)
        return addr

    def apply(self, field: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Project an element-wise field onto the continuous space.

        Args:
            field: ``(nelem, np, np)`` point values, or
                ``(nelem, np, np, comps...)`` with any trailing
                component axes (all components project in one pass).
            out: Optional preallocated output of ``field``'s shape.

        Returns:
            Array of ``field``'s shape, continuous across elements
            (``out`` if given, else newly allocated).
        """
        entry = self._shapes.get(field.shape)
        if entry is None:
            entry = self._prepare_shape(field.shape)
        ncomp, num, num_a = entry
        if out is None:
            out = np.empty(field.shape)
        elif (
            out.shape != field.shape
            or out.dtype != np.float64
            or not out.flags.c_contiguous
        ):
            raise ValueError(
                f"out must be C-contiguous float64 of shape {field.shape}, "
                f"got {out.dtype} {out.shape}"
            )
        if LIB is not None:
            flat = np.ascontiguousarray(field, dtype=np.float64)
            LIB.dss_apply(
                self._plan_a, ncomp, self._addr(flat), num_a, self._addr(out)
            )
            return out
        self._apply_numpy(field, out, ncomp, num)
        return out

    def _apply_numpy(
        self, field: np.ndarray, out: np.ndarray, ncomp: int, num: np.ndarray
    ) -> None:
        """Pure-numpy fallback, bit-identical to the C kernel.

        Same structure: interior points copy through; boundary copies
        scatter via weighted ``np.bincount`` (which accumulates in
        ascending index order, exactly like the kernel's loop and the
        historical ``np.add.at``), scale by the reciprocal boundary
        mass, and gather back.
        """
        np.copyto(out, field)
        if not self._nb:
            return
        if ncomp == 1:
            flat = field.reshape(-1)
            weighted = self._bmass * flat[self._bidx]
            np.multiply(
                np.bincount(self._bids, weights=weighted, minlength=self._nbpoints),
                self._inv_bgmass,
                out=num,
            )
            out.reshape(-1)[self._bidx] = num[self._bids]
            return
        flat = field.reshape(self._n_local, ncomp)
        weighted = self._bmass[:, None] * flat[self._bidx]
        num2 = num.reshape(self._nbpoints, ncomp)
        for c in range(ncomp):
            num2[:, c] = np.bincount(
                self._bids, weights=weighted[:, c], minlength=self._nbpoints
            )
        np.multiply(num2, self._inv_bgmass[:, None], out=num2)
        out.reshape(self._n_local, ncomp)[self._bidx] = num2[self._bids]

    def is_continuous(self, field: np.ndarray, atol: float = 1e-12) -> bool:
        """Whether all copies of every shared point agree within ``atol``."""
        ids = self._ids
        vals = field.ravel()
        mx = np.full(self.point_map.npoints, -np.inf)
        mn = np.full(self.point_map.npoints, np.inf)
        np.maximum.at(mx, ids, vals)
        np.minimum.at(mn, ids, vals)
        return bool(np.all(mx - mn <= atol))

    def integrate(self, field: np.ndarray) -> float:
        """Global quadrature integral of an element-wise field."""
        return float((self.local_mass * field).sum())


class _DSSMemo:
    """Per-geometry DSS operator memo (mirrors the pipeline stage memo).

    ``ShallowWaterSolver`` and ``TransportSolver`` each build a
    ``DSSOperator`` (and thus a point map) when none is passed; solvers
    at the same resolution now share one operator instead.  Keyed by
    ``(ne, npts)`` with an identity check on the geometry object, so a
    rebuilt geometry (e.g. after ``clear_geometry_cache``) never pairs
    with a stale operator.
    """

    def __init__(self, maxsize: int = 8) -> None:
        self.maxsize = maxsize
        self._entries: OrderedDict[tuple[int, int], DSSOperator] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get_or_build(self, geom: GridGeometry) -> DSSOperator:
        key = (geom.mesh.ne, geom.npts)
        op = self._entries.get(key)
        if op is not None and op.geom is geom:
            self._entries.move_to_end(key)
            self.hits += 1
            inc("dss_memo_total", outcome="hit")
            return op
        self.misses += 1
        inc("dss_memo_total", outcome="miss")
        op = DSSOperator(geom)
        self._entries[key] = op
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        return op

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._entries),
        }

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0


_DSS_MEMO = _DSSMemo(maxsize=8)


def shared_dss_operator(geom: GridGeometry) -> DSSOperator:
    """A :class:`DSSOperator` for ``geom``, shared across solvers.

    Returns the memoized operator when ``geom`` is the same object as
    the one the cached operator was built for; otherwise builds (and
    memoizes) a fresh one.
    """
    return _DSS_MEMO.get_or_build(geom)


def dss_memo_stats() -> dict[str, int]:
    """Hit/miss counts of the shared DSS operator memo."""
    return _DSS_MEMO.stats()


def clear_dss_memo() -> None:
    """Drop all memoized DSS operators and reset the counters."""
    _DSS_MEMO.clear()


def _owner_groups(
    point_map: PointMap, partition: Partition
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-point owner groups as flat run-encoded arrays.

    Returns ``(prt, starts, counts)``: ``prt`` lists the owning parts of
    every global point, grouped by point in ascending (point, part)
    order; group ``g`` occupies ``prt[starts[g] : starts[g] + counts[g]]``.
    """
    nelem, npts, _ = point_map.point_ids.shape
    if partition.nvertices != nelem:
        raise ValueError("partition size does not match grid")
    ids = point_map.point_ids.reshape(nelem, -1)
    owner = np.repeat(partition.assignment, ids.shape[1])
    # Unique (point, part) pairs: a processor contributes one partial
    # sum per shared point regardless of how many local copies it has.
    # (sort + run-mask, which benchmarks far faster than np.unique here)
    key = np.sort(ids.ravel() * np.int64(partition.nparts) + owner)
    uniq = key[np.r_[True, key[1:] != key[:-1]]]
    pts = uniq // partition.nparts
    prt = uniq % partition.nparts
    starts = np.flatnonzero(np.r_[True, pts[1:] != pts[:-1]])
    counts = np.diff(np.r_[starts, len(pts)])
    return prt, starts, counts


def ordered_pair_expansion(
    prt: np.ndarray, starts: np.ndarray, counts: np.ndarray, nparts: int
) -> np.ndarray:
    """All ordered owner pairs ``(a, b)``, ``a != b``, of shared groups.

    Groups are expanded size-class by size-class (owner counts are
    bounded by the point multiplicity, ≤4 on a cubed sphere, so this is
    a handful of vectorized passes).  Returns encoded ``a * nparts + b``
    keys, one entry per (point, ordered pair).
    """
    pair_keys: list[np.ndarray] = []
    for size in np.unique(counts).tolist():
        if size < 2:
            continue
        group_starts = starts[counts == size]
        members = prt[group_starts[:, None] + np.arange(size)]
        a = np.repeat(members, size, axis=1)
        b = np.tile(members, (1, size))
        offdiag = a != b
        pair_keys.append(a[offdiag] * np.int64(nparts) + b[offdiag])
    if not pair_keys:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(pair_keys)


def build_halo_schedule(
    point_map: PointMap, partition: Partition
) -> dict[tuple[int, int], int]:
    """Boundary-point exchange counts implied by a partition.

    For every global point shared between processors, each owning
    processor must receive the partial sums of every *other* owning
    processor.  The returned schedule counts, for each ordered pair
    ``(src, dst)``, how many point values ``src`` sends to ``dst`` per
    DSS application — the exact communication the performance model
    charges for.

    The whole construction is vectorized: one ``np.unique`` collapses
    element-local copies to (point, part) pairs, run-length grouping
    finds each point's owner set, and the ordered-pair expansion plus a
    final counting ``np.unique`` replace the historical quadratic
    Python scan (identical counts; tested against goldens).

    Returns:
        Dict ``(src, dst) -> number of point values``.
    """
    nparts = partition.nparts
    with span("halo", "seam", nparts=int(nparts)):
        schedule = _halo_schedule(point_map, partition, nparts)
    inc("halo_schedules_built")
    inc("halo_schedule_pairs", len(schedule))
    return schedule


def _halo_schedule(
    point_map: PointMap, partition: Partition, nparts: int
) -> dict[tuple[int, int], int]:
    prt, starts, counts = _owner_groups(point_map, partition)
    pair_keys = ordered_pair_expansion(prt, starts, counts, nparts)
    if not len(pair_keys):
        return {}
    pair_keys.sort()
    keep = np.flatnonzero(np.r_[True, pair_keys[1:] != pair_keys[:-1]])
    tallies = np.diff(np.r_[keep, len(pair_keys)])
    pairs = pair_keys[keep]
    return dict(
        zip(
            zip((pairs // nparts).tolist(), (pairs % nparts).tolist()),
            tallies.tolist(),
        )
    )


#: Historical name, kept for callers of the pre-kernelized API.
exchange_schedule = build_halo_schedule
