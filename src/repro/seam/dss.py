"""Direct stiffness summation (DSS): C0 continuity across elements.

SEAM imposes ``C^0`` continuity on element boundaries by summing
J-weighted point values over all elements sharing each boundary point
and redistributing the average (a Galerkin projection onto the
continuous basis).  On a parallel machine the summation *is* the
communication: every boundary point shared by elements on different
processors costs one exchanged value per neighbor, which is exactly the
communication volume the partitioners fight over.

The global point identity map is built from rounded unit-sphere
positions: element-local GLL coordinates are computed from one shared
expression so that shared points agree to machine precision, and a
1e-9 rounding collapses them to a single id (multiplicities are
validated: 1 interior, 2 edge, 3 at cube corners / 4 at regular
corners — tested).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..partition.base import Partition
from ..telemetry import inc, span
from .element import GridGeometry

__all__ = [
    "PointMap",
    "build_point_map",
    "DSSOperator",
    "build_halo_schedule",
    "exchange_schedule",
]

_ROUND_DECIMALS = 9


@dataclass(frozen=True)
class PointMap:
    """Global ids of every element-local GLL point.

    Attributes:
        point_ids: ``(nelem, np, np)`` int array of global point ids.
        npoints: Number of distinct global points.
        multiplicity: ``(npoints,)`` number of element-local copies of
            each global point.
    """

    point_ids: np.ndarray
    npoints: int
    multiplicity: np.ndarray

    def boundary_mask(self) -> np.ndarray:
        """``(nelem, np, np)`` bool mask of shared (multiplicity>1) points."""
        return self.multiplicity[self.point_ids] > 1


def build_point_map(geom: GridGeometry) -> PointMap:
    """Identify shared GLL points across the whole cubed-sphere grid."""
    coords = np.stack([e.xyz for e in geom.elements])  # (nelem, np, np, 3)
    flat = np.round(coords.reshape(-1, 3), _ROUND_DECIMALS)
    # Quantize to integers for exact hashing.
    quant = np.round(flat * 10**_ROUND_DECIMALS).astype(np.int64)
    uniq, inverse = np.unique(quant, axis=0, return_inverse=True)
    npts = geom.npts
    point_ids = inverse.reshape(len(geom.elements), npts, npts)
    multiplicity = np.bincount(inverse, minlength=len(uniq)).astype(np.int64)
    return PointMap(
        point_ids=point_ids, npoints=int(len(uniq)), multiplicity=multiplicity
    )


class DSSOperator:
    """Weighted direct stiffness summation over a grid.

    The projection of an element-wise field ``q`` is::

        q_c = scatter( gather_sum(J w q) / gather_sum(J w) )

    which leaves element-interior points untouched and replaces shared
    points by their mass-weighted average.

    Args:
        geom: Grid geometry.
        point_map: Global point identification (built on demand).
    """

    def __init__(self, geom: GridGeometry, point_map: PointMap | None = None):
        self.geom = geom
        self.point_map = point_map if point_map is not None else build_point_map(geom)
        basis = geom.basis
        w2 = basis.weights[:, None] * basis.weights[None, :]
        #: (nelem, np, np) J-weighted quadrature mass at each local point.
        self.local_mass = np.stack([e.jac * w2 for e in geom.elements])
        self.global_mass = np.zeros(self.point_map.npoints)
        np.add.at(
            self.global_mass,
            self.point_map.point_ids.ravel(),
            self.local_mass.ravel(),
        )

    def apply(self, field: np.ndarray) -> np.ndarray:
        """Project an element-wise field onto the continuous space.

        Args:
            field: ``(nelem, np, np)`` point values.

        Returns:
            New array of the same shape, continuous across elements.
        """
        ids = self.point_map.point_ids.ravel()
        num = np.zeros(self.point_map.npoints)
        np.add.at(num, ids, (self.local_mass * field).ravel())
        averaged = num / self.global_mass
        return averaged[ids].reshape(field.shape)

    def is_continuous(self, field: np.ndarray, atol: float = 1e-12) -> bool:
        """Whether all copies of every shared point agree within ``atol``."""
        ids = self.point_map.point_ids.ravel()
        vals = field.ravel()
        mx = np.full(self.point_map.npoints, -np.inf)
        mn = np.full(self.point_map.npoints, np.inf)
        np.maximum.at(mx, ids, vals)
        np.minimum.at(mn, ids, vals)
        return bool(np.all(mx - mn <= atol))

    def integrate(self, field: np.ndarray) -> float:
        """Global quadrature integral of an element-wise field."""
        return float((self.local_mass * field).sum())


def _owner_groups(
    point_map: PointMap, partition: Partition
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-point owner groups as flat run-encoded arrays.

    Returns ``(prt, starts, counts)``: ``prt`` lists the owning parts of
    every global point, grouped by point in ascending (point, part)
    order; group ``g`` occupies ``prt[starts[g] : starts[g] + counts[g]]``.
    """
    nelem, npts, _ = point_map.point_ids.shape
    if partition.nvertices != nelem:
        raise ValueError("partition size does not match grid")
    ids = point_map.point_ids.reshape(nelem, -1)
    owner = np.repeat(partition.assignment, ids.shape[1])
    # Unique (point, part) pairs: a processor contributes one partial
    # sum per shared point regardless of how many local copies it has.
    # (sort + run-mask, which benchmarks far faster than np.unique here)
    key = np.sort(ids.ravel() * np.int64(partition.nparts) + owner)
    uniq = key[np.r_[True, key[1:] != key[:-1]]]
    pts = uniq // partition.nparts
    prt = uniq % partition.nparts
    starts = np.flatnonzero(np.r_[True, pts[1:] != pts[:-1]])
    counts = np.diff(np.r_[starts, len(pts)])
    return prt, starts, counts


def ordered_pair_expansion(
    prt: np.ndarray, starts: np.ndarray, counts: np.ndarray, nparts: int
) -> np.ndarray:
    """All ordered owner pairs ``(a, b)``, ``a != b``, of shared groups.

    Groups are expanded size-class by size-class (owner counts are
    bounded by the point multiplicity, ≤4 on a cubed sphere, so this is
    a handful of vectorized passes).  Returns encoded ``a * nparts + b``
    keys, one entry per (point, ordered pair).
    """
    pair_keys: list[np.ndarray] = []
    for size in np.unique(counts).tolist():
        if size < 2:
            continue
        group_starts = starts[counts == size]
        members = prt[group_starts[:, None] + np.arange(size)]
        a = np.repeat(members, size, axis=1)
        b = np.tile(members, (1, size))
        offdiag = a != b
        pair_keys.append(a[offdiag] * np.int64(nparts) + b[offdiag])
    if not pair_keys:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(pair_keys)


def build_halo_schedule(
    point_map: PointMap, partition: Partition
) -> dict[tuple[int, int], int]:
    """Boundary-point exchange counts implied by a partition.

    For every global point shared between processors, each owning
    processor must receive the partial sums of every *other* owning
    processor.  The returned schedule counts, for each ordered pair
    ``(src, dst)``, how many point values ``src`` sends to ``dst`` per
    DSS application — the exact communication the performance model
    charges for.

    The whole construction is vectorized: one ``np.unique`` collapses
    element-local copies to (point, part) pairs, run-length grouping
    finds each point's owner set, and the ordered-pair expansion plus a
    final counting ``np.unique`` replace the historical quadratic
    Python scan (identical counts; tested against goldens).

    Returns:
        Dict ``(src, dst) -> number of point values``.
    """
    nparts = partition.nparts
    with span("halo", "seam", nparts=int(nparts)):
        schedule = _halo_schedule(point_map, partition, nparts)
    inc("halo_schedules_built")
    inc("halo_schedule_pairs", len(schedule))
    return schedule


def _halo_schedule(
    point_map: PointMap, partition: Partition, nparts: int
) -> dict[tuple[int, int], int]:
    prt, starts, counts = _owner_groups(point_map, partition)
    pair_keys = ordered_pair_expansion(prt, starts, counts, nparts)
    if not len(pair_keys):
        return {}
    pair_keys.sort()
    keep = np.flatnonzero(np.r_[True, pair_keys[1:] != pair_keys[:-1]])
    tallies = np.diff(np.r_[keep, len(pair_keys)])
    pairs = pair_keys[keep]
    return dict(
        zip(
            zip((pairs // nparts).tolist(), (pairs % nparts).tolist()),
            tallies.tolist(),
        )
    )


#: Historical name, kept for callers of the pre-kernelized API.
exchange_schedule = build_halo_schedule
