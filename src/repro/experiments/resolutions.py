"""Table 1: the SEAM test resolutions of the paper.

Four cubed-sphere resolutions exercise each curve family:

====  ===  =============  ========================
K     Ne   curve          levels (Hilbert, m-Peano)
====  ===  =============  ========================
384   8    Hilbert        (3, 0)
486   9    m-Peano        (0, 2)
1536  16   Hilbert        (4, 0)
1944  18   Hilbert-Peano  (1, 2)
====  ===  =============  ========================

Processor counts are chosen "so that an equal number of spectral
elements are allocated to each processor" — i.e. the divisors of ``K``
— capped by the machine's 768-processor job limit.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sfc.factorization import default_schedule, factorize_2_3

__all__ = ["Resolution", "PAPER_RESOLUTIONS", "resolution_by_k", "admissible_nprocs"]


@dataclass(frozen=True)
class Resolution:
    """One SEAM test resolution (a row of the paper's Table 1).

    Attributes:
        ne: Elements per cube-face edge.
        max_procs: Machine job limit applied to the processor range.
    """

    ne: int
    max_procs: int = 768

    @property
    def k(self) -> int:
        """Total spectral elements ``K = 6 * Ne^2``."""
        return 6 * self.ne * self.ne

    @property
    def hilbert_level(self) -> int:
        """Hilbert recursion level ``n`` with ``Ne = 2^n * 3^m``."""
        return factorize_2_3(self.ne)[0]

    @property
    def peano_level(self) -> int:
        """m-Peano recursion level ``m``."""
        return factorize_2_3(self.ne)[1]

    @property
    def curve_family(self) -> str:
        """Which curve family partitions this resolution."""
        n, m = factorize_2_3(self.ne)
        if m == 0:
            return "hilbert"
        if n == 0:
            return "m-peano"
        return "hilbert-peano"

    @property
    def schedule(self) -> str:
        """Default face-local refinement schedule."""
        return default_schedule(self.ne)

    def nprocs(self) -> list[int]:
        """Admissible processor counts: divisors of ``K`` up to the cap."""
        return admissible_nprocs(self.k, self.max_procs)


def admissible_nprocs(k: int, max_procs: int = 768) -> list[int]:
    """Divisors of ``k`` not exceeding ``max_procs``, ascending."""
    return [d for d in range(1, min(k, max_procs) + 1) if k % d == 0]


#: The paper's four test resolutions, in Table-1 order.
PAPER_RESOLUTIONS: tuple[Resolution, ...] = (
    Resolution(ne=8),
    Resolution(ne=9),
    Resolution(ne=16),
    Resolution(ne=18),
)


def resolution_by_k(k: int) -> Resolution:
    """Look up a paper resolution by its element count ``K``."""
    for res in PAPER_RESOLUTIONS:
        if res.k == k:
            return res
    raise KeyError(f"K={k} is not one of the paper's resolutions")
