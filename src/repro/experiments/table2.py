"""Table 2: partition statistics for K=1536 on 768 processors.

Columns follow the paper exactly: computational load balance
``LB(nelemd)``, communication load balance ``LB(spcv)``, total
communication volume in Mbytes, edgecut, and the (simulated) execution
time per timestep in microseconds, for SFC vs METIS KWAY vs TV vs RB.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.spec import MachineSpec, P690_CLUSTER
from ..partition import registry
from ..seam.cost import DEFAULT_COST_MODEL, SEAMCostModel
from .figures import run_method
from .report import format_table

__all__ = ["Table2Row", "table2", "render_table2", "TABLE2_METHODS"]

#: Paper column order.
TABLE2_METHODS = ("sfc", "kway", "tv", "rb")


@dataclass(frozen=True)
class Table2Row:
    """One method's row of Table 2."""

    method: str
    lb_nelemd: float
    lb_spcv: float
    tcv_mbytes: float
    edgecut: int
    time_us: float


def table2(
    ne: int = 16,
    nproc: int = 768,
    machine: MachineSpec = P690_CLUSTER,
    cost: SEAMCostModel = DEFAULT_COST_MODEL,
    seed: int = 0,
    methods: tuple[str, ...] = TABLE2_METHODS,
) -> list[Table2Row]:
    """Compute Table 2 (defaults: the paper's K=1536 on 768 procs).

    Methods resolve through the partitioner registry, so unknown names
    fail up front (with a did-you-mean) rather than mid-sweep.
    """
    for method in methods:
        registry.get(method).validate(ne=ne, nparts=nproc)
    rows = []
    for method in methods:
        r = run_method(ne, nproc, method, machine=machine, cost=cost, seed=seed)
        rows.append(
            Table2Row(
                method=method.upper() if method != "sfc" else "SFC",
                lb_nelemd=r.quality.lb_nelemd,
                lb_spcv=r.quality.lb_spcv,
                tcv_mbytes=r.quality.total_volume_mbytes(cost.bytes_per_point()),
                edgecut=r.quality.edgecut,
                time_us=r.step_us,
            )
        )
    return rows


def render_table2(rows: list[Table2Row], k: int = 1536, nproc: int = 768) -> str:
    """Render in the paper's layout (metrics as rows, methods as columns)."""
    headers = ["Metric", *(r.method for r in rows)]
    body = [
        ["LB(nelemd)", *(f"{r.lb_nelemd:.3f}" for r in rows)],
        ["LB(spcv)", *(f"{r.lb_spcv:.3f}" for r in rows)],
        ["TCV (Mbytes)", *(f"{r.tcv_mbytes:.2f}" for r in rows)],
        ["edgecut", *(r.edgecut for r in rows)],
        ["Time (usec)", *(f"{r.time_us:.0f}" for r in rows)],
    ]
    return format_table(
        headers, body, title=f"Partition statistics for K={k} on {nproc} processors"
    )
