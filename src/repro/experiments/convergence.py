"""Numerical convergence study of the spectral-element substrate.

Not a paper table — a reproduction *credibility* check: the SE solver
underlying the cost model must converge spectrally in the polynomial
order and algebraically in the element count, or its flop/exchange
structure would not represent SEAM.  Produces the error-vs-resolution
tables used by ``benchmarks/bench_convergence.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..seam.diagnostics import ErrorNorms, error_norms
from ..seam.element import build_geometry
from ..seam.transport import advect, cosine_bell

__all__ = ["ConvergencePoint", "transport_convergence"]

_CENTER = np.array([1.0, 0.0, 0.0])
_AXIS = np.array([0.0, 0.0, 1.0])


@dataclass(frozen=True)
class ConvergencePoint:
    """Error norms of one (ne, np) transport run."""

    ne: int
    npts: int
    norms: ErrorNorms

    @property
    def dof(self) -> int:
        """Degrees of freedom (GLL points, shared ones counted once)."""
        # 6*ne^2 elements, np^2 points each, minus shared duplicates:
        # exact unique count = 6*(ne*(np-1))^2 + 2.
        return 6 * (self.ne * (self.npts - 1)) ** 2 + 2


def transport_convergence(
    nes: tuple[int, ...] = (2, 3, 4),
    npts_list: tuple[int, ...] = (4, 6, 8),
    angle: float = 0.5,
    radius: float = 0.8,
    cfl: float = 0.4,
) -> list[ConvergencePoint]:
    """Advect a wide cosine bell and measure error at each resolution.

    Args:
        nes: Element counts per face edge to sweep.
        npts_list: GLL orders to sweep.
        angle: Rotation angle (time at unit angular speed).
        radius: Bell radius (wide enough to be resolvable at the
            coarsest resolution, so the spectral decay is visible).
        cfl: CFL number.
    """
    points = []
    for ne in nes:
        for npts in npts_list:
            geom = build_geometry(ne, npts)
            q0 = cosine_bell(geom.xyz, _CENTER, radius=radius)
            q, departed = advect(geom, _AXIS, angle, q0, cfl=cfl)
            ref = cosine_bell(departed, _CENTER, radius=radius)
            from ..seam.dss import shared_dss_operator

            dss = shared_dss_operator(geom)
            points.append(
                ConvergencePoint(
                    ne=ne, npts=npts, norms=error_norms(dss, q, ref)
                )
            )
    return points
