"""Ablation studies beyond the paper's tables and figures.

Three studies answer questions the paper raises but leaves open:

* :func:`refinement_order_study` — "The impact that refinement order
  has on the Hilbert-Peano curve should also be explored": sweep every
  distinct Hilbert/Peano nesting order for a resolution and compare
  curve locality, partition quality and simulated performance;
* :func:`hilbert_peano_gap_study` — why is the Hilbert-Peano win at
  K=1944 (7% at 4 elements/proc) smaller than the pure-Hilbert win at
  K=384 (13% at the same 4 elements/proc)?  Compares both at equal
  elements-per-processor;
* :func:`network_ablation` — how much of the SFC advantage is SMP-node
  rank locality?  Re-times every method on a counterfactual machine
  with a flat (single-tier) network.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cubesphere.curve import cubed_sphere_curve
from ..machine.spec import FLAT_NETWORK_MACHINE, MachineSpec, P690_CLUSTER
from ..sfc.analysis import CurveLocality, analyze_curve
from ..sfc.factorization import all_schedules
from ..sfc.generator import generate_curve
from .figures import MethodResult, best_metis, run_method, speedup_sweep

__all__ = [
    "ScheduleResult",
    "refinement_order_study",
    "hilbert_peano_gap_study",
    "network_ablation",
]


@dataclass(frozen=True)
class ScheduleResult:
    """One refinement schedule's locality and performance."""

    schedule: str
    locality: CurveLocality
    sfc_result: MethodResult


def refinement_order_study(
    ne: int = 18, nproc: int = 486, nsegments: int | None = None
) -> list[ScheduleResult]:
    """Evaluate every Hilbert/Peano nesting order at a resolution.

    Args:
        ne: Face edge size (default 18, the paper's Hilbert-Peano
            case; schedules are permutations of one H and two P).
        nproc: Processor count for the partition-quality comparison.
        nsegments: Segment count for the locality metrics (defaults to
            elements per face / segments such that segments match the
            per-face share of processors).

    Returns:
        One :class:`ScheduleResult` per distinct schedule.
    """
    if nsegments is None:
        nsegments = max(1, nproc // 6)
    out = []
    for schedule in all_schedules(ne):
        curve = generate_curve(schedule=schedule)
        locality = analyze_curve(curve, nsegments=min(nsegments, len(curve)))
        result = run_method(ne, nproc, "sfc", schedule=schedule)
        out.append(
            ScheduleResult(schedule=schedule, locality=locality, sfc_result=result)
        )
    return out


@dataclass(frozen=True)
class GapPoint:
    """SFC-vs-best-METIS comparison at fixed elements per processor."""

    ne: int
    k: int
    nproc: int
    elems_per_proc: int
    curve_family: str
    sfc_speedup: float
    best_metis_speedup: float

    @property
    def advantage(self) -> float:
        """Fractional SFC advantage over the best METIS partition."""
        return self.sfc_speedup / self.best_metis_speedup - 1.0


def hilbert_peano_gap_study(elems_per_proc: int = 4) -> list[GapPoint]:
    """Compare the SFC advantage across curve families at equal load.

    The paper compares K=384 on 96 procs (13% win, Hilbert) with
    K=1944 on 486 procs (7% win, Hilbert-Peano), both at 4 elements
    per processor.
    """
    from ..sfc.factorization import factorize_2_3

    points = []
    for ne in (8, 9, 16, 18):
        k = 6 * ne * ne
        if k % elems_per_proc:
            continue
        nproc = k // elems_per_proc
        if nproc > P690_CLUSTER.max_procs:
            continue
        results = speedup_sweep(ne, nprocs=[nproc])
        sfc = results["sfc"][0]
        metis = best_metis(results, 0)
        n, m = factorize_2_3(ne)
        family = "hilbert" if m == 0 else ("m-peano" if n == 0 else "hilbert-peano")
        points.append(
            GapPoint(
                ne=ne,
                k=k,
                nproc=nproc,
                elems_per_proc=elems_per_proc,
                curve_family=family,
                sfc_speedup=sfc.speedup,
                best_metis_speedup=metis.speedup,
            )
        )
    return points


def network_ablation(
    ne: int = 8,
    nproc: int = 384,
    methods: tuple[str, ...] = ("sfc", "rb", "kway", "tv"),
) -> dict[str, dict[str, MethodResult]]:
    """Time every method on the P690 and on a flat-network machine.

    Returns:
        ``{method: {"p690": result, "flat": result}}``.
    """
    out: dict[str, dict[str, MethodResult]] = {}
    for method in methods:
        out[method] = {
            "p690": run_method(ne, nproc, method, machine=P690_CLUSTER),
            "flat": run_method(ne, nproc, method, machine=FLAT_NETWORK_MACHINE),
        }
    return out
