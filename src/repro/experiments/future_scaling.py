"""The paper's future work: scaling beyond 768 processors.

"Experimental results on systems with greater than 768 processors
should be obtained in order to investigate the scaling properties of
the SFC approach."  The P690's job limit blocked Dennis; the simulator
has no such limit.  This study scales the machine (same node
architecture, more nodes) and runs the largest climate resolutions the
paper names — up to K=3456 (Ne=24, the top of its "typical climate
resolutions" range) — at O(1) elements per processor.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..machine.spec import P690_CLUSTER, MachineSpec
from .figures import best_metis, speedup_sweep
from .resolutions import admissible_nprocs

__all__ = ["FutureScalingPoint", "scaled_p690", "future_scaling_study"]


def scaled_p690(max_procs: int) -> MachineSpec:
    """A P690-like cluster with enough nodes for ``max_procs`` ranks."""
    return replace(
        P690_CLUSTER,
        max_procs=max_procs,
        name=f"hypothetical P690-class cluster, {max_procs} procs",
    )


@dataclass(frozen=True)
class FutureScalingPoint:
    """SFC vs best METIS at one (K, Nproc) beyond the original limit."""

    ne: int
    k: int
    nproc: int
    elems_per_proc: int
    sfc_speedup: float
    sfc_gflops: float
    best_metis_speedup: float

    @property
    def advantage(self) -> float:
        return self.sfc_speedup / self.best_metis_speedup - 1.0

    @property
    def parallel_efficiency(self) -> float:
        return self.sfc_speedup / self.nproc


def future_scaling_study(
    ne: int = 24,
    max_procs: int = 3456,
    min_elems_per_proc: int = 1,
) -> list[FutureScalingPoint]:
    """Sweep K=6*ne^2 beyond 768 processors on a scaled machine.

    Args:
        ne: Resolution (default 24: K=3456, the paper's largest named
            climate resolution).
        max_procs: Hypothetical machine size.
        min_elems_per_proc: Stop when each processor holds fewer
            elements than this.
    """
    k = 6 * ne * ne
    machine = scaled_p690(max_procs)
    nprocs = [
        n
        for n in admissible_nprocs(k, max_procs)
        if n > 128 and k // n >= min_elems_per_proc
    ]
    results = speedup_sweep(ne, nprocs=nprocs, machine=machine)
    points = []
    for i, n in enumerate(nprocs):
        sfc = results["sfc"][i]
        metis = best_metis(results, i)
        points.append(
            FutureScalingPoint(
                ne=ne,
                k=k,
                nproc=n,
                elems_per_proc=k // n,
                sfc_speedup=sfc.speedup,
                sfc_gflops=sfc.gflops,
                best_metis_speedup=metis.speedup,
            )
        )
    return points
