"""Performance sweeps reproducing the paper's Figures 7-10.

Figures 7/8 plot the speedup of SEAM execution time versus a single
processor for K=384 (Hilbert) and K=486 (m-Peano); Figures 9/10 plot
the corresponding total sustained Gflop/s for K=384 and K=1536.  Each
sweep partitions the cubed-sphere with every requested method at every
admissible processor count and pushes the result through the machine
model.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..cubesphere.mesh import cubed_sphere_mesh
from ..graphs.csr import CSRGraph, mesh_graph
from ..machine.perf import PerformanceModel, StepTiming
from ..machine.spec import MachineSpec, P690_CLUSTER
from ..metis.api import part_graph
from ..partition.base import Partition
from ..partition.block import block_partition, random_partition
from ..partition.geometric import rcb_partition
from ..partition.metrics import PartitionQuality, evaluate_partition
from ..partition.sfc import sfc_partition
from ..seam.cost import DEFAULT_COST_MODEL, SEAMCostModel
from .resolutions import admissible_nprocs

__all__ = [
    "MethodResult",
    "make_partition",
    "run_method",
    "speedup_sweep",
    "best_metis",
    "ALL_METHODS",
    "METIS_BASELINES",
]

METIS_BASELINES = ("rb", "kway", "tv")
ALL_METHODS = ("sfc", *METIS_BASELINES, "rcb", "block", "random")


@lru_cache(maxsize=16)
def _graph_for(ne: int, npts: int) -> CSRGraph:
    mesh = cubed_sphere_mesh(ne)
    return mesh_graph(mesh, edge_weight=npts, corner_weight=1)


@dataclass(frozen=True)
class MethodResult:
    """One (method, nproc) point of a sweep.

    Attributes:
        method: Partitioner label.
        nproc: Processor count.
        quality: Partition metrics (Table-2 quantities).
        timing: Machine-model timing.
        speedup: Time(1 proc) / time(nproc).
    """

    method: str
    nproc: int
    quality: PartitionQuality
    timing: StepTiming
    speedup: float

    @property
    def gflops(self) -> float:
        return self.timing.sustained_flops / 1.0e9

    @property
    def step_us(self) -> float:
        return self.timing.step_s * 1.0e6


def make_partition(
    ne: int, nproc: int, method: str, seed: int = 0, schedule: str | None = None
) -> Partition:
    """Partition the cubed-sphere at ``ne`` with the named method."""
    graph = _graph_for(ne, DEFAULT_COST_MODEL.npts)
    if method == "sfc":
        return sfc_partition(ne, nproc, schedule=schedule)
    if method in METIS_BASELINES:
        return part_graph(graph, nproc, method, seed=seed)
    if method == "rcb":
        return rcb_partition(cubed_sphere_mesh(ne).centers_xyz, nproc)
    if method == "block":
        return block_partition(graph.nvertices, nproc)
    if method == "random":
        return random_partition(graph.nvertices, nproc, seed=seed)
    raise ValueError(f"unknown method {method!r}; choose from {ALL_METHODS}")


def run_method(
    ne: int,
    nproc: int,
    method: str,
    machine: MachineSpec = P690_CLUSTER,
    cost: SEAMCostModel = DEFAULT_COST_MODEL,
    seed: int = 0,
    schedule: str | None = None,
    partition: Partition | None = None,
) -> MethodResult:
    """Partition, evaluate and time one method at one processor count.

    Args:
        partition: Optional precomputed partition (e.g. from the
            service engine); skips the partitioning step.
    """
    graph = _graph_for(ne, cost.npts)
    if partition is None:
        partition = make_partition(ne, nproc, method, seed=seed, schedule=schedule)
    quality = evaluate_partition(graph, partition)
    model = PerformanceModel(machine, cost)
    timing = model.step_timing(graph, partition)
    speedup = model.serial_step_time(graph.nvertices) / timing.step_s
    return MethodResult(
        method=method, nproc=nproc, quality=quality, timing=timing, speedup=speedup
    )


def speedup_sweep(
    ne: int,
    methods: tuple[str, ...] = ("sfc", *METIS_BASELINES),
    nprocs: list[int] | None = None,
    machine: MachineSpec = P690_CLUSTER,
    cost: SEAMCostModel = DEFAULT_COST_MODEL,
    seed: int = 0,
    engine=None,
) -> dict[str, list[MethodResult]]:
    """Full sweep over processor counts for several methods.

    Args:
        ne: Resolution (elements per face edge).
        methods: Partitioners to compare.
        nprocs: Processor counts; defaults to the divisors of
            ``K = 6 ne^2`` up to the machine's job limit.
        machine: Machine model.
        cost: Cost model.
        seed: Partitioner seed.
        engine: Optional :class:`~repro.service.engine.PartitionEngine`;
            when given, all sweep points are served as one batch
            (deduplicated, cached, computed in parallel) instead of
            partitioning serially in-process.  Results are bit-identical
            either way.

    Returns:
        ``{method: [MethodResult per nproc]}``.
    """
    k = 6 * ne * ne
    if nprocs is None:
        nprocs = admissible_nprocs(k, machine.max_procs)
    if engine is None:
        return {
            method: [
                run_method(ne, nproc, method, machine=machine, cost=cost, seed=seed)
                for nproc in nprocs
            ]
            for method in methods
        }
    from ..service.requests import PartitionRequest

    requests = [
        PartitionRequest(ne=ne, nparts=nproc, method=method, seed=seed)
        for method in methods
        for nproc in nprocs
    ]
    responses = iter(engine.run(requests))
    return {
        method: [
            run_method(
                ne,
                nproc,
                method,
                machine=machine,
                cost=cost,
                seed=seed,
                partition=next(responses).to_partition(),
            )
            for nproc in nprocs
        ]
        for method in methods
    }


def best_metis(results: dict[str, list[MethodResult]], index: int) -> MethodResult:
    """The best METIS result (highest speedup) at one sweep index.

    Mirrors the paper's figures, which plot "SFC vs *best* METIS
    partitioning".
    """
    candidates = [
        results[m][index] for m in METIS_BASELINES if m in results
    ]
    if not candidates:
        raise ValueError("no METIS methods present in the sweep")
    return max(candidates, key=lambda r: r.speedup)
