"""Performance sweeps reproducing the paper's Figures 7-10.

Figures 7/8 plot the speedup of SEAM execution time versus a single
processor for K=384 (Hilbert) and K=486 (m-Peano); Figures 9/10 plot
the corresponding total sustained Gflop/s for K=384 and K=1536.  Each
sweep partitions the cubed-sphere with every requested method at every
admissible processor count and pushes the result through the machine
model.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from ..graphs.csr import CSRGraph
from ..machine.perf import PerformanceModel, StepTiming
from ..machine.spec import MachineSpec, P690_CLUSTER
from ..partition import registry
from ..partition.base import Partition
from ..partition.metrics import PartitionQuality
from ..partition.pipeline import evaluate_stage, graph_stage, partition_stage
from ..seam.cost import DEFAULT_COST_MODEL, SEAMCostModel
from .resolutions import admissible_nprocs

__all__ = [
    "MethodResult",
    "make_partition",
    "run_method",
    "speedup_sweep",
    "best_metis",
    "ALL_METHODS",
    "METIS_BASELINES",
]

#: Deprecated aliases: the partitioner registry is the source of truth
#: for the method set.  Snapshotted at import for backwards
#: compatibility; new code should call ``registry.available()`` /
#: filter ``registry.specs()`` by family.
METIS_BASELINES = tuple(
    s.name for s in registry.specs() if s.family == "metis"
)
ALL_METHODS = registry.available()


def _graph_for(ne: int, npts: int) -> CSRGraph:
    """Deprecated alias for :func:`repro.partition.pipeline.graph_stage`."""
    return graph_stage(ne, npts)


@dataclass(frozen=True)
class MethodResult:
    """One (method, nproc) point of a sweep.

    Attributes:
        method: Partitioner label.
        nproc: Processor count.
        quality: Partition metrics (Table-2 quantities).
        timing: Machine-model timing.
        speedup: Time(1 proc) / time(nproc).
    """

    method: str
    nproc: int
    quality: PartitionQuality
    timing: StepTiming
    speedup: float

    @property
    def gflops(self) -> float:
        return self.timing.sustained_flops / 1.0e9

    @property
    def step_us(self) -> float:
        return self.timing.step_s * 1.0e6


def make_partition(
    ne: int, nproc: int, method: str, seed: int = 0, schedule: str | None = None
) -> Partition:
    """Partition the cubed-sphere at ``ne`` with the named method.

    .. deprecated::
        Thin alias for
        :func:`repro.partition.pipeline.partition_stage`, kept for
        backwards compatibility; methods now resolve through
        :mod:`repro.partition.registry`.
    """
    warnings.warn(
        "experiments.make_partition is deprecated; use "
        "repro.partition.partition_stage (methods resolve through the "
        "partitioner registry)",
        DeprecationWarning,
        stacklevel=2,
    )
    return partition_stage(method, ne, nproc, seed=seed, schedule=schedule)


def run_method(
    ne: int,
    nproc: int,
    method: str,
    machine: MachineSpec = P690_CLUSTER,
    cost: SEAMCostModel = DEFAULT_COST_MODEL,
    seed: int = 0,
    schedule: str | None = None,
    partition: Partition | None = None,
) -> MethodResult:
    """Partition, evaluate and time one method at one processor count.

    Args:
        partition: Optional precomputed partition (e.g. from the
            service engine); skips the partitioning step.
    """
    graph = graph_stage(ne, cost.npts)
    if partition is None:
        partition = partition_stage(
            method, ne, nproc, seed=seed, schedule=schedule
        )
    quality = evaluate_stage(graph, partition)
    model = PerformanceModel(machine, cost)
    timing = model.step_timing(graph, partition)
    speedup = model.serial_step_time(graph.nvertices) / timing.step_s
    return MethodResult(
        method=method, nproc=nproc, quality=quality, timing=timing, speedup=speedup
    )


def speedup_sweep(
    ne: int,
    methods: tuple[str, ...] = ("sfc", *METIS_BASELINES),
    nprocs: list[int] | None = None,
    machine: MachineSpec = P690_CLUSTER,
    cost: SEAMCostModel = DEFAULT_COST_MODEL,
    seed: int = 0,
    engine=None,
) -> dict[str, list[MethodResult]]:
    """Full sweep over processor counts for several methods.

    Args:
        ne: Resolution (elements per face edge).
        methods: Partitioners to compare.
        nprocs: Processor counts; defaults to the divisors of
            ``K = 6 ne^2`` up to the machine's job limit.
        machine: Machine model.
        cost: Cost model.
        seed: Partitioner seed.
        engine: Optional :class:`~repro.service.engine.PartitionEngine`;
            when given, all sweep points are served as one batch
            (deduplicated, cached, computed in parallel) instead of
            partitioning serially in-process.  Results are bit-identical
            either way.

    Returns:
        ``{method: [MethodResult per nproc]}``.
    """
    # Fail fast (did-you-mean, capability checks) before sweeping.
    for method in methods:
        registry.get(method).validate(ne=ne, nparts=1)
    k = 6 * ne * ne
    if nprocs is None:
        nprocs = admissible_nprocs(k, machine.max_procs)
    if engine is None:
        return {
            method: [
                run_method(ne, nproc, method, machine=machine, cost=cost, seed=seed)
                for nproc in nprocs
            ]
            for method in methods
        }
    from ..service.requests import PartitionRequest

    requests = [
        PartitionRequest(ne=ne, nparts=nproc, method=method, seed=seed)
        for method in methods
        for nproc in nprocs
    ]
    responses = iter(engine.run(requests))
    return {
        method: [
            run_method(
                ne,
                nproc,
                method,
                machine=machine,
                cost=cost,
                seed=seed,
                partition=next(responses).to_partition(),
            )
            for nproc in nprocs
        ]
        for method in methods
    }


def best_metis(results: dict[str, list[MethodResult]], index: int) -> MethodResult:
    """The best METIS result (highest speedup) at one sweep index.

    Mirrors the paper's figures, which plot "SFC vs *best* METIS
    partitioning".
    """
    candidates = [
        results[m][index] for m in METIS_BASELINES if m in results
    ]
    if not candidates:
        raise ValueError("no METIS methods present in the sweep")
    return max(candidates, key=lambda r: r.speedup)
