"""Deprecated shim: the table renderer moved to :mod:`repro.report`.

It is a neutral formatting utility used by layers below the
experiments package (service stats, telemetry rendering), so it lives
at the top level now; this module re-exports it for backwards
compatibility.
"""

from __future__ import annotations

from ..report import format_series, format_table

__all__ = ["format_table", "format_series"]
