"""Experiment harness: every table and figure of the paper + ablations."""

from .ablations import (
    GapPoint,
    ScheduleResult,
    hilbert_peano_gap_study,
    network_ablation,
    refinement_order_study,
)
from .convergence import ConvergencePoint, transport_convergence
from .future_scaling import FutureScalingPoint, future_scaling_study, scaled_p690
from .sensitivity import SensitivityPoint, network_sensitivity
from .figures import (
    ALL_METHODS,
    METIS_BASELINES,
    MethodResult,
    best_metis,
    make_partition,
    run_method,
    speedup_sweep,
)
from .report import format_series, format_table
from .resolutions import (
    PAPER_RESOLUTIONS,
    Resolution,
    admissible_nprocs,
    resolution_by_k,
)
from .table2 import TABLE2_METHODS, Table2Row, render_table2, table2

__all__ = [
    "ALL_METHODS",
    "ConvergencePoint",
    "FutureScalingPoint",
    "GapPoint",
    "METIS_BASELINES",
    "MethodResult",
    "PAPER_RESOLUTIONS",
    "Resolution",
    "ScheduleResult",
    "SensitivityPoint",
    "TABLE2_METHODS",
    "Table2Row",
    "admissible_nprocs",
    "best_metis",
    "format_series",
    "future_scaling_study",
    "format_table",
    "hilbert_peano_gap_study",
    "make_partition",
    "network_ablation",
    "network_sensitivity",
    "refinement_order_study",
    "render_table2",
    "resolution_by_k",
    "run_method",
    "scaled_p690",
    "speedup_sweep",
    "table2",
    "transport_convergence",
]
