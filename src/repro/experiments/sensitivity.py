"""Sensitivity of the headline numbers to the network constants.

The reproduction's machine model documents its intra/inter-node
latency and bandwidth as era-plausible values rather than measured
ones, so the honest question is: *which conclusions depend on them?*
This study sweeps the inter-node parameters over an order of magnitude
around the defaults and records the SFC-vs-best-METIS advantage at a
chosen operating point.  The paper's qualitative claims should survive
the whole sweep; the exact percentage should not (that is the
documented caveat in EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..machine.spec import P690_CLUSTER, MachineSpec, NetworkParams
from .figures import best_metis, speedup_sweep

__all__ = ["SensitivityPoint", "network_sensitivity"]


@dataclass(frozen=True)
class SensitivityPoint:
    """SFC advantage under one network parameterization."""

    latency_scale: float
    bandwidth_scale: float
    sfc_speedup: float
    best_metis_speedup: float

    @property
    def advantage(self) -> float:
        return self.sfc_speedup / self.best_metis_speedup - 1.0


def _scaled_machine(lat_scale: float, bw_scale: float) -> MachineSpec:
    base = P690_CLUSTER
    inter = NetworkParams(
        latency_s=base.inter_node.latency_s * lat_scale,
        bandwidth_Bps=base.inter_node.bandwidth_Bps * bw_scale,
    )
    return replace(base, inter_node=inter, name=f"{base.name} (scaled)")


def network_sensitivity(
    ne: int = 8,
    nproc: int = 384,
    latency_scales: tuple[float, ...] = (0.3, 1.0, 3.0),
    bandwidth_scales: tuple[float, ...] = (0.3, 1.0, 3.0),
) -> list[SensitivityPoint]:
    """Sweep inter-node latency/bandwidth scales at one operating point.

    Args:
        ne: Resolution.
        nproc: Processor count (default: the paper's K=384 headline).
        latency_scales: Multipliers on the Colony latency.
        bandwidth_scales: Multipliers on the Colony bandwidth.

    Returns:
        One point per (latency, bandwidth) combination.
    """
    points = []
    for ls in latency_scales:
        for bs in bandwidth_scales:
            machine = _scaled_machine(ls, bs)
            results = speedup_sweep(ne, nprocs=[nproc], machine=machine)
            sfc = results["sfc"][0]
            metis = best_metis(results, 0)
            points.append(
                SensitivityPoint(
                    latency_scale=ls,
                    bandwidth_scale=bs,
                    sfc_speedup=sfc.speedup,
                    best_metis_speedup=metis.speedup,
                )
            )
    return points
