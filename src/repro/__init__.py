"""repro — Partitioning with Space-Filling Curves on the Cubed-Sphere.

A complete reproduction of Dennis (IPPS 2003): Hilbert, meandering
Peano and nested Hilbert-Peano space-filling curves; the cubed-sphere
spectral-element mesh; a from-scratch METIS-style multilevel graph
partitioner (RB / KWAY / TV); partition-quality metrics; a
spectral-element transport core (the SEAM analog); and a machine model
of the NCAR IBM P690 cluster that regenerates every table and figure of
the paper's evaluation.

Quickstart::

    from repro import sfc_partition, evaluate_partition, mesh_graph
    from repro.cubesphere import cubed_sphere_mesh

    mesh = cubed_sphere_mesh(ne=8)          # K = 384 elements
    part = sfc_partition(ne=8, nparts=96)   # Hilbert-curve partition
    graph = mesh_graph(mesh)
    print(evaluate_partition(graph, part))
"""

from .cubesphere import (
    CubedSphereCurve,
    CubedSphereMesh,
    cubed_sphere_curve,
    cubed_sphere_mesh,
)
from .graphs import CSRGraph, graph_from_edges, mesh_graph
from .machine import P690_CLUSTER, MachineSpec, PerformanceModel
from .metis import part_graph
from .partition import (
    Partition,
    PartitionQuality,
    evaluate_partition,
    load_balance,
    sfc_partition,
)
from .profiling import Profiler, profiled
from .telemetry import MetricsRegistry, TelemetrySession, telemetry_session
from .seam import DEFAULT_COST_MODEL, SEAMCostModel
from .service import (
    PartitionCache,
    PartitionEngine,
    PartitionRequest,
    PartitionResponse,
)
from .sfc import (
    SpaceFillingCurve,
    generate_curve,
    hilbert_curve,
    hilbert_peano_curve,
    peano_curve,
)

__version__ = "1.0.0"

__all__ = [
    "CSRGraph",
    "CubedSphereCurve",
    "CubedSphereMesh",
    "DEFAULT_COST_MODEL",
    "MachineSpec",
    "MetricsRegistry",
    "P690_CLUSTER",
    "Partition",
    "PartitionCache",
    "PartitionEngine",
    "PartitionQuality",
    "PartitionRequest",
    "PartitionResponse",
    "PerformanceModel",
    "Profiler",
    "SEAMCostModel",
    "SpaceFillingCurve",
    "TelemetrySession",
    "__version__",
    "cubed_sphere_curve",
    "cubed_sphere_mesh",
    "evaluate_partition",
    "generate_curve",
    "graph_from_edges",
    "hilbert_curve",
    "hilbert_peano_curve",
    "load_balance",
    "mesh_graph",
    "part_graph",
    "peano_curve",
    "profiled",
    "sfc_partition",
    "telemetry_session",
]
