"""Request identity and W3C trace-context propagation.

One :class:`RequestContext` names one request as it moves through the
stack: a 128-bit ``trace_id`` shared by every span the request touches
(accept -> admission -> cache/coalesce -> pipeline stages -> worker
kernels), a 64-bit ``request_id`` that doubles as this hop's span id in
the outgoing ``traceparent``, and the upstream caller's span id
(``parent_id``) when the request arrived with a ``traceparent`` header.

The context is carried in a :class:`contextvars.ContextVar`, so it
follows the request across ``await`` boundaries in the asyncio server
without leaking between concurrent requests.  Crossing a *process*
boundary (the engine's worker pool) is explicit: the parent ships
:meth:`RequestContext.to_dict` with the task and the worker re-enters
it with :func:`request_context` before computing, which is how worker
spans and log records end up stamped with the request's trace id.

``traceparent`` parsing/formatting follows the W3C Trace Context
level-1 format (https://www.w3.org/TR/trace-context/)::

    traceparent: 00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>

Malformed headers are ignored (a fresh trace starts) rather than
rejected — observability must never fail a request.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass

__all__ = [
    "RequestContext",
    "current_context",
    "request_context",
    "new_trace_id",
    "new_request_id",
    "parse_traceparent",
]

_ZERO_TRACE = "0" * 32
_ZERO_SPAN = "0" * 16

_CONTEXT: ContextVar["RequestContext | None"] = ContextVar(
    "repro_request_context", default=None
)


def new_trace_id() -> str:
    """A fresh random 128-bit trace id (32 lowercase hex chars)."""
    return os.urandom(16).hex()


def new_request_id() -> str:
    """A fresh random 64-bit request/span id (16 lowercase hex chars)."""
    return os.urandom(8).hex()


@dataclass(frozen=True)
class RequestContext:
    """One request's identity, propagated through every layer.

    Attributes:
        trace_id: 32-hex W3C trace id shared by all of the request's
            spans, across processes.
        request_id: 16-hex id of this request (also the span id emitted
            in the outgoing ``traceparent``).
        parent_id: The caller's 16-hex span id when the request carried
            a ``traceparent``, else the all-zero id.
        sampled: The ``sampled`` trace flag (callers that cleared it
            asked downstream hops not to record).
    """

    trace_id: str
    request_id: str
    parent_id: str = _ZERO_SPAN
    sampled: bool = True

    @classmethod
    def new(cls) -> "RequestContext":
        """A root context: fresh trace, no upstream parent."""
        return cls(trace_id=new_trace_id(), request_id=new_request_id())

    def traceparent(self) -> str:
        """The outgoing W3C ``traceparent`` value for this hop."""
        flags = "01" if self.sampled else "00"
        return f"00-{self.trace_id}-{self.request_id}-{flags}"

    def to_dict(self) -> dict:
        """Picklable form for crossing a process boundary."""
        return {
            "trace_id": self.trace_id,
            "request_id": self.request_id,
            "parent_id": self.parent_id,
            "sampled": self.sampled,
        }

    @classmethod
    def from_dict(cls, data: dict | None) -> "RequestContext | None":
        if not data:
            return None
        return cls(
            trace_id=str(data.get("trace_id") or _ZERO_TRACE),
            request_id=str(data.get("request_id") or _ZERO_SPAN),
            parent_id=str(data.get("parent_id") or _ZERO_SPAN),
            sampled=bool(data.get("sampled", True)),
        )


def _is_hex(text: str) -> bool:
    try:
        int(text, 16)
    except ValueError:
        return False
    return text == text.lower()


def parse_traceparent(header: str | None) -> RequestContext | None:
    """Parse a ``traceparent`` header into a continuation context.

    Returns a context that *continues* the caller's trace: same
    ``trace_id``, the caller's span id as ``parent_id``, and a fresh
    ``request_id`` for this hop.  Invalid headers — wrong field count,
    wrong widths, non-hex, all-zero ids, or an unknown version ``ff`` —
    return ``None`` (callers start a fresh root trace instead).
    """
    if not header:
        return None
    parts = header.strip().split("-")
    if len(parts) < 4:
        return None
    version, trace_id, parent_id, flags = parts[0], parts[1], parts[2], parts[3]
    if len(version) != 2 or not _is_hex(version) or version == "ff":
        return None
    # Future versions may append fields; version 00 must have exactly 4.
    if version == "00" and len(parts) != 4:
        return None
    if len(trace_id) != 32 or not _is_hex(trace_id) or trace_id == _ZERO_TRACE:
        return None
    if len(parent_id) != 16 or not _is_hex(parent_id) or parent_id == _ZERO_SPAN:
        return None
    if len(flags) != 2 or not _is_hex(flags):
        return None
    sampled = bool(int(flags, 16) & 0x01)
    return RequestContext(
        trace_id=trace_id,
        request_id=new_request_id(),
        parent_id=parent_id,
        sampled=sampled,
    )


def current_context() -> RequestContext | None:
    """The active request context, or ``None``."""
    return _CONTEXT.get()


@contextmanager
def request_context(ctx: RequestContext | None):
    """Install ``ctx`` as the active request context for the block."""
    token = _CONTEXT.set(ctx)
    try:
        yield ctx
    finally:
        _CONTEXT.reset(token)
