"""Rolling multi-window SLO burn rates for the serving path.

Classic SRE error-budget arithmetic over per-second ring buckets: the
server records every request's status and latency, and the tracker
answers "how fast am I burning the error budget?" over several lookback
windows at once.

Two objectives are tracked:

* **availability** — fraction of requests that must not fail
  (5xx; client errors are the client's fault and don't burn budget);
* **latency** — fraction of requests that must finish under
  ``latency_slo_s``.

For each, the *burn rate* of a window is ``bad_fraction / budget``
where ``budget = 1 - objective``: burn 1.0 spends the budget exactly at
the objective, 10.0 spends it ten times too fast.  Health is degraded
only when **both** a short and a long window burn too fast — the
standard multi-window rule that ignores one-off blips (short window
recovers instantly) without missing slow leaks (long window remembers).

Pure stdlib, O(1) per request, O(windows x horizon) memory; the clock
is injectable so tests can drive time explicitly.
"""

from __future__ import annotations

from time import monotonic

__all__ = ["SLOTracker"]

#: Requests with these statuses burn availability budget.
_ERROR_FLOOR = 500


class _Ring:
    """Per-second aggregation buckets over a fixed horizon."""

    __slots__ = ("horizon", "stamps", "count", "errors", "slow", "lat_sum")

    def __init__(self, horizon: int) -> None:
        self.horizon = horizon
        self.stamps = [-1] * horizon
        self.count = [0] * horizon
        self.errors = [0] * horizon
        self.slow = [0] * horizon
        self.lat_sum = [0.0] * horizon

    def _bucket(self, second: int) -> int:
        i = second % self.horizon
        if self.stamps[i] != second:
            self.stamps[i] = second
            self.count[i] = self.errors[i] = self.slow[i] = 0
            self.lat_sum[i] = 0.0
        return i

    def add(self, second: int, error: bool, slow: bool, latency_s: float) -> None:
        i = self._bucket(second)
        self.count[i] += 1
        self.errors[i] += error
        self.slow[i] += slow
        self.lat_sum[i] += latency_s

    def window(self, now_second: int, seconds: int) -> tuple[int, int, int, float]:
        """Totals over the last ``seconds`` full seconds ending now."""
        count = errors = slow = 0
        lat_sum = 0.0
        for second in range(now_second - seconds + 1, now_second + 1):
            i = second % self.horizon
            if self.stamps[i] == second:
                count += self.count[i]
                errors += self.errors[i]
                slow += self.slow[i]
                lat_sum += self.lat_sum[i]
        return count, errors, slow, lat_sum


class SLOTracker:
    """Multi-window availability + latency burn-rate tracker.

    Args:
        availability_objective: Target success fraction (e.g. ``0.999``
            = at most 0.1% of requests may 5xx).
        latency_slo_s: A request slower than this is "slow".
        latency_objective: Target fraction of requests under
            ``latency_slo_s``.
        windows: Lookback windows in seconds, short to long; the first
            and last are the fast/slow pair the health rule uses.
        burn_threshold: Both windows burning above this rate flips
            health to ``degraded``.
        clock: Monotonic-seconds source (injectable for tests).
    """

    def __init__(
        self,
        *,
        availability_objective: float = 0.999,
        latency_slo_s: float = 0.5,
        latency_objective: float = 0.99,
        windows: tuple[int, ...] = (60, 300),
        burn_threshold: float = 10.0,
        clock=monotonic,
    ) -> None:
        if not 0.0 < availability_objective < 1.0:
            raise ValueError("availability_objective must be in (0, 1)")
        if not 0.0 < latency_objective < 1.0:
            raise ValueError("latency_objective must be in (0, 1)")
        if latency_slo_s <= 0:
            raise ValueError("latency_slo_s must be positive")
        if not windows or any(w < 1 for w in windows) or sorted(windows) != list(
            windows
        ):
            raise ValueError("windows must be ascending positive seconds")
        self.availability_objective = availability_objective
        self.latency_slo_s = latency_slo_s
        self.latency_objective = latency_objective
        self.windows = tuple(int(w) for w in windows)
        self.burn_threshold = float(burn_threshold)
        self._clock = clock
        self._ring = _Ring(self.windows[-1] + 1)
        self.total = 0
        self.total_errors = 0

    def record(self, status: int, latency_s: float) -> None:
        """Record one served request (any route, any status)."""
        error = status >= _ERROR_FLOOR
        slow = latency_s > self.latency_slo_s
        self.total += 1
        self.total_errors += error
        self._ring.add(int(self._clock()), error, slow, float(latency_s))

    def window_stats(self, seconds: int) -> dict:
        """Rates and burn rates over one lookback window."""
        count, errors, slow, lat_sum = self._ring.window(
            int(self._clock()), seconds
        )
        error_rate = errors / count if count else 0.0
        slow_rate = slow / count if count else 0.0
        return {
            "seconds": seconds,
            "count": count,
            "errors": errors,
            "slow": slow,
            "error_rate": round(error_rate, 6),
            "slow_rate": round(slow_rate, 6),
            "mean_latency_ms": round(1e3 * lat_sum / count, 3) if count else 0.0,
            "availability_burn": round(
                error_rate / (1.0 - self.availability_objective), 3
            ),
            "latency_burn": round(
                slow_rate / (1.0 - self.latency_objective), 3
            ),
        }

    def health(self) -> dict:
        """The multi-window health verdict plus its evidence.

        ``status`` is ``"degraded"`` when the short *and* long windows
        both burn the availability or the latency budget faster than
        ``burn_threshold``; otherwise ``"ok"``.
        """
        stats = [self.window_stats(w) for w in self.windows]
        short, long_ = stats[0], stats[-1]
        availability_hot = (
            short["availability_burn"] > self.burn_threshold
            and long_["availability_burn"] > self.burn_threshold
        )
        latency_hot = (
            short["latency_burn"] > self.burn_threshold
            and long_["latency_burn"] > self.burn_threshold
        )
        degraded_by = [
            name
            for name, hot in (
                ("availability", availability_hot),
                ("latency", latency_hot),
            )
            if hot
        ]
        return {
            "status": "degraded" if degraded_by else "ok",
            "degraded_by": degraded_by,
            "objectives": {
                "availability": self.availability_objective,
                "latency_objective": self.latency_objective,
                "latency_slo_ms": round(1e3 * self.latency_slo_s, 3),
                "burn_threshold": self.burn_threshold,
            },
            "windows": stats,
            "lifetime": {
                "count": self.total,
                "errors": self.total_errors,
            },
        }
