"""Unified telemetry: spans, metrics, and structured run exports.

One coherent observability layer for the whole partitioning stack:

* :mod:`~repro.telemetry.runtime` — the instrumentation API
  (:func:`span`, :func:`inc`, :func:`observe`, :func:`set_gauge`) and
  the session lifecycle (:func:`telemetry_session`,
  :func:`worker_session`, :func:`replay_payload`).  Disabled cost is
  one global read per instrumentation point;
* :mod:`~repro.telemetry.spans` — span records with run-wide ids and a
  cross-process (epoch-microsecond) timeline;
* :mod:`~repro.telemetry.metrics` — Prometheus-shaped counters,
  gauges, and fixed-bucket histograms with per-metric defaults for the
  paper's quality metrics (LB(nelemd), LB(spcv), edgecut, TCV);
* :mod:`~repro.telemetry.exporters` — Chrome/Perfetto trace JSON,
  Prometheus text exposition, JSON-lines run logs (all stamped
  ``"schema": 1`` + run id).

Quickstart::

    from repro import part_graph, mesh_graph
    from repro.cubesphere import cubed_sphere_mesh
    from repro.telemetry import telemetry_session
    from repro.telemetry.exporters import write_chrome_trace

    with telemetry_session(command="demo") as session:
        part_graph(mesh_graph(cubed_sphere_mesh(8)), 96, "rb")
    write_chrome_trace("trace.json", session)   # open in ui.perfetto.dev
    print(session.metrics.to_prometheus())

The legacy :mod:`repro.profiling` API (``profiled`` / ``stage`` /
``counter``) is a thin compatibility view over this layer.
"""

from .exporters import (
    chrome_trace,
    load_metrics,
    metrics_snapshot,
    read_run_log,
    write_chrome_trace,
    write_metrics_json,
    write_prometheus,
    write_run_log,
)
from .metrics import (
    BUCKETS_BY_METRIC,
    DEFAULT_BUCKETS,
    SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .runtime import (
    TelemetrySession,
    activate,
    active_profiler,
    current_session,
    inc,
    observe,
    replay_payload,
    set_gauge,
    span,
    telemetry_active,
    telemetry_session,
    worker_session,
)
from .spans import Span, SpanCollector

__all__ = [
    "BUCKETS_BY_METRIC",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SCHEMA_VERSION",
    "Span",
    "SpanCollector",
    "TelemetrySession",
    "activate",
    "active_profiler",
    "chrome_trace",
    "current_session",
    "inc",
    "load_metrics",
    "metrics_snapshot",
    "observe",
    "read_run_log",
    "replay_payload",
    "set_gauge",
    "span",
    "telemetry_active",
    "telemetry_session",
    "worker_session",
    "write_chrome_trace",
    "write_metrics_json",
    "write_prometheus",
    "write_run_log",
]
