"""Unified telemetry: spans, metrics, and structured run exports.

One coherent observability layer for the whole partitioning stack:

* :mod:`~repro.telemetry.runtime` — the instrumentation API
  (:func:`span`, :func:`inc`, :func:`observe`, :func:`set_gauge`) and
  the session lifecycle (:func:`telemetry_session`,
  :func:`worker_session`, :func:`replay_payload`).  Disabled cost is
  one global read per instrumentation point;
* :mod:`~repro.telemetry.spans` — span records with run-wide ids and a
  cross-process (epoch-microsecond) timeline;
* :mod:`~repro.telemetry.metrics` — Prometheus-shaped counters,
  gauges, and fixed-bucket histograms with per-metric defaults for the
  paper's quality metrics (LB(nelemd), LB(spcv), edgecut, TCV);
* :mod:`~repro.telemetry.exporters` — Chrome/Perfetto trace JSON,
  Prometheus text exposition, JSON-lines run logs (all stamped
  ``"schema": 1`` + run id).

Quickstart::

    from repro import part_graph, mesh_graph
    from repro.cubesphere import cubed_sphere_mesh
    from repro.telemetry import telemetry_session
    from repro.telemetry.exporters import write_chrome_trace

    with telemetry_session(command="demo") as session:
        part_graph(mesh_graph(cubed_sphere_mesh(8)), 96, "rb")
    write_chrome_trace("trace.json", session)   # open in ui.perfetto.dev
    print(session.metrics.to_prometheus())

The legacy :mod:`repro.profiling` API (``profiled`` / ``stage`` /
``counter``) is a thin compatibility view over this layer.
"""

from .context import (
    RequestContext,
    current_context,
    new_request_id,
    new_trace_id,
    parse_traceparent,
    request_context,
)
from .exporters import (
    chrome_trace,
    load_metrics,
    metrics_snapshot,
    read_run_log,
    write_chrome_trace,
    write_metrics_json,
    write_prometheus,
    write_run_log,
)
from .logs import (
    JsonLogger,
    add_sink,
    close_logging,
    log_event,
    read_log,
    remove_sink,
)
from .metrics import (
    BUCKETS_BY_METRIC,
    DEFAULT_BUCKETS,
    SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .metrics import HELP_BY_METRIC
from .runtime import (
    TelemetrySession,
    activate,
    active_profiler,
    current_session,
    inc,
    observe,
    replay_payload,
    set_gauge,
    span,
    telemetry_active,
    telemetry_session,
    worker_session,
)
from .spans import Span, SpanCollector

from .sampling import StackSampler, collapse_stacks, sample_stacks
from .slo import SLOTracker

__all__ = [
    "BUCKETS_BY_METRIC",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "HELP_BY_METRIC",
    "Histogram",
    "JsonLogger",
    "MetricsRegistry",
    "RequestContext",
    "SCHEMA_VERSION",
    "SLOTracker",
    "Span",
    "SpanCollector",
    "StackSampler",
    "TelemetrySession",
    "activate",
    "active_profiler",
    "add_sink",
    "chrome_trace",
    "close_logging",
    "collapse_stacks",
    "current_context",
    "current_session",
    "inc",
    "load_metrics",
    "log_event",
    "metrics_snapshot",
    "new_request_id",
    "new_trace_id",
    "observe",
    "parse_traceparent",
    "read_log",
    "read_run_log",
    "remove_sink",
    "replay_payload",
    "request_context",
    "sample_stacks",
    "set_gauge",
    "span",
    "telemetry_active",
    "telemetry_session",
    "worker_session",
    "write_chrome_trace",
    "write_metrics_json",
    "write_prometheus",
    "write_run_log",
]
