"""Structured JSON-lines logging, request-scoped and sampled.

One :func:`log_event` call anywhere in the library emits one JSON
object per configured sink — stdlib-only, one line per event, schema::

    {"schema": 1, "ts": <epoch seconds>, "pid": <int>, "event": "...",
     "request_id": "...", "trace_id": "...", ...free-form fields...}

``request_id``/``trace_id`` are stamped automatically from the active
:class:`~repro.telemetry.context.RequestContext`, so every record a
request produces — in the server process *and* in pool workers — can be
joined back to its trace.

Design points:

* **Disabled cost is one module-global read.**  With no sink configured
  and no capture active, :func:`log_event` returns immediately; the
  library can call it on hot paths unconditionally.
* **Sinks filter by event name** (``events={"access"}`` gives a pure
  access log) and **sample by trace id**: with ``sample=0.25`` a sink
  keeps all records of ~25% of traces and none of the rest — whole
  requests are kept or dropped together, never half a trace.  Records
  with no trace context always pass the sampler.
* **Worker processes capture instead of writing.**  A forked worker
  must not interleave writes on an inherited file descriptor, so
  :func:`capture_records` (entered by
  :func:`~repro.telemetry.runtime.worker_session`) buffers records; the
  parent replays them with :func:`emit_records` after the pool
  round-trip, applying its own sinks' filters and sampling.
"""

from __future__ import annotations

import json
import os
import sys
import threading
from contextlib import contextmanager
from pathlib import Path
from time import time

from .context import current_context
from .metrics import SCHEMA_VERSION

__all__ = [
    "JsonLogger",
    "add_sink",
    "remove_sink",
    "close_logging",
    "log_event",
    "capture_records",
    "emit_records",
    "read_log",
]


class JsonLogger:
    """One JSON-lines sink: a file path or a text stream.

    Args:
        target: A path (opened in append mode, parents created) or a
            writable text stream (e.g. ``sys.stderr``).
        sample: Fraction of *traces* to keep, in ``(0, 1]``.  Applied
            per trace id, so one request's records are all kept or all
            dropped; context-free records are always kept.
        events: Event names this sink accepts; ``None`` accepts all.
    """

    def __init__(
        self,
        target: Path | str | object,
        sample: float = 1.0,
        events: set[str] | frozenset[str] | None = None,
    ) -> None:
        if not 0.0 < sample <= 1.0:
            raise ValueError(f"sample must be in (0, 1], got {sample}")
        self.sample = float(sample)
        self.events = frozenset(events) if events is not None else None
        self._lock = threading.Lock()
        if isinstance(target, (str, Path)):
            path = Path(target)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._stream = open(path, "a", encoding="utf-8")
            self._owns_stream = True
            self.path: Path | None = path
        else:
            self._stream = target
            self._owns_stream = False
            self.path = None

    def accepts(self, record: dict) -> bool:
        """Whether this sink's event filter and sampler pass ``record``."""
        if self.events is not None and record.get("event") not in self.events:
            return False
        if self.sample >= 1.0:
            return True
        trace_id = record.get("trace_id")
        if not trace_id:
            return True
        # Deterministic per-trace coin flip: low 8 hex digits of the
        # (already random) trace id against the sample threshold.
        return int(str(trace_id)[-8:], 16) < self.sample * 0x100000000

    def write(self, record: dict) -> None:
        """Write one record if the filter and sampler accept it."""
        if not self.accepts(record):
            return
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            self._stream.write(line + "\n")
            self._stream.flush()

    def close(self) -> None:
        if self._owns_stream:
            self._stream.close()


#: Configured sinks (usually zero or one; the server may run an access
#: log and a full event log side by side).  Tuple, swapped atomically.
_SINKS: tuple[JsonLogger, ...] = ()

#: When not None, records are buffered here instead of written (worker
#: processes; see module docstring).
_CAPTURE: list[dict] | None = None


def add_sink(
    target: Path | str | object,
    sample: float = 1.0,
    events: set[str] | None = None,
) -> JsonLogger:
    """Configure a new log sink; returns it (pass to :func:`remove_sink`)."""
    global _SINKS
    sink = JsonLogger(target, sample=sample, events=events)
    _SINKS = _SINKS + (sink,)
    return sink


def remove_sink(sink: JsonLogger) -> None:
    """Detach and close one sink (idempotent)."""
    global _SINKS
    _SINKS = tuple(s for s in _SINKS if s is not sink)
    sink.close()


def close_logging() -> None:
    """Detach and close every sink."""
    global _SINKS
    sinks, _SINKS = _SINKS, ()
    for sink in sinks:
        sink.close()


def _build_record(event: str, fields: dict) -> dict:
    record = {
        "schema": SCHEMA_VERSION,
        "ts": time(),
        "pid": os.getpid(),
        "event": event,
    }
    ctx = current_context()
    if ctx is not None:
        record["request_id"] = ctx.request_id
        record["trace_id"] = ctx.trace_id
    record.update(fields)
    return record


def log_event(event: str, **fields) -> None:
    """Emit one structured log record (no-op when nothing is listening)."""
    capture = _CAPTURE
    if capture is not None:
        capture.append(_build_record(event, fields))
        return
    sinks = _SINKS
    if not sinks:
        return
    record = _build_record(event, fields)
    for sink in sinks:
        try:
            sink.write(record)
        except (OSError, ValueError):  # a dead sink must never fail a request
            pass


@contextmanager
def capture_records():
    """Buffer records instead of writing (worker-process mode).

    Also masks any sinks inherited across a fork: a worker must not
    write to the parent's file descriptors.  Yields the buffer; ship it
    home in the worker payload and replay with :func:`emit_records`.
    """
    global _CAPTURE
    prev = _CAPTURE
    records: list[dict] = []
    _CAPTURE = records
    try:
        yield records
    finally:
        _CAPTURE = prev


def emit_records(records: list[dict] | None) -> None:
    """Replay captured worker records through this process's sinks.

    Records keep their original ``ts``/``pid``/ids; each sink applies
    its own event filter and trace sampling, exactly as for local
    events.
    """
    if not records:
        return
    sinks = _SINKS
    if not sinks:
        return
    for record in records:
        if not isinstance(record, dict):
            continue
        for sink in sinks:
            try:
                sink.write(record)
            except (OSError, ValueError):
                pass


def read_log(path: Path | str) -> list[dict]:
    """Parse a JSON-lines log back into records (bad lines skipped)."""
    records: list[dict] = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict):
            records.append(record)
    return records


def _self_test() -> None:  # pragma: no cover - debugging helper
    sink = add_sink(sys.stderr)
    try:
        log_event("logs.self_test", ok=True)
    finally:
        remove_sink(sink)
