"""Stdlib thread-sampling wall-clock profiler (flamegraph-ready).

A background thread wakes every ``interval`` seconds, snapshots every
thread's Python stack with ``sys._current_frames()``, and counts
root-first call paths.  The result renders as *collapsed stacks* — the
``semicolon;separated;frames count`` lines Brendan Gregg's
``flamegraph.pl`` and https://www.speedscope.app consume directly —
so a live server can answer ``GET /debug/profile?seconds=S`` with a
profile of whatever it is doing right now, with zero dependencies and
no interpreter restart.

Sampling is cooperative with the GIL: the sampler sees whichever
threads hold Python frames, which is exactly the event loop + any
executor threads of the serving process (pool *worker* processes have
their own interpreters and are visible through span telemetry
instead).  Overhead is one frame walk per thread per tick and nothing
at all when no sampler is running.
"""

from __future__ import annotations

import sys
import threading
from collections import Counter
from time import perf_counter, sleep

__all__ = ["StackSampler", "sample_stacks", "collapse_stacks"]

#: Hard ceiling on one sampling run, seconds (``/debug/profile`` guard).
MAX_SECONDS = 60.0
#: Default tick: 5 ms ~ 200 Hz, cheap enough for a live server.
DEFAULT_INTERVAL = 0.005


def _frame_stack(frame, limit: int = 128) -> tuple[str, ...]:
    """Root-first ``module:function`` path of one thread's stack."""
    frames: list[str] = []
    while frame is not None and len(frames) < limit:
        code = frame.f_code
        module = frame.f_globals.get("__name__", "?")
        frames.append(f"{module}:{code.co_name}")
        frame = frame.f_back
    frames.reverse()
    return tuple(frames)


class StackSampler:
    """Samples every thread's Python stack on a fixed tick.

    Usage::

        with StackSampler(interval=0.005) as sampler:
            ...work...
        print(sampler.collapsed())

    Attributes:
        counts: ``Counter`` of root-first stack tuples -> sample count.
        samples: Total sampling ticks taken.
    """

    def __init__(self, interval: float = DEFAULT_INTERVAL) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = float(interval)
        self.counts: Counter[tuple[str, ...]] = Counter()
        self.samples = 0
        self.wall_s = 0.0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def _run(self) -> None:
        own = threading.get_ident()
        t0 = perf_counter()
        while not self._stop.is_set():
            for tid, frame in sys._current_frames().items():
                if tid == own:
                    continue
                self.counts[_frame_stack(frame)] += 1
            self.samples += 1
            self._stop.wait(self.interval)
        self.wall_s = perf_counter() - t0

    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("sampler is already running")
        self._thread = threading.Thread(
            target=self._run, name="repro-stack-sampler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join()
        self._thread = None

    def __enter__(self) -> "StackSampler":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def collapsed(self) -> str:
        """The counts in collapsed-stack format, heaviest path first."""
        return collapse_stacks(self.counts)


def collapse_stacks(counts: Counter | dict) -> str:
    """Render stack-tuple counts as collapsed-stack lines.

    One ``frame;frame;frame count`` line per distinct path, sorted by
    descending count then path (stable across runs for tests).
    """
    items = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    return "\n".join(f"{';'.join(path)} {count}" for path, count in items)


def sample_stacks(
    seconds: float, interval: float = DEFAULT_INTERVAL
) -> StackSampler:
    """Block for ``seconds``, sampling all *other* threads' stacks.

    Run it from a helper thread (the server uses
    ``run_in_executor(None, ...)``) so the interesting thread — the
    event loop — keeps doing the work being profiled.

    Raises:
        ValueError: Non-positive or over-limit duration.
    """
    if not 0.0 < seconds <= MAX_SECONDS:
        raise ValueError(
            f"seconds must be in (0, {MAX_SECONDS:g}], got {seconds!r}"
        )
    with StackSampler(interval=interval) as sampler:
        sleep(seconds)
    return sampler
