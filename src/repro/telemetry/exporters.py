"""Telemetry exporters: Chrome trace JSON, Prometheus text, JSONL logs.

Three machine-readable views of one :class:`TelemetrySession`:

* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome /
  Perfetto trace-event format (``chrome://tracing``,
  https://ui.perfetto.dev): one complete (``"ph": "X"``) event per
  span, worker spans on their own track of the parent process;
* :func:`write_prometheus` — the registry's text exposition, for
  scraping or diffing;
* :func:`write_run_log` / :func:`read_run_log` — structured JSON-lines:
  a ``run`` header line, one ``span`` line per span, one ``metric``
  line per metric.  Readers tolerate unknown kinds and fields, so the
  format can grow without breaking old tooling.

Every export carries ``"schema": 1`` and the session's run id.
:func:`load_metrics` reads the registry back from either a metrics
snapshot JSON or a run log.
"""

from __future__ import annotations

import json
from pathlib import Path

from .metrics import SCHEMA_VERSION, MetricsRegistry
from .runtime import TelemetrySession

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "write_prometheus",
    "metrics_snapshot",
    "write_metrics_json",
    "write_run_log",
    "read_run_log",
    "load_metrics",
]


def chrome_trace(session: TelemetrySession) -> dict:
    """The session's spans as a Chrome trace-event JSON object."""
    events: list[dict] = []
    pids: dict[int, None] = {}
    if session.tracer is not None:
        for span in session.tracer.spans:
            pids.setdefault(span.pid, None)
            args = dict(span.args)
            args["span_id"] = span.id
            if span.parent:
                args["parent_id"] = span.parent
            events.append(
                {
                    "name": span.name,
                    "cat": span.cat or "repro",
                    "ph": "X",
                    "ts": span.ts_us,
                    "dur": span.dur_us,
                    "pid": span.pid,
                    "tid": span.tid,
                    "args": args,
                }
            )
    for pid in pids:
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"repro run {session.run_id}"},
            }
        )
    return {
        "schema": SCHEMA_VERSION,
        "run_id": session.run_id,
        "displayTimeUnit": "ms",
        "meta": dict(session.meta),
        "traceEvents": events,
    }


def write_chrome_trace(path: Path | str, session: TelemetrySession) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(session), indent=1) + "\n")
    return path


def write_prometheus(path: Path | str, session: TelemetrySession) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    registry = session.metrics if session.metrics is not None else MetricsRegistry()
    path.write_text(registry.to_prometheus())
    return path


def metrics_snapshot(session: TelemetrySession) -> dict:
    """JSON-ready snapshot of the session's metrics registry."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": "metrics",
        "run_id": session.run_id,
        "meta": dict(session.meta),
        "metrics": (
            session.metrics.snapshot() if session.metrics is not None else []
        ),
    }


def write_metrics_json(path: Path | str, session: TelemetrySession) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(metrics_snapshot(session), indent=2, sort_keys=True) + "\n"
    )
    return path


def write_run_log(path: Path | str, session: TelemetrySession) -> Path:
    """Structured JSON-lines run log (one event object per line)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = [
        json.dumps(
            {
                "schema": SCHEMA_VERSION,
                "kind": "run",
                "run_id": session.run_id,
                "started_unix": session.started_unix,
                "meta": dict(session.meta),
            },
            sort_keys=True,
        )
    ]
    if session.tracer is not None:
        for span in session.tracer.spans:
            lines.append(
                json.dumps(
                    {"kind": "span", "run_id": session.run_id, **span.to_dict()},
                    sort_keys=True,
                )
            )
    if session.metrics is not None:
        for entry in session.metrics.snapshot():
            # The entry carries its own "kind" (counter/gauge/histogram),
            # so it nests under "metric" rather than spreading flat.
            lines.append(
                json.dumps(
                    {"kind": "metric", "run_id": session.run_id, "metric": entry},
                    sort_keys=True,
                )
            )
    path.write_text("\n".join(lines) + "\n")
    return path


def read_run_log(path: Path | str) -> dict:
    """Parse a run log into ``{"run": ..., "spans": [...], "metrics": ...}``.

    Unknown kinds and fields are ignored (forward compatibility).
    """
    run: dict = {}
    spans: list[dict] = []
    snapshot: list[dict] = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            continue
        kind = event.get("kind")
        if kind == "run":
            run = event
        elif kind == "span":
            spans.append(event)
        elif kind == "metric" and isinstance(event.get("metric"), dict):
            snapshot.append(event["metric"])
        # other kinds: tolerated, skipped
    return {
        "run": run,
        "spans": spans,
        "metrics": MetricsRegistry.from_snapshot(snapshot),
    }


def load_metrics(path: Path | str) -> MetricsRegistry:
    """Load a registry from a metrics snapshot JSON or a JSONL run log."""
    path = Path(path)
    text = path.read_text()
    try:
        data = json.loads(text)
    except json.JSONDecodeError:
        return read_run_log(path)["metrics"]
    if isinstance(data, dict) and isinstance(data.get("metrics"), list):
        return MetricsRegistry.from_snapshot(data["metrics"])
    raise ValueError(
        f"{path}: not a metrics snapshot (expected a 'metrics' list) "
        "or JSONL run log"
    )
