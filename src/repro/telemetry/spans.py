"""Span records and the per-session span collector.

A :class:`Span` is one timed region of work — a stage of the multilevel
partitioner, a cache lookup, a worker-side compute — identified by a
session-unique integer id and linked to its enclosing span through
``parent`` (0 means top-level).  Timestamps are epoch microseconds
(``time.time_ns() // 1000``) so spans recorded in *different processes*
share one timeline; durations are measured with ``perf_counter`` for
precision.

The :class:`SpanCollector` owns the open-span stack of one session and
the id allocator.  Spans produced in a worker process are shipped back
as plain dicts (:meth:`Span.to_dict`) and re-ingested with
:meth:`SpanCollector.ingest`, which remaps ids into the parent's id
space and re-parents the worker's top-level spans under the span that
was open when the result arrived (the engine's ``pool`` span).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

__all__ = ["Span", "SpanCollector"]


@dataclass
class Span:
    """One completed timed region.

    Attributes:
        id: Session-unique positive integer.
        parent: Id of the enclosing span, 0 for top-level.
        name: Stage name (``coarsen``, ``cache_lookup``, ...).
        cat: Category (``metis``, ``service``, ``sfc``, ...).
        ts_us: Start time, epoch microseconds (cross-process timeline).
        dur_us: Duration in microseconds.
        pid: Process the span is displayed under.
        tid: Track within the process (workers get their own track).
        args: Small JSON-serializable annotations.
    """

    id: int
    parent: int
    name: str
    cat: str
    ts_us: int
    dur_us: float
    pid: int
    tid: int
    args: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "parent": self.parent,
            "name": self.name,
            "cat": self.cat,
            "ts_us": self.ts_us,
            "dur_us": self.dur_us,
            "pid": self.pid,
            "tid": self.tid,
            "args": dict(self.args),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        # Tolerate unknown fields: readers only take what they know.
        return cls(
            id=int(data["id"]),
            parent=int(data.get("parent", 0)),
            name=str(data["name"]),
            cat=str(data.get("cat", "")),
            ts_us=int(data["ts_us"]),
            dur_us=float(data["dur_us"]),
            pid=int(data.get("pid", 0)),
            tid=int(data.get("tid", 1)),
            args=dict(data.get("args") or {}),
        )


class SpanCollector:
    """Collects completed spans and tracks the open-span stack."""

    def __init__(self, pid: int | None = None) -> None:
        self.spans: list[Span] = []
        self.pid = pid if pid is not None else os.getpid()
        self._stack: list[int] = []
        self._next = 1

    def __len__(self) -> int:
        return len(self.spans)

    def begin(self) -> tuple[int, int]:
        """Open a span; returns ``(id, parent_id)``."""
        sid = self._next
        self._next += 1
        parent = self._stack[-1] if self._stack else 0
        self._stack.append(sid)
        return sid, parent

    def end(
        self,
        sid: int,
        parent: int,
        name: str,
        cat: str,
        ts_us: int,
        dur_us: float,
        args: dict,
    ) -> None:
        """Close the span opened as ``sid`` and record it."""
        if self._stack and self._stack[-1] == sid:
            self._stack.pop()
        elif sid in self._stack:  # pragma: no cover - defensive
            self._stack.remove(sid)
        self.spans.append(
            Span(
                id=sid,
                parent=parent,
                name=name,
                cat=cat,
                ts_us=ts_us,
                dur_us=dur_us,
                pid=self.pid,
                tid=1,
                args=args,
            )
        )

    def open_parent(self) -> int:
        """Id of the innermost currently-open span (0 if none)."""
        return self._stack[-1] if self._stack else 0

    def ingest(self, span_dicts: list[dict], attach_parent: int = 0) -> int:
        """Merge spans shipped back from a worker process.

        Ids are remapped into this collector's id space; the worker's
        top-level spans (parent 0) are re-parented under
        ``attach_parent``.  The worker's pid moves into
        ``args["worker_pid"]`` and becomes the ``tid`` so every worker
        renders as its own track of the parent process.

        Returns:
            Number of spans ingested.
        """
        if not span_dicts:
            return 0
        base = self._next
        max_id = 0
        for data in span_dicts:
            span = Span.from_dict(data)
            max_id = max(max_id, span.id)
            worker_pid = span.pid
            span.args = dict(span.args)
            span.args.setdefault("worker_pid", worker_pid)
            span.tid = worker_pid
            span.pid = self.pid
            span.id = base + span.id
            span.parent = base + span.parent if span.parent else attach_parent
            self.spans.append(span)
        self._next = base + max_id + 1
        return len(span_dicts)

    def export(self) -> list[dict]:
        """Plain-dict form of every span (picklable / JSON-ready)."""
        return [span.to_dict() for span in self.spans]
