"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The registry is deliberately Prometheus-shaped — counters only go up,
gauges are last-write-wins, histograms have *fixed* bucket boundaries
chosen at creation — so one snapshot can be rendered as Prometheus text
exposition, merged across processes (worker registries are merged into
the parent's after a pool round-trip), and compared between runs.

Metric identity is ``(name, labels)``; labels are plain ``str -> str``
pairs.  Quality metrics use histograms with per-metric default bucket
boundaries (:data:`BUCKETS_BY_METRIC`): load-balance ratios live in
``[0, 1]``, edgecut and TCV are element/point counts.
"""

from __future__ import annotations

from bisect import bisect_left

SCHEMA_VERSION = 1

__all__ = [
    "SCHEMA_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "BUCKETS_BY_METRIC",
    "HELP_BY_METRIC",
]

#: Prometheus's classic latency boundaries (seconds) — the fallback.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Load-balance ratios are in [0, 1] and interesting near 0.
_LB_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5)
#: Edge/point counts: powers of two spanning toy meshes to Ne=48.
_COUNT_BUCKETS = tuple(float(1 << p) for p in range(3, 18))
#: Server request latencies: warm cache hits are sub-millisecond, so the
#: low end is finer than Prometheus's classic boundaries.
_SERVER_LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Default boundaries by metric name (exact match, else DEFAULT_BUCKETS).
BUCKETS_BY_METRIC: dict[str, tuple[float, ...]] = {
    "request_lb_nelemd": _LB_BUCKETS,
    "request_lb_spcv": _LB_BUCKETS,
    "request_edgecut": _COUNT_BUCKETS,
    "request_tcv_points": _COUNT_BUCKETS,
    "repartition_lb_after": _LB_BUCKETS,
    "repartition_fraction_moved": _LB_BUCKETS,
    "server_request_seconds": _SERVER_LATENCY_BUCKETS,
}

#: ``# HELP`` text by metric name (exposition format requires one per
#: family; unknown metrics get a generic line).
HELP_BY_METRIC: dict[str, str] = {
    "cache_hits": "Requests answered from the partition cache.",
    "cache_misses": "Requests that missed the partition cache.",
    "dss_memo_total": "Shared DSS-operator memo lookups by outcome.",
    "part_graph_total": "part_graph calls by method and kernel path.",
    "pool_queue_depth": "Cache misses queued on the engine worker pool.",
    "request_compute_seconds": "Worker compute time per computed request.",
    "request_edgecut": "Edge cut of served partitions.",
    "request_lb_nelemd": "Element load imbalance of served partitions.",
    "request_lb_spcv": "Comm-volume load imbalance of served partitions.",
    "request_tcv_points": "Total communication volume (points) served.",
    "repartition_fraction_moved": (
        "Fraction of elements migrated per served repartition plan."
    ),
    "repartition_lb_after": "Load imbalance after the repartition plan.",
    "server_repartition_cache_hits": (
        "Repartition requests answered from the server plan LRU."
    ),
    "server_repartition_total": (
        "Repartition plans served, by source and partitioner."
    ),
    "server_coalesced_total": (
        "Requests that joined another request's in-flight compute."
    ),
    "server_queue_depth": "Computes currently in flight on the server.",
    "server_rejected_total": "Requests rejected by admission control (503).",
    "server_request_seconds": "Server request latency (accept to response).",
    "server_requests_total": "HTTP requests served, by status and partitioner.",
    "service_requests_total": "Partition requests served, by source.",
    "worker_payloads_merged": "Worker telemetry payloads merged by the parent.",
}


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, n: float = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        self.value += n

    def state(self) -> dict:
        return {"value": self.value}

    def merge(self, state: dict) -> None:
        self.value += float(state.get("value", 0.0))


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def state(self) -> dict:
        return {"value": self.value}

    def merge(self, state: dict) -> None:
        self.value = float(state.get("value", self.value))


class Histogram:
    """Fixed-boundary histogram with sum and count.

    ``counts[i]`` is the number of observations ``<= boundaries[i]``
    exclusive of earlier buckets; ``counts[-1]`` is the ``+Inf`` bucket.
    """

    __slots__ = ("boundaries", "counts", "total", "sum", "min", "max")
    kind = "histogram"

    def __init__(self, boundaries: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in boundaries)
        if not bounds or any(nxt <= prev for nxt, prev in zip(bounds[1:], bounds)):
            raise ValueError("boundaries must be non-empty and ascending")
        self.boundaries = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.total = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.boundaries, value)] += 1
        self.total += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def state(self) -> dict:
        return {
            "boundaries": list(self.boundaries),
            "counts": list(self.counts),
            "count": self.total,
            "sum": self.sum,
            "min": self.min if self.total else None,
            "max": self.max if self.total else None,
        }

    def merge(self, state: dict) -> None:
        bounds = tuple(float(b) for b in state.get("boundaries", ()))
        if bounds != self.boundaries:
            raise ValueError(
                f"histogram boundary mismatch: {bounds} vs {self.boundaries}"
            )
        for i, c in enumerate(state.get("counts", ())):
            self.counts[i] += int(c)
        self.total += int(state.get("count", 0))
        self.sum += float(state.get("sum", 0.0))
        if state.get("min") is not None:
            self.min = min(self.min, float(state["min"]))
        if state.get("max") is not None:
            self.max = max(self.max, float(state["max"]))


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """All metrics of one telemetry session, keyed by (name, labels)."""

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, tuple], Counter | Gauge | Histogram] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def _get(self, name: str, labels: dict, factory) -> object:
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory()
            self._metrics[key] = metric
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        metric = self._get(name, labels, Counter)
        if not isinstance(metric, Counter):
            raise TypeError(f"{name} is a {metric.kind}, not a counter")
        return metric

    def gauge(self, name: str, **labels: str) -> Gauge:
        metric = self._get(name, labels, Gauge)
        if not isinstance(metric, Gauge):
            raise TypeError(f"{name} is a {metric.kind}, not a gauge")
        return metric

    def histogram(
        self, name: str, buckets: tuple[float, ...] | None = None, **labels: str
    ) -> Histogram:
        if buckets is None:
            buckets = BUCKETS_BY_METRIC.get(name, DEFAULT_BUCKETS)
        metric = self._get(name, labels, lambda: Histogram(buckets))
        if not isinstance(metric, Histogram):
            raise TypeError(f"{name} is a {metric.kind}, not a histogram")
        return metric

    def items(self):
        """``(name, labels_dict, metric)`` triples, sorted by identity."""
        for (name, labels) in sorted(self._metrics):
            yield name, dict(labels), self._metrics[(name, labels)]

    # -- snapshots ------------------------------------------------------

    def snapshot(self) -> list[dict]:
        """JSON-ready list of every metric's full state."""
        return [
            {"name": name, "kind": metric.kind, "labels": labels,
             **metric.state()}
            for name, labels, metric in self.items()
        ]

    def merge(self, snapshot: list[dict]) -> None:
        """Fold a snapshot (e.g. from a worker process) into this registry."""
        for entry in snapshot:
            kind = entry.get("kind")
            if kind not in _KINDS:
                continue  # tolerate unknown metric kinds
            labels = dict(entry.get("labels") or {})
            if kind == "histogram":
                bounds = tuple(float(b) for b in entry.get("boundaries", ()))
                metric = self.histogram(
                    entry["name"], buckets=bounds or None, **labels
                )
            elif kind == "counter":
                metric = self.counter(entry["name"], **labels)
            else:
                metric = self.gauge(entry["name"], **labels)
            metric.merge(entry)

    @classmethod
    def from_snapshot(cls, snapshot: list[dict]) -> "MetricsRegistry":
        registry = cls()
        registry.merge(snapshot)
        return registry

    # -- rendering ------------------------------------------------------

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (one metric family per block).

        Emits ``# HELP`` and ``# TYPE`` once per family and escapes
        label values (backslash, double-quote, newline) per the text
        format spec, so adversarial label content cannot corrupt the
        exposition.
        """
        lines: list[str] = []
        seen_type: set[str] = set()
        for name, labels, metric in self.items():
            if name not in seen_type:
                help_text = HELP_BY_METRIC.get(name, f"repro {metric.kind}.")
                lines.append(f"# HELP {name} {_escape_help(help_text)}")
                lines.append(f"# TYPE {name} {metric.kind}")
                seen_type.add(name)
            if isinstance(metric, Histogram):
                cumulative = 0
                for bound, count in zip(metric.boundaries, metric.counts):
                    cumulative += count
                    lines.append(
                        f"{name}_bucket{_label_str(labels, le=_fmt_num(bound))}"
                        f" {cumulative}"
                    )
                lines.append(
                    f'{name}_bucket{_label_str(labels, le="+Inf")} {metric.total}'
                )
                lines.append(f"{name}_sum{_label_str(labels)} {_fmt_num(metric.sum)}")
                lines.append(f"{name}_count{_label_str(labels)} {metric.total}")
            else:
                lines.append(f"{name}{_label_str(labels)} {_fmt_num(metric.value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def render(self) -> str:
        """Human-readable text tables (the repo's standard format)."""
        from ..report import format_table

        blocks: list[str] = []
        scalar_rows = [
            [name, _labels_text(labels), metric.kind, metric.value]
            for name, labels, metric in self.items()
            if not isinstance(metric, Histogram)
        ]
        if scalar_rows:
            blocks.append(
                format_table(
                    ["metric", "labels", "kind", "value"],
                    scalar_rows,
                    title="Counters and gauges",
                )
            )
        for name, labels, metric in self.items():
            if not isinstance(metric, Histogram):
                continue
            rows = []
            lo = "0"
            for bound, count in zip(metric.boundaries, metric.counts):
                rows.append([f"({lo}, {_fmt_num(bound)}]", count])
                lo = _fmt_num(bound)
            rows.append([f"({lo}, +Inf)", metric.counts[-1]])
            title = f"histogram {name}{_labels_text(labels)}  " + (
                f"count={metric.total} mean={metric.mean:.6g} "
                f"min={metric.min:.6g} max={metric.max:.6g}"
                if metric.total
                else "count=0"
            )
            blocks.append(format_table(["bucket", "count"], rows, title=title))
        return "\n\n".join(blocks) if blocks else "(no metrics recorded)"


def _fmt_num(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_help(text: str) -> str:
    """Escape a ``# HELP`` docstring per the exposition format."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    """Escape one label value per the exposition format."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _label_str(labels: dict[str, str], **extra: str) -> str:
    merged = {**labels, **extra}
    if not merged:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label_value(v)}"' for k, v in sorted(merged.items())
    )
    return "{" + inner + "}"


def _labels_text(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
