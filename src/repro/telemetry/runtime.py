"""Telemetry runtime: the global collector state and instrumentation API.

Instrumentation points throughout the library call :func:`span`,
:func:`inc`, :func:`observe` and :func:`set_gauge`.  When nothing is
collecting, each costs **one module-global read** (``span`` returns a
shared no-op context manager; the metric helpers return immediately) —
the library runs unchanged.

Two kinds of collector can be active, separately or together:

* a :class:`TelemetrySession` (run id, span tracer, metrics registry) —
  activated with :func:`telemetry_session`;
* a legacy :class:`repro.profiling.Profiler` — activated through
  :func:`repro.profiling.profiled`, which delegates to
  :func:`activate` here.  The profiler receives the same span
  durations and counter bumps, so ``--profile`` output is a *view*
  over telemetry events.

Worker processes of the service pool activate a fresh session with
:func:`worker_session`, export it as a picklable payload, and the
parent merges it with :func:`replay_payload` — spans land in the
parent's tracer (re-parented under the span open at ingest time, e.g.
the engine's ``pool`` span), counters and histograms fold into the
parent's registry, and an active legacy profiler finally sees
worker-side stages (closing the gap documented by the old profiler).
"""

from __future__ import annotations

import uuid
from contextlib import contextmanager
from time import perf_counter, time, time_ns

from .context import current_context
from .metrics import SCHEMA_VERSION, MetricsRegistry
from .spans import SpanCollector

__all__ = [
    "SCHEMA_VERSION",
    "TelemetrySession",
    "telemetry_session",
    "worker_session",
    "current_session",
    "telemetry_active",
    "activate",
    "active_profiler",
    "replay_payload",
    "span",
    "inc",
    "observe",
    "set_gauge",
]


class TelemetrySession:
    """One run's collectors: a span tracer and a metrics registry.

    Args:
        run_id: Stable identifier stamped on every export; generated
            when omitted.
        trace: Collect spans.
        metrics: Collect metrics.
        meta: Free-form JSON-serializable annotations (command, args).
    """

    def __init__(
        self,
        run_id: str | None = None,
        trace: bool = True,
        metrics: bool = True,
        meta: dict | None = None,
    ) -> None:
        self.run_id = run_id or uuid.uuid4().hex[:16]
        self.started_unix = time()
        self.tracer = SpanCollector() if trace else None
        self.metrics = MetricsRegistry() if metrics else None
        self.meta = dict(meta or {})
        #: Captured log records (worker sessions only; see
        #: :func:`repro.telemetry.logs.capture_records`).
        self.log_records: list[dict] | None = None

    def to_payload(self) -> dict:
        """Picklable export of everything collected (worker -> parent)."""
        return {
            "schema": SCHEMA_VERSION,
            "run_id": self.run_id,
            "spans": self.tracer.export() if self.tracer is not None else [],
            "metrics": (
                self.metrics.snapshot() if self.metrics is not None else []
            ),
            "logs": list(self.log_records) if self.log_records else [],
        }


class _State:
    """What is currently collecting (at most one active per process)."""

    __slots__ = ("session", "profiler")

    def __init__(self, session, profiler) -> None:
        self.session = session
        self.profiler = profiler


_STATE: _State | None = None
_KEEP = object()  # sentinel: inherit the currently-active collector


@contextmanager
def activate(session=_KEEP, profiler=_KEEP):
    """Install collectors for the enclosed block (composable).

    Passing ``session=`` or ``profiler=`` replaces that collector for
    the block; the one not passed is inherited from the current state,
    so a profiler opened inside a telemetry session feeds both.
    """
    global _STATE
    prev = _STATE
    new_session = (prev.session if prev else None) if session is _KEEP else session
    new_profiler = (
        (prev.profiler if prev else None) if profiler is _KEEP else profiler
    )
    _STATE = (
        _State(new_session, new_profiler)
        if (new_session is not None or new_profiler is not None)
        else None
    )
    try:
        yield
    finally:
        _STATE = prev


@contextmanager
def telemetry_session(
    run_id: str | None = None,
    trace: bool = True,
    metrics: bool = True,
    **meta,
):
    """Activate a fresh :class:`TelemetrySession` for the block."""
    session = TelemetrySession(run_id, trace=trace, metrics=metrics, meta=meta)
    with activate(session=session):
        yield session


@contextmanager
def worker_session():
    """Collector for one task inside a pool worker process.

    Replaces any inherited collector (worker processes are forked, so
    the parent's registry object must not be touched), buffers log
    records instead of writing to inherited sink descriptors, and
    exposes :meth:`TelemetrySession.to_payload` for shipping back.
    """
    from .logs import capture_records

    session = TelemetrySession(trace=True, metrics=True)
    with activate(session=session, profiler=None):
        with capture_records() as records:
            session.log_records = records
            yield session


def current_session() -> TelemetrySession | None:
    """The active session, or ``None``."""
    state = _STATE
    return state.session if state is not None else None


def active_profiler():
    """The active legacy profiler, or ``None``."""
    state = _STATE
    return state.profiler if state is not None else None


def telemetry_active() -> bool:
    """Whether *any* collector (session or profiler) is active."""
    return _STATE is not None


def replay_payload(payload: dict | None) -> None:
    """Merge a worker payload into whatever is collecting here."""
    state = _STATE
    if state is None or not payload:
        return
    spans = payload.get("spans") or []
    session = state.session
    if session is not None:
        if session.tracer is not None and spans:
            session.tracer.ingest(
                spans, attach_parent=session.tracer.open_parent()
            )
        snapshot = payload.get("metrics")
        if snapshot and session.metrics is not None:
            session.metrics.merge(snapshot)
    profiler = state.profiler
    if profiler is not None:
        for data in spans:
            profiler.add(str(data["name"]), float(data["dur_us"]) / 1e6)
        for entry in payload.get("metrics") or []:
            if entry.get("kind") == "counter" and not entry.get("labels"):
                profiler.count(str(entry["name"]), int(entry.get("value", 0)))
    logs = payload.get("logs")
    if logs:
        from .logs import emit_records

        emit_records(logs)


# -- instrumentation points --------------------------------------------------


class _NoopSpan:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NOOP = _NoopSpan()


class _LiveSpan:
    """Times one region and reports it to the active collectors."""

    __slots__ = ("_state", "_name", "_cat", "_args", "_sid", "_parent", "_ts", "_t0")

    def __init__(self, state: _State, name: str, cat: str, args: dict) -> None:
        self._state = state
        self._name = name
        self._cat = cat
        self._args = args

    def __enter__(self) -> "_LiveSpan":
        session = self._state.session
        tracer = session.tracer if session is not None else None
        if tracer is not None:
            self._sid, self._parent = tracer.begin()
        else:
            self._sid = 0
        self._ts = time_ns()
        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        dt = perf_counter() - self._t0
        state = self._state
        if state.profiler is not None:
            state.profiler.add(self._name, dt)
        session = state.session
        if session is not None and session.tracer is not None:
            # Stamp the active request's identity on the span, so one
            # trace id links server, engine, and worker-process spans
            # (the worker re-enters the context it was shipped).
            ctx = current_context()
            if ctx is not None:
                self._args["trace_id"] = ctx.trace_id
                self._args["request_id"] = ctx.request_id
            session.tracer.end(
                self._sid,
                self._parent,
                self._name,
                self._cat,
                self._ts // 1000,
                dt * 1e6,
                self._args,
            )
        return False


def span(name: str, cat: str = "", **args):
    """Time the enclosed block (one global read when disabled)."""
    state = _STATE
    if state is None:
        return _NOOP
    return _LiveSpan(state, name, cat, args)


def inc(name: str, n: float = 1, **labels: str) -> None:
    """Bump a counter (and the legacy profiler's counter table)."""
    state = _STATE
    if state is None:
        return
    if state.profiler is not None and not labels:
        state.profiler.count(name, int(n))
    session = state.session
    if session is not None and session.metrics is not None:
        session.metrics.counter(name, **labels).inc(n)


def observe(name: str, value: float, **labels: str) -> None:
    """Record one histogram observation."""
    state = _STATE
    if state is None:
        return
    session = state.session
    if session is not None and session.metrics is not None:
        session.metrics.histogram(name, **labels).observe(value)


def set_gauge(name: str, value: float, **labels: str) -> None:
    """Set a gauge to an instantaneous value."""
    state = _STATE
    if state is None:
        return
    session = state.session
    if session is not None and session.metrics is not None:
        session.metrics.gauge(name, **labels).set(value)
