"""Minimal asyncio HTTP/1.1 client for the partition server.

Used by the server tests and the closed-loop load harness
(``benchmarks/bench_service_load.py``): a persistent keep-alive
:class:`Connection` (one per simulated client) plus a one-shot
:func:`fetch` helper.  Only what the server speaks is implemented —
``Content-Length`` bodies, no chunked encoding, no redirects, no TLS.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field

__all__ = ["ClientResponse", "Connection", "fetch"]


@dataclass
class ClientResponse:
    """One parsed HTTP response.

    Attributes:
        status: HTTP status code.
        headers: Header map with lower-cased names.
        body: Raw response body.
    """

    status: int
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> dict | list:
        """Decode the body as JSON."""
        return json.loads(self.body.decode("utf-8"))


class Connection:
    """A persistent keep-alive connection to the server.

    Usage::

        conn = await Connection.open("127.0.0.1", 8077)
        resp = await conn.request("GET", "/healthz")
        await conn.close()
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer

    @classmethod
    async def open(cls, host: str, port: int) -> "Connection":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        headers: dict[str, str] | None = None,
    ) -> ClientResponse:
        """Send one request and read its complete response."""
        lines = [f"{method} {path} HTTP/1.1", "Host: repro"]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        if body is not None:
            lines.append(f"Content-Length: {len(body)}")
        head = "\r\n".join(lines).encode("latin-1") + b"\r\n\r\n"
        self._writer.write(head + (body or b""))
        await self._writer.drain()
        return await self._read_response()

    async def post_json(self, path: str, payload: dict | list) -> ClientResponse:
        """POST a JSON payload (the common case for /partition, /batch)."""
        return await self.request(
            "POST",
            path,
            json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )

    async def partition(self, request) -> ClientResponse:
        """POST one partition request (a wire dict or a
        :class:`~repro.service.requests.PartitionRequest`)."""
        if hasattr(request, "to_wire"):
            request = request.to_wire()
        return await self.post_json("/partition", request)

    async def repartition(self, request) -> ClientResponse:
        """POST one repartition request (a wire dict or a
        :class:`~repro.service.requests.RepartitionRequest`)."""
        if hasattr(request, "to_wire"):
            request = request.to_wire()
        return await self.post_json("/repartition", request)

    async def _read_response(self) -> ClientResponse:
        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionResetError("server closed the connection")
        parts = status_line.decode("latin-1").split(None, 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
            raise ValueError(f"malformed status line {status_line!r}")
        status = int(parts[1])
        headers: dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if not line:
                raise ConnectionResetError("server closed mid-headers")
            if line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length", 0))
        if length:
            body = await self._reader.readexactly(length)
        return ClientResponse(status=status, headers=headers, body=body)

    def abort(self) -> None:
        """Tear the connection down immediately (simulates a dead client)."""
        self._writer.close()

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def __aenter__(self) -> "Connection":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()


async def fetch(
    host: str,
    port: int,
    method: str,
    path: str,
    body: bytes | None = None,
) -> ClientResponse:
    """One-shot request on a fresh connection."""
    conn = await Connection.open(host, port)
    try:
        return await conn.request(method, path, body)
    finally:
        await conn.close()
