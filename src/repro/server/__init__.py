"""Async partition server: the HTTP/JSON front-end of the engine.

The serving subsystem the ROADMAP's "millions of users" north star
asks for: :class:`~repro.server.app.PartitionServer` wraps a
:class:`~repro.service.engine.PartitionEngine` in an asyncio HTTP/1.1
endpoint with request coalescing, admission control with backpressure,
per-connection timeouts, and graceful drain — all stdlib, no new
runtime dependencies.

Quickstart::

    import asyncio
    from repro.server import PartitionServer
    from repro.service import PartitionCache, PartitionEngine

    async def main():
        engine = PartitionEngine(PartitionCache(cache_dir=".repro-cache"), jobs=4)
        async with PartitionServer(engine, port=8077) as server:
            print("serving on %s:%d" % server.address)
            await server.serve_forever()

    asyncio.run(main())

Or from the CLI: ``python -m repro serve --port 8077 --jobs 4``.

* :mod:`~repro.server.http` — minimal HTTP/1.1 framing over asyncio
  streams (hard header/body limits, structured JSON errors);
* :mod:`~repro.server.app` — routing, the coalescing future map,
  admission control, graceful shutdown;
* :mod:`~repro.server.client` — the tiny async client the tests and
  the closed-loop load harness drive the server with.
"""

from .app import PartitionServer
from .client import ClientResponse, Connection, fetch
from .http import HTTPError, HTTPRequest, read_request, render_response

__all__ = [
    "ClientResponse",
    "Connection",
    "HTTPError",
    "HTTPRequest",
    "PartitionServer",
    "fetch",
    "read_request",
    "render_response",
]
