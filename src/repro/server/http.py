"""Minimal HTTP/1.1 framing over asyncio streams.

Just enough protocol for the partition server — request-line + header
parsing, ``Content-Length`` bodies, keep-alive bookkeeping, and
response rendering — with hard limits on header and body sizes so a
misbehaving client cannot balloon server memory.  Deliberately *not* a
general web server: no chunked transfer encoding (a client sending it
gets ``501``), no multipart, no TLS, no HTTP/2.

Errors during parsing raise :class:`HTTPError`, which carries the HTTP
status, a machine-readable ``code``, and optional extra headers; the
application layer renders every ``HTTPError`` as a structured JSON
error body (``{"error": {"status": ..., "code": ..., "message": ...}}``).
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qsl

__all__ = [
    "HTTPError",
    "HTTPRequest",
    "MAX_BODY_BYTES",
    "MAX_HEADER_BYTES",
    "STATUS_PHRASES",
    "error_body",
    "json_body",
    "read_request",
    "render_response",
]

#: Maximum accepted size of the request line plus all headers.
MAX_HEADER_BYTES = 16 * 1024
#: Maximum accepted ``Content-Length`` (batch files are a few MB at most).
MAX_BODY_BYTES = 8 * 1024 * 1024

STATUS_PHRASES = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    411: "Length Required",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HTTPError(Exception):
    """A request that must be answered with an HTTP error status.

    Attributes:
        status: HTTP status code.
        code: Short machine-readable error code for the JSON body.
        message: Human-readable explanation.
        headers: Extra response headers (e.g. ``Retry-After``).
    """

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        headers: dict[str, str] | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.headers = dict(headers or {})


@dataclass
class HTTPRequest:
    """One parsed request.

    Attributes:
        method: Upper-case HTTP method (``GET``, ``POST``, ...).
        path: Request target without the query string.
        query: Decoded query-string parameters (last value wins).
        headers: Header map with lower-cased names.
        body: Raw request body (empty when none was sent).
    """

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        """Whether the connection should stay open after the response."""
        return self.headers.get("connection", "").lower() != "close"


async def _read_line(reader: asyncio.StreamReader, budget: int) -> bytes:
    """One CRLF/LF-terminated line within the remaining header budget."""
    try:
        line = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError):
        raise HTTPError(431, "header_too_large", "request header line too long")
    if len(line) > budget:
        raise HTTPError(
            431, "header_too_large",
            f"request headers exceed {MAX_HEADER_BYTES} bytes",
        )
    return line


async def read_request(
    reader: asyncio.StreamReader, *, max_body: int = MAX_BODY_BYTES
) -> HTTPRequest | None:
    """Parse one request off the stream.

    Returns:
        The parsed request, or ``None`` when the client closed the
        connection cleanly before sending another request (normal
        keep-alive termination).

    Raises:
        HTTPError: Malformed request line or headers, oversized
            headers/body, or an unsupported transfer encoding.
    """
    budget = MAX_HEADER_BYTES
    line = await _read_line(reader, budget)
    if not line:
        return None  # clean EOF between requests
    budget -= len(line)
    try:
        method, target, version = line.decode("ascii").split()
    except (UnicodeDecodeError, ValueError):
        raise HTTPError(400, "bad_request_line", "malformed HTTP request line")
    if not version.startswith("HTTP/1."):
        raise HTTPError(400, "bad_version", f"unsupported version {version!r}")

    headers: dict[str, str] = {}
    while True:
        line = await _read_line(reader, budget)
        if not line:
            raise HTTPError(400, "truncated", "connection closed mid-headers")
        budget -= len(line)
        if line in (b"\r\n", b"\n"):
            break
        try:
            name, _, value = line.decode("latin-1").partition(":")
        except UnicodeDecodeError:  # pragma: no cover - latin-1 total
            raise HTTPError(400, "bad_header", "undecodable header line")
        if not _ or not name.strip():
            raise HTTPError(400, "bad_header", f"malformed header {line!r}")
        headers[name.strip().lower()] = value.strip()

    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HTTPError(
            501, "chunked_unsupported",
            "chunked transfer encoding is not supported; send Content-Length",
        )
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HTTPError(400, "bad_content_length", "non-integer Content-Length")
        if length < 0:
            raise HTTPError(400, "bad_content_length", "negative Content-Length")
        if length > max_body:
            raise HTTPError(
                413, "body_too_large",
                f"request body of {length} bytes exceeds the {max_body} limit",
            )
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HTTPError(400, "truncated", "connection closed mid-body")
    elif method in ("POST", "PUT", "PATCH"):
        raise HTTPError(411, "length_required", "POST requires Content-Length")

    path, _, query_string = target.partition("?")
    query = dict(parse_qsl(query_string, keep_blank_values=True))
    return HTTPRequest(
        method=method.upper(), path=path, query=query, headers=headers, body=body
    )


def render_response(
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    headers: dict[str, str] | None = None,
    keep_alive: bool = True,
) -> bytes:
    """Serialize one complete HTTP/1.1 response."""
    phrase = STATUS_PHRASES.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {phrase}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines).encode("latin-1")
    return head + b"\r\n\r\n" + body


def json_body(payload: dict | list) -> bytes:
    """Encode a JSON response body (sorted keys: stable for tests)."""
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def error_body(exc: HTTPError) -> bytes:
    """The structured JSON body every error response carries."""
    return json_body(
        {"error": {"status": exc.status, "code": exc.code, "message": exc.message}}
    )
