"""The asyncio partition server.

:class:`PartitionServer` puts an HTTP/JSON front-end on the
:class:`~repro.service.engine.PartitionEngine`:

* ``POST /partition`` — one :class:`~repro.service.requests.PartitionRequest`
  as a JSON object; answers with the full response (assignment +
  Table-2 metrics + source).
* ``POST /batch`` — a JSON list of request objects (or
  ``{"requests": [...]}``); answers per item, errors included inline.
* ``POST /repartition`` — one
  :class:`~repro.service.requests.RepartitionRequest` (old assignment
  + new weights); answers with the migration-minimizing plan (moved
  gids per rank, weight moved, LB before/after).  Served through the
  same coalescing, admission control, metrics, and trace propagation
  as ``/partition``, with a server-local plan LRU in place of the
  engine's response cache (plans are diffs against a caller-supplied
  assignment, not pure partition functions).
* ``GET /healthz`` — liveness, the in-flight/pending picture, and the
  rolling multi-window SLO verdict (``ok`` / ``degraded``).
* ``GET /methods`` — the partitioner registry as JSON.
* ``GET /metrics`` — Prometheus text exposition of the active
  telemetry session's registry.
* ``GET /debug/vars`` — live internals: build info, cache hit rates,
  pool/coalescing depth, geometry-cache counters, SLO windows.
* ``GET /debug/requests`` — ring buffer of the last N requests
  (status, latency, source, trace id).
* ``GET /debug/profile?seconds=S`` — collapsed-stack wall-clock
  profile of the serving process (thread-sampling, flamegraph-ready).

Every request gets an identity: the server parses an incoming W3C
``traceparent`` (continuing the caller's trace) or starts a fresh
trace, carries the :class:`~repro.telemetry.context.RequestContext`
through the engine into pool workers, and answers with
``X-Request-Id`` + ``traceparent`` response headers (partition
responses also embed ``request_id``/``trace_id`` in the JSON body).
When log sinks are configured (``repro serve --access-log/--log-json``)
each request emits one structured ``access`` record.

Serving mechanics, in request order:

1. **Cache lookups run on the event loop** — a warm hit never touches
   the worker pool, so cached latency is independent of pool load.
2. **Request coalescing**: concurrent requests with the same content
   hash share one in-flight compute through ``_inflight`` (an async
   future map).  Joiners await an ``asyncio.shield`` of the shared
   task, so a joiner's disconnect can never cancel work someone else
   is waiting on.
3. **Admission control**: at most ``max_pending`` computes may be in
   flight; requests beyond that are rejected with ``503`` and a
   ``Retry-After`` hint instead of queueing unboundedly.
4. **Compute in worker processes**: misses run
   :func:`~repro.service.engine.compute_response` in the engine's
   ``ProcessPoolExecutor`` via ``run_in_executor`` — the event loop
   never blocks on partitioning, and worker telemetry payloads are
   replayed into the server's session.
5. **Timeouts and disconnects**: every connection read and every
   request dispatch is bounded by ``request_timeout``; a dead client's
   compute still runs to completion and lands in the cache, so no
   worker is ever leaked.
6. **Graceful shutdown**: :meth:`shutdown` stops accepting, lets
   handlers finish writing, drains orphaned computes, then closes
   idle connections and flushes gauges.
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
import time
from collections import OrderedDict, deque
from contextlib import ExitStack, suppress
from time import perf_counter

from .. import __version__
from ..partition import registry
from ..seam.dss import dss_memo_stats
from ..seam.element import geometry_cache_stats
from ..service import PartitionEngine, PartitionRequest
from ..service.engine import _pool_compute, _record_response_metrics
from ..service.requests import RepartitionRequest
from ..telemetry import (
    RequestContext,
    SLOTracker,
    TelemetrySession,
    activate,
    current_context,
    current_session,
    inc,
    log_event,
    observe,
    parse_traceparent,
    replay_payload,
    request_context,
    set_gauge,
    span,
    telemetry_active,
)
from ..telemetry.sampling import MAX_SECONDS, sample_stacks
from .http import (
    HTTPError,
    HTTPRequest,
    error_body,
    json_body,
    read_request,
    render_response,
)

__all__ = ["PartitionServer"]

#: Upper bound on the number of request objects in one /batch body.
MAX_BATCH_ITEMS = 4096

#: Capacity of the /debug/requests ring buffer.
DEBUG_RING_SIZE = 128

#: Capacity of the server-local repartition plan LRU.
REPARTITION_CACHE_SIZE = 64

#: Every route the server answers (404 bodies list these as a hint).
KNOWN_ROUTES = (
    "/batch",
    "/debug/profile",
    "/debug/requests",
    "/debug/vars",
    "/healthz",
    "/methods",
    "/metrics",
    "/partition",
    "/repartition",
)


class _Result:
    """One route's answer: status + body + response metadata."""

    __slots__ = (
        "status", "body", "content_type", "headers", "partitioner", "source",
    )

    def __init__(
        self,
        status: int,
        body: bytes,
        content_type: str = "application/json",
        headers: dict[str, str] | None = None,
        partitioner: str = "none",
        source: str = "",
    ) -> None:
        self.status = status
        self.body = body
        self.content_type = content_type
        self.headers = headers or {}
        self.partitioner = partitioner
        self.source = source


class PartitionServer:
    """Async HTTP/JSON front-end over a :class:`PartitionEngine`.

    Args:
        engine: The serving engine; ``None`` builds a default
            (memory-cache, ``jobs=1``) engine owned — and closed — by
            the server.
        host: Bind address.
        port: Bind port; ``0`` picks an ephemeral port (read it back
            from :attr:`port` after :meth:`start`).
        max_pending: Admission limit on concurrently in-flight
            computes; ``None`` derives ``8 * engine.jobs`` from the
            pool size.
        request_timeout: Seconds allowed per connection read and per
            request dispatch.
        slo: Rolling SLO tracker feeding ``/healthz``; ``None`` builds
            one with the default objectives.
    """

    def __init__(
        self,
        engine: PartitionEngine | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_pending: int | None = None,
        request_timeout: float = 30.0,
        slo: SLOTracker | None = None,
    ) -> None:
        self._owns_engine = engine is None
        self.engine = engine if engine is not None else PartitionEngine()
        if max_pending is None:
            max_pending = 8 * self.engine.jobs
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if request_timeout <= 0:
            raise ValueError("request_timeout must be positive")
        self.host = host
        self.port = port
        self.max_pending = max_pending
        self.request_timeout = request_timeout
        self._server: asyncio.Server | None = None
        self._closing = False
        self._inflight: dict[str, asyncio.Task] = {}
        self._connections: set[asyncio.Task] = set()
        self._active_requests = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._stack = ExitStack()
        self.session: TelemetrySession | None = None
        self.slo = slo if slo is not None else SLOTracker()
        self._recent: deque[dict] = deque(maxlen=DEBUG_RING_SIZE)
        self._repart_cache: "OrderedDict[str, object]" = OrderedDict()
        self._started_at = time.time()

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections."""
        if self._server is not None:
            raise RuntimeError("server is already started")
        if self.engine.closed:
            raise RuntimeError(
                "cannot serve with a closed PartitionEngine; build a new engine"
            )
        # A long-running server must not accumulate spans, so the
        # server-owned session is metrics-only.  An already-active
        # session (CLI telemetry flags, tests) is respected instead.
        if current_session() is None:
            self.session = TelemetrySession(
                trace=False, metrics=True, meta={"command": "serve"}
            )
            self._stack.enter_context(activate(session=self.session))
        else:
            self.session = current_session()
        # Fork every pool worker *before* binding: a worker forked
        # mid-serving would inherit the listening socket and client
        # fds, keeping them alive after the server closes them.
        await asyncio.get_running_loop().run_in_executor(
            None, self.engine.warm
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` actually bound (port resolved after start)."""
        return self.host, self.port

    async def serve_forever(self) -> None:
        """Serve until cancelled or :meth:`shutdown` is called."""
        assert self._server is not None, "call start() first"
        with suppress(asyncio.CancelledError):
            await self._server.serve_forever()

    async def shutdown(self) -> None:
        """Graceful shutdown: drain in-flight work, then close.

        Idempotent.  Stops accepting connections, waits for handlers
        to finish writing their current responses, awaits orphaned
        computes (their results still land in the cache), closes the
        remaining idle connections, and flushes the queue-depth gauge.
        """
        if self._closing:
            return
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._active_requests:
            with suppress(asyncio.TimeoutError):
                await asyncio.wait_for(
                    self._idle.wait(), self.request_timeout + 5.0
                )
        if self._inflight:
            await asyncio.gather(
                *list(self._inflight.values()), return_exceptions=True
            )
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*list(self._connections), return_exceptions=True)
        set_gauge("server_queue_depth", 0)
        if self._owns_engine:
            self.engine.close()
        self._stack.close()

    async def __aenter__(self) -> "PartitionServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.shutdown()

    # -- connection handling --------------------------------------------

    def _begin_request(self) -> None:
        self._active_requests += 1
        self._idle.clear()

    def _end_request(self) -> None:
        self._active_requests -= 1
        if self._active_requests == 0:
            self._idle.set()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._connections.add(task)
        try:
            await self._connection_loop(reader, writer)
        except (ConnectionResetError, BrokenPipeError, TimeoutError):
            pass  # client went away mid-write; nothing left to tell it
        except asyncio.CancelledError:
            pass  # shutdown closing an idle connection
        finally:
            self._connections.discard(task)
            writer.close()
            with suppress(Exception):
                await writer.wait_closed()

    async def _connection_loop(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            try:
                request = await asyncio.wait_for(
                    read_request(reader), self.request_timeout
                )
            except asyncio.TimeoutError:
                return  # idle keep-alive connection: hang up
            except HTTPError as exc:
                writer.write(
                    render_response(
                        exc.status, error_body(exc),
                        headers=exc.headers, keep_alive=False,
                    )
                )
                await writer.drain()
                return
            if request is None:
                return  # clean EOF between requests
            keep = await self._serve_one(request, writer)
            if not keep:
                return

    async def _serve_one(
        self, request: HTTPRequest, writer: asyncio.StreamWriter
    ) -> bool:
        """Dispatch one parsed request and write its response.

        Returns whether the connection should be kept open.
        """
        ctx = parse_traceparent(request.headers.get("traceparent", ""))
        if ctx is None:
            ctx = RequestContext.new()
        self._begin_request()
        t0 = perf_counter()
        result: _Result | None = None
        with request_context(ctx):
            try:
                try:
                    with span(
                        "request", "server",
                        method=request.method, path=request.path,
                    ):
                        result = await asyncio.wait_for(
                            self._dispatch(request), self.request_timeout
                        )
                except HTTPError as exc:
                    result = _Result(
                        exc.status, error_body(exc), headers=exc.headers
                    )
                except asyncio.TimeoutError:
                    exc = HTTPError(
                        504, "timeout",
                        f"request exceeded the {self.request_timeout:g}s budget "
                        "(the compute continues and will be served from cache)",
                    )
                    result = _Result(exc.status, error_body(exc))
                except Exception as exc:  # noqa: BLE001 - last-resort 500
                    exc = HTTPError(
                        500, "internal_error", f"{type(exc).__name__}: {exc}"
                    )
                    result = _Result(exc.status, error_body(exc))
                keep = request.keep_alive and not self._closing
                headers = dict(result.headers)
                headers.setdefault("X-Request-Id", ctx.request_id)
                headers.setdefault("Traceparent", ctx.traceparent())
                writer.write(
                    render_response(
                        result.status,
                        result.body,
                        content_type=result.content_type,
                        headers=headers,
                        keep_alive=keep,
                    )
                )
                await writer.drain()
                return keep
            finally:
                self._end_request()
                elapsed = perf_counter() - t0
                status = result.status if result is not None else 500
                partitioner = (
                    result.partitioner if result is not None else "none"
                )
                source = result.source if result is not None else ""
                inc(
                    "server_requests_total",
                    status=str(status), partitioner=partitioner,
                )
                observe("server_request_seconds", elapsed)
                self.slo.record(status, elapsed)
                ms = round(1e3 * elapsed, 3)
                self._recent.append(
                    {
                        "ts": round(time.time(), 3),
                        "method": request.method,
                        "path": request.path,
                        "status": status,
                        "ms": ms,
                        "source": source,
                        "partitioner": partitioner,
                        "request_id": ctx.request_id,
                        "trace_id": ctx.trace_id,
                    }
                )
                log_event(
                    "access",
                    method=request.method,
                    path=request.path,
                    status=status,
                    ms=ms,
                    source=source,
                    partitioner=partitioner,
                )

    # -- routing --------------------------------------------------------

    async def _dispatch(self, request: HTTPRequest) -> _Result:
        route = (request.method, request.path)
        if route == ("POST", "/partition"):
            return await self._serve_partition(request)
        if route == ("POST", "/batch"):
            return await self._serve_batch(request)
        if route == ("POST", "/repartition"):
            return await self._serve_repartition(request)
        if route == ("GET", "/healthz"):
            return self._serve_healthz()
        if route == ("GET", "/methods"):
            return self._serve_methods()
        if route == ("GET", "/metrics"):
            return self._serve_metrics()
        if route == ("GET", "/debug/vars"):
            return self._serve_debug_vars()
        if route == ("GET", "/debug/requests"):
            return self._serve_debug_requests(request)
        if route == ("GET", "/debug/profile"):
            return await self._serve_debug_profile(request)
        if request.path in KNOWN_ROUTES:
            raise HTTPError(
                405, "method_not_allowed",
                f"{request.method} is not supported on {request.path}",
            )
        raise HTTPError(
            404, "not_found",
            f"no route for {request.path}; known routes: "
            + ", ".join(KNOWN_ROUTES),
        )

    def _parse_partition_request(self, data: object) -> PartitionRequest:
        if not isinstance(data, dict):
            raise HTTPError(
                400, "bad_json", "request body must be a JSON object"
            )
        try:
            return PartitionRequest.from_dict(data)
        except ValueError as exc:
            # UnknownPartitionerError (did-you-mean), CapabilityError
            # (inadmissible ne / schedule contract), and schema errors
            # are all *validation* failures: 422, never a 500.
            raise HTTPError(422, "invalid_request", str(exc))

    def _parse_repartition_request(self, data: object) -> RepartitionRequest:
        if not isinstance(data, dict):
            raise HTTPError(
                400, "bad_json", "request body must be a JSON object"
            )
        try:
            return RepartitionRequest.from_dict(data)
        except ValueError as exc:
            # Bad weights (negative/NaN/wrong length), malformed old
            # assignments, unknown scenarios, and capability violations
            # are all *validation* failures: 422, never a 500.
            raise HTTPError(422, "invalid_request", str(exc))

    def _decode_json(self, body: bytes) -> object:
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HTTPError(400, "bad_json", f"request body is not valid JSON: {exc}")

    def _stamp_identity(self, data: dict) -> dict:
        """Add the request/trace ids to an outgoing JSON body."""
        ctx = current_context()
        if ctx is not None:
            data["request_id"] = ctx.request_id
            data["trace_id"] = ctx.trace_id
        return data

    async def _serve_partition(self, request: HTTPRequest) -> _Result:
        preq = self._parse_partition_request(self._decode_json(request.body))
        response = await self._resolve(preq)
        return _Result(
            200,
            json_body(self._stamp_identity(response.to_dict())),
            partitioner=preq.method,
            source=response.source,
        )

    async def _serve_repartition(self, request: HTTPRequest) -> _Result:
        rreq = self._parse_repartition_request(self._decode_json(request.body))
        response = await self._resolve_repartition(rreq)
        return _Result(
            200,
            json_body(self._stamp_identity(response.to_dict())),
            partitioner=rreq.method,
            source=response.source,
        )

    async def _serve_batch(self, request: HTTPRequest) -> _Result:
        data = self._decode_json(request.body)
        if isinstance(data, dict):
            data = data.get("requests")
        if not isinstance(data, list):
            raise HTTPError(
                400, "bad_json",
                "batch body must be a JSON list of request objects "
                "(or {'requests': [...]})",
            )
        if len(data) > MAX_BATCH_ITEMS:
            raise HTTPError(
                413, "batch_too_large",
                f"batch of {len(data)} exceeds the {MAX_BATCH_ITEMS} limit",
            )

        async def one(item: object) -> dict:
            try:
                response = await self._resolve(self._parse_partition_request(item))
                return response.to_dict()
            except HTTPError as exc:
                return json.loads(error_body(exc))

        responses = await asyncio.gather(*(one(item) for item in data))
        return _Result(
            200,
            json_body(
                self._stamp_identity(
                    {"schema": 1, "responses": list(responses)}
                )
            ),
            source="batch",
        )

    def _serve_healthz(self) -> _Result:
        health = self.slo.health()
        payload = {
            "status": "draining" if self._closing else health["status"],
            "inflight": len(self._inflight),
            "max_pending": self.max_pending,
            "jobs": self.engine.jobs,
            "connections": len(self._connections),
            "requests_total": self.engine.stats.total_requests,
            "slo": health,
        }
        return _Result(200, json_body(payload))

    def _serve_methods(self) -> _Result:
        methods = [
            {
                "name": s.name,
                "family": s.family,
                "weighted": s.weighted,
                "seeded": s.uses_seed,
                "schedule": s.supports_schedule,
                "continuous": s.continuous,
                "ne_constraint": s.ne_constraint,
                "description": s.description,
            }
            for s in registry.specs()
        ]
        from .. import scenarios as scenario_registry

        scenarios = [
            {
                "name": s.name,
                "description": s.description,
                "params": dict(s.params),
            }
            for s in scenario_registry.specs()
        ]
        return _Result(
            200,
            json_body(
                {"schema": 1, "methods": methods, "scenarios": scenarios}
            ),
        )

    def _serve_metrics(self) -> _Result:
        session = current_session()
        text = (
            session.metrics.to_prometheus()
            if session is not None and session.metrics is not None
            else ""
        )
        return _Result(
            200,
            text.encode("utf-8"),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    # -- live introspection ---------------------------------------------

    def _serve_debug_vars(self) -> _Result:
        payload = {
            "schema": 1,
            "build": {
                "version": __version__,
                "python": sys.version.split()[0],
                "platform": sys.platform,
                "pid": os.getpid(),
            },
            "uptime_s": round(time.time() - self._started_at, 3),
            "server": {
                "host": self.host,
                "port": self.port,
                "closing": self._closing,
                "connections": len(self._connections),
                "active_requests": self._active_requests,
                "max_pending": self.max_pending,
                "request_timeout_s": self.request_timeout,
            },
            "coalescing": {
                "inflight": len(self._inflight),
                "keys": [key[:12] for key in self._inflight],
            },
            "engine": self.engine.stats.summary(),
            "cache": self.engine.cache.stats(),
            "geometry_cache": geometry_cache_stats(),
            "dss_memo": dss_memo_stats(),
            "slo": self.slo.health(),
            "recent_requests": {
                "size": len(self._recent),
                "capacity": DEBUG_RING_SIZE,
            },
        }
        return _Result(200, json_body(payload))

    def _serve_debug_requests(self, request: HTTPRequest) -> _Result:
        entries = list(self._recent)
        raw = request.query.get("n")
        if raw is not None:
            try:
                n = int(raw)
            except ValueError:
                raise HTTPError(400, "bad_query", f"n must be an integer, got {raw!r}")
            if n < 1:
                raise HTTPError(400, "bad_query", "n must be >= 1")
            entries = entries[-n:]
        payload = {
            "schema": 1,
            "capacity": DEBUG_RING_SIZE,
            "requests": entries,
        }
        return _Result(200, json_body(payload))

    async def _serve_debug_profile(self, request: HTTPRequest) -> _Result:
        raw = request.query.get("seconds", "2")
        try:
            seconds = float(raw)
        except ValueError:
            raise HTTPError(
                400, "bad_query", f"seconds must be a number, got {raw!r}"
            )
        # The profile must finish inside the request timeout or the
        # dispatch wrapper would answer 504 while the sampler runs on.
        limit = min(MAX_SECONDS, 0.8 * self.request_timeout)
        if not 0 < seconds <= limit:
            raise HTTPError(
                400, "bad_query",
                f"seconds must be in (0, {limit:g}], got {seconds:g}",
            )
        # Sampling blocks its thread between ticks, so it runs on the
        # default thread executor while the event loop keeps serving —
        # which is exactly what makes the profile representative.
        sampler = await asyncio.get_running_loop().run_in_executor(
            None, sample_stacks, seconds
        )
        text = sampler.collapsed()
        return _Result(
            200,
            (text + "\n" if text else "").encode("utf-8"),
            content_type="text/plain; charset=utf-8",
            headers={
                "X-Profile-Samples": str(sampler.samples),
                "X-Profile-Seconds": f"{seconds:g}",
            },
        )

    # -- the serving core: cache -> coalesce -> admit -> compute --------

    async def _resolve(self, request: PartitionRequest):
        """Answer one partition request on the event loop."""
        hit = self.engine.cache.get(request)
        if hit is not None:
            self._record(hit)
            return hit
        return await self._admit_and_compute(request, self._record)

    async def _resolve_repartition(self, request: RepartitionRequest):
        """Answer one repartition request on the event loop.

        Same coalescing and admission control as :meth:`_resolve`
        (the shared ``_inflight`` map cannot mix the two request kinds:
        repartition cache keys carry a ``"kind"`` marker); the cache
        tier is the server-local plan LRU instead of the engine's
        content-addressed response cache.
        """
        key = request.cache_key()
        hit = self._repart_cache.get(key)
        if hit is not None:
            self._repart_cache.move_to_end(key)
            inc("server_repartition_cache_hits")
            response = hit.with_source("memory")
            self._record_repartition(response)
            return response
        return await self._admit_and_compute(request, self._record_repartition)

    async def _admit_and_compute(self, request, record):
        """Coalesce -> admit -> compute for one uncached request."""
        key = request.cache_key()
        inflight = self._inflight.get(key)
        if inflight is not None:
            inc("server_coalesced_total")
            response = await asyncio.shield(inflight)
            response = response.with_source("coalesced")
            record(response)
            return response
        if self._closing:
            raise HTTPError(
                503, "shutting_down", "server is draining; retry elsewhere",
                {"Retry-After": "1"},
            )
        if len(self._inflight) >= self.max_pending:
            inc("server_rejected_total")
            raise HTTPError(
                503, "overloaded",
                f"{len(self._inflight)} computes already pending "
                f"(max {self.max_pending}); retry later",
                {"Retry-After": "1"},
            )
        task = asyncio.get_running_loop().create_task(self._compute(request))
        self._inflight[key] = task
        task.add_done_callback(lambda t, key=key: self._forget_inflight(key, t))
        set_gauge("server_queue_depth", len(self._inflight))
        response = await asyncio.shield(task)
        record(response)
        return response

    def _forget_inflight(self, key: str, task: asyncio.Task) -> None:
        self._inflight.pop(key, None)
        set_gauge("server_queue_depth", len(self._inflight))
        if not task.cancelled():
            task.exception()  # consume: every waiter may have disconnected

    async def _compute(self, request: PartitionRequest):
        """Run one cache miss in the engine's worker pool.

        The compute task inherits the *first* requester's trace context
        (``create_task`` copies the contextvars), so worker-side spans
        and log records join that request's trace; coalesced joiners
        share the result but keep their own request ids.
        """
        loop = asyncio.get_running_loop()
        collect = telemetry_active()
        ctx = current_context()
        response, payload = await loop.run_in_executor(
            self.engine.executor(),
            _pool_compute,
            (request, collect, ctx.to_dict() if ctx is not None else None),
        )
        if payload is not None:
            replay_payload(payload)
            inc("worker_payloads_merged")
        if isinstance(request, RepartitionRequest):
            self._repart_cache[request.cache_key()] = response
            while len(self._repart_cache) > REPARTITION_CACHE_SIZE:
                self._repart_cache.popitem(last=False)
        else:
            self.engine.cache.put(request, response)
        return response

    def _record(self, response) -> None:
        """Per-response bookkeeping shared by every serve path."""
        self.engine.stats.record(response)
        _record_response_metrics(response)

    def _record_repartition(self, response) -> None:
        """Repartition bookkeeping: plan-shaped metrics, shared stats.

        Deliberately not :func:`_record_response_metrics` — a plan has
        migration quantities, not Table-2 partition metrics.
        """
        self.engine.stats.record(response)
        partitioner = registry.get(response.request.method).name
        inc(
            "server_repartition_total",
            source=response.source, partitioner=partitioner,
        )
        plan = response.plan
        observe("repartition_lb_after", plan.lb_after, partitioner=partitioner)
        observe(
            "repartition_fraction_moved",
            plan.fraction_moved, partitioner=partitioner,
        )
        if response.source == "computed":
            observe(
                "request_compute_seconds",
                response.elapsed_s, partitioner=partitioner,
            )
