"""Graph substrate: CSR graphs, traversal, Laplacian, METIS-format I/O."""

from .csr import CSRGraph, graph_from_edges, mesh_graph
from .generators import caterpillar, grid_2d, random_geometric, torus_2d
from .io import read_metis_graph, write_metis_graph
from .laplacian import fiedler_vector, laplacian_matrix, spectral_bisection_order
from .traversal import (
    bfs_levels,
    connected_components,
    is_connected,
    pseudo_peripheral_vertex,
)

__all__ = [
    "CSRGraph",
    "bfs_levels",
    "caterpillar",
    "connected_components",
    "fiedler_vector",
    "graph_from_edges",
    "grid_2d",
    "is_connected",
    "laplacian_matrix",
    "mesh_graph",
    "pseudo_peripheral_vertex",
    "random_geometric",
    "read_metis_graph",
    "spectral_bisection_order",
    "torus_2d",
    "write_metis_graph",
]
