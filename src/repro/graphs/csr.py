"""Weighted undirected graphs in CSR (compressed sparse row) form.

This is the substrate shared by the METIS-style partitioner and the
partition-quality metrics.  The representation mirrors what METIS
itself consumes (Sec. 2 of the paper): an undirected graph
``G = [V, E]`` with integer vertex weights (computation per element)
and integer edge weights (information exchanged across each element
boundary).

The CSR layout stores every undirected edge twice (once per endpoint)
so neighbor iteration is a contiguous slice — the cache-friendly access
pattern the HPC guides recommend — and all bulk operations (degree,
cut, volume) are vectorized NumPy reductions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._native import LIB as _NATIVE
from .._native import as_i64p as _p

__all__ = ["CSRGraph", "graph_from_edges", "mesh_graph"]


@dataclass(frozen=True)
class CSRGraph:
    """Undirected vertex- and edge-weighted graph in CSR form.

    Attributes:
        indptr: ``(n + 1,)`` int64; neighbors of vertex ``v`` live at
            ``indices[indptr[v]:indptr[v + 1]]``.
        indices: ``(2m,)`` int64 neighbor ids (each undirected edge
            appears in both endpoints' slices).
        eweights: ``(2m,)`` int64 edge weights, aligned with
            :attr:`indices`; symmetric by construction.
        vweights: ``(n,)`` int64 vertex weights.
    """

    indptr: np.ndarray
    indices: np.ndarray
    eweights: np.ndarray
    vweights: np.ndarray

    def __post_init__(self) -> None:
        for arr in (self.indptr, self.indices, self.eweights, self.vweights):
            arr.setflags(write=False)

    # -- basic shape ---------------------------------------------------
    @property
    def nvertices(self) -> int:
        return len(self.vweights)

    @property
    def nedges(self) -> int:
        """Number of undirected edges."""
        return len(self.indices) // 2

    def __len__(self) -> int:
        return self.nvertices

    # -- access --------------------------------------------------------
    def neighbors(self, v: int) -> np.ndarray:
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def neighbor_weights(self, v: int) -> np.ndarray:
        return self.eweights[self.indptr[v] : self.indptr[v + 1]]

    def degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    def adjacency_lists(self) -> tuple[list[int], list[int], list[int], list[int]]:
        """CSR arrays as plain Python int lists (cached per graph).

        The sequential kernels (matching, FM, greedy K-way, GGGP) walk
        adjacency one vertex at a time; at mesh-graph degrees (~8)
        Python-int list indexing beats NumPy scalar indexing by an
        order of magnitude, and — everything being exact int64
        arithmetic — produces bit-identical results.

        Returns:
            ``(indptr, indices, eweights, vweights)`` lists.
        """
        cached = self.__dict__.get("_adj_lists")
        if cached is None:
            cached = (
                self.indptr.tolist(),
                self.indices.tolist(),
                self.eweights.tolist(),
                self.vweights.tolist(),
            )
            object.__setattr__(self, "_adj_lists", cached)
        return cached

    def total_vweight(self) -> int:
        cached = self.__dict__.get("_total_vweight")
        if cached is None:
            cached = int(self.vweights.sum())
            object.__setattr__(self, "_total_vweight", cached)
        return cached

    def max_vweight(self) -> int:
        """Largest vertex weight (cached); 0 for the empty graph."""
        cached = self.__dict__.get("_max_vweight")
        if cached is None:
            cached = int(self.vweights.max()) if len(self.vweights) else 0
            object.__setattr__(self, "_max_vweight", cached)
        return cached

    def neighbor_slices(self) -> tuple[list, list]:
        """Per-vertex neighbor and edge-weight lists (cached).

        ``(nbrs, wts)`` with ``nbrs[v]`` / ``wts[v]`` plain-int lists —
        the feed for the sequential kernels (FM passes, greedy growth,
        BFS), which iterate ``zip(nbrs[v], wts[v])`` instead of
        re-slicing the flat CSR arrays on every visit.
        """
        cached = self.__dict__.get("_nbr_slices")
        if cached is None:
            indptr, indices, eweights, _ = self.adjacency_lists()
            n = self.nvertices
            nbrs = [None] * n
            wts = [None] * n
            lo = 0
            for v in range(n):
                hi = indptr[v + 1]
                nbrs[v] = indices[lo:hi]
                wts[v] = eweights[lo:hi]
                lo = hi
            cached = (nbrs, wts)
            object.__setattr__(self, "_nbr_slices", cached)
        return cached

    def edge_sources(self) -> np.ndarray:
        """Source vertex of every directed CSR edge, ``(2m,)`` (cached).

        ``edge_sources()[i]`` is the vertex whose adjacency slice
        contains position ``i`` — the expansion every bulk edge
        computation (cut, volume, subgraph) needs.
        """
        cached = self.__dict__.get("_edge_sources")
        if cached is None:
            cached = np.repeat(np.arange(self.nvertices), self.degrees())
            cached.setflags(write=False)
            object.__setattr__(self, "_edge_sources", cached)
        return cached

    def edge_array(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Each undirected edge once: ``(u, v, w)`` with ``u < v``."""
        src = self.edge_sources()
        mask = src < self.indices
        return src[mask], self.indices[mask], self.eweights[mask]

    def max_incident_weight(self) -> int:
        """Largest total edge weight incident to any vertex (cached).

        Bounds every move gain in the refinement kernels; the
        bucket-gain queues size their gain range with it.
        """
        cached = self.__dict__.get("_max_incident")
        if cached is None:
            n = self.nvertices
            if n == 0:
                cached = 0
            elif n <= 64:
                _, wts = self.neighbor_slices()
                cached = max(map(sum, wts))
            else:
                inc = np.zeros(n, dtype=np.int64)
                np.add.at(inc, self.edge_sources(), self.eweights)
                cached = int(inc.max())
            object.__setattr__(self, "_max_incident", cached)
        return cached

    # -- validation ------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`ValueError` on structural inconsistencies.

        Checks monotone ``indptr``, index bounds, absence of
        self-loops, adjacency symmetry and edge-weight symmetry.
        Intended for tests and for guarding partitioner inputs; cost is
        ``O(m log m)``.
        """
        n = self.nvertices
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.indices):
            raise ValueError("indptr endpoints inconsistent with indices")
        if (np.diff(self.indptr) < 0).any():
            raise ValueError("indptr must be non-decreasing")
        if len(self.indices) and (
            self.indices.min() < 0 or self.indices.max() >= n
        ):
            raise ValueError("neighbor index out of range")
        src = np.repeat(np.arange(n), self.degrees())
        if (src == self.indices).any():
            raise ValueError("self-loops are not allowed")
        fwd = np.stack([src, self.indices], axis=1)
        rev = np.stack([self.indices, src], axis=1)
        fwd_v = np.lexsort((fwd[:, 1], fwd[:, 0]))
        rev_v = np.lexsort((rev[:, 1], rev[:, 0]))
        if not np.array_equal(fwd[fwd_v], rev[rev_v]):
            raise ValueError("adjacency is not symmetric")
        if not np.array_equal(self.eweights[fwd_v], self.eweights[rev_v]):
            raise ValueError("edge weights are not symmetric")

    # -- derived quantities ----------------------------------------------
    def adjacency_matrix(self):
        """The graph as a ``scipy.sparse.csr_matrix`` of edge weights."""
        from scipy.sparse import csr_matrix

        return csr_matrix(
            (self.eweights.astype(np.float64), self.indices, self.indptr),
            shape=(self.nvertices, self.nvertices),
        )

    def subgraph(self, vertices: np.ndarray) -> tuple["CSRGraph", np.ndarray]:
        """Induced subgraph on ``vertices``.

        Returns:
            ``(sub, mapping)`` where ``mapping[i]`` is the original id
            of the subgraph's vertex ``i``.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        if _NATIVE is not None:
            sub = self._subgraph_native(vertices)
            if sub is not None:
                return sub, vertices
        if len(vertices) <= 48:
            sub = self._subgraph_small(vertices.tolist())
            if sub is not None:
                return sub, vertices
        local = -np.ones(self.nvertices, dtype=np.int64)
        local[vertices] = np.arange(len(vertices))
        src_all = self.edge_sources()
        keep = (local[src_all] >= 0) & (local[self.indices] >= 0)
        u = local[src_all[keep]]
        v = local[self.indices[keep]]
        w = self.eweights[keep]
        order = np.lexsort((v, u))
        u, v, w = u[order], v[order], w[order]
        indptr = np.searchsorted(u, np.arange(len(vertices) + 1)).astype(np.int64)
        return (
            CSRGraph(
                indptr=indptr,
                indices=v.copy(),
                eweights=w.copy(),
                vweights=self.vweights[vertices].copy(),
            ),
            vertices,
        )

    def _subgraph_native(self, vertices: np.ndarray) -> "CSRGraph | None":
        """Compiled-kernel induced subgraph for ascending vertex sets.

        Returns ``None`` (vectorized/list fallback) when the kernel
        library is unavailable or ``vertices`` is not strictly
        ascending.  Row filtering in ascending-local-id order produces
        the exact arrays of the lexsort-based path.
        """
        k = len(vertices)
        vertices = np.ascontiguousarray(vertices, dtype=np.int64)
        cap = int(self.indptr[-1])
        out_indptr = np.empty(k + 1, dtype=np.int64)
        out_indices = np.empty(cap, dtype=np.int64)
        out_weights = np.empty(cap, dtype=np.int64)
        out_vweights = np.empty(k, dtype=np.int64)
        scalars = np.empty(3, dtype=np.int64)
        nnz = _NATIVE.subgraph_extract(
            self.nvertices,
            _p(self.indptr), _p(self.indices),
            _p(self.eweights), _p(self.vweights),
            _p(vertices), k,
            _p(out_indptr), _p(out_indices), _p(out_weights),
            _p(out_vweights), _p(scalars),
        )
        if nnz < 0:
            return None
        sub = CSRGraph(
            indptr=out_indptr,
            indices=out_indices[:nnz].copy(),
            eweights=out_weights[:nnz].copy(),
            vweights=out_vweights,
        )
        object.__setattr__(sub, "_max_incident", int(scalars[0]))
        object.__setattr__(sub, "_total_vweight", int(scalars[1]))
        object.__setattr__(sub, "_max_vweight", int(scalars[2]))
        return sub

    def _subgraph_small(self, verts: list[int]) -> "CSRGraph | None":
        """List-kernel induced subgraph for small ascending vertex sets.

        Returns ``None`` when ``verts`` is not strictly ascending (the
        vectorized path handles arbitrary order).  With ascending
        vertices the local ids are monotone in the global ids, so
        filtering each (already id-sorted) parent adjacency slice
        yields the exact arrays of the lexsort-based path.
        """
        prev = -1
        for g in verts:
            if g <= prev:
                return None
            prev = g
        _, _, _, vweights = self.adjacency_lists()
        nbrs, wts = self.neighbor_slices()
        n = self.nvertices
        if n <= 4 * len(verts) + 64:
            local: list[int] = [-1] * n
            for i, g in enumerate(verts):
                local[g] = i
        else:
            # Sparse selection from a big parent: dict avoids the O(n)
            # scratch fill.
            local = _DictLocal(verts)  # type: ignore[assignment]
        sub_indptr = [0]
        sub_indices: list[int] = []
        sub_weights: list[int] = []
        app_i = sub_indices.append
        app_w = sub_weights.append
        maxinc = 0
        for g in verts:
            inc = 0
            for u, w in zip(nbrs[g], wts[g]):
                li = local[u]
                if li >= 0:
                    app_i(li)
                    app_w(w)
                    inc += w
            if inc > maxinc:
                maxinc = inc
            sub_indptr.append(len(sub_indices))
        sub_vweights = [vweights[g] for g in verts]
        sub = CSRGraph(
            indptr=np.array(sub_indptr, dtype=np.int64),
            indices=np.array(sub_indices, dtype=np.int64),
            eweights=np.array(sub_weights, dtype=np.int64),
            vweights=np.array(sub_vweights, dtype=np.int64),
        )
        # The list forms and per-vertex sums are already in hand — seed
        # the kernel caches so the partitioner doesn't recompute them
        # from the arrays.
        object.__setattr__(
            sub, "_adj_lists", (sub_indptr, sub_indices, sub_weights, sub_vweights)
        )
        object.__setattr__(sub, "_max_incident", maxinc)
        if sub_vweights:
            object.__setattr__(sub, "_total_vweight", sum(sub_vweights))
            object.__setattr__(sub, "_max_vweight", max(sub_vweights))
        return sub


class _DictLocal(dict):
    """Global→local vertex map returning ``-1`` for unselected vertices."""

    def __init__(self, verts: list[int]) -> None:
        super().__init__((g, i) for i, g in enumerate(verts))

    def __missing__(self, key: int) -> int:
        return -1


def graph_from_edges(
    nvertices: int,
    edges: np.ndarray,
    eweights: np.ndarray | None = None,
    vweights: np.ndarray | None = None,
) -> CSRGraph:
    """Build a :class:`CSRGraph` from an undirected edge list.

    Args:
        nvertices: Vertex count.
        edges: ``(m, 2)`` int array, each undirected edge once (any
            endpoint order); self-loops and duplicates are rejected.
        eweights: ``(m,)`` edge weights (default all 1).
        vweights: ``(n,)`` vertex weights (default all 1).
    """
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    m = len(edges)
    if eweights is None:
        eweights = np.ones(m, dtype=np.int64)
    else:
        eweights = np.asarray(eweights, dtype=np.int64)
        if len(eweights) != m:
            raise ValueError("eweights length mismatch")
    if vweights is None:
        vweights = np.ones(nvertices, dtype=np.int64)
    else:
        vweights = np.asarray(vweights, dtype=np.int64)
        if len(vweights) != nvertices:
            raise ValueError("vweights length mismatch")
    if m and (edges[:, 0] == edges[:, 1]).any():
        raise ValueError("self-loops are not allowed")
    lo = np.minimum(edges[:, 0], edges[:, 1])
    hi = np.maximum(edges[:, 0], edges[:, 1])
    canon = np.stack([lo, hi], axis=1)
    if m and len(np.unique(canon, axis=0)) != m:
        raise ValueError("duplicate edges are not allowed")
    src = np.concatenate([edges[:, 0], edges[:, 1]])
    dst = np.concatenate([edges[:, 1], edges[:, 0]])
    w = np.concatenate([eweights, eweights])
    order = np.lexsort((dst, src))
    src, dst, w = src[order], dst[order], w[order]
    indptr = np.searchsorted(src, np.arange(nvertices + 1)).astype(np.int64)
    return CSRGraph(indptr=indptr, indices=dst.copy(), eweights=w.copy(), vweights=vweights)


def mesh_graph(
    mesh,
    edge_weight: int = 8,
    corner_weight: int = 1,
    vweights: np.ndarray | None = None,
) -> CSRGraph:
    """The element-connectivity graph of a cubed-sphere mesh.

    Following the paper's Section 2: vertices are spectral elements
    (weight = computation per element, uniform by default); edges carry
    the amount of information exchanged across each boundary — ``np``
    GLL points for edge neighbors (SEAM uses ``np = 8``) and a single
    point for corner neighbors.

    Args:
        mesh: A :class:`repro.cubesphere.CubedSphereMesh`.
        edge_weight: Weight of edge-neighbor links (shared points).
        corner_weight: Weight of corner-neighbor links.
        vweights: Optional per-element computation weights.
    """
    edge_pairs, corner_pairs = mesh.neighbor_pairs()
    edges = np.concatenate([edge_pairs, corner_pairs], axis=0)
    ew = np.concatenate(
        [
            np.full(len(edge_pairs), edge_weight, dtype=np.int64),
            np.full(len(corner_pairs), corner_weight, dtype=np.int64),
        ]
    )
    return graph_from_edges(mesh.nelem, edges, ew, vweights)
