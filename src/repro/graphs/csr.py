"""Weighted undirected graphs in CSR (compressed sparse row) form.

This is the substrate shared by the METIS-style partitioner and the
partition-quality metrics.  The representation mirrors what METIS
itself consumes (Sec. 2 of the paper): an undirected graph
``G = [V, E]`` with integer vertex weights (computation per element)
and integer edge weights (information exchanged across each element
boundary).

The CSR layout stores every undirected edge twice (once per endpoint)
so neighbor iteration is a contiguous slice — the cache-friendly access
pattern the HPC guides recommend — and all bulk operations (degree,
cut, volume) are vectorized NumPy reductions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CSRGraph", "graph_from_edges", "mesh_graph"]


@dataclass(frozen=True)
class CSRGraph:
    """Undirected vertex- and edge-weighted graph in CSR form.

    Attributes:
        indptr: ``(n + 1,)`` int64; neighbors of vertex ``v`` live at
            ``indices[indptr[v]:indptr[v + 1]]``.
        indices: ``(2m,)`` int64 neighbor ids (each undirected edge
            appears in both endpoints' slices).
        eweights: ``(2m,)`` int64 edge weights, aligned with
            :attr:`indices`; symmetric by construction.
        vweights: ``(n,)`` int64 vertex weights.
    """

    indptr: np.ndarray
    indices: np.ndarray
    eweights: np.ndarray
    vweights: np.ndarray

    def __post_init__(self) -> None:
        for arr in (self.indptr, self.indices, self.eweights, self.vweights):
            arr.setflags(write=False)

    # -- basic shape ---------------------------------------------------
    @property
    def nvertices(self) -> int:
        return len(self.vweights)

    @property
    def nedges(self) -> int:
        """Number of undirected edges."""
        return len(self.indices) // 2

    def __len__(self) -> int:
        return self.nvertices

    # -- access --------------------------------------------------------
    def neighbors(self, v: int) -> np.ndarray:
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def neighbor_weights(self, v: int) -> np.ndarray:
        return self.eweights[self.indptr[v] : self.indptr[v + 1]]

    def degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    def total_vweight(self) -> int:
        return int(self.vweights.sum())

    def edge_array(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Each undirected edge once: ``(u, v, w)`` with ``u < v``."""
        src = np.repeat(np.arange(self.nvertices), self.degrees())
        mask = src < self.indices
        return src[mask], self.indices[mask], self.eweights[mask]

    # -- validation ------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`ValueError` on structural inconsistencies.

        Checks monotone ``indptr``, index bounds, absence of
        self-loops, adjacency symmetry and edge-weight symmetry.
        Intended for tests and for guarding partitioner inputs; cost is
        ``O(m log m)``.
        """
        n = self.nvertices
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.indices):
            raise ValueError("indptr endpoints inconsistent with indices")
        if (np.diff(self.indptr) < 0).any():
            raise ValueError("indptr must be non-decreasing")
        if len(self.indices) and (
            self.indices.min() < 0 or self.indices.max() >= n
        ):
            raise ValueError("neighbor index out of range")
        src = np.repeat(np.arange(n), self.degrees())
        if (src == self.indices).any():
            raise ValueError("self-loops are not allowed")
        fwd = np.stack([src, self.indices], axis=1)
        rev = np.stack([self.indices, src], axis=1)
        fwd_v = np.lexsort((fwd[:, 1], fwd[:, 0]))
        rev_v = np.lexsort((rev[:, 1], rev[:, 0]))
        if not np.array_equal(fwd[fwd_v], rev[rev_v]):
            raise ValueError("adjacency is not symmetric")
        if not np.array_equal(self.eweights[fwd_v], self.eweights[rev_v]):
            raise ValueError("edge weights are not symmetric")

    # -- derived quantities ----------------------------------------------
    def adjacency_matrix(self):
        """The graph as a ``scipy.sparse.csr_matrix`` of edge weights."""
        from scipy.sparse import csr_matrix

        return csr_matrix(
            (self.eweights.astype(np.float64), self.indices, self.indptr),
            shape=(self.nvertices, self.nvertices),
        )

    def subgraph(self, vertices: np.ndarray) -> tuple["CSRGraph", np.ndarray]:
        """Induced subgraph on ``vertices``.

        Returns:
            ``(sub, mapping)`` where ``mapping[i]`` is the original id
            of the subgraph's vertex ``i``.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        local = -np.ones(self.nvertices, dtype=np.int64)
        local[vertices] = np.arange(len(vertices))
        src_all = np.repeat(np.arange(self.nvertices), self.degrees())
        keep = (local[src_all] >= 0) & (local[self.indices] >= 0)
        u = local[src_all[keep]]
        v = local[self.indices[keep]]
        w = self.eweights[keep]
        order = np.lexsort((v, u))
        u, v, w = u[order], v[order], w[order]
        indptr = np.searchsorted(u, np.arange(len(vertices) + 1)).astype(np.int64)
        return (
            CSRGraph(
                indptr=indptr,
                indices=v.copy(),
                eweights=w.copy(),
                vweights=self.vweights[vertices].copy(),
            ),
            vertices,
        )


def graph_from_edges(
    nvertices: int,
    edges: np.ndarray,
    eweights: np.ndarray | None = None,
    vweights: np.ndarray | None = None,
) -> CSRGraph:
    """Build a :class:`CSRGraph` from an undirected edge list.

    Args:
        nvertices: Vertex count.
        edges: ``(m, 2)`` int array, each undirected edge once (any
            endpoint order); self-loops and duplicates are rejected.
        eweights: ``(m,)`` edge weights (default all 1).
        vweights: ``(n,)`` vertex weights (default all 1).
    """
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    m = len(edges)
    if eweights is None:
        eweights = np.ones(m, dtype=np.int64)
    else:
        eweights = np.asarray(eweights, dtype=np.int64)
        if len(eweights) != m:
            raise ValueError("eweights length mismatch")
    if vweights is None:
        vweights = np.ones(nvertices, dtype=np.int64)
    else:
        vweights = np.asarray(vweights, dtype=np.int64)
        if len(vweights) != nvertices:
            raise ValueError("vweights length mismatch")
    if m and (edges[:, 0] == edges[:, 1]).any():
        raise ValueError("self-loops are not allowed")
    lo = np.minimum(edges[:, 0], edges[:, 1])
    hi = np.maximum(edges[:, 0], edges[:, 1])
    canon = np.stack([lo, hi], axis=1)
    if m and len(np.unique(canon, axis=0)) != m:
        raise ValueError("duplicate edges are not allowed")
    src = np.concatenate([edges[:, 0], edges[:, 1]])
    dst = np.concatenate([edges[:, 1], edges[:, 0]])
    w = np.concatenate([eweights, eweights])
    order = np.lexsort((dst, src))
    src, dst, w = src[order], dst[order], w[order]
    indptr = np.searchsorted(src, np.arange(nvertices + 1)).astype(np.int64)
    return CSRGraph(indptr=indptr, indices=dst.copy(), eweights=w.copy(), vweights=vweights)


def mesh_graph(
    mesh,
    edge_weight: int = 8,
    corner_weight: int = 1,
    vweights: np.ndarray | None = None,
) -> CSRGraph:
    """The element-connectivity graph of a cubed-sphere mesh.

    Following the paper's Section 2: vertices are spectral elements
    (weight = computation per element, uniform by default); edges carry
    the amount of information exchanged across each boundary — ``np``
    GLL points for edge neighbors (SEAM uses ``np = 8``) and a single
    point for corner neighbors.

    Args:
        mesh: A :class:`repro.cubesphere.CubedSphereMesh`.
        edge_weight: Weight of edge-neighbor links (shared points).
        corner_weight: Weight of corner-neighbor links.
        vweights: Optional per-element computation weights.
    """
    edge_pairs, corner_pairs = mesh.neighbor_pairs()
    edges = np.concatenate([edge_pairs, corner_pairs], axis=0)
    ew = np.concatenate(
        [
            np.full(len(edge_pairs), edge_weight, dtype=np.int64),
            np.full(len(corner_pairs), corner_weight, dtype=np.int64),
        ]
    )
    return graph_from_edges(mesh.nelem, edges, ew, vweights)
