"""METIS-format graph I/O.

Reads and writes the textual graph format of the METIS distribution so
partitioning inputs can be exchanged with external tools (or inspected
by hand).  Format reference: Karypis & Kumar, METIS 4 manual, Sec. 4.5:

* line 1: ``<n> <m> [fmt [ncon]]`` where ``fmt`` is a 3-digit flag
  string — ``1xx`` vertex sizes (unsupported here), ``x1x`` vertex
  weights, ``xx1`` edge weights;
* line ``1 + v``: optional vertex weight, then pairs
  ``<neighbor> [weight]`` with **1-based** neighbor ids;
* ``%`` starts a comment line.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .csr import CSRGraph, graph_from_edges

__all__ = ["write_metis_graph", "read_metis_graph"]


def write_metis_graph(graph: CSRGraph, path: str | Path) -> None:
    """Write a graph in METIS format (always with both weight kinds)."""
    path = Path(path)
    lines = [f"{graph.nvertices} {graph.nedges} 011"]
    for v in range(graph.nvertices):
        parts = [str(int(graph.vweights[v]))]
        for u, w in zip(graph.neighbors(v), graph.neighbor_weights(v)):
            parts.append(str(int(u) + 1))
            parts.append(str(int(w)))
        lines.append(" ".join(parts))
    path.write_text("\n".join(lines) + "\n")


def read_metis_graph(path: str | Path) -> CSRGraph:
    """Read a METIS-format graph (fmt codes 000, 001, 010, 011)."""
    path = Path(path)
    rows = [
        line.strip()
        for line in path.read_text().splitlines()
        if line.strip() and not line.lstrip().startswith("%")
    ]
    if not rows:
        raise ValueError(f"{path}: empty graph file")
    header = rows[0].split()
    n, m = int(header[0]), int(header[1])
    fmt = header[2] if len(header) > 2 else "000"
    fmt = fmt.zfill(3)
    if fmt[0] == "1":
        raise ValueError("vertex sizes (fmt=1xx) are not supported")
    has_vw = fmt[1] == "1"
    has_ew = fmt[2] == "1"
    if len(rows) - 1 != n:
        raise ValueError(f"{path}: expected {n} vertex lines, got {len(rows) - 1}")
    vweights = np.ones(n, dtype=np.int64)
    edges: dict[tuple[int, int], int] = {}
    for v in range(n):
        toks = [int(t) for t in rows[1 + v].split()]
        pos = 0
        if has_vw:
            vweights[v] = toks[0]
            pos = 1
        step = 2 if has_ew else 1
        while pos < len(toks):
            u = toks[pos] - 1
            w = toks[pos + 1] if has_ew else 1
            pos += step
            key = (min(v, u), max(v, u))
            if key in edges:
                if edges[key] != w:
                    raise ValueError(f"{path}: asymmetric weight on edge {key}")
            else:
                edges[key] = w
    if len(edges) != m:
        raise ValueError(f"{path}: header says {m} edges, found {len(edges)}")
    if edges:
        earr = np.array(sorted(edges), dtype=np.int64)
        ew = np.array([edges[tuple(e)] for e in earr], dtype=np.int64)
    else:
        earr = np.empty((0, 2), dtype=np.int64)
        ew = np.empty(0, dtype=np.int64)
    return graph_from_edges(n, earr, ew, vweights)
