"""Graph traversal utilities: BFS, connected components, peripheries.

These back the METIS-style partitioner (greedy graph growing seeds
initial bisections from pseudo-peripheral vertices) and validation
(partition parts should usually be connected for good quality, and the
mesh graph itself must be connected).
"""

from __future__ import annotations

import numpy as np

from .csr import CSRGraph

__all__ = [
    "bfs_levels",
    "connected_components",
    "is_connected",
    "pseudo_peripheral_vertex",
]


def bfs_levels(graph: CSRGraph, source: int, mask: np.ndarray | None = None) -> np.ndarray:
    """Breadth-first level of every vertex from ``source``.

    Args:
        graph: The graph.
        source: Start vertex.
        mask: Optional boolean array restricting traversal to a vertex
            subset (vertices outside keep level ``-1``).

    Returns:
        ``(n,)`` int array of BFS levels; ``-1`` for unreachable
        vertices.
    """
    mask_l = None if mask is None else mask.tolist()
    return np.array(_bfs_levels_list(graph, source, mask_l), dtype=np.int64)


def _bfs_levels_list(
    graph: CSRGraph, source: int, mask_l: list | None
) -> list[int]:
    """BFS levels as a plain Python list (the kernel behind the API)."""
    n = graph.nvertices
    if mask_l is not None and not mask_l[source]:
        return [-1] * n
    nbrs, _ = graph.neighbor_slices()
    level = [-1] * n
    level[source] = 0
    frontier = [source]
    depth = 0
    while frontier:
        depth += 1
        nxt: list[int] = []
        append = nxt.append
        for v in frontier:
            for u in nbrs[v]:
                if level[u] < 0 and (mask_l is None or mask_l[u]):
                    level[u] = depth
                    append(u)
        frontier = nxt
    return level


def connected_components(graph: CSRGraph) -> np.ndarray:
    """Component label of every vertex (labels are 0-based, dense)."""
    n = graph.nvertices
    comp = -np.ones(n, dtype=np.int64)
    label = 0
    for start in range(n):
        if comp[start] >= 0:
            continue
        comp[start] = label
        stack = [start]
        while stack:
            v = stack.pop()
            for u in graph.neighbors(v):
                if comp[u] < 0:
                    comp[u] = label
                    stack.append(int(u))
        label += 1
    return comp


def is_connected(graph: CSRGraph) -> bool:
    """Whether the graph is connected (empty graphs count as connected)."""
    if graph.nvertices == 0:
        return True
    return bool((connected_components(graph) == 0).all())


def pseudo_peripheral_vertex(
    graph: CSRGraph, mask: np.ndarray | None = None, start: int | None = None
) -> int:
    """A vertex of near-maximal eccentricity (George-Liu heuristic).

    Repeatedly BFS from the current candidate and jump to a farthest
    vertex until the eccentricity stops growing.  Used to seed greedy
    graph growing so the grown region sweeps across the graph instead
    of curling around an interior seed.
    """
    if start is None:
        if mask is None:
            start = 0
        else:
            nz = np.flatnonzero(mask)
            if len(nz) == 0:
                raise ValueError("mask selects no vertices")
            start = int(nz[0])
    mask_l = None if mask is None else mask.tolist()
    current = start
    ecc = -1
    while True:
        level = _bfs_levels_list(graph, current, mask_l)
        far = max(level)
        if far <= ecc:
            return current
        ecc = far
        current = level.index(far)
