"""Graph traversal utilities: BFS, connected components, peripheries.

These back the METIS-style partitioner (greedy graph growing seeds
initial bisections from pseudo-peripheral vertices) and validation
(partition parts should usually be connected for good quality, and the
mesh graph itself must be connected).
"""

from __future__ import annotations

import numpy as np

from .csr import CSRGraph

__all__ = [
    "bfs_levels",
    "connected_components",
    "is_connected",
    "pseudo_peripheral_vertex",
]


def bfs_levels(graph: CSRGraph, source: int, mask: np.ndarray | None = None) -> np.ndarray:
    """Breadth-first level of every vertex from ``source``.

    Args:
        graph: The graph.
        source: Start vertex.
        mask: Optional boolean array restricting traversal to a vertex
            subset (vertices outside keep level ``-1``).

    Returns:
        ``(n,)`` int array of BFS levels; ``-1`` for unreachable
        vertices.
    """
    n = graph.nvertices
    level = -np.ones(n, dtype=np.int64)
    if mask is not None and not mask[source]:
        return level
    level[source] = 0
    frontier = np.array([source], dtype=np.int64)
    depth = 0
    while len(frontier):
        depth += 1
        nxt = []
        for v in frontier:
            for u in graph.neighbors(int(v)):
                if level[u] < 0 and (mask is None or mask[u]):
                    level[u] = depth
                    nxt.append(u)
        frontier = np.array(nxt, dtype=np.int64)
    return level


def connected_components(graph: CSRGraph) -> np.ndarray:
    """Component label of every vertex (labels are 0-based, dense)."""
    n = graph.nvertices
    comp = -np.ones(n, dtype=np.int64)
    label = 0
    for start in range(n):
        if comp[start] >= 0:
            continue
        comp[start] = label
        stack = [start]
        while stack:
            v = stack.pop()
            for u in graph.neighbors(v):
                if comp[u] < 0:
                    comp[u] = label
                    stack.append(int(u))
        label += 1
    return comp


def is_connected(graph: CSRGraph) -> bool:
    """Whether the graph is connected (empty graphs count as connected)."""
    if graph.nvertices == 0:
        return True
    return bool((connected_components(graph) == 0).all())


def pseudo_peripheral_vertex(
    graph: CSRGraph, mask: np.ndarray | None = None, start: int | None = None
) -> int:
    """A vertex of near-maximal eccentricity (George-Liu heuristic).

    Repeatedly BFS from the current candidate and jump to a farthest
    vertex until the eccentricity stops growing.  Used to seed greedy
    graph growing so the grown region sweeps across the graph instead
    of curling around an interior seed.
    """
    if start is None:
        if mask is None:
            start = 0
        else:
            nz = np.flatnonzero(mask)
            if len(nz) == 0:
                raise ValueError("mask selects no vertices")
            start = int(nz[0])
    current = start
    ecc = -1
    while True:
        level = bfs_levels(graph, current, mask)
        far = int(level.max())
        if far <= ecc:
            return current
        ecc = far
        current = int(np.flatnonzero(level == far)[0])
