"""Graph Laplacian and spectral (Fiedler) bisection support.

METIS's ancestry is spectral partitioning; our multilevel partitioner
offers a spectral initial bisection (Fiedler-vector split) alongside
greedy graph growing.  The Fiedler vector is computed with SciPy's
sparse eigensolvers on the (weighted) Laplacian.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import csr_matrix, diags
from scipy.sparse.linalg import eigsh

from .csr import CSRGraph

__all__ = ["laplacian_matrix", "fiedler_vector", "spectral_bisection_order"]


def laplacian_matrix(graph: CSRGraph) -> csr_matrix:
    """Weighted combinatorial Laplacian ``L = D - A``."""
    a = graph.adjacency_matrix()
    d = np.asarray(a.sum(axis=1)).ravel()
    return (diags(d) - a).tocsr()


def fiedler_vector(graph: CSRGraph, seed: int = 0) -> np.ndarray:
    """Eigenvector of the second-smallest Laplacian eigenvalue.

    Args:
        graph: A *connected* graph with at least two vertices.
        seed: Seed for the eigensolver's start vector (determinism).

    Returns:
        ``(n,)`` float array (sign fixed so the first nonzero entry is
        positive, for reproducibility).
    """
    n = graph.nvertices
    if n < 2:
        raise ValueError("fiedler vector needs at least 2 vertices")
    lap = laplacian_matrix(graph)
    rng = np.random.default_rng(seed)
    v0 = rng.standard_normal(n)
    if n <= 64:
        # Dense solve is both faster and more robust for tiny graphs.
        vals, vecs = np.linalg.eigh(lap.toarray())
        fiedler = vecs[:, np.argsort(vals)[1]]
    else:
        # Shift-invert around 0 converges quickly for small eigenvalues.
        vals, vecs = eigsh(lap, k=2, sigma=-1e-8, which="LM", v0=v0)
        fiedler = vecs[:, np.argsort(vals)[1]]
    nz = np.flatnonzero(np.abs(fiedler) > 1e-12)
    if len(nz) and fiedler[nz[0]] < 0:
        fiedler = -fiedler
    return fiedler


def spectral_bisection_order(graph: CSRGraph, seed: int = 0) -> np.ndarray:
    """Vertices sorted by Fiedler-vector value.

    Splitting this order at the balance point gives the spectral
    bisection; exposing the full order lets the caller honor vertex
    weights exactly.
    """
    f = fiedler_vector(graph, seed)
    return np.argsort(f, kind="stable")
