"""Synthetic graph generators for partitioner testing.

The cubed-sphere is one (nearly regular) graph; a credible partitioner
must behave on other topologies too.  These generators back the test
suite and the partitioner-robustness bench:

* :func:`grid_2d` — planar grid (the classic partitioning benchmark);
* :func:`torus_2d` — periodic grid, no boundary to hide cuts at;
* :func:`random_geometric` — unit-square proximity graph, irregular
  degrees (the unstructured-mesh stand-in);
* :func:`caterpillar` — a path with leaves, adversarial for balance
  because leaves concentrate weight at the spine.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRGraph, graph_from_edges

__all__ = ["grid_2d", "torus_2d", "random_geometric", "caterpillar"]


def grid_2d(nx: int, ny: int) -> CSRGraph:
    """4-connected ``nx x ny`` grid with unit weights."""
    if nx < 1 or ny < 1:
        raise ValueError("grid dimensions must be positive")
    edges = []
    for x in range(nx):
        for y in range(ny):
            v = x * ny + y
            if x + 1 < nx:
                edges.append((v, (x + 1) * ny + y))
            if y + 1 < ny:
                edges.append((v, v + 1))
    return graph_from_edges(nx * ny, np.array(edges, dtype=np.int64).reshape(-1, 2))


def torus_2d(nx: int, ny: int) -> CSRGraph:
    """4-connected periodic grid (every vertex has degree 4)."""
    if nx < 3 or ny < 3:
        raise ValueError("torus dimensions must be >= 3 (else multi-edges)")
    edges = []
    for x in range(nx):
        for y in range(ny):
            v = x * ny + y
            edges.append((v, ((x + 1) % nx) * ny + y))
            edges.append((v, x * ny + (y + 1) % ny))
    return graph_from_edges(nx * ny, np.array(edges, dtype=np.int64))


def random_geometric(
    n: int, radius: float, seed: int = 0, ensure_connected: bool = True
) -> CSRGraph:
    """Proximity graph of ``n`` uniform points in the unit square.

    Args:
        n: Vertex count.
        radius: Connection radius.
        seed: RNG seed.
        ensure_connected: Chain consecutive points (by x order) that
            ended up isolated so partitioners get a connected input.
    """
    rng = np.random.default_rng(seed)
    pts = rng.uniform(size=(n, 2))
    d2 = ((pts[:, None, :] - pts[None, :, :]) ** 2).sum(axis=2)
    iu, ju = np.triu_indices(n, k=1)
    mask = d2[iu, ju] <= radius * radius
    edges = set(zip(iu[mask].tolist(), ju[mask].tolist()))
    if ensure_connected:
        order = np.argsort(pts[:, 0], kind="stable")
        for a, b in zip(order, order[1:]):
            key = (min(int(a), int(b)), max(int(a), int(b)))
            edges.add(key)
    arr = np.array(sorted(edges), dtype=np.int64)
    return graph_from_edges(n, arr)


def caterpillar(spine: int, legs: int) -> CSRGraph:
    """A spine path with ``legs`` leaf vertices hanging off each node.

    Leaves make balanced low-cut partitions hard: cutting near a spine
    vertex strands all its leaves.
    """
    if spine < 2 or legs < 0:
        raise ValueError("need spine >= 2 and legs >= 0")
    edges = []
    n = spine * (1 + legs)
    for s in range(spine):
        v = s * (1 + legs)
        if s + 1 < spine:
            edges.append((v, (s + 1) * (1 + legs)))
        for leg in range(legs):
            edges.append((v, v + 1 + leg))
    return graph_from_edges(n, np.array(edges, dtype=np.int64))
