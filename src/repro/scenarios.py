"""Named per-element weight scenarios for dynamic load balancing.

The weighted-partitioning papers this extension reproduces (the
Vlasiator case study, the reservoir-simulation Hilbert work, the AMR
literature the paper's introduction cites) all share one workload
shape: a per-element computational weight field that *moves* over
time.  This module provides deterministic generators for the canonical
shapes on the cubed-sphere, addressable by name so a
:class:`~repro.service.requests.PartitionRequest` (and the HTTP
server behind it) can say ``{"scenario": "storm", "step": 17}``
instead of shipping ``6 Ne^2`` floats:

* ``storm``    — a Gaussian weight bump circling the equator (a storm
  system tracked by physics-heavy columns);
* ``daynight`` — insolation load: the sunlit hemisphere costs more
  (photochemistry), with the subsolar point circling the sphere;
* ``amr``      — an adaptive refine/coarsen cycle: a cap region is
  refined ``level`` times (weight ``4^level`` leaves per element) with
  the level breathing 0 → max → 0 over the cycle.

Every generator is a pure function of ``(ne, step, params)`` — the
same name + step + params always produce bit-identical weights in any
process, which is what makes scenario requests content-addressable
and cacheable.  All weights are strictly positive and finite by
construction (enforced again at the service boundary by
:func:`repro.partition.registry.validate_weights`).
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = [
    "Scenario",
    "UnknownScenarioError",
    "available_scenarios",
    "get_scenario",
    "register_scenario",
    "scenario_weights",
    "specs",
]


class UnknownScenarioError(ValueError):
    """No weight scenario registered under the requested name."""


@dataclass(frozen=True)
class Scenario:
    """A registered weight-scenario generator.

    Attributes:
        name: Registry key (what requests name in ``"scenario"``).
        generate: ``(ne, step, **params) -> (6 ne^2,)`` float64 weights.
        description: One-line summary for listings.
        params: Accepted parameter names and their defaults.
    """

    name: str
    generate: Callable[..., np.ndarray]
    description: str = ""
    params: tuple[tuple[str, float], ...] = ()


_REGISTRY: dict[str, Scenario] = {}


def register_scenario(spec: Scenario, *, replace: bool = False) -> Scenario:
    """Add a scenario to the registry (mirrors the partitioner registry)."""
    if not spec.name or not spec.name.isidentifier():
        raise ValueError(f"scenario name must be an identifier, got {spec.name!r}")
    if spec.name in _REGISTRY and not replace:
        raise ValueError(f"scenario {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_scenario(name: str) -> Scenario:
    """Resolve a scenario name, with a did-you-mean on typos."""
    spec = _REGISTRY.get(name)
    if spec is not None:
        return spec
    close = difflib.get_close_matches(str(name), _REGISTRY, n=1, cutoff=0.5)
    hint = f"; did you mean {close[0]!r}?" if close else ""
    raise UnknownScenarioError(
        f"unknown scenario {name!r}; choose from {available_scenarios()}{hint}"
    )


def available_scenarios() -> tuple[str, ...]:
    """Registered scenario names, in registration order."""
    return tuple(_REGISTRY)


def specs() -> tuple[Scenario, ...]:
    """Registered scenarios, in registration order."""
    return tuple(_REGISTRY.values())


def scenario_weights(
    name: str, ne: int, step: int = 0, **params
) -> np.ndarray:
    """Generate the weights of scenario ``name`` at trajectory ``step``.

    Args:
        name: Registered scenario name.
        ne: Elements per cube-face edge.
        step: Trajectory step (scenarios are periodic in ``nsteps``).
        **params: Scenario parameters (see each scenario's ``params``).

    Returns:
        ``(6 ne^2,)`` float64 strictly-positive weights.

    Raises:
        UnknownScenarioError: Unregistered name (with a did-you-mean).
        ValueError: A parameter the scenario does not accept.
    """
    spec = get_scenario(name)
    known = {k for k, _ in spec.params}
    unknown = set(params) - known
    if unknown:
        raise ValueError(
            f"scenario {name!r} does not accept parameters "
            f"{sorted(unknown)}; accepted: {sorted(known)}"
        )
    weights = spec.generate(int(ne), int(step), **params)
    return np.ascontiguousarray(weights, dtype=np.float64)


def _centers_lonlat(ne: int) -> tuple[np.ndarray, np.ndarray]:
    """Element-center (lon, lat) of the cubed-sphere at ``ne`` (cached mesh)."""
    from .cubesphere.mesh import cubed_sphere_mesh

    return cubed_sphere_mesh(ne).centers_lonlat


def _angular_distance(
    lon: np.ndarray, lat: np.ndarray, lon0: float, lat0: float
) -> np.ndarray:
    """Great-circle distance (radians) from every center to one point."""
    return np.arccos(
        np.clip(
            np.sin(lat) * np.sin(lat0)
            + np.cos(lat) * np.cos(lat0) * np.cos(lon - lon0),
            -1.0,
            1.0,
        )
    )


def _storm(
    ne: int,
    step: int,
    nsteps: float = 100,
    amplitude: float = 8.0,
    sigma: float = 0.5,
    lat0: float = 0.0,
) -> np.ndarray:
    """Gaussian weight bump circling the sphere at latitude ``lat0``."""
    lon, lat = _centers_lonlat(ne)
    lon0 = 2.0 * np.pi * (step % nsteps) / nsteps
    d = _angular_distance(lon, lat, lon0, float(lat0))
    return 1.0 + float(amplitude) * np.exp(-0.5 * (d / float(sigma)) ** 2)


def _daynight(
    ne: int,
    step: int,
    nsteps: float = 100,
    day_weight: float = 4.0,
    night_weight: float = 1.0,
) -> np.ndarray:
    """Insolation load: sunlit columns cost ``day_weight``, dark ones
    ``night_weight``, blended by the cosine of the solar zenith angle."""
    if not 0 < night_weight <= day_weight:
        raise ValueError(
            "daynight needs 0 < night_weight <= day_weight, got "
            f"night_weight={night_weight}, day_weight={day_weight}"
        )
    lon, lat = _centers_lonlat(ne)
    lon_sun = 2.0 * np.pi * (step % nsteps) / nsteps
    cosz = np.maximum(np.cos(lat) * np.cos(lon - lon_sun), 0.0)
    return float(night_weight) + (float(day_weight) - float(night_weight)) * cosz


def _amr(
    ne: int,
    step: int,
    nsteps: float = 100,
    max_level: float = 2,
    radius: float = 0.7,
    lon0: float = 0.0,
    lat0: float = 0.3,
) -> np.ndarray:
    """Refine/coarsen cycle: a fixed cap is refined ``level`` times,
    with the level running 0 -> max_level -> 0 over one cycle (weight
    ``4^level`` = leaves per refined quad element)."""
    max_level = int(max_level)
    if max_level < 1:
        raise ValueError(f"amr needs max_level >= 1, got {max_level}")
    lon, lat = _centers_lonlat(ne)
    d = _angular_distance(lon, lat, float(lon0), float(lat0))
    # Triangle wave over the cycle: 0, 1, ..., max, ..., 1 (period
    # 2 * max_level phases spread over nsteps).
    phase = (step % nsteps) / nsteps * (2 * max_level)
    level = int(round(max_level - abs(phase - max_level)))
    weights = np.ones_like(d)
    weights[d < float(radius)] = 4.0 ** level
    return weights


register_scenario(Scenario(
    name="storm",
    generate=_storm,
    description="Gaussian weight bump circling the sphere (moving storm)",
    params=(
        ("nsteps", 100), ("amplitude", 8.0), ("sigma", 0.5), ("lat0", 0.0),
    ),
))
register_scenario(Scenario(
    name="daynight",
    generate=_daynight,
    description="sunlit-hemisphere load rotating with the subsolar point",
    params=(("nsteps", 100), ("day_weight", 4.0), ("night_weight", 1.0)),
))
register_scenario(Scenario(
    name="amr",
    generate=_amr,
    description="refine/coarsen cycle: a cap's leaf count breathes 0->max->0",
    params=(
        ("nsteps", 100), ("max_level", 2), ("radius", 0.7),
        ("lon0", 0.0), ("lat0", 0.3),
    ),
))
