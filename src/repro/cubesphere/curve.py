"""A single continuous space-filling curve over the whole cubed-sphere.

Paper Section 3, Figure 6: the face-local curves are chained so that
"the beginning and end of the space-filling curve on each face [are]
aligned with the curves on adjoining faces", producing one continuous
curve that traverses all ``6 * Ne^2`` elements.

Because every face-local curve obeys the canonical contract (enter at
one corner cell, exit at an adjacent corner cell of the same side), a
global chaining is fully specified by (a) an ordering of the six faces
in which consecutive faces share a cube edge, and (b) one dihedral
orientation per face.  Rather than hand-transcribing the paper's
figure, the assignment is *searched*: candidate chains and orientations
are enumerated deterministically and validated against the exact mesh
edge-adjacency, so the result is correct by construction for every
resolution (the corner-cell alignment across a cube edge does not
depend on ``Ne``, but the validation is re-run per mesh anyway).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from itertools import permutations

import numpy as np

from ..sfc.factorization import default_schedule, schedule_size
from ..sfc.generator import generate_curve
from ..sfc.keys import KEY_DTYPE, _face_keys_c, curve_keys, schedule_tables
from ..sfc.transforms import ALL_TRANSFORMS, Transform
from ..telemetry import span
from .mesh import CubedSphereMesh, cubed_sphere_mesh
from .topology import NUM_FACES

__all__ = [
    "CubedSphereCurve",
    "cubed_sphere_curve",
    "element_keys",
    "face_chain",
    "FaceChain",
    "find_face_chain",
]


@dataclass(frozen=True)
class FaceChain:
    """A validated face ordering + per-face orientation.

    Attributes:
        faces: The six face indices in traversal order.
        transforms: Dihedral orientation applied to the canonical
            face-local curve on each face (aligned with :attr:`faces`).
    """

    faces: tuple[int, ...]
    transforms: tuple[Transform, ...]


def _face_adjacency(mesh: CubedSphereMesh) -> set[tuple[int, int]]:
    """Pairs of faces sharing a cube edge, derived from the mesh."""
    pairs = set()
    edge_pairs, _ = mesh.neighbor_pairs()
    ne2 = mesh.ne * mesh.ne
    fa = edge_pairs[:, 0] // ne2
    fb = edge_pairs[:, 1] // ne2
    for a, b in zip(fa, fb):
        if a != b:
            pairs.add((min(int(a), int(b)), max(int(a), int(b))))
    return pairs


def _entry_exit_gids(
    mesh: CubedSphereMesh, face: int, tr: Transform
) -> tuple[int, int]:
    """Global ids of the first/last element of a face under ``tr``."""
    n = mesh.ne
    ex, ey = tr.apply(0, 0, n)
    qx, qy = tr.apply(n - 1, 0, n)
    return mesh.gid(face, int(ex), int(ey)), mesh.gid(face, int(qx), int(qy))


def find_face_chain(mesh: CubedSphereMesh) -> FaceChain:
    """Deterministically find a valid global chaining for a mesh.

    Enumerates face orderings (Hamiltonian paths of the face-adjacency
    graph, lexicographic order) and per-face orientations (fixed
    transform order) and returns the first assignment in which the exit
    element of each face is an edge neighbor of the entry element of
    the next face.

    Raises:
        RuntimeError: If no valid chaining exists (cannot happen for a
            cube; kept as a guard against topology regressions).
    """
    adjacent = _face_adjacency(mesh)

    def faces_adjacent(a: int, b: int) -> bool:
        return (min(a, b), max(a, b)) in adjacent

    edge_adj = mesh.edge_adjacency

    def elements_adjacent(a: int, b: int) -> bool:
        return b in edge_adj.neighbors(a)

    for order in permutations(range(NUM_FACES)):
        if any(
            not faces_adjacent(order[i], order[i + 1])
            for i in range(NUM_FACES - 1)
        ):
            continue
        # Depth-first assignment of one transform per face with
        # entry/exit continuity pruning.
        chosen: list[Transform] = []

        def extend(i: int, prev_exit: int | None) -> bool:
            if i == NUM_FACES:
                return True
            for tr in ALL_TRANSFORMS:
                entry, exit_ = _entry_exit_gids(mesh, order[i], tr)
                if prev_exit is not None and not elements_adjacent(
                    prev_exit, entry
                ):
                    continue
                chosen.append(tr)
                if extend(i + 1, exit_):
                    return True
                chosen.pop()
            return False

        if extend(0, None):
            return FaceChain(faces=tuple(order), transforms=tuple(chosen))
    raise RuntimeError("no continuous face chaining found (topology bug?)")


@lru_cache(maxsize=1)
def face_chain() -> FaceChain:
    """The canonical face chain, independent of resolution.

    Entry/exit cells of a face-local curve are corner cells whose
    cross-edge alignment does not depend on ``Ne`` (the transforms act
    affinely in the face size), so the deterministic search returns the
    same chain for every ``ne >= 2`` — validated by
    ``tests/cubesphere/test_keys.py`` — and it can be computed once on
    a tiny mesh.  At ``ne = 1`` every transform fixes the single cell,
    so the canonical chain's *face order* (which the search also
    reproduces there) is all that matters and keys still match.
    """
    return find_face_chain(cubed_sphere_mesh(2))


@lru_cache(maxsize=1)
def _chain_key_tables() -> tuple[np.ndarray, np.ndarray]:
    """Per-face decode tables for the canonical chain.

    Returns:
        ``(rank, coef)``: ``rank[face]`` is the face's position in the
        chain; ``coef[face]`` holds the face's *inverse* orientation as
        ``(mxx, mxy, myx, myy, xneg, yneg)`` — the signed-permutation
        matrix plus the flags marking which coordinates need the
        ``n - 1`` offset.
    """
    chain = face_chain()
    rank = np.empty(NUM_FACES, dtype=np.int64)
    coef = np.empty((NUM_FACES, 6), dtype=np.int64)
    for pos, (face, tr) in enumerate(zip(chain.faces, chain.transforms)):
        rank[face] = pos
        inv = tr.inverse()
        coef[face] = (
            inv.mxx, inv.mxy, inv.myx, inv.myy,
            1 if inv.mxx + inv.mxy < 0 else 0,
            1 if inv.myx + inv.myy < 0 else 0,
        )
    rank.setflags(write=False)
    coef.setflags(write=False)
    return rank, coef


def element_keys(
    ne: int,
    schedule: str | None = None,
    gids: np.ndarray | None = None,
) -> np.ndarray:
    """Global curve positions of elements, straight from their ids.

    Bit-identical to ``cubed_sphere_curve(ne, schedule).position[gids]``
    but computed with the uint64 key path (:mod:`repro.sfc.keys`): no
    mesh, no materialized curve — O(levels) vectorized passes over the
    requested ids, so callers can stream a huge mesh in chunks with
    O(chunk) peak memory.

    Args:
        ne: Elements per cube-face edge (must be ``2^n * 3^m``).
        schedule: Face-local refinement schedule (coarsest first);
            defaults to the paper's Peano-first schedule.
        gids: Element ids to key (any shape); all elements when omitted.

    Returns:
        uint64 array of curve positions, same shape as ``gids``.
    """
    if schedule is None:
        schedule = default_schedule(ne)
    elif schedule_size(schedule) != ne:
        raise ValueError(
            f"schedule {schedule!r} generates size {schedule_size(schedule)}, "
            f"mesh has ne={ne}"
        )
    n2 = ne * ne
    if gids is None:
        gids = np.arange(6 * n2, dtype=np.int64)
    gids = np.asarray(gids, dtype=np.int64)
    rank, coef = _chain_key_tables()
    shape = gids.shape
    flat = np.ascontiguousarray(gids, dtype=np.int64).ravel()
    keys = _face_keys_c(flat, ne, schedule_tables(schedule), rank, coef)
    if keys is None:
        face, rem = np.divmod(flat, n2)
        iy, ix = np.divmod(rem, ne)
        c = coef[face]
        u = c[..., 0] * ix + c[..., 1] * iy + c[..., 4] * (ne - 1)
        v = c[..., 2] * ix + c[..., 3] * iy + c[..., 5] * (ne - 1)
        keys = curve_keys(u, v, schedule=schedule, check=False)
        keys += rank[face].astype(KEY_DTYPE) * np.uint64(n2)
    return keys.reshape(shape)


@dataclass(frozen=True)
class CubedSphereCurve:
    """The global space-filling curve over a cubed-sphere mesh.

    Attributes:
        mesh: The underlying element mesh.
        schedule: Face-local refinement schedule used on every face.
        chain: The face ordering/orientations realizing continuity.
        order: ``(nelem,)`` int array; ``order[k]`` is the global
            element id visited at curve position ``k``.
        position: ``(nelem,)`` int array; ``position[gid]`` is the
            curve position of element ``gid`` (inverse of
            :attr:`order`).
    """

    mesh: CubedSphereMesh
    schedule: str
    chain: FaceChain
    order: np.ndarray
    position: np.ndarray

    def __post_init__(self) -> None:
        self.order.setflags(write=False)
        self.position.setflags(write=False)

    def __len__(self) -> int:
        return self.mesh.nelem

    def is_continuous(self) -> bool:
        """Whether consecutive elements are edge neighbors everywhere.

        True by construction; exposed for tests and sanity checks.
        """
        adj = self.mesh.edge_adjacency
        return all(
            self.order[k + 1] in adj.neighbors(int(self.order[k]))
            for k in range(len(self) - 1)
        )


def build_curve(
    mesh: CubedSphereMesh, schedule: str | None = None
) -> CubedSphereCurve:
    """Construct the global curve for a mesh.

    Args:
        mesh: Cubed-sphere mesh; ``mesh.ne`` must be of the form
            ``2^n * 3^m``.
        schedule: Face-local refinement schedule (coarsest first);
            defaults to the paper's Peano-first schedule for
            ``mesh.ne``.

    Returns:
        The validated :class:`CubedSphereCurve`.
    """
    if schedule is None:
        schedule = default_schedule(mesh.ne)
    local = generate_curve(schedule=schedule)
    if local.size != mesh.ne:
        raise ValueError(
            f"schedule {schedule!r} generates size {local.size}, "
            f"mesh has ne={mesh.ne}"
        )
    chain = find_face_chain(mesh)
    n = mesh.ne
    # int32 halves the persistent curve memory whenever ids fit;
    # int64 gid arithmetic guards against overflow at huge ``ne``.
    dtype = np.int32 if mesh.nelem < 2**31 else np.int64
    coords64 = local.coords.astype(np.int64, copy=False)
    pieces = []
    for face, tr in zip(chain.faces, chain.transforms):
        cells = tr.apply_points(coords64, n)
        pieces.append(mesh.gids(face, cells[:, 0], cells[:, 1]))
    order = np.concatenate(pieces).astype(dtype, copy=False)
    position = np.empty(mesh.nelem, dtype=dtype)
    position[order] = np.arange(mesh.nelem, dtype=dtype)
    return CubedSphereCurve(
        mesh=mesh, schedule=schedule, chain=chain, order=order, position=position
    )


@lru_cache(maxsize=32)
def _cached_curve(ne: int, schedule: str, projection: str) -> CubedSphereCurve:
    # Only cold builds reach this span (the lru_cache answers repeats).
    with span("cubed_sphere_curve", "sfc", ne=ne, schedule=schedule):
        return build_curve(cubed_sphere_mesh(ne, projection), schedule)


def cubed_sphere_curve(
    ne: int, schedule: str | None = None, projection: str = "equiangular"
) -> CubedSphereCurve:
    """Cached global curve for resolution ``ne``.

    See :func:`build_curve`; meshes and curves are memoized because
    experiments sweep many processor counts over the same resolution.
    """
    if schedule is None:
        schedule = default_schedule(ne)
    return _cached_curve(ne, schedule, projection)
