"""Cubed-sphere substrate: topology, gnomonic geometry, mesh, global SFC.

Implements the computational domain of Dennis (2003): the gnomonic
projection of a subdivided cube onto the sphere (Fig. 1), element
adjacency including cross-face edges and cube corners, and the single
continuous space-filling curve over all six faces (Fig. 6).
"""

from .curve import CubedSphereCurve, FaceChain, build_curve, cubed_sphere_curve, find_face_chain
from .mesh import CubedSphereMesh, cubed_sphere_mesh
from .refinement import RefinedMesh, refine_uniform, refine_where
from .projection import (
    PROJECTIONS,
    element_center_local,
    face_local_grid,
    local_to_sphere,
    sphere_to_lonlat,
)
from .topology import FACES, NUM_FACES, Face, corner_nodes_scaled, face_point

__all__ = [
    "CubedSphereCurve",
    "CubedSphereMesh",
    "FACES",
    "Face",
    "FaceChain",
    "NUM_FACES",
    "PROJECTIONS",
    "RefinedMesh",
    "build_curve",
    "corner_nodes_scaled",
    "cubed_sphere_curve",
    "cubed_sphere_mesh",
    "element_center_local",
    "face_local_grid",
    "face_point",
    "find_face_chain",
    "local_to_sphere",
    "refine_uniform",
    "refine_where",
    "sphere_to_lonlat",
]
