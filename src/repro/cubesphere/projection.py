"""Gnomonic projection of the cube onto the unit sphere.

SEAM obtains its spherical grid by the gnomonic (central) projection of
the subdivided cube: every cube-surface point is pushed radially onto
the unit sphere.  Two standard variants of the face parameterization
are provided:

* ``"equidistant"`` — local coordinates are linear on the cube face
  (the plain central projection of a uniformly subdivided face);
* ``"equiangular"`` — local coordinates are linear in the *angle*
  subtended at the sphere center (``a = tan(alpha)``), which yields
  more uniform element areas and is what modern spectral-element cores
  (HOMME/E3SM) use.

The choice only affects element geometry (areas, metric terms), never
topology, so partitioning results are identical; the shallow-water
substrate defaults to equiangular.
"""

from __future__ import annotations

import numpy as np

from .topology import face_point

__all__ = [
    "PROJECTIONS",
    "local_to_sphere",
    "sphere_to_lonlat",
    "element_center_local",
    "face_local_grid",
]

PROJECTIONS = ("equidistant", "equiangular")


def _warp(coord: np.ndarray, projection: str) -> np.ndarray:
    """Map abstract local coordinates in [-1, 1] to cube-face coords."""
    if projection == "equidistant":
        return coord
    if projection == "equiangular":
        return np.tan(coord * (np.pi / 4.0))
    raise ValueError(f"unknown projection {projection!r}; use one of {PROJECTIONS}")


def local_to_sphere(
    face: int, a, b, projection: str = "equiangular"
) -> np.ndarray:
    """Project local face coordinates onto the unit sphere.

    Args:
        face: Face index 0-5.
        a: Abstract local x coordinate(s) in ``[-1, 1]``.
        b: Abstract local y coordinate(s) in ``[-1, 1]``.
        projection: ``"equidistant"`` or ``"equiangular"``.

    Returns:
        ``(..., 3)`` array of unit vectors.
    """
    a = _warp(np.asarray(a, dtype=np.float64), projection)
    b = _warp(np.asarray(b, dtype=np.float64), projection)
    p = face_point(face, a, b)
    norm = np.linalg.norm(p, axis=-1, keepdims=True)
    return p / norm


def sphere_to_lonlat(xyz: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Convert unit vectors to longitude/latitude in radians.

    Returns:
        ``(lon, lat)`` with ``lon`` in ``(-pi, pi]`` and ``lat`` in
        ``[-pi/2, pi/2]``.
    """
    xyz = np.asarray(xyz, dtype=np.float64)
    lon = np.arctan2(xyz[..., 1], xyz[..., 0])
    lat = np.arcsin(np.clip(xyz[..., 2], -1.0, 1.0))
    return lon, lat


def element_center_local(ne: int) -> tuple[np.ndarray, np.ndarray]:
    """Abstract local coordinates of element centers on a face.

    Returns:
        Arrays ``(a, b)`` of shape ``(ne, ne)`` indexed ``[ix, iy]``.
    """
    c = (2.0 * (np.arange(ne) + 0.5) / ne) - 1.0
    return np.meshgrid(c, c, indexing="ij")


def face_local_grid(ne: int, points_per_edge: int) -> tuple[np.ndarray, np.ndarray]:
    """Abstract local coordinates of a tensor grid inside each element.

    Used by the spectral-element substrate to place GLL points: for
    element ``(ix, iy)`` the returned slices
    ``a[ix * p:(ix + 1) * p]`` span the element in local coordinates.

    Args:
        ne: Elements per face edge.
        points_per_edge: Points per element edge (``p``).

    Returns:
        ``(a, b)`` 1-D arrays of length ``ne * points_per_edge`` of the
        uniform sub-grid positions (element-wise uniform; GLL
        placement happens in the element reference frame).
    """
    p = points_per_edge
    offs = (np.arange(p) + 0.5) / p
    cells = np.arange(ne)[:, None] + offs[None, :]
    coord = (2.0 * cells.ravel() / ne) - 1.0
    return coord, coord.copy()
