"""The cubed-sphere element mesh: indexing, adjacency, geometry.

For partitioning purposes (paper Sec. 1) a spectral element is the
atomic unit: the mesh is the set of ``K = 6 * Ne * Ne`` quadrilateral
elements together with its neighbor structure.  Communication between
processors is determined by neighboring elements that share a boundary
(*edge neighbors*, ``np`` shared GLL points) or a single corner point
(*corner neighbors*, one shared point).

Adjacency is derived from exact integer corner-node identification
(:func:`repro.cubesphere.topology.corner_nodes_scaled`), so cross-face
neighbors and the eight special cube corners — where only three
elements meet and an element has seven, not eight, neighbors — come out
of the same code path as face-interior neighbors.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from .projection import element_center_local, local_to_sphere, sphere_to_lonlat
from .topology import NUM_FACES, corner_nodes_scaled

__all__ = ["CubedSphereMesh", "cubed_sphere_mesh"]


@dataclass(frozen=True)
class _Adjacency:
    """CSR-style neighbor lists (indptr/indices) for one relation."""

    indptr: np.ndarray
    indices: np.ndarray

    def neighbors(self, e: int) -> np.ndarray:
        return self.indices[self.indptr[e] : self.indptr[e + 1]]

    def degrees(self) -> np.ndarray:
        return np.diff(self.indptr)


class CubedSphereMesh:
    """Element mesh of the cubed-sphere at resolution ``Ne``.

    Element global ids are ``gid = face * Ne^2 + iy * Ne + ix`` with
    ``ix`` varying fastest; ``(ix, iy)`` are the face-local cell
    coordinates used by the space-filling curves (origin at the face's
    local bottom-left).

    Args:
        ne: Elements along each cube-face edge (paper's ``Ne``).
        projection: Gnomonic variant for geometry queries
            (``"equiangular"`` or ``"equidistant"``).
    """

    def __init__(self, ne: int, projection: str = "equiangular"):
        if ne < 1:
            raise ValueError(f"ne must be >= 1, got {ne}")
        self.ne = int(ne)
        self.projection = projection
        self.nelem = 6 * self.ne * self.ne
        self._build_nodes()
        self._build_adjacency()
        self._centers_xyz: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------
    def gid(self, face: int, ix: int, iy: int) -> int:
        """Global element id of face-local cell ``(ix, iy)``."""
        ne = self.ne
        if not (0 <= face < NUM_FACES and 0 <= ix < ne and 0 <= iy < ne):
            raise IndexError(f"element (face={face}, ix={ix}, iy={iy}) out of range")
        return face * ne * ne + iy * ne + ix

    def gids(self, face: int, ix: np.ndarray, iy: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`gid` (no bounds check)."""
        ne = self.ne
        return face * ne * ne + iy * ne + ix

    def locate(self, gid: int) -> tuple[int, int, int]:
        """Inverse of :meth:`gid`: returns ``(face, ix, iy)``."""
        ne = self.ne
        if not 0 <= gid < self.nelem:
            raise IndexError(f"gid {gid} out of range [0, {self.nelem})")
        face, rem = divmod(gid, ne * ne)
        iy, ix = divmod(rem, ne)
        return face, ix, iy

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_nodes(self) -> None:
        ne = self.ne
        # Corner nodes of every element, as ids into the global unique
        # node set.  corner order: (ix,iy) -> nodes (i,j),(i+1,j),(i+1,j+1),(i,j+1)
        all_corners = np.empty((self.nelem, 4, 3), dtype=np.int64)
        for face in range(NUM_FACES):
            nodes = corner_nodes_scaled(face, ne)  # (ne+1, ne+1, 3)
            ix, iy = np.meshgrid(np.arange(ne), np.arange(ne), indexing="ij")
            g = self.gids(face, ix.ravel(), iy.ravel())
            i = ix.ravel()
            j = iy.ravel()
            all_corners[g, 0] = nodes[i, j]
            all_corners[g, 1] = nodes[i + 1, j]
            all_corners[g, 2] = nodes[i + 1, j + 1]
            all_corners[g, 3] = nodes[i, j + 1]
        flat = all_corners.reshape(-1, 3)
        uniq, inverse = np.unique(flat, axis=0, return_inverse=True)
        self.nnodes = int(uniq.shape[0])
        #: (nelem, 4) node ids of each element's corners (CCW in face frame).
        self.element_nodes = inverse.reshape(self.nelem, 4)
        self._node_coords_scaled = uniq

    def _build_adjacency(self) -> None:
        # Elements incident to each node.
        order = np.argsort(self.element_nodes.ravel(), kind="stable")
        elems_sorted = order // 4
        node_ids = self.element_nodes.ravel()[order]
        starts = np.searchsorted(node_ids, np.arange(self.nnodes))
        ends = np.searchsorted(node_ids, np.arange(self.nnodes), side="right")
        shared: dict[tuple[int, int], int] = {}
        for nid in range(self.nnodes):
            members = elems_sorted[starts[nid] : ends[nid]]
            m = len(members)
            for a in range(m):
                ea = members[a]
                for b in range(a + 1, m):
                    eb = members[b]
                    key = (ea, eb) if ea < eb else (eb, ea)
                    shared[key] = shared.get(key, 0) + 1
        edge_pairs = []
        corner_pairs = []
        for (ea, eb), cnt in shared.items():
            if cnt >= 2:
                edge_pairs.append((ea, eb))
            else:
                corner_pairs.append((ea, eb))
        self.edge_adjacency = self._to_csr(edge_pairs)
        self.corner_adjacency = self._to_csr(corner_pairs)

    def _to_csr(self, pairs: list[tuple[int, int]]) -> _Adjacency:
        if pairs:
            arr = np.array(pairs, dtype=np.int64)
            both = np.concatenate([arr, arr[:, ::-1]], axis=0)
        else:
            both = np.empty((0, 2), dtype=np.int64)
        order = np.lexsort((both[:, 1], both[:, 0]))
        both = both[order]
        indptr = np.searchsorted(
            both[:, 0], np.arange(self.nelem + 1), side="left"
        ).astype(np.int64)
        return _Adjacency(indptr=indptr, indices=both[:, 1].copy())

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def edge_neighbors(self, gid: int) -> np.ndarray:
        """Elements sharing a full edge with ``gid`` (always 4)."""
        return self.edge_adjacency.neighbors(gid)

    def corner_neighbors(self, gid: int) -> np.ndarray:
        """Elements sharing exactly one corner point with ``gid``
        (4 for generic elements, 3 for the 24 cube-corner elements)."""
        return self.corner_adjacency.neighbors(gid)

    def all_neighbors(self, gid: int) -> np.ndarray:
        """Union of edge and corner neighbors, sorted."""
        return np.sort(
            np.concatenate([self.edge_neighbors(gid), self.corner_neighbors(gid)])
        )

    def neighbor_pairs(self) -> tuple[np.ndarray, np.ndarray]:
        """Undirected neighbor pairs ``(edge_pairs, corner_pairs)``.

        Returns:
            Two ``(m, 2)`` arrays with ``pair[:, 0] < pair[:, 1]``.
        """

        def undirected(adj: _Adjacency) -> np.ndarray:
            src = np.repeat(np.arange(self.nelem), adj.degrees())
            mask = src < adj.indices
            return np.stack([src[mask], adj.indices[mask]], axis=1)

        return undirected(self.edge_adjacency), undirected(self.corner_adjacency)

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def centers_xyz(self) -> np.ndarray:
        """Unit-sphere positions of element centers, ``(nelem, 3)``."""
        if self._centers_xyz is None:
            ne = self.ne
            out = np.empty((self.nelem, 3), dtype=np.float64)
            a, b = element_center_local(ne)
            for face in range(NUM_FACES):
                xyz = local_to_sphere(face, a, b, self.projection)
                ix, iy = np.meshgrid(np.arange(ne), np.arange(ne), indexing="ij")
                g = self.gids(face, ix, iy)
                out[g.ravel()] = xyz.reshape(-1, 3)
            out.setflags(write=False)
            self._centers_xyz = out
        return self._centers_xyz

    @property
    def centers_lonlat(self) -> tuple[np.ndarray, np.ndarray]:
        """Longitude/latitude (radians) of element centers."""
        return sphere_to_lonlat(self.centers_xyz)

    def element_areas(self) -> np.ndarray:
        """Spherical area (steradians) of each element.

        Computed as the solid angle of the spherical quadrilateral
        spanned by the projected corner nodes, via the Van
        Oosterom-Strackee triangle formula on the two triangles of the
        quad.  Sums to ``4 * pi`` over the mesh (tested).
        """
        ne = self.ne
        scaled = self._node_coords_scaled.astype(np.float64) / ne
        if self.projection == "equiangular":
            # Node coordinates are linear on the cube; re-warp the two
            # in-face components so areas match the equiangular grid.
            # The face-normal component has |c| == 1; warp the others.
            warped = np.tan(scaled * (np.pi / 4.0))
            on_axis = np.abs(np.abs(scaled) - 1.0) < 1e-12
            scaled = np.where(on_axis, scaled, warped)
        xyz = scaled / np.linalg.norm(scaled, axis=1, keepdims=True)
        quads = xyz[self.element_nodes]  # (nelem, 4, 3)

        def tri_solid_angle(a, b, c):
            num = np.einsum("ij,ij->i", a, np.cross(b, c))
            d = (
                1.0
                + np.einsum("ij,ij->i", a, b)
                + np.einsum("ij,ij->i", b, c)
                + np.einsum("ij,ij->i", a, c)
            )
            return 2.0 * np.arctan2(np.abs(num), d)

        t1 = tri_solid_angle(quads[:, 0], quads[:, 1], quads[:, 2])
        t2 = tri_solid_angle(quads[:, 0], quads[:, 2], quads[:, 3])
        return t1 + t2

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CubedSphereMesh(ne={self.ne}, nelem={self.nelem}, "
            f"projection={self.projection!r})"
        )


@lru_cache(maxsize=32)
def cubed_sphere_mesh(ne: int, projection: str = "equiangular") -> CubedSphereMesh:
    """Cached constructor for :class:`CubedSphereMesh`.

    Mesh construction is the most expensive pure-topology step, and
    experiments re-use the same handful of resolutions, so meshes are
    memoized (they are immutable after construction).
    """
    return CubedSphereMesh(ne, projection)
