"""Cube topology: face frames and exact corner-node identification.

The cubed-sphere (paper Fig. 1) tiles the sphere with the gnomonic
image of the six faces of the circumscribing cube, each subdivided into
``Ne x Ne`` quadrilateral elements.  This module defines the six face
coordinate frames on the cube ``[-1, 1]^3`` and the *exact* (integer)
corner-node coordinates used to stitch faces together.

Face layout (equatorial belt 0-3, north 4, south 5)::

            +---+
            | 4 |
    +---+---+---+---+
    | 0 | 1 | 2 | 3 |
    +---+---+---+---+
            | 5 |

Each face has an outward normal ``n`` and right-handed in-face axes
``(ex, ey)`` with ``ex x ey = n``; local coordinates ``(a, b)`` in
``[-1, 1]^2`` map to the cube point ``n + a*ex + b*ey``.

Cross-face adjacency is *derived*, not hand-coded: element corner nodes
are computed in integer arithmetic (scaled by ``Ne``) so nodes on cube
edges coincide exactly between faces, and two elements are neighbors
precisely when they share two (edge neighbor) or one (corner neighbor)
nodes.  This automatically gets the eight cube corners right, where
only three elements meet.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Face", "FACES", "NUM_FACES", "face_point", "corner_nodes_scaled"]

NUM_FACES = 6


@dataclass(frozen=True)
class Face:
    """One cube face frame.

    Attributes:
        index: Face id, 0-5.
        normal: Outward unit normal (components in {-1, 0, 1}).
        ex: In-face axis for the local x (``a``) coordinate.
        ey: In-face axis for the local y (``b``) coordinate.
    """

    index: int
    normal: tuple[int, int, int]
    ex: tuple[int, int, int]
    ey: tuple[int, int, int]

    def __post_init__(self) -> None:
        n = np.array(self.normal)
        x = np.array(self.ex)
        y = np.array(self.ey)
        if not np.array_equal(np.cross(x, y), n):
            raise ValueError(f"face {self.index}: ex x ey != normal")


#: The six faces.  Belt faces 0-3 march eastward (face 1 is 90E of
#: face 0, etc.); face 4 is the north cap, face 5 the south cap.
FACES: tuple[Face, ...] = (
    Face(0, (1, 0, 0), (0, 1, 0), (0, 0, 1)),
    Face(1, (0, 1, 0), (-1, 0, 0), (0, 0, 1)),
    Face(2, (-1, 0, 0), (0, -1, 0), (0, 0, 1)),
    Face(3, (0, -1, 0), (1, 0, 0), (0, 0, 1)),
    Face(4, (0, 0, 1), (0, 1, 0), (-1, 0, 0)),
    Face(5, (0, 0, -1), (0, 1, 0), (1, 0, 0)),
)


def face_point(face: int, a, b) -> np.ndarray:
    """Cube-surface point(s) of local coordinates on a face.

    Args:
        face: Face index 0-5.
        a: Local x coordinate(s) in ``[-1, 1]`` (scalar or array).
        b: Local y coordinate(s) in ``[-1, 1]``.

    Returns:
        Array of shape ``(..., 3)`` of points on the cube surface.
    """
    f = FACES[face]
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    n = np.array(f.normal, dtype=np.float64)
    ex = np.array(f.ex, dtype=np.float64)
    ey = np.array(f.ey, dtype=np.float64)
    return (
        n
        + a[..., None] * ex
        + b[..., None] * ey
    )


def corner_nodes_scaled(face: int, ne: int) -> np.ndarray:
    """Integer corner-node coordinates of all elements of a face.

    Nodes are points of the ``(ne+1) x (ne+1)`` lattice of the face,
    expressed as integer 3-vectors scaled by ``ne`` (so the cube is
    ``[-ne, ne]^3``).  Because the scaling is exact, nodes shared
    between faces along cube edges have bitwise-identical coordinates,
    which is what the mesh builder hashes on.

    Args:
        face: Face index 0-5.
        ne: Elements per face edge.

    Returns:
        ``(ne + 1, ne + 1, 3)`` int64 array; entry ``[i, j]`` is the
        node at local lattice position ``(i, j)``, i.e. local
        coordinates ``(2*i/ne - 1, 2*j/ne - 1)``.
    """
    f = FACES[face]
    i = np.arange(ne + 1, dtype=np.int64)
    j = np.arange(ne + 1, dtype=np.int64)
    # Scaled local coordinates: a*ne = 2*i - ne in [-ne, ne].
    sa = (2 * i - ne)[:, None]
    sb = (2 * j - ne)[None, :]
    n = np.array(f.normal, dtype=np.int64) * ne
    ex = np.array(f.ex, dtype=np.int64)
    ey = np.array(f.ey, dtype=np.int64)
    nodes = (
        n[None, None, :]
        + sa[..., None] * ex[None, None, :]
        + sb[..., None] * ey[None, None, :]
    )
    return nodes
