"""Adaptive refinement on the cubed-sphere, ordered by the global SFC.

Every SFC-partitioning citation in the paper's introduction (Behrens &
Zimmermann, Griebel & Zumbusch, Parashar, Pilkington & Baden) is an
adaptive-mesh code: when elements refine, their children can be
spliced into the parent's position on the curve, so the 1-D cut-based
partitioning keeps working with no global recomputation.  This module
implements that splice for quad-tree refinement of cubed-sphere
elements:

* each base element carries a refinement level ``l`` and stands for
  ``4**l`` leaf cells;
* the expanded curve visits the leaves of each base element
  contiguously, in the order a Hilbert sub-curve of level ``l`` would
  traverse them (so leaf ordering stays locality-preserving);
* partitioning balances *leaf* counts (or weighted leaf work) by
  cutting the expanded curve, with the base element kept atomic or
  split at leaf granularity as the caller chooses.

The implementation tracks leaf counts and positions exactly; leaf
geometry beyond the parent element (needed only for visualization) is
intentionally out of scope.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cubesphere.curve import CubedSphereCurve
from ..partition.base import Partition
from ..partition.sfc import cut_positions_weighted

__all__ = ["RefinedMesh", "refine_uniform", "refine_where"]

MAX_LEVEL = 12


@dataclass(frozen=True)
class RefinedMesh:
    """A quad-tree refinement state over a cubed-sphere curve.

    Attributes:
        curve: The base-element global curve.
        levels: ``(nelem,)`` refinement level of each base element
            (gid-indexed); element ``e`` stands for ``4**levels[e]``
            leaves.
    """

    curve: CubedSphereCurve
    levels: np.ndarray

    def __post_init__(self) -> None:
        levels = np.asarray(self.levels, dtype=np.int64)
        if levels.shape != (self.curve.mesh.nelem,):
            raise ValueError("levels must have one entry per base element")
        if (levels < 0).any() or (levels > MAX_LEVEL).any():
            raise ValueError(f"levels must be in [0, {MAX_LEVEL}]")
        object.__setattr__(self, "levels", levels)
        levels.setflags(write=False)

    # -- leaf bookkeeping ------------------------------------------------
    def leaves_per_element(self) -> np.ndarray:
        """``4**level`` per base element (gid-indexed)."""
        return 4 ** self.levels.astype(np.int64)

    @property
    def nleaves(self) -> int:
        return int(self.leaves_per_element().sum())

    def leaf_offsets_along_curve(self) -> np.ndarray:
        """Start position of each base element's leaf block.

        Returns:
            ``(nelem + 1,)`` prefix array in *curve order*:
            element ``curve.order[i]``'s leaves occupy expanded-curve
            positions ``[out[i], out[i + 1])``.
        """
        counts = self.leaves_per_element()[self.curve.order]
        out = np.zeros(len(counts) + 1, dtype=np.int64)
        np.cumsum(counts, out=out[1:])
        return out

    # -- refinement operations -------------------------------------------
    def refined(self, gids: np.ndarray, delta: int = 1) -> "RefinedMesh":
        """New state with ``gids`` refined (or coarsened, delta<0)."""
        levels = self.levels.copy()
        levels[np.asarray(gids, dtype=np.int64)] += delta
        return RefinedMesh(curve=self.curve, levels=levels)

    # -- partitioning ------------------------------------------------------
    def partition(
        self,
        nparts: int,
        leaf_weight: float = 1.0,
        atomic: bool = True,
    ) -> Partition:
        """Cut the expanded curve into ``nparts`` balanced segments.

        Args:
            nparts: Number of processors.
            leaf_weight: Work per leaf (uniform; heterogeneous work is
                supported through :func:`partition_weighted`).
            atomic: If True (the paper's convention — elements are
                indivisible), cuts happen only at base-element
                boundaries, balancing total leaf work per processor.

        Returns:
            Base-element :class:`Partition` (leaf-granular assignment
            is the same partition since leaves follow their parent).
        """
        if not atomic:
            raise NotImplementedError(
                "leaf-granular ownership requires hanging-node exchange "
                "support; the paper treats elements as atomic"
            )
        weights = self.leaves_per_element().astype(np.float64) * leaf_weight
        return self.partition_weighted(nparts, weights)

    def partition_weighted(self, nparts: int, weights: np.ndarray) -> Partition:
        """Cut the curve balancing arbitrary per-element work."""
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (self.curve.mesh.nelem,):
            raise ValueError("weights must have one entry per base element")
        along = weights[self.curve.order]
        bounds = cut_positions_weighted(along, nparts)
        owner_along = np.empty(len(along), dtype=np.int64)
        for p in range(nparts):
            owner_along[bounds[p] : bounds[p + 1]] = p
        assignment = np.empty(len(along), dtype=np.int64)
        assignment[self.curve.order] = owner_along
        return Partition(assignment, nparts=nparts, method="sfc-amr")

    def imbalance(self, partition: Partition) -> float:
        """Leaf-work load balance (paper Eq. 1) of a partition."""
        from ..partition.metrics import load_balance

        loads = np.bincount(
            partition.assignment,
            weights=self.leaves_per_element().astype(np.float64),
            minlength=partition.nparts,
        )
        return load_balance(loads)


def refine_uniform(curve: CubedSphereCurve, level: int = 0) -> RefinedMesh:
    """Uniform refinement state (level 0 = the base mesh)."""
    return RefinedMesh(
        curve=curve,
        levels=np.full(curve.mesh.nelem, level, dtype=np.int64),
    )


def refine_where(
    curve: CubedSphereCurve,
    predicate: np.ndarray,
    level: int = 1,
) -> RefinedMesh:
    """Refine the elements selected by a boolean mask.

    Args:
        curve: Base-element global curve.
        predicate: ``(nelem,)`` bool mask of elements to refine.
        level: Refinement level of the selected elements.
    """
    predicate = np.asarray(predicate, dtype=bool)
    if predicate.shape != (curve.mesh.nelem,):
        raise ValueError("predicate must have one entry per element")
    levels = np.where(predicate, level, 0).astype(np.int64)
    return RefinedMesh(curve=curve, levels=levels)
