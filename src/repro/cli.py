"""Command-line interface: ``python -m repro <command>``.

Subcommands mirror the library's main workflows:

* ``curve``     — render a space-filling curve's visit order;
* ``partition`` — partition the cubed-sphere, print quality metrics,
  optionally write the assignment and the METIS-format graph;
* ``batch``     — serve a JSON/CSV file of partition requests through
  the cached, parallel service engine;
* ``serve``     — run the asyncio HTTP/JSON partition server
  (``POST /partition``, ``POST /batch``, ``GET /healthz``,
  ``GET /methods``, ``GET /metrics``, ``GET /debug/*``) with request
  coalescing, admission control, and optional structured logs
  (``--access-log`` for one JSON line per request, ``--log-json`` for
  every event, ``--log-sample`` for per-trace sampling);
* ``profile``   — per-stage wall-time profile of a partition request
  (coarsen/initial/refine/uncoarsen, cache, pool) as a table or JSON;
  ``--live URL`` instead profiles a *running* server via its
  ``/debug/profile`` endpoint (collapsed stacks, flamegraph-ready);
* ``top``       — live terminal view of a running server: polls
  ``/debug/vars`` and ``/metrics`` and renders load, cache hit rates,
  latency quantiles, and the SLO verdict;
* ``metrics``   — report LB/edgecut/TCV histograms and counters from a
  saved metrics export, or serve a request file and report live;
* ``methods``   — list the registered partitioners (names, families,
  capability flags) straight from the partitioner registry; the
  ``continuous`` column separates face-chaining curves (``sfc``) from
  discontinuous key cuts (``morton``, which therefore takes no
  refinement schedule);
* ``cache``     — inspect the partition cache: the pipeline's stage
  versions and, given ``--cache-dir``, entry freshness (stale entries
  are recomputed, never served);
* ``sweep``     — the paper's Figure 7-10 sweeps as a series table;
* ``table2``    — the paper's Table 2 for any (Ne, Nproc).

``partition`` and ``batch`` also accept ``--profile`` (print the same
stage table after the normal output) and ``--profile-json PATH``.

``partition``, ``batch`` and ``profile`` accept the unified telemetry
flags: ``--trace-json PATH`` (Chrome/Perfetto trace-event JSON,
including worker-process spans), ``--metrics`` (print the run's metric
registry), ``--metrics-json PATH`` and ``--run-log PATH`` (structured
JSON-lines).

``partition``, ``batch`` and ``sweep`` all accept ``--cache-dir`` (a
persistent partition cache shared across invocations) and ``--jobs``
(worker processes for cache misses).

All output is plain text on stdout (machine-readable CSV via
``--csv`` for ``partition``, ``batch`` and ``sweep``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

__all__ = ["main", "build_parser"]


def _package_version() -> str:
    """The installed package version, falling back to the source tree."""
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro")
    except PackageNotFoundError:
        from . import __version__

        return __version__


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _add_service_flags(parser: argparse.ArgumentParser) -> None:
    """Flags shared by every engine-served subcommand."""
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="persistent partition cache directory (created on demand)",
    )
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        help="worker processes for cache misses (default: 1, inline)",
    )


def _add_profile_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print a per-stage timing table after the normal output",
    )
    parser.add_argument(
        "--profile-json",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the per-stage timing profile as JSON",
    )


def _add_telemetry_flags(parser: argparse.ArgumentParser) -> None:
    """Flags activating the unified telemetry session."""
    parser.add_argument(
        "--trace-json",
        type=Path,
        default=None,
        metavar="PATH",
        help="write a Chrome/Perfetto trace-event JSON of the run "
        "(open in ui.perfetto.dev)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the run's metrics (counters + quality histograms)",
    )
    parser.add_argument(
        "--metrics-json",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the run's metrics registry snapshot as JSON",
    )
    parser.add_argument(
        "--run-log",
        type=Path,
        default=None,
        metavar="PATH",
        help="write a structured JSON-lines run log (spans + metrics)",
    )
    parser.add_argument(
        "--log-json",
        type=Path,
        default=None,
        metavar="PATH",
        help="append live structured log events (engine + worker, with "
        "trace ids) as JSON lines during the run",
    )


def _make_engine(args: argparse.Namespace):
    """Build a service engine from the common CLI flags."""
    from .service import PartitionCache, PartitionEngine

    cache = PartitionCache(cache_dir=args.cache_dir)
    return PartitionEngine(cache=cache, jobs=args.jobs)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing).

    ``--method`` choices come from the partitioner registry, so a
    method registered by a plugin (or removed) is reflected here and
    in ``repro methods`` without touching the CLI.
    """
    from .partition.registry import available

    methods = list(available())
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Space-filling-curve partitioning on the cubed-sphere "
            "(reproduction of Dennis, IPPS 2003)"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {_package_version()}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_curve = sub.add_parser("curve", help="render a space-filling curve")
    group = p_curve.add_mutually_exclusive_group(required=True)
    group.add_argument("--size", type=int, help="domain side (2^n * 3^m)")
    group.add_argument(
        "--schedule", type=str, help="refinement schedule over {H,P}, coarsest first"
    )
    p_curve.add_argument(
        "--analyze", action="store_true", help="print locality statistics"
    )

    p_part = sub.add_parser("partition", help="partition the cubed-sphere")
    p_part.add_argument("--ne", type=int, required=True, help="elements per face edge")
    p_part.add_argument("--nparts", type=int, required=True, help="processor count")
    p_part.add_argument(
        "--method",
        default="sfc",
        choices=methods,
    )
    p_part.add_argument("--seed", type=int, default=0)
    wgroup = p_part.add_mutually_exclusive_group()
    wgroup.add_argument(
        "--weights",
        type=Path,
        metavar="FILE",
        help="per-element weights (.npy array, .csv column, or .json "
        "list); cuts balance weight instead of element count",
    )
    wgroup.add_argument(
        "--scenario",
        type=str,
        metavar="NAME",
        help="named weight scenario (storm, daynight, amr, ...); "
        "weights are generated deterministically for --ne",
    )
    p_part.add_argument(
        "--scenario-step",
        type=int,
        default=0,
        metavar="N",
        help="trajectory step for --scenario (default: 0)",
    )
    p_part.add_argument("--csv", action="store_true", help="CSV metric output")
    p_part.add_argument(
        "--write-assignment", type=Path, help="write gid->part as CSV"
    )
    p_part.add_argument(
        "--write-graph", type=Path, help="write the element graph (METIS format)"
    )
    _add_service_flags(p_part)
    _add_profile_flags(p_part)
    _add_telemetry_flags(p_part)

    p_batch = sub.add_parser(
        "batch", help="serve a file of partition requests via the engine"
    )
    p_batch.add_argument(
        "requests",
        type=Path,
        help="JSON (list of request objects) or CSV (ne,nparts[,method,seed,"
        "schedule] header) request file",
    )
    p_batch.add_argument("--csv", action="store_true", help="CSV metric output")
    p_batch.add_argument(
        "--stats", action="store_true", help="print engine telemetry after the batch"
    )
    p_batch.add_argument(
        "--write-assignments",
        type=Path,
        metavar="DIR",
        help="write one gid,part CSV per request into DIR",
    )
    _add_service_flags(p_batch)
    _add_profile_flags(p_batch)
    _add_telemetry_flags(p_batch)

    p_serve = sub.add_parser(
        "serve", help="run the asyncio HTTP/JSON partition server"
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    p_serve.add_argument(
        "--port",
        type=int,
        default=8077,
        help="bind port; 0 picks an ephemeral port (default: 8077)",
    )
    p_serve.add_argument(
        "--max-pending",
        type=_positive_int,
        default=None,
        help="admission limit on in-flight computes; over-limit requests "
        "get 503 + Retry-After (default: 8 x jobs)",
    )
    p_serve.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="per-connection read/dispatch timeout in seconds (default: 30)",
    )
    p_serve.add_argument(
        "--metrics-json",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the server's metrics registry snapshot on shutdown",
    )
    p_serve.add_argument(
        "--access-log",
        type=Path,
        default=None,
        metavar="PATH",
        help="append one JSON line per request (method, route, status, "
        "latency, source, trace id)",
    )
    p_serve.add_argument(
        "--log-json",
        type=Path,
        default=None,
        metavar="PATH",
        help="append every structured log event (access + engine + "
        "worker) as JSON lines",
    )
    p_serve.add_argument(
        "--log-sample",
        type=float,
        default=1.0,
        metavar="FRACTION",
        help="fraction of traces the log sinks keep, in (0, 1] "
        "(whole requests are kept or dropped together; default: 1.0)",
    )
    _add_service_flags(p_serve)

    p_prof = sub.add_parser(
        "profile", help="per-stage timing profile of one partition request"
    )
    p_prof.add_argument(
        "--live",
        default=None,
        metavar="URL",
        help="profile a running server instead: fetch URL/debug/profile "
        "and print collapsed stacks (--ne/--nparts not needed)",
    )
    p_prof.add_argument(
        "--seconds",
        type=float,
        default=2.0,
        help="sampling duration for --live (default: 2)",
    )
    p_prof.add_argument("--ne", type=int, default=None)
    p_prof.add_argument("--nparts", type=int, default=None)
    p_prof.add_argument(
        "--method",
        default="rb",
        choices=methods,
    )
    p_prof.add_argument("--seed", type=int, default=0)
    p_prof.add_argument(
        "--repeat",
        type=_positive_int,
        default=1,
        help="serve the request this many times (repeats exercise the cache)",
    )
    p_prof.add_argument(
        "--json", type=Path, default=None, help="write the profile as JSON"
    )
    _add_service_flags(p_prof)
    _add_telemetry_flags(p_prof)

    p_metrics = sub.add_parser(
        "metrics",
        help="report a run's metrics (from --metrics-json / --run-log "
        "output, or by serving a request file)",
    )
    p_metrics.add_argument(
        "source",
        type=Path,
        help="metrics snapshot JSON, JSON-lines run log, or a batch "
        "request file to serve and report",
    )
    p_metrics.add_argument(
        "--prometheus",
        action="store_true",
        help="emit Prometheus text exposition instead of tables",
    )
    _add_service_flags(p_metrics)

    p_top = sub.add_parser(
        "top", help="live terminal view of a running partition server"
    )
    p_top.add_argument(
        "--url",
        default="http://127.0.0.1:8077",
        help="server base URL (default: http://127.0.0.1:8077)",
    )
    p_top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between refreshes (default: 2)",
    )
    p_top.add_argument(
        "--iterations",
        type=_positive_int,
        default=None,
        help="stop after this many refreshes (default: run until Ctrl-C)",
    )
    p_top.add_argument(
        "--once",
        action="store_true",
        help="print one snapshot and exit (no screen clearing)",
    )

    p_methods = sub.add_parser(
        "methods", help="list the registered partitioners and their capabilities"
    )
    p_methods.add_argument("--csv", action="store_true", help="CSV output")

    p_cache = sub.add_parser(
        "cache",
        help="inspect the partition cache (versions, entry freshness)",
        description=(
            "Cached responses are stamped with the pipeline's composite "
            "stage version; entries written under a different version "
            "(including pre-versioning entries) are treated as stale and "
            "recomputed on the next request, never served."
        ),
    )
    p_cache.add_argument(
        "action", choices=["info"], help="info: print versions and cache stats"
    )
    p_cache.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="persistent cache directory to scan (optional)",
    )

    p_sweep = sub.add_parser("sweep", help="speedup/Gflops sweep (Figs. 7-10)")
    p_sweep.add_argument("--ne", type=int, required=True)
    p_sweep.add_argument(
        "--methods", nargs="+", default=["sfc", "rb", "kway", "tv"]
    )
    p_sweep.add_argument("--nprocs", nargs="*", type=int, default=None)
    p_sweep.add_argument("--csv", action="store_true")
    _add_service_flags(p_sweep)

    p_t2 = sub.add_parser("table2", help="partition statistics (Table 2)")
    p_t2.add_argument("--ne", type=int, default=16)
    p_t2.add_argument("--nparts", type=int, default=768)
    p_t2.add_argument("--nlev", type=int, default=1, help="cost-model levels")

    p_trace = sub.add_parser(
        "trace", help="per-rank compute/comm timeline of one step"
    )
    p_trace.add_argument("--ne", type=int, required=True)
    p_trace.add_argument("--nparts", type=int, required=True)
    p_trace.add_argument(
        "--method",
        default="sfc",
        choices=methods,
    )
    p_trace.add_argument("--width", type=int, default=60)
    p_trace.add_argument("--max-ranks", type=int, default=24)

    p_report = sub.add_parser(
        "report", help="structural report of a partition (fragmentation etc.)"
    )
    p_report.add_argument("--ne", type=int, required=True)
    p_report.add_argument("--nparts", type=int, required=True)
    p_report.add_argument(
        "--method",
        default="sfc",
        choices=methods,
    )
    return parser


def _cmd_curve(args: argparse.Namespace) -> int:
    from .sfc import analyze_curve, generate_curve

    curve = generate_curve(size=args.size, schedule=args.schedule)
    print(f"schedule={curve.schedule or '(trivial)'} size={curve.size}")
    print(curve.render())
    if args.analyze:
        loc = analyze_curve(curve)
        print(
            f"\nlocality: bbox_aspect={loc.mean_bbox_aspect:.3f} "
            f"surface/volume={loc.mean_surface_to_volume:.3f} "
            f"mean_stretch={loc.mean_neighbor_stretch:.2f} "
            f"max_stretch={loc.max_neighbor_stretch}"
        )
    return 0


def _write_assignment_csv(path: Path, assignment) -> None:
    """Write a gid,part CSV, creating parents; clean error on failure.

    Raises:
        SystemExit: With a readable message when the path cannot be
            written (unwritable directory, permission denied, ...).
    """
    lines = ["gid,part"] + [f"{gid},{int(p)}" for gid, p in enumerate(assignment)]
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("\n".join(lines) + "\n")
    except OSError as exc:
        raise SystemExit(
            f"repro: error: cannot write assignment to '{path}': {exc.strerror or exc}"
        ) from exc
    print(f"wrote {path}", file=sys.stderr)


def _write_profile_json(path: Path, prof, **meta) -> None:
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(prof.to_json(**meta))
    except OSError as exc:
        raise SystemExit(
            f"repro: error: cannot write profile to '{path}': {exc.strerror or exc}"
        ) from exc
    print(f"wrote {path}", file=sys.stderr)


def _write_telemetry_outputs(args: argparse.Namespace, session) -> None:
    """Write/print every telemetry export the flags asked for."""
    from .telemetry import write_chrome_trace, write_metrics_json, write_run_log

    def _write(what, writer, path):
        try:
            writer(path, session)
        except OSError as exc:
            raise SystemExit(
                f"repro: error: cannot write {what} to '{path}': "
                f"{exc.strerror or exc}"
            ) from exc
        print(f"wrote {path}", file=sys.stderr)

    if args.trace_json:
        _write("trace", write_chrome_trace, args.trace_json)
    if args.metrics_json:
        _write("metrics", write_metrics_json, args.metrics_json)
    if args.run_log:
        _write("run log", write_run_log, args.run_log)
    if args.metrics:
        print()
        print(f"Metrics (run {session.run_id})")
        print(session.metrics.render())


def _run_instrumented(args: argparse.Namespace, body, **meta) -> int:
    """Run a handler body under the requested collectors.

    ``--trace-json/--metrics/--metrics-json/--run-log`` open a
    telemetry session; ``--profile/--profile-json`` additionally
    activate the legacy stage profiler (both can collect at once —
    the profiler is a view over the same spans).
    """
    want_profile = args.profile or args.profile_json
    want_telemetry = bool(
        args.trace_json
        or args.metrics
        or args.metrics_json
        or args.run_log
        or args.log_json
    )
    if not (want_profile or want_telemetry):
        return body()
    from contextlib import ExitStack

    from .profiling import profiled
    from .telemetry import (
        RequestContext,
        add_sink,
        remove_sink,
        request_context,
        telemetry_session,
    )

    with ExitStack() as stack:
        session = (
            stack.enter_context(telemetry_session(command=args.command, **meta))
            if want_telemetry
            else None
        )
        if args.log_json is not None:
            stack.callback(remove_sink, add_sink(args.log_json))
        prof = stack.enter_context(profiled()) if want_profile else None
        # A fresh request context names this run: every span and log
        # record it produces — in this process and in pool workers —
        # shares one trace id.
        stack.enter_context(request_context(RequestContext.new()))
        rc = body()
    if args.log_json is not None:
        print(f"wrote {args.log_json}", file=sys.stderr)
    if prof is not None:
        print()
        print(prof.render(title=f"Stage profile: {args.command}"))
        if args.profile_json:
            _write_profile_json(
                args.profile_json, prof, command=args.command, **meta
            )
    if session is not None:
        _write_telemetry_outputs(args, session)
    return rc


def _cmd_partition(args: argparse.Namespace) -> int:
    return _run_instrumented(
        args,
        lambda: _partition_body(args),
        ne=args.ne,
        nparts=args.nparts,
        method=args.method,
        seed=args.seed,
    )


def _load_weights_file(path: Path):
    """Load a per-element weight array by extension (.npy/.csv/.json)."""
    import json as _json

    import numpy as np

    suffix = path.suffix.lower()
    if suffix == ".npy":
        return np.load(path)
    text = path.read_text()
    if suffix == ".json":
        return np.asarray(_json.loads(text), dtype=np.float64)
    # CSV (or headerless text): one weight per line / comma-separated.
    import io

    return np.loadtxt(io.StringIO(text), delimiter=",", dtype=np.float64).ravel()


def _weights_arg(args: argparse.Namespace):
    """The request weights payload from --weights/--scenario flags."""
    if getattr(args, "weights", None) is not None:
        try:
            return _load_weights_file(args.weights)
        except FileNotFoundError:
            raise SystemExit(
                f"repro: error: weights file '{args.weights}' not found"
            )
        except ValueError as exc:
            raise SystemExit(
                f"repro: error: cannot parse weights file "
                f"'{args.weights}': {exc}"
            )
    if getattr(args, "scenario", None):
        return {"scenario": args.scenario, "step": args.scenario_step}
    return None


def _partition_body(args: argparse.Namespace) -> int:
    from .service import PartitionRequest

    try:
        request = PartitionRequest(
            ne=args.ne, nparts=args.nparts, method=args.method,
            seed=args.seed, weights=_weights_arg(args),
        )
    except ValueError as exc:
        raise SystemExit(f"repro: error: {exc}")
    with _make_engine(args) as engine:
        response = engine.serve(request)
    m = response.metrics
    weighted = request.weights is not None
    if args.csv:
        print("method,nparts,lb_nelemd,lb_weight,lb_spcv,edgecut,tcv_points")
        print(
            f"{args.method},{args.nparts},{m['lb_nelemd']:.6f},"
            f"{m['lb_weight']:.6f},"
            f"{m['lb_spcv']:.6f},{m['edgecut']},{m['total_volume_points']}"
        )
    else:
        tag = ""
        if weighted:
            spec = request.weights
            tag = (
                f" scenario={spec.scenario}:{spec.step}"
                if spec.scenario is not None
                else " weighted"
            )
        print(f"K={request.k} method={args.method} nparts={args.nparts}{tag}")
        print(f"LB(nelemd)   = {m['lb_nelemd']:.4f}")
        if weighted:
            print(f"LB(weight)   = {m['lb_weight']:.4f}")
        print(f"LB(spcv)     = {m['lb_spcv']:.4f}")
        print(f"edgecut      = {m['edgecut']}")
        print(f"TCV (points) = {m['total_volume_points']}")
    if args.write_assignment:
        _write_assignment_csv(args.write_assignment, response.assignment)
    if args.write_graph:
        from .cubesphere import cubed_sphere_mesh
        from .graphs import mesh_graph, write_metis_graph

        write_metis_graph(mesh_graph(cubed_sphere_mesh(args.ne)), args.write_graph)
        print(f"wrote {args.write_graph}", file=sys.stderr)
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    return _run_instrumented(
        args, lambda: _batch_body(args), requests=str(args.requests)
    )


def _batch_body(args: argparse.Namespace) -> int:
    from .experiments import format_table
    from .service import load_request_file

    try:
        requests = load_request_file(args.requests)
    except FileNotFoundError:
        raise SystemExit(f"repro: error: request file '{args.requests}' not found")
    except ValueError as exc:
        raise SystemExit(f"repro: error: {exc}")
    with _make_engine(args) as engine:
        responses = engine.run(requests)
    columns = [
        "ne", "nparts", "method", "seed", "source",
        "lb_nelemd", "lb_spcv", "edgecut", "tcv_points", "ms",
    ]
    rows = [
        [
            r.request.ne,
            r.request.nparts,
            r.request.method,
            r.request.seed,
            r.source,
            f"{r.metrics['lb_nelemd']:.6f}",
            f"{r.metrics['lb_spcv']:.6f}",
            r.metrics["edgecut"],
            r.metrics["total_volume_points"],
            f"{1e3 * r.elapsed_s:.1f}",
        ]
        for r in responses
    ]
    if args.csv:
        print(",".join(columns))
        for row in rows:
            print(",".join(str(v) for v in row))
    else:
        print(
            format_table(
                columns, rows, title=f"Batch of {len(responses)} requests"
            )
        )
    if args.write_assignments:
        for i, r in enumerate(responses):
            name = (
                f"req{i:04d}-ne{r.request.ne}-np{r.request.nparts}"
                f"-{r.request.method}.csv"
            )
            _write_assignment_csv(args.write_assignments / name, r.assignment)
    if args.stats:
        print()
        print(engine.stats.render())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    return asyncio.run(_serve_main(args))


async def _serve_main(args: argparse.Namespace) -> int:
    """Run the partition server until SIGINT/SIGTERM, then drain.

    ``--access-log``/``--log-json`` attach JSON-lines sinks for the
    lifetime of the server (detached and closed on exit, so log files
    are complete when the process returns).
    """
    from .telemetry import add_sink, remove_sink

    sinks = []
    try:
        if args.access_log is not None:
            sinks.append(
                add_sink(
                    args.access_log, sample=args.log_sample, events={"access"}
                )
            )
        if args.log_json is not None:
            sinks.append(add_sink(args.log_json, sample=args.log_sample))
    except (ValueError, OSError) as exc:
        for sink in sinks:
            remove_sink(sink)
        raise SystemExit(f"repro: error: cannot open log sink: {exc}")
    try:
        return await _serve_loop(args)
    finally:
        for sink in sinks:
            remove_sink(sink)


async def _serve_loop(args: argparse.Namespace) -> int:
    """The serve event loop proper (sinks already configured)."""
    import asyncio
    import signal
    from contextlib import suppress

    from .server import PartitionServer

    with _make_engine(args) as engine:
        server = PartitionServer(
            engine,
            host=args.host,
            port=args.port,
            max_pending=args.max_pending,
            request_timeout=args.timeout,
        )
        await server.start()
        print(
            f"serving on http://{server.host}:{server.port} "
            f"(jobs={engine.jobs}, max_pending={server.max_pending})",
            file=sys.stderr,
        )
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except NotImplementedError:  # pragma: no cover - non-Unix
                pass
        forever = asyncio.ensure_future(server.serve_forever())
        try:
            await stop.wait()
        finally:
            print("shutting down: draining in-flight requests", file=sys.stderr)
            session = server.session
            await server.shutdown()
            forever.cancel()
            with suppress(asyncio.CancelledError):
                await forever
            if args.metrics_json is not None and session is not None:
                from .telemetry import write_metrics_json

                try:
                    write_metrics_json(args.metrics_json, session)
                except OSError as exc:
                    print(
                        f"repro: error: cannot write metrics to "
                        f"'{args.metrics_json}': {exc.strerror or exc}",
                        file=sys.stderr,
                    )
                else:
                    print(f"wrote {args.metrics_json}", file=sys.stderr)
            print(engine.stats.render(), file=sys.stderr)
    return 0


def _parse_server_url(url: str) -> tuple[str, int]:
    """``http://host:port`` -> ``(host, port)`` with readable errors."""
    from urllib.parse import urlsplit

    parts = urlsplit(url if "//" in url else f"http://{url}")
    if parts.scheme not in ("http", ""):
        raise SystemExit(
            f"repro: error: only http:// URLs are supported, got '{url}'"
        )
    host = parts.hostname
    if not host:
        raise SystemExit(f"repro: error: no host in server URL '{url}'")
    return host, parts.port or 8077


def _fetch_server(host: str, port: int, path: str):
    """One blocking GET against a running server; readable errors."""
    import asyncio

    from .server.client import fetch

    try:
        return asyncio.run(fetch(host, port, "GET", path))
    except (ConnectionError, OSError) as exc:
        raise SystemExit(
            f"repro: error: cannot reach server at {host}:{port}: {exc}"
        )


def _profile_live(args: argparse.Namespace) -> int:
    """``repro profile --live URL``: sample a running server's stacks."""
    host, port = _parse_server_url(args.live)
    response = _fetch_server(
        host, port, f"/debug/profile?seconds={args.seconds:g}"
    )
    if response.status != 200:
        raise SystemExit(
            f"repro: error: server answered {response.status}: "
            f"{response.body.decode('utf-8', 'replace')}"
        )
    samples = response.headers.get("x-profile-samples", "?")
    print(
        f"sampled {samples} stacks over {args.seconds:g}s from "
        f"http://{host}:{port} (collapsed-stack format; feed to "
        "flamegraph.pl or speedscope)",
        file=sys.stderr,
    )
    body = response.body.decode("utf-8", "replace")
    if body:
        print(body, end="" if body.endswith("\n") else "\n")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from contextlib import ExitStack

    from .profiling import profiled
    from .service import PartitionRequest
    from .telemetry import telemetry_session

    if args.live is not None:
        return _profile_live(args)
    if args.ne is None or args.nparts is None:
        raise SystemExit(
            "repro: error: --ne and --nparts are required "
            "(or pass --live URL to profile a running server)"
        )
    request = PartitionRequest(
        ne=args.ne, nparts=args.nparts, method=args.method, seed=args.seed
    )
    want_telemetry = bool(
        args.trace_json
        or args.metrics
        or args.metrics_json
        or args.run_log
        or args.log_json
    )
    with ExitStack() as stack:
        session = (
            stack.enter_context(
                telemetry_session(
                    command="profile",
                    ne=args.ne,
                    nparts=args.nparts,
                    method=args.method,
                )
            )
            if want_telemetry
            else None
        )
        if args.log_json is not None:
            from .telemetry import RequestContext, add_sink, remove_sink
            from .telemetry import request_context

            stack.callback(remove_sink, add_sink(args.log_json))
            stack.enter_context(request_context(RequestContext.new()))
        prof = stack.enter_context(profiled())
        engine = stack.enter_context(_make_engine(args))
        for _ in range(args.repeat):
            response = engine.serve(request)
    m = response.metrics
    print(
        f"K={request.k} method={args.method} nparts={args.nparts} "
        f"edgecut={m['edgecut']} tcv={m['total_volume_points']}"
    )
    print()
    title = (
        f"Stage profile: {args.method} ne={args.ne} "
        f"nparts={args.nparts} x{args.repeat}"
    )
    print(prof.render(title=title))
    if args.json:
        _write_profile_json(
            args.json,
            prof,
            command="profile",
            ne=args.ne,
            nparts=args.nparts,
            method=args.method,
            seed=args.seed,
            repeat=args.repeat,
        )
    if session is not None:
        _write_telemetry_outputs(args, session)
    return 0


def _histogram_quantile(text: str, name: str, q: float) -> float | None:
    """Crude upper-bound quantile from Prometheus histogram buckets.

    Returns the smallest bucket boundary covering fraction ``q`` of
    observations (summed across label sets), or ``None`` when the
    histogram is absent or empty.  Good enough for a live top view.
    """
    buckets: dict[float, float] = {}
    prefix = f"{name}_bucket{{"
    for line in text.splitlines():
        if not line.startswith(prefix):
            continue
        labels, _, value = line.partition("} ")
        le = None
        for part in labels[len(prefix) - 1:].strip("{}").split(","):
            key, _, raw = part.partition("=")
            if key.strip() == "le":
                raw = raw.strip().strip('"')
                le = float("inf") if raw == "+Inf" else float(raw)
        if le is None:
            continue
        try:
            buckets[le] = buckets.get(le, 0.0) + float(value)
        except ValueError:
            continue
    if not buckets:
        return None
    total = buckets.get(float("inf"), max(buckets.values()))
    if total <= 0:
        return None
    for le in sorted(buckets):
        if buckets[le] >= q * total:
            return le
    return None


def _render_top(host: str, port: int, vars_data: dict, metrics_text: str) -> str:
    """One ``repro top`` frame from /debug/vars + /metrics payloads."""
    build = vars_data.get("build", {})
    server = vars_data.get("server", {})
    engine = vars_data.get("engine", {})
    cache = vars_data.get("cache", {})
    slo = vars_data.get("slo", {})
    coalescing = vars_data.get("coalescing", {})
    status = slo.get("status", "?")
    if server.get("closing"):
        status = "draining"
    p50 = _histogram_quantile(metrics_text, "server_request_seconds", 0.50)
    p99 = _histogram_quantile(metrics_text, "server_request_seconds", 0.99)

    def _ms(value: float | None) -> str:
        return f"{1e3 * value:.0f}ms" if value is not None else "n/a"

    lines = [
        f"repro top — http://{host}:{port}   "
        f"v{build.get('version', '?')} pid {build.get('pid', '?')}   "
        f"up {vars_data.get('uptime_s', 0):.0f}s",
        f"status: {status}   "
        f"inflight {coalescing.get('inflight', 0)}/"
        f"{server.get('max_pending', '?')}   "
        f"connections {server.get('connections', 0)}   "
        f"active {server.get('active_requests', 0)}",
        f"requests: {engine.get('requests', 0)} total   "
        f"hit rate {100 * engine.get('hit_rate', 0.0):.1f}%   "
        f"p50<={_ms(p50)}   p99<={_ms(p99)}",
        f"cache: mem {cache.get('memory_hits', 0)} "
        f"disk {cache.get('disk_hits', 0)} "
        f"miss {cache.get('misses', 0)} "
        f"stale {cache.get('stale', 0)}   "
        f"entries {cache.get('memory_entries', 0)}",
    ]
    for window in slo.get("windows", []):
        lines.append(
            f"slo {window.get('seconds', '?')}s: "
            f"{window.get('count', 0)} req   "
            f"err {100 * window.get('error_rate', 0.0):.2f}%   "
            f"slow {100 * window.get('slow_rate', 0.0):.2f}%   "
            f"burn avail {window.get('availability_burn', 0.0):g} / "
            f"lat {window.get('latency_burn', 0.0):g}"
        )
    degraded_by = slo.get("degraded_by") or []
    if degraded_by:
        lines.append(f"DEGRADED by: {', '.join(degraded_by)}")
    return "\n".join(lines)


def _cmd_top(args: argparse.Namespace) -> int:
    """Live terminal view over /debug/vars + /metrics of a server."""
    import time as _time

    host, port = _parse_server_url(args.url)
    iterations = 1 if args.once else args.iterations
    count = 0
    try:
        while True:
            vars_resp = _fetch_server(host, port, "/debug/vars")
            metrics_resp = _fetch_server(host, port, "/metrics")
            if vars_resp.status != 200:
                raise SystemExit(
                    f"repro: error: /debug/vars answered {vars_resp.status}"
                )
            frame = _render_top(
                host,
                port,
                vars_resp.json(),
                metrics_resp.body.decode("utf-8", "replace"),
            )
            if not args.once and sys.stdout.isatty():
                print("\x1b[2J\x1b[H", end="")
            print(frame)
            count += 1
            if iterations is not None and count >= iterations:
                return 0
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Report a run's metrics from a saved export, or serve-and-report."""
    from .telemetry import load_metrics, telemetry_session

    path = args.source
    if not path.exists():
        raise SystemExit(f"repro: error: metrics source '{path}' not found")
    try:
        registry = load_metrics(path)
        run_label = str(path)
    except ValueError:
        # Not a metrics export: treat it as a batch request file and
        # serve it through the engine, reporting the live registry.
        from .service import load_request_file

        try:
            requests = load_request_file(path)
        except ValueError as exc:
            raise SystemExit(f"repro: error: {exc}")
        with telemetry_session(command="metrics", requests=str(path)) as session:
            with _make_engine(args) as engine:
                engine.run(requests)
        registry = session.metrics
        run_label = f"{path} (served {len(requests)} requests, run {session.run_id})"
    if args.prometheus:
        print(registry.to_prometheus(), end="")
    else:
        print(f"Metrics: {run_label}")
        print(registry.render())
    return 0


def _cmd_methods(args: argparse.Namespace) -> int:
    """List every registered partitioner and its capability flags."""
    from .partition.registry import specs

    columns = [
        "method", "family", "weighted", "seeded", "schedule", "continuous",
        "ne constraint", "description",
    ]
    rows = [
        [
            s.name,
            s.family,
            "yes" if s.weighted else "no",
            "yes" if s.uses_seed else "no",
            "yes" if s.supports_schedule else "no",
            "yes" if s.continuous else "no",
            s.ne_constraint or "any",
            s.description,
        ]
        for s in specs()
    ]
    if args.csv:
        print(",".join(c.replace(" ", "_") for c in columns))
        for row in rows:
            print(",".join(str(v) for v in row))
    else:
        from .report import format_table

        print(format_table(columns, rows, title="Registered partitioners"))
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    """``repro cache info``: pipeline versions + optional dir scan."""
    from .partition.pipeline import STAGE_VERSIONS, cache_version
    from .seam.dss import dss_memo_stats
    from .seam.element import geometry_cache_stats
    from .service.cache import scan_cache_dir

    print(f"cache version: {cache_version()}")
    stages = " ".join(f"{s}={v}" for s, v in STAGE_VERSIONS.items())
    print(f"stage versions: {stages}")
    geo = geometry_cache_stats()
    entries = ", ".join(
        f"ne={k['ne']}/np={k['npts']} ({k['bytes']} B)" for k in geo["keys"]
    )
    print(
        f"geometry cache: {geo['entries']}/{geo['maxsize']} entries, "
        f"{geo['hits']} hits, {geo['misses']} misses, "
        f"{geo['evictions']} evictions"
        + (f" [{entries}]" if entries else "")
    )
    memo = dss_memo_stats()
    print(
        f"dss operator memo: {memo['entries']} entries, "
        f"{memo['hits']} hits, {memo['misses']} misses"
    )
    if args.cache_dir is not None:
        info = scan_cache_dir(args.cache_dir)
        print(f"cache dir: {args.cache_dir}")
        print(
            f"entries: {info['entries']} "
            f"(current {info['current']}, stale {info['stale']}, "
            f"unreadable {info['unreadable']}), {info['bytes']} bytes"
        )
        if info["stale"]:
            print(
                "note: stale entries were written under a different "
                "stage version and will be recomputed on next request"
            )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .experiments import format_series, speedup_sweep

    with _make_engine(args) as engine:
        results = speedup_sweep(
            args.ne,
            methods=tuple(args.methods),
            nprocs=args.nprocs or None,
            engine=engine,
        )
    nprocs = [r.nproc for r in results[args.methods[0]]]
    if args.csv:
        header = ["nproc"]
        for m in args.methods:
            header += [f"speedup_{m}", f"gflops_{m}"]
        print(",".join(header))
        for i, n in enumerate(nprocs):
            row = [str(n)]
            for m in args.methods:
                r = results[m][i]
                row += [f"{r.speedup:.3f}", f"{r.gflops:.3f}"]
            print(",".join(row))
    else:
        series: dict[str, list[str]] = {}
        for m in args.methods:
            series[f"S({m})"] = [f"{r.speedup:.1f}" for r in results[m]]
        print(format_series("Nproc", nprocs, series, title=f"Speedup, Ne={args.ne}"))
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from .experiments import render_table2, table2
    from .seam import SEAMCostModel

    cost = SEAMCostModel(nlev=args.nlev)
    rows = table2(ne=args.ne, nproc=args.nparts, cost=cost)
    print(render_table2(rows, k=6 * args.ne * args.ne, nproc=args.nparts))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .cubesphere import cubed_sphere_mesh
    from .graphs import mesh_graph
    from .machine import PerformanceModel, trace_step
    from .partition.pipeline import partition_stage

    graph = mesh_graph(cubed_sphere_mesh(args.ne))
    part = partition_stage(args.method, args.ne, args.nparts)
    trace = trace_step(PerformanceModel(), graph, part)
    print(
        f"K={graph.nvertices} method={args.method} nparts={args.nparts} "
        f"idle={100 * trace.idle_fraction():.0f}%"
    )
    print(trace.render(width=args.width, max_ranks=args.max_ranks))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .cubesphere import cubed_sphere_mesh
    from .experiments import format_table
    from .graphs import mesh_graph
    from .partition.analysis import analyze_structure
    from .partition.pipeline import partition_stage

    graph = mesh_graph(cubed_sphere_mesh(args.ne))
    part = partition_stage(args.method, args.ne, args.nparts)
    structure = analyze_structure(graph, part)
    print(
        f"K={graph.nvertices} method={args.method} nparts={args.nparts}: "
        f"{structure.fragmented_parts} fragmented parts, "
        f"max diameter {structure.max_diameter}, "
        f"mean boundary fraction {structure.mean_boundary_fraction:.2f}"
    )
    print(f"cut weight by interface kind: {structure.cut_weight_by_kind}")
    rows = [
        [s.part, s.size, s.components, s.diameter, s.boundary_elements]
        for s in structure.worst_parts(8)
    ]
    print(
        format_table(
            ["part", "size", "components", "diameter", "boundary elems"],
            rows,
            title="Worst parts (most fragmented / stretched)",
        )
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    np.set_printoptions(linewidth=120)
    handlers = {
        "curve": _cmd_curve,
        "partition": _cmd_partition,
        "batch": _cmd_batch,
        "serve": _cmd_serve,
        "profile": _cmd_profile,
        "top": _cmd_top,
        "metrics": _cmd_metrics,
        "methods": _cmd_methods,
        "cache": _cmd_cache,
        "sweep": _cmd_sweep,
        "table2": _cmd_table2,
        "trace": _cmd_trace,
        "report": _cmd_report,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
